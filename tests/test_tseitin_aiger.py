"""CNF emission (Tseitin) equisatisfiability and AIGER round-trips."""

import io
import itertools
import random

from repro.aig import Aig, CnfEmitter, evaluate, parse_aag, write_aag
from repro.sat import Solver


def random_cone(rng, n_inputs=5, n_nodes=25):
    g = Aig()
    inputs = [g.new_input(f"i{k}") for k in range(n_inputs)]
    pool = list(inputs) + [0, 1]
    for _ in range(n_nodes):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(g.and_(a, b))
    out = pool[-1]
    return g, inputs, out


class TestTseitin:
    def test_equisatisfiable_against_eval(self):
        rng = random.Random(11)
        for _ in range(25):
            g, inputs, out = random_cone(rng)
            solver = Solver()
            em = CnfEmitter(g, solver)
            out_lit = em.sat_lit(out)
            # For every input assignment, CNF must agree with evaluation.
            for bits in itertools.product([False, True], repeat=len(inputs)):
                expected = evaluate(g, dict(zip(inputs, bits)), [out])[0]
                assumptions = []
                for lit, val in zip(inputs, bits):
                    var = em.sat_lit(lit)
                    assumptions.append(var if val else -var)
                r = solver.solve(assumptions + [out_lit])
                assert r.sat == expected, (bits, expected)

    def test_labels_attached(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        n = g.and_(a, b)
        solver = Solver()
        em = CnfEmitter(g, solver)
        em.set_label(("gate", 7))
        em.sat_lit(n)
        solver.add_clause([em.sat_lit(a)], ("unit", "a"))
        solver.add_clause([em.sat_lit(b)], ("unit", "b"))
        # a & b with gate output forced low: the refutation must resolve
        # through the gate clauses, so their label shows up in the core
        solver.add_clause([-em.sat_lit(n)], ("neg",))
        assert not solver.solve().sat
        labels = solver.core_labels()
        assert ("gate", 7) in labels
        assert ("unit", "a") in labels and ("unit", "b") in labels

    def test_constant_literals(self):
        g = Aig()
        solver = Solver()
        em = CnfEmitter(g, solver)
        t = em.sat_lit(1)
        f = em.sat_lit(0)
        assert t == -f
        assert solver.solve([t]).sat
        assert not solver.solve([f]).sat

    def test_cone_emitted_once(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        n = g.and_(a, b)
        solver = Solver()
        em = CnfEmitter(g, solver)
        em.sat_lit(n)
        count = solver.num_clauses
        em.sat_lit(n)
        em.sat_lit(n ^ 1)
        assert solver.num_clauses == count

    def test_gates_emitted_counter(self):
        g = Aig()
        a, b, c = (g.new_input() for _ in range(3))
        n = g.and_(g.and_(a, b), c)
        solver = Solver()
        em = CnfEmitter(g, solver)
        em.sat_lit(n)
        assert em.gates_emitted == 2


class TestAiger:
    def test_roundtrip_eval_equivalence(self):
        rng = random.Random(23)
        for _ in range(10):
            g, inputs, out = random_cone(rng, n_inputs=4, n_nodes=12)
            buf = io.StringIO()
            write_aag(buf, g, inputs, [out], comment="roundtrip test")
            g2, inputs2, outputs2 = parse_aag(buf.getvalue())
            assert len(inputs2) >= len(inputs)
            for bits in itertools.product([False, True], repeat=len(inputs)):
                v1 = evaluate(g, dict(zip(inputs, bits)), [out])[0]
                v2 = evaluate(g2, dict(zip(inputs2, bits)), [outputs2[0]])[0]
                assert v1 == v2

    def test_header_counts(self):
        g = Aig()
        a, b = g.new_input("a"), g.new_input("b")
        n = g.and_(a, b)
        buf = io.StringIO()
        write_aag(buf, g, [a, b], [n])
        header = buf.getvalue().splitlines()[0].split()
        assert header[0] == "aag"
        assert header[2] == "2"  # inputs
        assert header[4] == "1"  # outputs
        assert header[5] == "1"  # ands

    def test_constant_output(self):
        g = Aig()
        buf = io.StringIO()
        write_aag(buf, g, [], [1, 0])
        g2, _inputs, outs = parse_aag(buf.getvalue())
        assert evaluate(g2, {}, outs) == [True, False]

    def test_latch_section_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            parse_aag("aag 1 0 1 0 0\n2 3\n")

    def test_not_aiger_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            parse_aag("hello world")
