"""Tests for the AIG: folding, structural hashing, word ops, evaluation."""

from hypothesis import given, settings, strategies as st

from repro.aig import Aig, FALSE, TRUE, evaluate
from repro.aig import ops
from repro.aig.aig import lit_not
from repro.aig.eval import evaluate_word


class TestFolding:
    def test_constants(self):
        g = Aig()
        a = g.new_input("a")
        assert g.and_(a, FALSE) == FALSE
        assert g.and_(FALSE, a) == FALSE
        assert g.and_(a, TRUE) == a
        assert g.and_(TRUE, a) == a
        assert g.and_(a, a) == a
        assert g.and_(a, lit_not(a)) == FALSE

    def test_structural_hashing(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        assert g.and_(a, b) == g.and_(b, a)
        assert g.num_ands == 1
        g.and_(a, b)
        assert g.num_ands == 1

    def test_or_demorgan(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        assert g.or_(a, b) == lit_not(g.and_(lit_not(a), lit_not(b)))

    def test_mux_folding(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        assert g.mux(TRUE, a, b) == a
        assert g.mux(FALSE, a, b) == b
        assert g.mux(a, b, b) == b

    def test_node_kinds(self):
        g = Aig()
        a = g.new_input("x")
        n = g.and_(a, g.new_input())
        assert g.is_input(a) and not g.is_and(a)
        assert g.is_and(n) and not g.is_input(n)
        assert g.is_const(FALSE) and g.is_const(TRUE)
        assert g.input_name(a) == "x"

    def test_cone_size(self):
        g = Aig()
        a, b, c = (g.new_input() for _ in range(3))
        n1 = g.and_(a, b)
        n2 = g.and_(n1, c)
        assert g.cone_size([n2]) == 2
        assert g.cone_size([n1]) == 1
        assert g.cone_size([a]) == 0


class TestEvaluate:
    def test_and_or_xor(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        outs = [g.and_(a, b), g.or_(a, b), g.xor_(a, b), g.iff_(a, b)]
        for va in (False, True):
            for vb in (False, True):
                r = evaluate(g, {a: va, b: vb}, outs)
                assert r == [va and vb, va or vb, va != vb, va == vb]

    def test_unlisted_inputs_default_false(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        n = g.or_(a, b)
        assert evaluate(g, {a: True}, [n]) == [True]
        assert evaluate(g, {}, [n]) == [False]

    def test_constant_outputs(self):
        g = Aig()
        assert evaluate(g, {}, [TRUE, FALSE]) == [True, False]


word_pairs = st.tuples(st.integers(0, 255), st.integers(0, 255))


class TestWordOps:
    def _inputs(self, g, width=8):
        a = ops.input_word(g, "a", width)
        b = ops.input_word(g, "b", width)
        return a, b

    def _env(self, a, b, va, vb):
        env = {}
        for i, bit in enumerate(a):
            env[bit] = bool((va >> i) & 1)
        for i, bit in enumerate(b):
            env[bit] = bool((vb >> i) & 1)
        return env

    @settings(max_examples=60, deadline=None)
    @given(word_pairs)
    def test_add_sub(self, pair):
        va, vb = pair
        g = Aig()
        a, b = self._inputs(g)
        env = self._env(a, b, va, vb)
        assert evaluate_word(g, env, ops.add_word(g, a, b)) == (va + vb) & 0xFF
        assert evaluate_word(g, env, ops.sub_word(g, a, b)) == (va - vb) & 0xFF

    @settings(max_examples=60, deadline=None)
    @given(word_pairs)
    def test_compare(self, pair):
        va, vb = pair
        g = Aig()
        a, b = self._inputs(g)
        env = self._env(a, b, va, vb)
        assert evaluate(g, env, [ops.eq_word(g, a, b)]) == [va == vb]
        assert evaluate(g, env, [ops.lt_unsigned(g, a, b)]) == [va < vb]
        assert evaluate(g, env, [ops.le_unsigned(g, a, b)]) == [va <= vb]
        assert evaluate(g, env, [ops.gt_unsigned(g, a, b)]) == [va > vb]
        assert evaluate(g, env, [ops.ge_unsigned(g, a, b)]) == [va >= vb]

    @settings(max_examples=40, deadline=None)
    @given(word_pairs)
    def test_bitwise(self, pair):
        va, vb = pair
        g = Aig()
        a, b = self._inputs(g)
        env = self._env(a, b, va, vb)
        assert evaluate_word(g, env, ops.and_word(g, a, b)) == va & vb
        assert evaluate_word(g, env, ops.or_word(g, a, b)) == va | vb
        assert evaluate_word(g, env, ops.xor_word(g, a, b)) == va ^ vb
        assert evaluate_word(g, env, ops.not_word(a)) == (~va) & 0xFF

    @settings(max_examples=40, deadline=None)
    @given(word_pairs, st.booleans())
    def test_mux(self, pair, sel):
        va, vb = pair
        g = Aig()
        a, b = self._inputs(g)
        s = g.new_input("s")
        env = self._env(a, b, va, vb)
        env[s] = sel
        out = ops.mux_word(g, s, a, b)
        assert evaluate_word(g, env, out) == (va if sel else vb)

    def test_const_word(self):
        g = Aig()
        assert evaluate_word(g, {}, ops.const_word(0xA5, 8)) == 0xA5

    def test_inc_dec(self):
        g = Aig()
        a = ops.input_word(g, "a", 4)
        env = {bit: bool((13 >> i) & 1) for i, bit in enumerate(a)}
        assert evaluate_word(g, env, ops.inc_word(g, a)) == 14
        assert evaluate_word(g, env, ops.dec_word(g, a)) == 12

    def test_resize_and_concat(self):
        g = Aig()
        a = ops.input_word(g, "a", 4)
        env = {bit: bool((0b1010 >> i) & 1) for i, bit in enumerate(a)}
        assert evaluate_word(g, env, ops.resize_word(a, 8)) == 0b1010
        assert evaluate_word(g, env, ops.resize_word(a, 2)) == 0b10
        cc = ops.concat_words(a, ops.const_word(0b11, 2))
        assert evaluate_word(g, env, cc) == 0b111010

    def test_width_mismatch_raises(self):
        import pytest
        g = Aig()
        a = ops.input_word(g, "a", 4)
        b = ops.input_word(g, "b", 5)
        with pytest.raises(ValueError):
            ops.add_word(g, a, b)
