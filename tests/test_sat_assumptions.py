"""Property tests for assumption handling and incremental solving.

The BMC engine leans on three solver behaviours: (1) assumption-based
solving never poisons the clause database — the same solver answers
differently under different assumption sets; (2) ``failed_assumptions``
is a genuine refutation subset — asserting exactly those literals as
units in a fresh solver is UNSAT; (3) clauses may be added between
solves and earlier answers stay valid for the weaker formula.  These
tests pin all three down, with randomized instances cross-checked
against brute force.
"""

import itertools
import random

import pytest

from repro.sat.solver import Solver


def make_solver(num_vars, clauses, proof=True):
    s = Solver(proof=proof)
    for _ in range(num_vars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


def brute_sat(num_vars, clauses, units=()):
    for bits in itertools.product([False, True], repeat=num_vars):
        assign = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if any(assign[abs(lit)] != (lit > 0) for lit in units):
            continue
        if all(any(assign[abs(lit)] == (lit > 0) for lit in c) for c in clauses):
            return True
    return False


def random_cnf(rng, num_vars, num_clauses):
    return [[rng.choice([-1, 1]) * rng.randint(1, num_vars)
             for _ in range(rng.randint(1, 3))] for _ in range(num_clauses)]


class TestAssumptionSemantics:
    def test_alternating_assumption_sets(self):
        s = make_solver(3, [[-1, 2], [-2, 3]])
        assert s.solve([1]).sat
        assert not s.solve([1, -3]).sat
        assert s.solve([1]).sat          # earlier UNSAT did not stick
        assert s.solve([-1, -3]).sat
        assert not s.solve([2, -3]).sat

    def test_model_respects_assumptions(self):
        s = make_solver(4, [[1, 2, 3, 4]])
        assert s.solve([-1, -2, -3]).sat
        assert s.model_value(4)
        assert not s.model_value(1)

    def test_failed_assumptions_subset(self):
        s = make_solver(4, [[-1, 2], [-2, 3], [-3, 4]])
        r = s.solve([1, -4, 2])
        assert not r.sat
        assert set(r.failed_assumptions) <= {1, -4, 2}

    def test_failed_assumptions_refute(self):
        """The failed set alone (as units) must already be UNSAT."""
        rng = random.Random(5)
        for _ in range(20):
            nv = rng.randint(3, 6)
            cls = random_cnf(rng, nv, rng.randint(2, 12))
            assumps = sorted({rng.choice([-1, 1]) * rng.randint(1, nv)
                              for _ in range(rng.randint(1, 3))})
            s = make_solver(nv, cls)
            if s.is_broken:
                continue
            r = s.solve(assumps)
            expected = brute_sat(nv, cls, assumps)
            assert r.sat == expected
            if not r.sat and r.failed_assumptions:
                assert not brute_sat(nv, cls, r.failed_assumptions)

    def test_contradictory_assumptions(self):
        s = make_solver(2, [[1, 2]])
        r = s.solve([1, -1])
        assert not r.sat
        assert set(r.failed_assumptions) == {1, -1}

    def test_repeated_assumption_ok(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve([1, 1, 2]).sat


class TestIncrementalAddition:
    def test_add_after_solve(self):
        s = make_solver(3, [[1, 2]])
        assert s.solve().sat
        s.add_clause([-1])
        s.add_clause([-2])
        assert not s.solve().sat
        assert s.is_broken

    def test_tightening_under_assumptions(self):
        s = make_solver(3, [[1, 2, 3]])
        assert s.solve([-1]).sat
        s.add_clause([-2])
        assert s.solve([-1]).sat       # 3 still saves it
        s.add_clause([-3])
        assert not s.solve([-1]).sat   # only 1 left, assumed away
        assert s.solve([1]).sat        # but the formula itself lives

    def test_new_vars_between_solves(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve().sat
        v = s.new_var()
        s.add_clause([-v, -1])
        s.add_clause([v])
        assert s.solve().sat
        assert not s.model_value(1) or not s.model_value(v)

    @pytest.mark.parametrize("seed", range(12))
    def test_incremental_matches_monolithic(self, seed):
        """Adding clauses in two batches == adding them all at once."""
        rng = random.Random(100 + seed)
        nv = rng.randint(3, 6)
        batch1 = random_cnf(rng, nv, rng.randint(1, 8))
        batch2 = random_cnf(rng, nv, rng.randint(1, 8))
        incremental = make_solver(nv, batch1)
        incremental.solve()
        for c in batch2:
            incremental.add_clause(c)
        got = incremental.solve().sat if not incremental.is_broken else False
        expected = brute_sat(nv, batch1 + batch2)
        assert got == expected


class TestBrokenSolver:
    def test_broken_stays_broken(self):
        s = make_solver(1, [[1], [-1]])
        assert s.is_broken
        assert not s.solve().sat
        assert not s.solve([1]).sat
        assert s.add_clause([1]) == -1  # further additions are absorbed

    def test_core_available_when_broken(self):
        s = make_solver(2, [[1], [2], [-1, -2]])
        assert s.is_broken
        core = s.core_clause_ids()
        assert core  # the three clauses (or a subset) explain it
        lits = [s.proof_clause_literals(c) for c in sorted(core)]
        assert not brute_sat(2, lits)
