"""Counterexample extraction: traces, initial-memory reconstruction."""


from repro.bmc import BmcOptions, bmc2, verify
from repro.design import Design


class TestTraces:
    def test_inputs_recovered(self):
        d = Design("t")
        x = d.input("x", 4)
        acc = d.latch("acc", 4, init=0)
        acc.next = x
        d.invariant("p", acc.expr.ne(9))
        r = verify(d, "p", BmcOptions(find_proof=False, max_depth=4))
        assert r.falsified and r.depth == 1
        assert r.trace.cycles[0]["inputs"]["x"] == 9
        assert r.trace_validated is True

    def test_latch_values_follow_replay(self):
        d = Design("t")
        c = d.latch("c", 3, init=2)
        c.next = c.expr + 1
        d.invariant("p", c.expr.ne(5))
        r = verify(d, "p", BmcOptions(find_proof=False, max_depth=6))
        assert [cyc["latches"]["c"] for cyc in r.trace.cycles] == [2, 3, 4, 5]

    def test_props_recorded_in_trace(self):
        d = Design("t")
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("p", c.expr.ne(2))
        r = verify(d, "p", BmcOptions(find_proof=False, max_depth=4))
        assert r.trace.cycles[-1]["props"]["p"] == 0
        assert all(cyc["props"]["p"] == 1 for cyc in r.trace.cycles[:-1])


class TestInitialMemoryReconstruction:
    def make(self):
        d = Design("t")
        a = d.input("a", 2)
        st = d.latch("st", 2, init=0)
        st.next = st.expr + 1
        mem = d.memory("m", 2, 4, init=None)
        mem.write(0).connect(addr=3, data=1, en=st.expr.eq(1))
        rd = mem.read(0).connect(addr=a, en=1)
        d.invariant("p", rd.ne(7) | st.expr.ne(2))
        return d

    def test_read_before_write_recovers_contents(self):
        r = verify(self.make(), "p", bmc2(max_depth=5))
        assert r.falsified
        # The violating read happens at cycle 2 on an address never
        # written (the only write targets address 3 with data 1).
        mem_init = r.trace.init_memories["m"]
        assert 7 in mem_init.values()
        assert r.trace_validated is True

    def test_written_addresses_not_misattributed(self):
        d = Design("t")
        st = d.latch("st", 2, init=0)
        st.next = st.expr + 1
        mem = d.memory("m", 2, 4, init=None)
        mem.write(0).connect(addr=0, data=9, en=st.expr.eq(0))
        rd = mem.read(0).connect(addr=0, en=1)
        # reading addr 0 after the write: must be 9, regardless of init
        d.invariant("p", st.expr.eq(0) | rd.eq(9))
        r = verify(d, "p", bmc2(max_depth=4))
        assert r.status == "bounded"  # holds: no CE to misattribute

    def test_multiport_reconstruction(self):
        d = Design("t")
        a = d.input("a", 2)
        b = d.input("b", 2)
        st = d.latch("st", 1, init=0)
        st.next = st.expr
        mem = d.memory("m", 2, 4, init=None, read_ports=2)
        mem.write(0).connect(addr=0, data=0, en=0)
        rd0 = mem.read(0).connect(addr=a, en=1)
        rd1 = mem.read(1).connect(addr=b, en=1)
        d.invariant("p", (rd0 + rd1).ne(5))
        r = verify(d, "p", bmc2(max_depth=3))
        assert r.falsified
        assert r.trace_validated is True
        vals = r.trace.init_memories["m"]
        cyc = r.trace.cycles[r.depth]["inputs"]
        got0 = vals.get(cyc["a"], 0)
        got1 = vals.get(cyc["b"], 0)
        assert (got0 + got1) % 16 == 5
