"""Tests for the independent resolution/RUP proof checker (ref [20])."""

import random

import pytest

from repro.sat.proofcheck import (certify_unsat, check_all_learned,
                                  check_core, check_learned_clause)
from repro.sat.solver import Solver


def make_solver(num_vars, clauses, proof=True):
    s = Solver(proof=proof)
    for _ in range(num_vars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


def php_clauses(holes):
    """Pigeonhole principle PHP(holes+1, holes): classic small UNSAT."""
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestLearnedClauseRup:
    def test_php_trace_checks(self):
        nv, cls = php_clauses(3)
        s = make_solver(nv, cls)
        assert not s.solve().sat
        report = check_all_learned(s)
        assert report.ok, str(report)
        assert report.checked == len(s.learned_clause_ids())

    def test_report_str_mentions_count(self):
        nv, cls = php_clauses(3)
        s = make_solver(nv, cls)
        s.solve()
        report = check_all_learned(s)
        assert "OK" in str(report)

    def test_sat_instance_trace_also_checks(self):
        # Learned clauses from a satisfiable search are still implied.
        rng = random.Random(7)
        nv = 8
        cls = [[rng.choice([-1, 1]) * rng.randint(1, nv) for _ in range(3)]
               for _ in range(30)]
        s = make_solver(nv, cls)
        s.solve()
        assert check_all_learned(s).ok

    def test_check_single_clause_requires_learned(self):
        s = make_solver(2, [[1, 2]])
        with pytest.raises(ValueError):
            check_learned_clause(s, 0)

    def test_requires_proof_logging(self):
        nv, cls = php_clauses(2)
        s = make_solver(nv, cls, proof=False)
        s.solve()
        with pytest.raises(RuntimeError):
            check_all_learned(s)

    def test_corrupted_derivation_detected(self):
        nv, cls = php_clauses(3)
        s = make_solver(nv, cls)
        assert not s.solve().sat
        learned = s.learned_clause_ids()
        assert learned
        # Sabotage one derivation: claim it follows from a single binary
        # original clause that clearly does not imply it.
        victim = learned[-1]
        s._derivations[victim] = (len(cls) - 1,)
        report = check_all_learned(s)
        assert victim in report.failed or report.ok is False

    def test_deleted_learned_clauses_still_checkable(self):
        # Force enough conflicts that clause-database reduction kicks in.
        nv, cls = php_clauses(5)
        s = make_solver(nv, cls)
        s._max_learnts = 10.0  # aggressive deletion
        assert not s.solve().sat
        report = check_all_learned(s)
        assert report.ok, str(report)


class TestCoreCheck:
    def test_core_of_php_confirmed(self):
        nv, cls = php_clauses(3)
        s = make_solver(nv, cls)
        assert not s.solve().sat
        assert check_core(s)

    def test_assumption_core_confirmed(self):
        s = make_solver(3, [[-1, 2], [-2, 3]])
        assert not s.solve(assumptions=[1, -3]).sat
        assert set(s.failed_assumptions()) <= {1, -3}
        assert check_core(s, assumptions=[1, -3])

    def test_assumption_mismatch_rejected(self):
        s = make_solver(3, [[-1, 2], [-2, 3]])
        assert not s.solve(assumptions=[1, -3]).sat
        if s.failed_assumptions():
            with pytest.raises(ValueError):
                check_core(s, assumptions=[2])

    def test_core_unavailable_after_sat(self):
        s = make_solver(2, [[1, 2]])
        assert s.solve().sat
        with pytest.raises(RuntimeError):
            check_core(s)


class TestCertify:
    def test_full_certification_php(self):
        nv, cls = php_clauses(4)
        s = make_solver(nv, cls)
        assert not s.solve().sat
        report = certify_unsat(s)
        assert report.ok, str(report)

    def test_certification_under_assumptions(self):
        s = make_solver(4, [[-1, 2], [-2, 3], [-3, 4]])
        assert not s.solve(assumptions=[1, -4]).sat
        report = certify_unsat(s, assumptions=[1, -4])
        assert report.ok

    @pytest.mark.parametrize("seed", range(15))
    def test_random_unsat_instances_certify(self, seed):
        rng = random.Random(seed)
        nv = rng.randint(3, 7)
        cls = [[rng.choice([-1, 1]) * rng.randint(1, nv) for _ in range(3)]
               for _ in range(nv * 7)]
        s = make_solver(nv, cls)
        if s.is_broken or not s.solve().sat:
            report = certify_unsat(s)
            assert report.ok, str(report)


class TestBmcIntegration:
    def test_bmc_proof_run_certifies(self):
        """The PBA pipeline's cores come from real BMC refutations."""
        from repro.bmc.engine import BmcEngine, BmcOptions
        from repro.design import Design

        d = Design("cert")
        c = d.latch("c", 3, init=0)
        c.next = (c.expr.eq(5)).ite(d.const(0, 3), c.expr + 1)
        d.invariant("p", c.expr.ne(7))
        eng = BmcEngine(d, "p", BmcOptions(find_proof=False, pba=True,
                                           max_depth=4))
        result = eng.run()
        assert result.status == "bounded"
        # The last falsification check was UNSAT: certify its proof.
        assert check_all_learned(eng.solver).ok
