"""Arbitrary-initial-state modeling (Section 4.2) and its ablations."""

import pytest

from repro.bmc import BmcOptions, bmc2, bmc3, verify
from repro.design import Design, expand_memories
from repro.bmc.engine import bmc1


def two_reads_same_addr(init_consistency=True):
    """Two read ports hit the same (never-written) address."""
    d = Design("alias")
    a = d.input("a", 2)
    st = d.latch("st", 1, init=0)
    st.next = d.const(1, 1)
    mem = d.memory("m", 2, 4, init=None, read_ports=2)
    mem.write(0).connect(addr=0, data=0, en=0)
    rd0 = mem.read(0).connect(addr=a, en=1)
    rd1 = mem.read(1).connect(addr=a, en=1)
    d.invariant("same", rd0.eq(rd1))
    return d


def cross_frame_same_addr():
    """One read port, same address at two different frames, no writes."""
    d = Design("xframe")
    st = d.latch("st", 2, init=0)
    st.next = st.expr + 1
    first = d.latch("first", 4, init=0)
    mem = d.memory("m", 2, 4, init=None)
    mem.write(0).connect(addr=0, data=0, en=0)
    rd = mem.read(0).connect(addr=1, en=1)
    first.next = st.expr.eq(0).ite(rd, first.expr)
    # From cycle 1 on, reading address 1 again must give the same value.
    d.invariant("stable", st.expr.eq(0) | rd.eq(first.expr))
    return d


class TestConsistency:
    def test_cross_port_consistency_proved(self):
        r = verify(two_reads_same_addr(), "same", bmc3(max_depth=6, pba=False))
        assert r.proved

    def test_cross_port_without_eq6_spurious(self):
        r = verify(two_reads_same_addr(), "same",
                   BmcOptions(find_proof=True, init_consistency=False,
                              max_depth=4))
        assert r.falsified
        # the CE is spurious: simulator replay shows the property holding
        assert r.trace_validated is False

    def test_cross_frame_consistency_proved(self):
        r = verify(cross_frame_same_addr(), "stable", bmc3(max_depth=8, pba=False))
        assert r.proved, r.describe()

    def test_cross_frame_without_eq6_spurious(self):
        r = verify(cross_frame_same_addr(), "stable",
                   BmcOptions(find_proof=False, init_consistency=False,
                              max_depth=6))
        assert r.falsified
        assert r.trace_validated is False

    def test_explicit_agrees_on_consistency(self):
        ex = expand_memories(two_reads_same_addr())
        r = verify(ex, "same", bmc1(max_depth=6, pba=False))
        assert r.proved


class TestArbitraryInitFalsification:
    def test_arbitrary_init_cex_at_depth0(self):
        d = Design("arb")
        a = d.input("a", 2)
        lit = d.latch("l", 1, init=0)
        lit.next = lit.expr
        mem = d.memory("m", 2, 4, init=None)
        mem.write(0).connect(addr=0, data=0, en=0)
        rd = mem.read(0).connect(addr=a, en=1)
        d.invariant("no7", rd.ne(7))
        r = verify(d, "no7", bmc2(max_depth=3))
        assert r.falsified and r.depth == 0
        assert r.trace_validated is True
        # the reconstructed initial memory must contain the 7
        assert 7 in r.trace.init_memories["m"].values()

    def test_write_overrides_arbitrary_init(self):
        d = Design("arb2")
        st = d.latch("st", 2, init=0)
        st.next = st.expr + 1
        mem = d.memory("m", 2, 4, init=None)
        mem.write(0).connect(addr=2, data=5, en=st.expr.eq(0))
        rd = mem.read(0).connect(addr=2, en=1)
        # After the cycle-0 write, address 2 must read 5 forever.
        d.invariant("pinned", st.expr.eq(0) | rd.eq(5))
        r = verify(d, "pinned", bmc3(max_depth=8, pba=False))
        assert r.proved, r.describe()


class TestKnownInitInduction:
    def make(self):
        d = Design("ki")
        data = d.input("data", 4)
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", 2, 4, init=0)
        low = data.ult(8).ite(data, d.const(0, 4))
        mem.write(0).connect(addr=t.expr, data=low, en=1)
        rd = mem.read(0).connect(addr=d.input("ra", 2), en=1)
        d.invariant("lt8", rd.ult(8))
        return d

    def test_forward_proof_with_symbolic_fallthrough(self):
        r = verify(self.make(), "lt8", bmc3(max_depth=10, pba=False))
        assert r.proved
        assert r.method == "forward"

    def test_no_bogus_backward_proof_at_depth0(self):
        """Backward induction must treat the initial memory as arbitrary.

        If the fall-through were pinned to the declared zero init in the
        backward check, 'lt8' would be provable at depth 0 — unsoundly.
        """
        r = verify(self.make(), "lt8", bmc3(max_depth=10, pba=False))
        assert (r.method, r.depth) != ("backward", 0)

    def test_falsification_still_uses_declared_init(self):
        d = Design("ki2")
        t = d.latch("t", 1, init=0)
        t.next = t.expr
        mem = d.memory("m", 2, 4, init=3)
        mem.write(0).connect(addr=0, data=0, en=0)
        rd = mem.read(0).connect(addr=1, en=1)
        d.invariant("is3", rd.eq(3))
        r = verify(d, "is3", bmc3(max_depth=4, pba=False))
        assert r.proved, r.describe()  # holds (never written, init 3)
        d2 = Design("ki3")
        t2 = d2.latch("t", 1, init=0)
        t2.next = t2.expr
        mem2 = d2.memory("m", 2, 4, init=3)
        mem2.write(0).connect(addr=0, data=0, en=0)
        rd2 = mem2.read(0).connect(addr=1, en=1)
        d2.invariant("is4", rd2.eq(4))
        r2 = verify(d2, "is4", bmc2(max_depth=2))
        assert r2.falsified and r2.depth == 0
