"""Image filter (Industry Design I analog): witnesses and induction proofs."""


from repro.bmc import bmc2, bmc3, verify
from repro.casestudies.image_filter import (DONE, FILTER, INGEST,
                                            ImageFilterParams,
                                            build_image_filter)
from repro.sim import Simulator

PARAMS = ImageFilterParams(addr_width=2, data_width=8,
                           reachable_values=(0, 17, 191),
                           unreachable_values=(192, 255))


class TestSimulation:
    def test_pipeline_phases(self):
        d = build_image_filter(PARAMS)
        sim = Simulator(d)
        pixels = [10, 20, 30, 40]
        for v in pixels:
            assert sim.latches["pc"] == INGEST
            sim.step({"pix_in": v})
        assert sim.latches["pc"] == FILTER
        for _ in range(3 * (PARAMS.line_width - 2)):
            sim.step({})
        assert sim.latches["pc"] == DONE
        # 3-tap filter at k=1: (10+20+30)>>2 = 15; at k=2: (20+30+40)>>2
        assert sim.memories["outbuf"][1] == (10 + 20 + 30) >> 2
        assert sim.memories["outbuf"][2] == (20 + 30 + 40) >> 2

    def test_max_filtered_bound(self):
        assert PARAMS.max_filtered == 191
        d = build_image_filter(PARAMS)
        sim = Simulator(d)
        for _ in range(4):
            sim.step({"pix_in": 255})
        for _ in range(3 * (PARAMS.line_width - 2)):
            sim.step({})
        assert all(v <= 191 for v in sim.memories["outbuf"].values())


class TestDesign:
    def test_two_memories_paper_structure(self):
        d = build_image_filter(PARAMS)
        assert set(d.memories) == {"linebuf", "outbuf"}
        for mem in d.memories.values():
            assert mem.num_read_ports == 1 and mem.num_write_ports == 1
            assert mem.init == 0  # paper: memory state initialised to 0

    def test_property_family_generated(self):
        d = build_image_filter(PARAMS)
        assert "reach_out_eq_17" in d.properties
        assert "unreach_out_eq_192" in d.properties
        assert "reach_done" in d.properties
        assert all(p.kind == "reach" for p in d.properties.values())


class TestVerification:
    def test_witness_for_reachable_value(self):
        d = build_image_filter(PARAMS)
        r = verify(d, "reach_out_eq_17", bmc2(max_depth=12))
        assert r.falsified  # witness found
        assert r.trace_validated is True

    def test_witness_for_zero(self):
        r = verify(build_image_filter(PARAMS), "reach_out_eq_0",
                   bmc2(max_depth=12))
        assert r.falsified and r.trace_validated is True

    def test_done_reachable_with_depth(self):
        d = build_image_filter(PARAMS)
        r = verify(d, "reach_done", bmc2(max_depth=16))
        assert r.falsified
        # ingest takes line_width cycles, filtering 3 per window
        expected = PARAMS.line_width + 3 * (PARAMS.line_width - 2)
        assert r.depth == expected

    def test_unreachable_value_proved_by_induction(self):
        """The paper's 10 unreachable properties: proofs via BMC-3."""
        d = build_image_filter(PARAMS)
        r = verify(d, "unreach_out_eq_192", bmc3(max_depth=14, pba=False))
        assert r.proved, r.describe()
        assert r.method == "backward"

    def test_unreachable_255_proved(self):
        d = build_image_filter(PARAMS)
        r = verify(d, "unreach_out_eq_255", bmc3(max_depth=14, pba=False))
        assert r.proved, r.describe()

    def test_witness_value_correct_in_trace(self):
        d = build_image_filter(PARAMS)
        r = verify(d, "reach_out_eq_191", bmc2(max_depth=12))
        assert r.falsified
        final = r.trace.cycles[r.depth]
        assert final["latches"]["out_val"] == 191
