"""Invariant-aided memory abstraction (Industry Design II methodology)."""

import pytest

from repro.bmc import BmcOptions, bmc2, verify
from repro.design import Design
from repro.props import (abstract_memory_reads, free_memory_reads,
                         prove_with_memory_invariant)


def zero_memory_design():
    """A memory that provably stays all-zero, plus an alarm over its reads."""
    d = Design("zm")
    gate = d.latch("gate", 1, init=0)
    gate.next = gate.expr  # never becomes 1
    data_in = d.input("data", 4)
    wd = d.latch("wd", 4, init=0)
    wd.next = gate.expr.ite(data_in, d.const(0, 4))
    mem = d.memory("m", 2, 4, init=0)
    mem.write(0).connect(addr=d.input("wa", 2), data=wd.expr, en=1)
    rd = mem.read(0).connect(addr=d.input("ra", 2), en=1)
    alarm = d.latch("alarm", 1, init=0)
    alarm.next = rd.ne(0)
    d.invariant("wd_zero", wd.expr.eq(0))
    d.reach("alarm_fires", alarm.expr)
    return d


class TestRewrites:
    def test_abstract_memory_reads_removes_memory(self):
        d = zero_memory_design()
        reduced = abstract_memory_reads(d, "m", read_value=0)
        assert "m" not in reduced.memories
        assert set(reduced.properties) == set(d.properties)
        assert set(reduced.latches) == set(d.latches)

    def test_free_memory_reads_adds_inputs(self):
        d = zero_memory_design()
        freed = free_memory_reads(d, "m")
        assert "m" not in freed.memories
        assert "m_rd0_free" in freed.inputs

    def test_unknown_memory_rejected(self):
        d = zero_memory_design()
        with pytest.raises(KeyError):
            abstract_memory_reads(d, "nope")

    def test_other_memories_preserved(self):
        d = zero_memory_design()
        other = d.memory("keep", 2, 4, init=0)
        other.write(0).connect(addr=0, data=0, en=0)
        other.read(0).connect(addr=0, en=1)
        reduced = abstract_memory_reads(d, "m")
        assert "keep" in reduced.memories
        assert reduced.memories["keep"].num_read_ports == 1


class TestSpuriousVsSound:
    def test_free_reads_give_spurious_witness(self):
        d = zero_memory_design()
        freed = free_memory_reads(d, "m")
        r = verify(freed, "alarm_fires",
                   BmcOptions(find_proof=False, max_depth=4))
        assert r.falsified  # spurious: rd floated to nonzero
        assert r.depth == 1

    def test_emm_finds_no_witness(self):
        d = zero_memory_design()
        r = verify(d, "alarm_fires", bmc2(max_depth=6))
        assert r.status == "bounded"

    def test_constant_reads_allow_proof(self):
        d = zero_memory_design()
        reduced = abstract_memory_reads(d, "m", read_value=0)
        r = verify(reduced, "alarm_fires", BmcOptions(max_depth=10))
        assert r.proved


class TestPipeline:
    def test_prove_with_memory_invariant(self):
        d = zero_memory_design()
        flow = prove_with_memory_invariant(
            d, "m", invariant_name="wd_zero",
            property_names=["alarm_fires"],
            invariant_options=BmcOptions(max_depth=10),
            property_options=BmcOptions(max_depth=10))
        assert flow.invariant_result.proved
        assert flow.property_results["alarm_fires"].proved
        assert flow.all_proved
        assert flow.reduced_design is not None

    def test_failed_invariant_stops_flow(self):
        d = Design("bad")
        x = d.input("x", 4)
        wd = d.latch("wd", 4, init=0)
        wd.next = x  # NOT provably zero
        mem = d.memory("m", 2, 4, init=0)
        mem.write(0).connect(addr=0, data=wd.expr, en=1)
        mem.read(0).connect(addr=0, en=1)
        d.invariant("wd_zero", wd.expr.eq(0))
        flow = prove_with_memory_invariant(
            d, "m", invariant_name="wd_zero", property_names=[],
            invariant_options=BmcOptions(max_depth=5))
        assert not flow.all_proved
        assert flow.reduced_design is None
