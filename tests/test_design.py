"""Tests for the word-level design IR."""

import pytest

from repro.design import Design, latch_support, memory_control_latches
from repro.design.cone import property_cone_latches
from repro.design.netlist import memread_support


def small_design():
    d = Design("t")
    x = d.input("x", 4)
    r = d.latch("r", 4, init=3)
    r.next = r.expr + x
    return d, x, r


class TestExpressions:
    def test_hash_consing(self):
        d, x, r = small_design()
        assert (r.expr + x) is (r.expr + x)
        assert (x & x) is (x & x)
        assert d.const(5, 4) is d.const(5, 4)
        assert d.const(5, 4) is not d.const(5, 5)

    def test_const_masking(self):
        d = Design("t")
        assert d.const(0x1F, 4).payload == 0xF

    def test_width_mismatch_rejected(self):
        d = Design("t")
        a = d.input("a", 4)
        b = d.input("b", 5)
        with pytest.raises(ValueError):
            __ = a + b
        with pytest.raises(ValueError):
            a.eq(b)

    def test_int_coercion(self):
        d, x, __ = small_design()
        e = x + 1
        assert e.kind == "add"
        assert e.args[1].payload == 1

    def test_slicing(self):
        d = Design("t")
        a = d.input("a", 8)
        assert a[3].width == 1
        assert a[2:6].width == 4
        with pytest.raises(IndexError):
            __ = a[0:9]

    def test_ite_width_inference(self):
        d = Design("t")
        c = d.input("c", 1)
        a = d.input("a", 4)
        assert c.ite(a, 0).width == 4
        assert c.ite(0, a).width == 4
        with pytest.raises(ValueError):
            c.ite(0, 1)

    def test_ite_selector_must_be_bit(self):
        d = Design("t")
        a = d.input("a", 4)
        with pytest.raises(ValueError):
            a.ite(a, a)

    def test_comparison_widths(self):
        d = Design("t")
        a = d.input("a", 4)
        assert a.eq(3).width == 1
        assert a.ult(3).width == 1
        assert a.uge(2).width == 1

    def test_concat_zext(self):
        d = Design("t")
        a = d.input("a", 3)
        b = d.input("b", 2)
        assert a.concat(b).width == 5
        assert a.zext(8).width == 8
        assert a.zext(3) is a
        with pytest.raises(ValueError):
            a.zext(2)

    def test_cross_design_rejected(self):
        d1 = Design("a")
        d2 = Design("b")
        x1 = d1.input("x", 2)
        x2 = d2.input("x", 2)
        with pytest.raises(ValueError):
            __ = x1 & x2


class TestDeclarations:
    def test_duplicate_names_rejected(self):
        d = Design("t")
        d.input("x", 1)
        with pytest.raises(ValueError):
            d.input("x", 2)
        d.latch("l", 1)
        with pytest.raises(ValueError):
            d.latch("l", 2)
        d.memory("m", 2, 2)
        with pytest.raises(ValueError):
            d.memory("m", 2, 2)

    def test_latch_init_masked(self):
        d = Design("t")
        lit = d.latch("l", 3, init=0xFF)
        assert lit.init == 7

    def test_arbitrary_init(self):
        d = Design("t")
        lit = d.latch("l", 3, init=None)
        assert lit.init is None

    def test_latch_next_width_check(self):
        d = Design("t")
        lit = d.latch("l", 3)
        with pytest.raises(ValueError):
            lit.next = d.input("x", 4)

    def test_memory_ports(self):
        d = Design("t")
        m = d.memory("m", addr_width=3, data_width=5, read_ports=2, write_ports=2)
        assert m.num_read_ports == 2 and m.num_write_ports == 2
        assert m.num_words == 8 and m.num_bits == 40
        assert m.read(1).data.width == 5

    def test_memory_needs_ports(self):
        d = Design("t")
        with pytest.raises(ValueError):
            d.memory("m", 2, 2, read_ports=0)


class TestValidation:
    def test_unconnected_latch(self):
        d = Design("t")
        d.latch("l", 1)
        with pytest.raises(ValueError, match="no next-state"):
            d.validate()

    def test_unconnected_port(self):
        d = Design("t")
        lit = d.latch("l", 1)
        lit.next = lit.expr
        d.memory("m", 2, 2)
        with pytest.raises(ValueError, match="unconnected"):
            d.validate()

    def test_port_cycle_detected(self):
        d = Design("t")
        lit = d.latch("l", 1)
        lit.next = lit.expr
        m = d.memory("m", 2, 2, read_ports=2)
        rd0 = m.read(0).data
        rd1 = m.read(1).data
        m.read(0).connect(addr=rd1, en=1)
        m.read(1).connect(addr=rd0, en=1)
        m.write(0).connect(addr=0, data=0, en=0)
        with pytest.raises(ValueError, match="cycle"):
            d.validate()

    def test_chained_ports_allowed(self):
        d = Design("t")
        lit = d.latch("l", 2)
        lit.next = lit.expr
        m = d.memory("m", 2, 2, read_ports=2)
        rd0 = m.read(0).connect(addr=lit.expr, en=1)
        m.read(1).connect(addr=rd0, en=1)
        m.write(0).connect(addr=0, data=0, en=0)
        d.validate()
        order = d.port_evaluation_order()
        assert order.index(("m", 0)) < order.index(("m", 1))

    def test_property_width(self):
        d = Design("t")
        with pytest.raises(ValueError):
            d.invariant("p", d.input("x", 2))

    def test_duplicate_property(self):
        d = Design("t")
        x = d.input("x", 1)
        d.invariant("p", x)
        with pytest.raises(ValueError):
            d.reach("p", x)


class TestCones:
    def test_latch_support_stops_at_memread(self):
        d = Design("t")
        a = d.latch("a", 2)
        b = d.latch("b", 2)
        a.next = a.expr
        b.next = b.expr
        m = d.memory("m", 2, 2)
        rd = m.read(0).connect(addr=a.expr, en=1)
        m.write(0).connect(addr=b.expr, data=rd, en=1)
        # rd's *value* depends on the memory, but latch_support of an
        # expression using rd must not leak through the read port.
        expr = rd.eq(1)
        assert latch_support(expr) == set()
        assert memread_support(expr) == {("m", 0)}

    def test_memory_control_latches(self):
        d = Design("t")
        a = d.latch("a", 2)
        b = d.latch("b", 2)
        c = d.latch("c", 2)
        a.next = a.expr
        b.next = b.expr
        c.next = c.expr
        m = d.memory("m", 2, 2)
        m.read(0).connect(addr=a.expr, en=1)
        m.write(0).connect(addr=b.expr, data=0, en=1)
        assert memory_control_latches(d, "m") == {"a", "b"}
        assert memory_control_latches(d, m) == {"a", "b"}

    def test_property_cone(self):
        d = Design("t")
        a = d.latch("a", 1)
        b = d.latch("b", 1)
        c = d.latch("c", 1)
        a.next = b.expr
        b.next = b.expr
        c.next = c.expr
        d.invariant("p", a.expr)
        assert property_cone_latches(d, "p") == {"a", "b"}

    def test_stats(self):
        d = Design("t")
        d.input("x", 3)
        lit = d.latch("l", 4)
        lit.next = lit.expr
        d.memory("m", 2, 8)
        s = d.stats()
        assert s["inputs"] == 3
        assert s["latch_bits"] == 4
        assert s["memory_bits"] == 32
