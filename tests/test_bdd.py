"""BDD manager and symbolic reachability checker."""

import itertools
import random

import pytest

from repro.bdd import BddLimitExceeded, BddManager, bdd_model_check
from repro.bdd.manager import FALSE, TRUE
from repro.bmc import BmcOptions, verify
from repro.design import Design, expand_memories


class TestManager:
    def test_terminals_and_vars(self):
        m = BddManager()
        x = m.new_var()
        assert m.eval(x, {0: True}) is True
        assert m.eval(x, {0: False}) is False
        assert m.eval(TRUE, {}) is True
        assert m.eval(FALSE, {}) is False

    def test_canonicity(self):
        m = BddManager()
        x, y = m.new_var(), m.new_var()
        a = m.and_(x, y)
        b = m.not_(m.or_(m.not_(x), m.not_(y)))
        assert a == b  # De Morgan collapses to the same node

    def test_ite_truth_table(self):
        m = BddManager()
        x, y, z = m.new_var(), m.new_var(), m.new_var()
        f = m.ite(x, y, z)
        for vx, vy, vz in itertools.product([False, True], repeat=3):
            expected = vy if vx else vz
            assert m.eval(f, {0: vx, 1: vy, 2: vz}) == expected

    def test_xor_iff(self):
        m = BddManager()
        x, y = m.new_var(), m.new_var()
        for vx, vy in itertools.product([False, True], repeat=2):
            env = {0: vx, 1: vy}
            assert m.eval(m.xor_(x, y), env) == (vx != vy)
            assert m.eval(m.iff_(x, y), env) == (vx == vy)

    def test_exists(self):
        m = BddManager()
        x, y = m.new_var(), m.new_var()
        f = m.and_(x, y)
        g = m.exists(f, frozenset({0}))
        assert g == y  # exists x. x & y == y
        assert m.exists(f, frozenset({0, 1})) == TRUE
        assert m.exists(FALSE, frozenset({0})) == FALSE

    def test_rename(self):
        m = BddManager()
        x, y, z = m.new_var(), m.new_var(), m.new_var()
        f = m.and_(x, y)
        g = m.rename(f, {0: 1, 1: 2})
        assert g == m.and_(y, z)

    def test_rename_must_preserve_order(self):
        m = BddManager()
        m.new_var(), m.new_var()
        with pytest.raises(ValueError):
            m.rename(TRUE, {0: 1, 1: 0})

    def test_count_sat(self):
        m = BddManager()
        x, y, z = m.new_var(), m.new_var(), m.new_var()
        assert m.count_sat(TRUE) == 8
        assert m.count_sat(FALSE) == 0
        assert m.count_sat(x) == 4
        assert m.count_sat(m.and_(x, y)) == 2
        assert m.count_sat(m.or_(x, m.and_(y, z))) == 5

    def test_node_limit(self):
        m = BddManager(node_limit=8)
        with pytest.raises(BddLimitExceeded):
            # parity of 8 variables needs more than 8 nodes
            f = FALSE
            for __ in range(8):
                f = m.xor_(f, m.new_var())

    def test_random_equivalence_to_truth_table(self):
        rng = random.Random(4)
        for __ in range(20):
            m = BddManager()
            n = 4
            vs = [m.new_var() for __ in range(n)]
            pool = list(vs) + [TRUE, FALSE]
            exprs = []  # parallel python-lambda semantics

            def to_fn(node):
                return lambda env: m.eval(node, env)

            f = rng.choice(pool)
            for __ in range(8):
                op = rng.choice(["and", "or", "xor", "not", "ite"])
                g = rng.choice(pool)
                if op == "and":
                    f = m.and_(f, g)
                elif op == "or":
                    f = m.or_(f, g)
                elif op == "xor":
                    f = m.xor_(f, g)
                elif op == "not":
                    f = m.not_(f)
                else:
                    f = m.ite(f, g, rng.choice(pool))
                pool.append(f)
            # canonical: f equals itself rebuilt through eval on all inputs
            count = sum(
                m.eval(f, dict(enumerate(bits)))
                for bits in itertools.product([False, True], repeat=n))
            assert m.count_sat(f) == count


class TestReachability:
    def test_counter_proof_and_state_count(self):
        d = Design("cnt")
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("le7", c.expr.ule(7))
        r = bdd_model_check(d, "le7")
        assert r.proved
        assert r.reachable_states == 8
        assert r.iterations == 8  # 8 images to close the cycle

    def test_counter_cex_depth(self):
        d = Design("cnt")
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("lt5", c.expr.ult(5))
        r = bdd_model_check(d, "lt5")
        assert r.status == "cex"
        assert r.cex_depth == 5

    def test_reach_property(self):
        d = Design("cnt")
        c = d.latch("c", 3, init=2)
        c.next = c.expr + 1
        d.reach("hit6", c.expr.eq(6))
        r = bdd_model_check(d, "hit6")
        assert r.status == "cex"  # witness
        assert r.cex_depth == 4

    def test_input_dependent_transition(self):
        d = Design("t")
        en = d.input("en", 1)
        c = d.latch("c", 2, init=0)
        c.next = en.ite(c.expr + 1, c.expr)
        d.invariant("p", c.expr.ule(3))
        r = bdd_model_check(d, "p")
        assert r.proved
        assert r.reachable_states == 4

    def test_arbitrary_init_latch(self):
        d = Design("t")
        lit = d.latch("l", 2, init=None)
        lit.next = lit.expr
        d.invariant("p", lit.expr.ne(3))
        r = bdd_model_check(d, "p")
        assert r.status == "cex" and r.cex_depth == 0

    def test_memories_rejected(self):
        d = Design("t")
        lit = d.latch("l", 1, init=0)
        lit.next = lit.expr
        mem = d.memory("m", 2, 2, init=0)
        mem.write(0).connect(addr=0, data=0, en=0)
        mem.read(0).connect(addr=0, en=1)
        d.invariant("p", lit.expr.eq(0))
        with pytest.raises(ValueError, match="memory-free"):
            bdd_model_check(d, "p")

    def test_node_limit_reported(self):
        """An explicitly expanded memory blows a small node budget."""
        d = Design("t")
        cnt = d.latch("cnt", 3, init=0)
        cnt.next = cnt.expr + 1
        mem = d.memory("m", 3, 8, init=0)
        mem.write(0).connect(addr=cnt.expr, data=d.input("x", 8), en=1)
        rd = mem.read(0).connect(addr=d.input("a", 3), en=1)
        d.invariant("p", rd.ule(255))
        ex = expand_memories(d)
        r = bdd_model_check(ex, "p", node_limit=3000)
        assert r.status == "limit"

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_bmc_on_random_latch_designs(self, seed):
        rng = random.Random(seed)
        d = Design(f"rand{seed}")
        width = 3
        a = d.latch("a", width, init=rng.randrange(8))
        b = d.latch("b", width, init=rng.randrange(8))
        x = d.input("x", width)
        a.next = rng.choice([a.expr + 1, a.expr + x, a.expr ^ b.expr])
        b.next = rng.choice([b.expr, b.expr + 1, a.expr & b.expr])
        threshold = rng.randrange(1, 8)
        d.invariant("p", a.expr.ult(threshold) | a.expr.uge(threshold))
        d.reach("target", a.expr.eq(threshold) & b.expr.eq(0))
        r_bdd = bdd_model_check(d, "target")
        r_bmc = verify(d, "target", BmcOptions(max_depth=25))
        if r_bdd.status == "cex":
            assert r_bmc.falsified
            assert r_bmc.depth == r_bdd.cex_depth  # both find shortest
        else:
            assert r_bdd.proved and r_bmc.proved
