"""Fault-injection recovery suite for the verification service.

Proves the service's fault-tolerance invariants under injected worker
failures (crash, hang, raised exception, slow-down, memory bloat):

* every planned job reaches exactly one terminal record;
* no orphaned worker processes remain after a run;
* final verdicts under faults are bit-identical to the fault-free run
  (faults fire on first attempts only, so retries converge).
"""

import multiprocessing
import os
import random
import signal
import threading
import time

import pytest

from repro.bmc import BmcOptions
from repro.bmc.results import DEGRADED
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.casestudies.stack_machine import (StackMachineParams,
                                             build_stack_machine)
from repro.service import (CANCELLED, FAILED, FaultInjected, FaultPlan,
                           FaultProbe, Injection, POINT_ENTER, POINT_EXIT,
                           POINT_SESSION, RETRY, RetryPolicy,
                           VerificationService)
from repro.service.supervisor import PoolSupervisor


def tiny_fifo():
    return build_fifo(FifoParams(addr_width=2, data_width=2))


def tiny_stack():
    return build_stack_machine(StackMachineParams(addr_width=2, data_width=2))


def tiny_soc():
    return build_multiport_soc(MultiportSocParams(
        addr_width=2, data_width=2, counter_width=3, num_properties=4))


BUILDERS = {"fifo": tiny_fifo, "stack": tiny_stack, "soc": tiny_soc}

FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.001,
                         backoff_cap_s=0.01)

TERMINAL = ("proof", "cex", "bounded", "timeout", DEGRADED, FAILED, CANCELLED)


def wait_no_children(timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def baseline(builder, opts):
    """Fault-free sequential verdicts to compare against."""
    return VerificationService(builder, opts).run()


def signature(results):
    """Verdict identity: status, depth, proof method, trace shape.

    Exact trace *contents* are model-dependent (a retry may solve on a
    session warmed by earlier attempts or sibling properties, and any
    satisfying assignment is a valid counterexample), so — like the
    shared-session parity suite — we pin everything the verdict claims:
    outcome, depth, method, validation, and trace length.
    """
    return {name: (r.status, r.depth, r.method, r.trace_validated,
                   None if r.trace is None else len(r.trace.cycles))
            for name, r in results.items()}


def assert_stream_invariants(records, jobs):
    """Exactly one terminal record per planned job; retries precede it."""
    per_job = {}
    for sr in records:
        per_job.setdefault((sr.property_name, sr.window), []).append(sr)
    assert set(per_job) == {(j.property_name, j.window) for j in jobs}
    for key, recs in per_job.items():
        terminal = [sr for sr in recs if sr.status in TERMINAL]
        assert len(terminal) == 1, (key, [sr.status for sr in recs])
        assert recs[-1] is terminal[0], key
        for sr in recs[:-1]:
            assert sr.status == RETRY, key


# ---------------------------------------------------------------------------
# FaultPlan mechanics (no processes).
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_injection_validation(self):
        with pytest.raises(ValueError):
            Injection("nonsense")
        with pytest.raises(ValueError):
            Injection("crash", point="worker.bogus")

    def test_scripted_matching(self):
        inj = Injection("raise", POINT_SESSION, prop="p", window=(0, 3))
        plan = FaultPlan(injections=(inj,))
        assert plan.pick(POINT_SESSION, "p", (0, 3), 1) is inj
        assert plan.pick(POINT_SESSION, "p", (0, 3), 2) is None  # attempt
        assert plan.pick(POINT_SESSION, "q", (0, 3), 1) is None  # prop
        assert plan.pick(POINT_SESSION, "p", (4, 7), 1) is None  # window
        assert plan.pick(POINT_ENTER, "p", (0, 3), 1) is None    # point

    def test_wildcards_match_everything(self):
        plan = FaultPlan(injections=(Injection("slow", POINT_ENTER),))
        assert plan.pick(POINT_ENTER, "anything", None, 1) is not None
        assert plan.pick(POINT_ENTER, "other", (2, 5), 1) is not None

    def test_random_mode_is_deterministic_and_attempt1_only(self):
        plan = FaultPlan(seed=7, rate=1.0)
        first = plan.pick(POINT_ENTER, "p", (0, 3), 1)
        assert first is not None
        again = plan.pick(POINT_ENTER, "p", (0, 3), 1)
        assert again is not None and again.kind == first.kind
        assert plan.pick(POINT_ENTER, "p", (0, 3), 2) is None

    def test_inline_softens_process_faults(self):
        plan = FaultPlan(injections=(Injection("crash", POINT_ENTER),))
        with pytest.raises(FaultInjected):
            plan.fire(POINT_ENTER, "p", None, 1, inline=True)
        plan2 = FaultPlan(injections=(Injection("hang", POINT_ENTER),))
        with pytest.raises(FaultInjected):
            plan2.fire(POINT_ENTER, "p", None, 1, inline=True)

    def test_membloat_returns_ballast(self):
        plan = FaultPlan(injections=(
            Injection("membloat", POINT_ENTER, param=1.0),))
        ballast = plan.fire(POINT_ENTER, "p", None, 1)
        assert isinstance(ballast, bytearray)
        assert len(ballast) == 1024 * 1024

    def test_probe_counts_planned_faults(self):
        plan = FaultPlan(seed=3, rate=0.5)
        svc = VerificationService(tiny_fifo, BmcOptions(max_depth=4),
                                  fault_plan=plan)
        probe = FaultProbe(plan)
        fired = probe.expected_faults(svc.plan())
        assert fired == probe.expected_faults(svc.plan())  # deterministic


# ---------------------------------------------------------------------------
# Inline path: raised faults retried under the same policy.
# ---------------------------------------------------------------------------


class TestInlineRecovery:
    def test_raise_fault_retried_verdicts_converge(self):
        opts = BmcOptions(max_depth=6)
        base = baseline(tiny_fifo, opts)
        plan = FaultPlan(injections=(Injection("raise", POINT_SESSION),))
        svc = VerificationService(tiny_fifo, opts, fault_plan=plan,
                                  retry=FAST_RETRY)
        records = list(svc.stream())
        assert_stream_invariants(records, svc.plan())
        retried = [sr for sr in records if sr.status == RETRY]
        assert retried and all(sr.failure == "error" for sr in retried)
        got = {sr.property_name: sr.result for sr in records
               if sr.result is not None}
        assert signature(got) == signature(base)
        assert all(sr.attempts == 2 for sr in records
                   if sr.result is not None)

    def test_exhausted_retries_yield_failed_then_degraded_verdict(self):
        opts = BmcOptions(max_depth=4)
        plan = FaultPlan(injections=(
            Injection("raise", POINT_ENTER, attempts=(1, 2, 3, 4, 5)),))
        svc = VerificationService(tiny_fifo, opts, fault_plan=plan,
                                  retry=RetryPolicy(max_retries=1,
                                                    backoff_base_s=0.001))
        records = list(svc.stream())
        finals = [sr for sr in records if sr.status in TERMINAL]
        assert finals and all(sr.status == FAILED for sr in finals)
        assert all(sr.failure == "error" and sr.attempts == 2
                   for sr in finals)
        results = svc.run()
        assert results
        for r in results.values():
            assert r.status == DEGRADED and r.depth == -1

    def test_exit_fault_after_result_is_still_a_fault(self):
        # A worker that blows up after computing its result never
        # returned it: the retry recomputes and the verdict survives.
        opts = BmcOptions(max_depth=6)
        base = baseline(tiny_fifo, opts)
        plan = FaultPlan(injections=(Injection("raise", POINT_EXIT),))
        svc = VerificationService(tiny_fifo, opts, fault_plan=plan,
                                  retry=FAST_RETRY)
        got = svc.run()
        assert signature(got) == signature(base)


# ---------------------------------------------------------------------------
# Pooled path: crashes, hangs, bloat — supervised recovery.
# ---------------------------------------------------------------------------


class TestPooledRecovery:
    @pytest.mark.parametrize("kind,point", [
        ("crash", POINT_ENTER),
        ("crash", POINT_SESSION),
        ("raise", POINT_SESSION),
        ("slow", POINT_ENTER),
        ("membloat", POINT_SESSION),
    ])
    def test_single_fault_recovers_with_identical_verdicts(self, kind, point):
        opts = BmcOptions(max_depth=6)
        base = baseline(tiny_fifo, opts)
        plan = FaultPlan(injections=(
            Injection(kind, point, prop="can_fill"),))
        with VerificationService(tiny_fifo, opts, jobs=2, fault_plan=plan,
                                 retry=FAST_RETRY) as svc:
            records = list(svc.stream())
            assert_stream_invariants(records, svc.plan())
            got = {sr.property_name: sr.result for sr in records
                   if sr.result is not None}
            assert signature(got) == signature(base)
        wait_no_children()

    def test_hang_detected_and_retried(self):
        opts = BmcOptions(max_depth=6)
        base = baseline(tiny_fifo, opts)
        plan = FaultPlan(injections=(
            Injection("hang", POINT_ENTER, prop="can_fill", param=60.0),))
        with VerificationService(tiny_fifo, opts, jobs=2, fault_plan=plan,
                                 retry=FAST_RETRY, job_timeout_s=1.0) as svc:
            t0 = time.monotonic()
            records = list(svc.stream())
            wall = time.monotonic() - t0
            assert wall < 30.0  # recovered, did not sit out the hang
            hangs = [sr for sr in records
                     if sr.status == RETRY and sr.failure == "hang"]
            assert hangs and hangs[0].property_name == "can_fill"
            got = {sr.property_name: sr.result for sr in records
                   if sr.result is not None}
            assert signature(got) == signature(base)
            assert svc._sup.rebuilds >= 1
        wait_no_children()

    def test_seeded_random_matrix_converges(self):
        opts = BmcOptions(max_depth=5)
        base = baseline(tiny_soc, opts)
        plan = FaultPlan(seed=11, rate=0.4)
        probe = FaultProbe(plan)
        with VerificationService(tiny_soc, opts, jobs=2, fault_plan=plan,
                                 retry=RetryPolicy(max_retries=3,
                                                   backoff_base_s=0.001,
                                                   backoff_cap_s=0.01),
                                 job_timeout_s=30.0) as svc:
            jobs = svc.plan()
            assert probe.expected_faults(jobs), "seed fired no faults"
            records = list(svc.stream())
            assert_stream_invariants(records, jobs)
            got = {sr.property_name: sr.result for sr in records
                   if sr.result is not None}
            assert signature(got) == signature(base)
        wait_no_children()


# ---------------------------------------------------------------------------
# External kill: a worker SIGKILLed mid-run (not via the fault plan).
# ---------------------------------------------------------------------------


class TestKillOneWorker:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_kill_one_worker_mid_run(self, name):
        builder = BUILDERS[name]
        opts = BmcOptions(max_depth=5)
        base = baseline(builder, opts)
        rng = random.Random({"fifo": 101, "stack": 202, "soc": 303}[name])

        def killer():
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                kids = multiprocessing.active_children()
                if kids:
                    victim = rng.choice(kids)
                    try:
                        os.kill(victim.pid, signal.SIGKILL)
                    except (ProcessLookupError, OSError):
                        pass
                    return
                time.sleep(0.01)

        with VerificationService(builder, opts, jobs=2,
                                 retry=FAST_RETRY) as svc:
            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            records = list(svc.stream())
            thread.join(timeout=10.0)
            assert_stream_invariants(records, svc.plan())
            got = {sr.property_name: sr.result for sr in records
                   if sr.result is not None}
            assert signature(got) == signature(base)
        wait_no_children()


# ---------------------------------------------------------------------------
# Supervisor unit behaviour (real pool, synthetic workloads).
# ---------------------------------------------------------------------------


def _flaky(job, attempt, fail_below):
    if attempt < fail_below:
        raise RuntimeError(f"transient #{attempt} for {job}")
    return ("ok", job, attempt)


class TestSupervisor:
    def _run(self, jobs, fail_below, max_retries):
        def submit(pool, job, attempt):
            return pool.submit(_flaky, job, attempt, fail_below)

        sup = PoolSupervisor(submit, max_workers=2,
                             retry=RetryPolicy(max_retries=max_retries,
                                               backoff_base_s=0.001,
                                               backoff_cap_s=0.01))
        try:
            return list(sup.run(jobs))
        finally:
            sup.close()

    def test_transient_errors_heal(self):
        events = self._run(["a", "b"], fail_below=3, max_retries=3)
        outcomes = [e for e in events if hasattr(e, "result")]
        assert {(e.job, e.attempts) for e in outcomes} == \
               {("a", 3), ("b", 3)}
        assert all(e.result == ("ok", e.job, 3) for e in outcomes)
        retries = [e for e in events if not hasattr(e, "result")]
        assert len(retries) == 4
        assert all(e.failure == "error" for e in retries)

    def test_exhaustion_is_terminal_with_attribution(self):
        events = self._run(["a"], fail_below=99, max_retries=1)
        outcomes = [e for e in events if hasattr(e, "result")]
        assert len(outcomes) == 1
        assert outcomes[0].result is None
        assert outcomes[0].failure == "error"
        assert outcomes[0].attempts == 2
        assert outcomes[0].failures == ["error", "error"]

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_retries=5, backoff_base_s=0.1,
                             backoff_cap_s=0.3, jitter=0.25)
        d1 = policy.delay_s(1, ("p", None))
        assert d1 == policy.delay_s(1, ("p", None))
        assert d1 != policy.delay_s(1, ("q", None))  # per-job jitter
        assert policy.delay_s(9, ("p", None)) <= 0.3 * 1.25
        assert policy.delay_s(2, ("p", None)) > policy.delay_s(1, ("p", None))
