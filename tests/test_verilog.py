"""Verilog export: structural and syntactic checks."""

import io
import re

import pytest

from repro.casestudies import build_fifo, build_quicksort
from repro.casestudies.fifo import FifoParams
from repro.casestudies.quicksort import QuicksortParams
from repro.design import Design
from repro.design.verilog import write_verilog


def export(design) -> str:
    buf = io.StringIO()
    write_verilog(buf, design)
    return buf.getvalue()


def small_design():
    d = Design("demo")
    x = d.input("x", 4)
    c = d.latch("c", 4, init=3)
    c.next = c.expr + x
    mem = d.memory("m", 2, 4, init=0)
    mem.write(0).connect(addr=c.expr[0:2], data=x, en=x.ne(0))
    rd = mem.read(0).connect(addr=d.input("ra", 2), en=1)
    d.invariant("p", rd.ule(15))
    d.reach("t", rd.eq(5))
    return d


class TestStructure:
    def test_module_header_and_ports(self):
        text = export(small_design())
        assert text.startswith("// generated from design")
        assert "module demo (" in text
        assert "input clk;" in text and "input rst;" in text
        assert "input [3:0] x;" in text
        assert "input [1:0] ra;" in text
        assert "output prop_p;" in text
        assert "output prop_t;" in text
        assert text.rstrip().endswith("endmodule")

    def test_registers_and_memories_declared(self):
        text = export(small_design())
        assert "reg [3:0] c;" in text
        assert "reg [3:0] m [0:3];" in text

    def test_reset_values(self):
        text = export(small_design())
        assert "c <= 4'd3;" in text

    def test_arbitrary_init_latch_unreset(self):
        d = Design("arb")
        lit = d.latch("l", 2, init=None)
        lit.next = lit.expr
        d.invariant("p", lit.expr.ule(3))
        text = export(d)
        reset_block = text.split("if (rst) begin")[1].split("end else")[0]
        assert "l <=" not in reset_block

    def test_write_port_guard(self):
        text = export(small_design())
        assert re.search(r"if \(w\d+\) m\[w\d+\] <= x;", text)

    def test_read_enable_gating(self):
        text = export(small_design())
        assert re.search(r"wire \[3:0\] m_rd0 = .* \? m\[ra\] : 4'd0;", text)

    def test_formal_block(self):
        text = export(small_design())
        assert "`ifdef FORMAL" in text
        assert "assert (prop_p);" in text
        assert "cover (prop_t);" in text

    def test_single_bit_signals_have_no_range(self):
        d = Design("bit")
        b = d.input("b", 1)
        lit = d.latch("l", 1, init=0)
        lit.next = b
        d.invariant("p", lit.expr.eq(0) | lit.expr.eq(1))
        text = export(d)
        assert "input b;" in text
        assert "reg l;" in text


class TestOperators:
    def test_all_operator_spellings(self):
        d = Design("ops")
        a = d.input("a", 4)
        b = d.input("b", 4)
        lit = d.latch("l", 4, init=0)
        lit.next = (a + b) ^ (a - b) | (~a & b)
        d.invariant("cmp", a.ult(b) | a.eq(b) | b.ult(a))
        d.invariant("mux", a[0].ite(a, b).eq(a) | a[0].eq(0))
        d.invariant("cat", a[0:2].concat(b[2:4]).ule(15))
        d.invariant("ext", a.zext(8).ule(255))
        text = export(d)
        for op in (" + ", " - ", " ^ ", " | ", " & ", "~", " == ", " < ",
                   " ? ", "{", "}"):
            assert op in text, f"missing {op!r}"

    def test_name_sanitisation(self):
        d = Design("bad name!")
        lit = d.latch("weird.sig", 1, init=0)
        lit.next = lit.expr
        d.invariant("p", lit.expr.eq(0))
        text = export(d)
        assert "module bad_name_ (" in text
        assert "reg weird_sig;" in text


class TestCaseStudies:
    @pytest.mark.parametrize("builder,params", [
        (build_fifo, FifoParams(addr_width=2, data_width=4)),
        (build_quicksort, QuicksortParams(n=2, addr_width=3, data_width=3,
                                          stack_addr_width=3)),
    ])
    def test_case_studies_export(self, builder, params):
        text = export(builder(params))
        assert "endmodule" in text
        # balanced begin/end pairs (word tokens, not substrings)
        begins = len(re.findall(r"\bbegin\b", text))
        ends = len(re.findall(r"\bend\b", text))
        assert begins == ends

    def test_quicksort_memories_present(self):
        text = export(build_quicksort(QuicksortParams(
            n=2, addr_width=3, data_width=3, stack_addr_width=3)))
        assert "reg [2:0] arr [0:7];" in text
        assert re.search(r"reg \[8:0\] stack_? \[0:7\];", text)
