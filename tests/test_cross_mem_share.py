"""Cross-memory comparator sharing (``BmcOptions.emm_cross_mem_share``).

The session-scoped :class:`repro.emm.addrcmp.SharedComparatorTables`
registry lets two memories whose address cones lower to the same SAT
literals share one comparator encoding.  Soundness rests on per-clause
multi-labels: a hit joins the calling memory's label onto the entry's
clauses, so an unsat core through a shared comparator names *both*
memories.  These tests pin the registry mechanics, the label joining,
the PBA attribution end to end, and the booking-class isolation of the
race monitor.
"""

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc import BmcOptions, verify
from repro.bmc.engine import BmcEngine
from repro.design import Design
from repro.emm import AddrComparator, EmmCounters, SharedComparatorTables
from repro.sat import Solver


def two_mem_design(same_cones=True, init=0):
    """Two memories read/written through shared input-driven cones.

    With ``same_cones`` both memories compare the *same* (waddr, raddr)
    literal tuples, so a session registry answers the second memory's
    comparators from the first's cache entries.  ``init=None`` gives
    both memories arbitrary initial state, which is what puts CNF-side
    eq-(6) comparators on the gate encoding's path.
    """
    d = Design("two")
    ra = d.input("ra", 3)
    wa = d.input("wa", 3)
    wd = d.input("wd", 4)
    we = d.input("we", 1)
    outs = []
    for name in ("ma", "mb"):
        mem = d.memory(name, addr_width=3, data_width=4, init=init)
        mem.write(0).connect(addr=wa, data=wd, en=we)
        rd = mem.read(0).connect(addr=ra if same_cones else wa, en=1)
        out = d.latch(f"o_{name}", 4, init=0)
        out.next = rd
        outs.append(out.expr)
    d.invariant("agree", outs[0].eq(outs[1]))
    d.reach("differ", ~outs[0].eq(outs[1]))
    return d


def fresh_cmp_pair(registry, **kw):
    """Two comparators for different memories over one solver/registry."""
    solver = Solver()
    em = CnfEmitter(solver, Aig())
    ca, cb = EmmCounters(), EmmCounters()
    a = AddrComparator(solver, em, registry=registry, owner="ma", **kw)
    b = AddrComparator(solver, em, registry=registry, owner="mb", **kw)
    return solver, a, b, ca, cb


def word(solver, m):
    return [solver.new_var() for _ in range(m)]


class TestRegistry:
    def test_cross_memory_hit_returns_same_literal(self):
        reg = SharedComparatorTables()
        solver, a, b, ca, cb = fresh_cmp_pair(reg)
        x, y = word(solver, 3), word(solver, 3)
        ea = a.eq(x, y, ("emm", "ma", "addr_eq"), ca, "addr_eq_clauses")
        eb = b.eq(x, y, ("emm", "mb", "addr_eq"), cb, "addr_eq_clauses")
        assert ea == eb
        assert cb.addr_eq_cache_hits == 1 and cb.addr_eq_clauses == 0
        assert cb.cross_mem_cmp_hits == 1
        assert ca.cross_mem_cmp_hits == 0
        assert reg.cross_mem_hits == 1

    def test_same_memory_hit_not_counted_cross(self):
        reg = SharedComparatorTables()
        solver, a, __, ca, __cb = fresh_cmp_pair(reg)
        x, y = word(solver, 3), word(solver, 3)
        a.eq(x, y, ("emm", "ma", "addr_eq"), ca, "addr_eq_clauses")
        a.eq(x, y, ("emm", "ma", "addr_eq"), ca, "addr_eq_clauses")
        assert ca.addr_eq_cache_hits == 1
        assert ca.cross_mem_cmp_hits == 0
        assert reg.cross_mem_hits == 0

    def test_hit_joins_label_onto_clauses(self):
        """Force the shared comparator into an unsat core: it must carry
        both memories' labels after the second consumer's hit."""
        reg = SharedComparatorTables()
        solver, a, b, ca, cb = fresh_cmp_pair(reg)
        x, y = word(solver, 2), word(solver, 2)
        e = a.eq(x, y, ("emm", "ma", "addr_eq"), ca, "addr_eq_clauses")
        b.eq(x, y, ("emm", "mb", "addr_eq"), cb, "addr_eq_clauses")
        # E asserted with unequal words: UNSAT through comparator clauses.
        solver.add_clause([x[0]], ("pin",))
        solver.add_clause([-y[0]], ("pin",))
        assert not solver.solve(assumptions=[e]).sat
        labels = solver.core_labels()
        assert ("emm", "ma", "addr_eq") in labels
        assert ("emm", "mb", "addr_eq") in labels
        assert solver.core_unlabeled_count() == 0

    def test_booking_classes_isolated(self):
        """Race-class comparators never see forwarding-class entries."""
        reg = SharedComparatorTables()
        solver = Solver()
        em = CnfEmitter(solver, Aig())
        c = EmmCounters()
        fwd = AddrComparator(solver, em, registry=reg, owner="ma")
        race = AddrComparator(solver, em, registry=reg, owner="ma",
                              hit_counter="race_addr_eq_cache_hits",
                              fold_counter="race_addr_eq_folded")
        x, y = word(solver, 3), word(solver, 3)
        fwd.eq(x, y, ("emm", "ma", "addr_eq"), c, "addr_eq_clauses")
        race.eq(x, y, ("emm", "ma", "race"), c, "race_addr_eq_clauses")
        # Second encoding, not a hit: the tables are per booking class.
        assert c.addr_eq_cache_hits == 0
        assert c.race_addr_eq_cache_hits == 0
        assert c.race_addr_eq_clauses > 0
        assert fwd.size == 1 and race.size == 1

    def test_no_registry_keeps_per_memory_scope(self):
        solver, a, b, ca, cb = fresh_cmp_pair(None)
        x, y = word(solver, 3), word(solver, 3)
        a.eq(x, y, ("emm", "ma", "addr_eq"), ca, "addr_eq_clauses")
        b.eq(x, y, ("emm", "mb", "addr_eq"), cb, "addr_eq_clauses")
        assert cb.addr_eq_cache_hits == 0  # re-encoded, private table
        assert cb.addr_eq_clauses > 0
        assert cb.cross_mem_cmp_hits == 0


class TestEndToEnd:
    # The gate encoding's AIG side already strash-shares across
    # memories; its CNF comparators only appear on eq-(6) paths, so it
    # is exercised with arbitrary-init memories (symbolic init).
    @pytest.mark.parametrize("encoding,init", [("hybrid", 0),
                                               ("hybrid", None),
                                               ("gates", None)])
    def test_sharing_shrinks_the_encoding(self, encoding, init):
        d = two_mem_design(init=init)
        sizes, statuses = {}, {}
        for share in (True, False):
            r = verify(d, "agree",
                       BmcOptions(max_depth=6, find_proof=(init is None),
                                  emm_encoding=encoding,
                                  emm_cross_mem_share=share))
            sizes[share] = r.stats.sat_clauses + r.stats.sat_vars
            statuses[share] = (r.status, r.depth)
            if share:
                assert r.stats.cross_mem_cmp_hits > 0
            else:
                assert r.stats.cross_mem_cmp_hits == 0
        assert statuses[True] == statuses[False]
        assert sizes[True] < sizes[False]

    def test_verdict_and_trace_parity(self):
        d = two_mem_design(same_cones=False)
        results = [verify(d, "differ",
                          BmcOptions(max_depth=6, emm_cross_mem_share=s))
                   for s in (True, False)]
        on, off = results
        assert on.status == off.status
        assert on.depth == off.depth
        assert on.trace_validated == off.trace_validated

    def test_pba_core_names_both_memories(self):
        """The headline regression: a PBA core through a comparator both
        memories share must attribute it to both — under per-memory
        scoping it trivially did, under cross-memory sharing only the
        label joining makes it so."""
        d = two_mem_design()
        for share in (True, False):
            opts = BmcOptions(max_depth=6, pba=True, find_proof=False,
                              emm_cross_mem_share=share)
            eng = BmcEngine(d, "agree", opts)
            r = eng.run()
            assert r.status == "bounded"
            assert r.memory_reasons, (share, "no PBA reasons collected")
            assert r.memory_reasons[-1] == frozenset({"ma", "mb"}), share
            assert r.stats.core_unlabeled == 0

    def test_encoding_key_distinguishes_share(self):
        on = BmcOptions(emm_cross_mem_share=True)
        off = BmcOptions(emm_cross_mem_share=False)
        assert on.encoding_key() != off.encoding_key()

    def test_session_registry_gated_on_dedup(self):
        from repro.bmc.session import EncodingSession

        d = two_mem_design()
        with_dedup = EncodingSession(d, BmcOptions())
        no_dedup = EncodingSession(d, BmcOptions(emm_addr_dedup=False))
        no_share = EncodingSession(d, BmcOptions(emm_cross_mem_share=False))
        assert with_dedup.cmp_registry is not None
        assert no_dedup.cmp_registry is None
        assert no_share.cmp_registry is None
