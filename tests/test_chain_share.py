"""Cross-frame chain-suffix sharing + incremental equation (6).

``BmcOptions.emm_chain_share`` (on by default) must be invisible to every
observable verification outcome while shrinking the encoding: the gate
EMM priority chain is rebuilt oldest-write-first as a mux chain (frame
k's chain becomes a strash prefix of frame k+1's for recurring address
cones), equation-(6) pairs whose comparator folds FALSE are pruned, and
fall-through reads whose comparator folds TRUE are merged into the
existing record.  Randomized designs — multi-write-port, known-init,
symbolic-init and shared-init-group — are run through full BMC
(induction + PBA) with chain share on and off, and statuses, depths,
trace validity and the PBA latch/memory reason sets must coincide.  A
pinned-stimulus differential checks the mux chain's write priority
bit-for-bit against the reference simulator, and a hypothesis fuzz does
the same for the eq-(6) pruning in both encoders.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig import Aig, CnfEmitter
from repro.bmc import BmcOptions, bmc3, verify
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, InitReadRegistry, accounting
from repro.emm.gates import GateEmmMemory
from repro.sat import Solver
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Randomized cross-check: chain share on/off must verify identically.
# ---------------------------------------------------------------------------


def random_chain_design(rng: random.Random):
    """Random multi-port single-memory design with recurring addresses.

    Covers the paths the chain-share pass touches: up to three write
    ports (disjoint address parities, so the no-race assumption holds),
    known-init and symbolic-init memories, and address cones drawn from
    a pool of constants, a shared input and a walking latch so both the
    suffix sharing and the eq-(6) merge/prune logic actually fire.
    """
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3])
    w_ports = rng.choice([1, 2, 3])
    r_ports = rng.choice([2, 3])
    init = rng.choice([0, None, 3])
    d = Design("rand")
    t = d.latch("t", aw, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init)
    shared = d.input("sa", aw)
    addr_pool = [lambda: d.const(rng.randrange(1 << aw), aw),
                 lambda: shared,
                 lambda: t.expr]
    for w in range(w_ports):
        en = d.input(f"we{w}", 1)
        if w_ports > 1:
            # Ports write disjoint address parities: the EMM semantics
            # assume same-cycle same-address write races are absent.  A
            # third port shares port 0's parity, so it never fires — it
            # still exercises the three-port chain structure.
            addr = d.input(f"wa{w}", aw)
            en = en & addr[0].eq(w & 1)
            if w == 2:
                en = en & d.const(0, 1)
        else:
            addr = rng.choice(addr_pool)()
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    for r in range(r_ports):
        mem.read(r).connect(addr=rng.choice(addr_pool)(), en=1)
    target = rng.randrange(1 << dw)
    d.reach("hit", mem.read(0).data.eq(target))
    return d, "hit"


def assert_observable_parity(on, off, ctx):
    assert on.status == off.status, (ctx, on.status, off.status)
    assert on.depth == off.depth, ctx
    assert on.method == off.method, ctx
    assert on.trace_validated == off.trace_validated, ctx
    if on.trace is not None:
        assert on.trace_validated is True  # both replay on the simulator
    assert on.latch_reasons == off.latch_reasons, ctx
    assert on.memory_reasons == off.memory_reasons, ctx


@pytest.mark.parametrize("seed", range(8))
def test_chain_share_is_invisible_to_gate_verification(seed):
    """Gate encoding: verdicts, traces and PBA reasons match on/off."""
    rng = random.Random(seed)
    design, prop = random_chain_design(rng)
    results = {}
    for share in (True, False):
        results[share] = verify(
            design, prop,
            bmc3(max_depth=4, emm_encoding="gates", emm_chain_share=share))
    assert_observable_parity(results[True], results[False], seed)
    assert results[False].stats.emm_chain_suffix_hits == 0
    assert results[False].stats.emm_init_pairs_pruned == 0
    assert results[False].stats.emm_init_records_merged == 0


@pytest.mark.parametrize("seed", [0, 2, 5, 7])
def test_chain_share_is_invisible_to_hybrid_verification(seed):
    """Hybrid encoding: the eq-(6) merge/prune pass preserves verdicts."""
    rng = random.Random(seed)
    design, prop = random_chain_design(rng)
    on = verify(design, prop, bmc3(max_depth=4, emm_chain_share=True))
    off = verify(design, prop, bmc3(max_depth=4, emm_chain_share=False))
    assert_observable_parity(on, off, seed)
    # Once merging actually fires, the savings (a symbolic word, its
    # pins and its quadratic pair share per merged read) dwarf the
    # one-var-per-record guard overhead.  (At trivial depths the guard
    # overhead can exceed the savings, so size is only asserted here.)
    if on.stats.emm_init_records_merged > 2:
        assert on.stats.emm_clauses < off.stats.emm_clauses
        assert on.stats.emm_vars <= off.stats.emm_vars


# ---------------------------------------------------------------------------
# Shared-init groups: merging across memory copies (the miter case).
# ---------------------------------------------------------------------------


def shared_init_pair_design(aw=2, dw=2):
    """Two arbitrary-init memories declared to share initial contents.

    Both copies see identical write traffic and read the same constant
    address, so ``rd1 == rd2`` is invariant — but proving it by
    induction *requires* the cross-memory equation-(6) machinery: with
    separate registries the two initial words are unrelated.
    """
    d = Design("pair")
    wa = d.input("wa", aw)
    wd = d.input("wd", dw)
    we = d.input("we", 1)
    m1 = d.memory("m1", aw, dw, init=None)
    m2 = d.memory("m2", aw, dw, init=None)
    m1.write(0).connect(addr=wa, data=wd, en=we)
    m2.write(0).connect(addr=wa, data=wd, en=we)
    rd1 = m1.read(0).connect(addr=d.const(1, aw), en=1)
    rd2 = m2.read(0).connect(addr=d.const(1, aw), en=1)
    d.invariant("same", rd1.eq(rd2))
    return d


@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
def test_shared_init_group_parity_and_merging(encoding):
    design = shared_init_pair_design()
    group = (frozenset({"m1", "m2"}),)
    results = {}
    for share in (True, False):
        results[share] = verify(design, "same", bmc3(
            max_depth=8, pba=False, emm_encoding=encoding,
            shared_init_memories=group, emm_chain_share=share))
    on, off = results[True], results[False]
    assert on.proved and off.proved, (encoding, on.describe(), off.describe())
    assert on.depth == off.depth
    assert on.method == off.method
    # Both memories read one shared address cone: every fall-through
    # read after the first merges — across memory copies.
    assert on.stats.emm_init_records_merged > 0
    assert off.stats.emm_init_records_merged == 0


def test_shared_init_group_still_required():
    """Without the shared group the invariant must stay unproved —
    merging never relates records living in separate registries."""
    r = verify(shared_init_pair_design(), "same",
               bmc3(max_depth=6, pba=False, emm_chain_share=True))
    assert not r.proved


@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
def test_shared_init_group_with_conflicting_overrides(encoding):
    """Grouped memories may declare *different* ``init_words`` (grouping
    only checks ``init is None``).  Merging across them would let one
    copy inherit the other's a_meminit pins and silently drop its own —
    the declared-init signature in the merge key forbids exactly that,
    so the A/B stays verdict-identical: both modes find the conflicting
    pins make a_meminit unsatisfiable (no cex, vacuously)."""
    d = Design("conflict")
    wa = d.input("wa", 2)
    wd = d.input("wd", 2)
    we = d.input("we", 1)
    m1 = d.memory("m1", 2, 2, init=None, init_words={1: 2})
    m2 = d.memory("m2", 2, 2, init=None, init_words={1: 1})
    m1.write(0).connect(addr=wa, data=wd, en=we)
    m2.write(0).connect(addr=wa, data=wd, en=we)
    rd2 = m2.read(0).connect(addr=d.const(1, 2), en=1)
    m1.read(0).connect(addr=d.const(1, 2), en=1)
    # False under m2's own declared init — but the conflicting pins of
    # the (contradictory) group declaration make a_meminit UNSAT, so the
    # baseline reports no cex; a cross-memory merge would instead read
    # m1's value through the shared word and fabricate a cex.
    d.invariant("rd2_is_1", rd2.eq(1))
    group = (frozenset({"m1", "m2"}),)
    results = {}
    for share in (True, False):
        results[share] = verify(d, "rd2_is_1", bmc3(
            max_depth=6, pba=False, emm_encoding=encoding,
            shared_init_memories=group, emm_chain_share=share))
    on, off = results[True], results[False]
    assert on.status == off.status, (on.describe(), off.describe())
    assert on.depth == off.depth
    assert not on.falsified


# ---------------------------------------------------------------------------
# Chain ordering: bit-for-bit differential against the simulator.
# ---------------------------------------------------------------------------


def multiport_design(aw, dw, n_write, init=0, init_words=None):
    d = Design("mw")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=2, write_ports=n_write,
                   init=init, init_words=init_words or {})
    for w in range(n_write):
        en = d.input(f"we{w}", 1)
        addr = d.input(f"wa{w}", aw)
        guard = addr[0].eq(w & 1) if n_write > 1 else d.const(1, 1)
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw),
                             en=en & guard)
    mem.read(0).connect(addr=d.input("ra", aw), en=1)
    mem.read(1).connect(addr=d.const(1, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def solve_gates_pinned(design, depth, stimulus, chain_share):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(design, emitter)
    emm = GateEmmMemory(solver, un, "m", chain_share=chain_share)
    for k in range(depth + 1):
        un.add_frame()
        emm.add_frame(k)
    assumptions = []
    for k, vec in enumerate(stimulus):
        for name, value in vec.items():
            for i, bit in enumerate(un.input_word(name, k)):
                lit = emitter.sat_lit(bit)
                assumptions.append(lit if (value >> i) & 1 else -lit)
    for bit in un.latch_word("t", 0):
        assumptions.append(-emitter.sat_lit(bit))
    assert solver.solve(assumptions).sat
    reads = {}
    for port in range(2):
        for k in range(depth + 1):
            got = 0
            for i, bit in enumerate(un.rd_word("m", port, k)):
                var = emitter.var_for(bit)
                if var is not None and solver.model_value(var):
                    got |= 1 << i
            reads[(port, k)] = got
    return reads


@pytest.mark.parametrize("seed", range(5))
def test_mux_chain_priority_matches_simulator(seed):
    """Newest matching write must win under the oldest-first mux chain,
    on multi-write-port traffic, in both chain modes, per bit."""
    rng = random.Random(seed)
    aw, dw = 2, 3
    n_write = rng.choice([1, 2])
    init_words = {1: 5} if seed % 2 else None
    design = multiport_design(aw, dw, n_write, init=rng.choice([0, 6]),
                              init_words=init_words)
    depth = 4
    stimulus = []
    for __ in range(depth + 1):
        vec = {"ra": rng.randrange(1 << aw)}
        for w in range(n_write):
            vec[f"wa{w}"] = rng.randrange(1 << aw)
            vec[f"wd{w}"] = rng.randrange(1 << dw)
            vec[f"we{w}"] = rng.randrange(2)
        stimulus.append(vec)
    runs = {share: solve_gates_pinned(design, depth, stimulus, share)
            for share in (True, False)}
    assert runs[True] == runs[False]
    sim = Simulator(design)
    for k in range(depth + 1):
        sim.begin_cycle(stimulus[k])
        for port in range(2):
            expected = sim.eval(design.memories["m"].read(port).data)
            assert runs[True][(port, k)] == expected, (seed, port, k, stimulus)
        sim.commit_cycle()


def test_repeated_write_priority_deterministic():
    """Two writes to the same address at different frames: the read must
    return the newer one even though the mux chain applies it last."""
    d = multiport_design(2, 3, 1)
    stim = [
        {"ra": 2, "wa0": 2, "wd0": 3, "we0": 1},   # frame 0: write 3
        {"ra": 2, "wa0": 2, "wd0": 6, "we0": 1},   # frame 1: overwrite 6
        {"ra": 2, "wa0": 0, "wd0": 1, "we0": 0},   # frame 2: read back
    ]
    reads = solve_gates_pinned(d, 2, stim, chain_share=True)
    assert reads[(0, 1)] == 3   # reads see pre-cycle contents
    assert reads[(0, 2)] == 6   # newest write wins


# ---------------------------------------------------------------------------
# Hypothesis fuzz: eq-(6) pruning/merging in both encoders.
# ---------------------------------------------------------------------------


@st.composite
def const_read_workloads(draw):
    aw = draw(st.integers(1, 2))
    dw = draw(st.integers(1, 2))
    depth = draw(st.integers(1, 3))
    addrs = draw(st.lists(st.integers(0, (1 << aw) - 1), min_size=2,
                          max_size=3))
    target = draw(st.integers(0, (1 << dw) - 1))
    return aw, dw, depth, addrs, target


def build_const_reads(aw, dw, addrs):
    d = Design("cr")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=len(addrs), write_ports=1,
                   init=None)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    for r, a in enumerate(addrs):
        mem.read(r).connect(addr=d.const(a, aw), en=1)
    return d


@settings(max_examples=25, deadline=None)
@given(const_read_workloads())
def test_eq6_pruning_fuzz_both_encoders(workload):
    """Constant-address reads: the pruned/merged eq-(6) pass must agree
    with the all-pairs baseline on verdicts in both encoders, prune
    every distinct-address pair and merge every repeated read."""
    aw, dw, depth, addrs, target = workload
    design = build_const_reads(aw, dw, addrs)
    design.reach("hit", design.memories["m"].read(0).data.eq(target))
    distinct = sorted(set(addrs))
    for encoding in ("hybrid", "gates"):
        results = {}
        for share in (True, False):
            results[share] = verify(design, "hit", bmc3(
                max_depth=depth, pba=False, emm_encoding=encoding,
                emm_chain_share=share))
        on, off = results[True], results[False]
        assert on.status == off.status, (encoding, workload)
        assert on.depth == off.depth
        assert on.method == off.method
        s = on.stats
        # Every read after the per-address first merges; surviving
        # records are one per distinct address, so the emitted pairs are
        # exactly the distinct-address cross pairs — all folded FALSE
        # and pruned.
        n_frames = on.depth + 1
        expected_merged = n_frames * len(addrs) - len(distinct)
        assert s.emm_init_records_merged == expected_merged, (encoding, workload)
        assert s.emm_init_pairs_pruned == \
            len(distinct) * (len(distinct) - 1) // 2
        assert off.stats.emm_init_records_merged == 0
        assert off.stats.emm_init_pairs_pruned == 0


# ---------------------------------------------------------------------------
# Accounting: suffix hits, plateau, per-frame snapshots, closed forms.
# ---------------------------------------------------------------------------


def build_const_pair(aw=4, dw=4):
    """The constant-address variant of the recurring C2 workload."""
    d = Design("constvar")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=2, write_ports=1, init=None)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=d.const(2, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def run_gate_frames(design, depth, **kw):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = GateEmmMemory(solver, unroller, "m", **kw)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return solver, emm


class TestSuffixSharingAccounting:
    def test_per_frame_gates_plateau_on_const_addresses(self):
        """After warmup the suffix-shared chain adds a *constant* number
        of new gates per frame; the latest-first baseline grows linearly."""
        depth = 10
        __, on = run_gate_frames(build_const_pair(), depth, chain_share=True)
        __, off = run_gate_frames(build_const_pair(), depth,
                                  chain_share=False)
        gates_on = [f["gates"] for f in on.counters.per_frame]
        gates_off = [f["gates"] for f in off.counters.per_frame]
        plateau = set(gates_on[3:])
        assert len(plateau) == 1, gates_on
        assert plateau.pop() <= accounting.suffix_shared_frame_gates(4, 4) \
            + accounting.addr_eq_clauses_full(4)
        # Baseline: strictly increasing per-frame cost (the rebuild).
        assert all(b > a for a, b in zip(gates_off[2:], gates_off[3:]))
        assert on.counters.chain_suffix_hits > 0
        assert off.counters.chain_suffix_hits == 0
        assert sum(gates_on) < sum(gates_off)
        assert on.counters.init_pairs_pruned == 1  # addr-1 vs addr-2 record
        assert on.counters.init_records_merged == 2 * depth

    def test_mux_chain_upper_bound_holds(self):
        """Unshared chains stay within the closed-form gate bound."""
        depth = 6
        d = Design("fresh")
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", 3, 4, read_ports=1, write_ports=2, init=0)
        for w in range(2):
            mem.write(w).connect(addr=d.input(f"wa{w}", 3),
                                 data=d.input(f"wd{w}", 4),
                                 en=d.input(f"we{w}", 1))
        mem.read(0).connect(addr=d.input("ra", 3), en=d.input("re", 1))
        d.invariant("p", mem.read(0).data.ule(15))
        __, emm = run_gate_frames(d, depth, chain_share=True)
        chain_bound = sum(
            accounting.mux_chain_gates_per_read_port(k, 2, 4)
            for k in range(depth + 1))
        comparator_bound = sum(
            accounting.addr_eq_clauses_full(3) * 2 * k
            for k in range(depth + 1))
        assert emm.counters.excl_gates <= chain_bound + comparator_bound

    def test_hybrid_per_frame_matches_gate_keys(self):
        """Satellite: both encoders snapshot comparable per-frame growth."""
        design = build_const_pair(3, 3)
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(design, emitter)
        emm = EmmMemory(solver, unroller, "m")
        for k in range(4):
            unroller.add_frame()
            emm.add_frame(k)
        __, gate = run_gate_frames(build_const_pair(3, 3), 3,
                                   chain_share=True)
        for frames in (emm.counters.per_frame, gate.counters.per_frame):
            assert len(frames) == 4
            for frame in frames:
                assert "gates" in frame and "clauses" in frame
                assert frame["gates"] == frame["excl_gates"]
                assert frame["clauses"] >= 0
        # The hybrid aggregates reconcile with the totals.
        c = emm.counters
        assert sum(f["clauses"] for f in c.per_frame) == c.total_clauses
        assert sum(f["gates"] for f in c.per_frame) == c.total_gates

    def test_gate_total_clauses_not_double_counted(self):
        """The blanket CNF delta must exclude init-booked clauses: the
        totals reconcile with the clauses the EMM frames really added to
        the solver (the pre-existing double-booking of pin/consistency
        clauses into ``rd_clauses`` is fixed)."""
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(build_const_pair(3, 3), emitter)
        emm = GateEmmMemory(solver, unroller, "m", chain_share=True)
        emm_added = 0
        for k in range(6):
            unroller.add_frame()
            before = solver.num_clauses
            emm.add_frame(k)
            emm_added += solver.num_clauses - before
        c = emm.counters
        assert c.total_clauses == emm_added + c.absorbed

    def test_engine_surfaces_chain_counters(self):
        r = verify(build_const_pair(3, 3), "p",
                   BmcOptions(find_proof=False, max_depth=5,
                              emm_encoding="gates"))
        assert r.status == "bounded" and r.depth == 5
        assert r.stats.emm_chain_suffix_hits > 0
        assert r.stats.emm_init_records_merged > 0
        assert r.stats.emm_init_pairs_pruned > 0

    def test_chain_share_off_reproduces_latest_first_counts(self):
        """chain_share=False must be bit-identical to the PR-2 encoder:
        same gates, clauses and variables on a recurring workload."""
        design = build_const_pair()
        s_off, off = run_gate_frames(design, 6, chain_share=False)
        assert off.counters.chain_suffix_hits == 0
        assert off.counters.init_records_merged == 0
        assert off.counters.init_guard_clauses == 0
        # Guard vars only exist with merging on.
        s_on, on = run_gate_frames(design, 6, chain_share=True)
        assert on.counters.init_guard_clauses > 0
        assert s_on.num_vars < s_off.num_vars
        assert s_on.num_clauses < s_off.num_clauses


class TestInitReadRegistry:
    def test_first_record_wins_merge_index(self):
        from repro.emm.forwarding import _ReadRecord
        reg = InitReadRegistry()
        r1 = _ReadRecord(0, 0, [3, 4], 7, [10, 11])
        r2 = _ReadRecord(1, 0, [3, 4], 8, [12, 13])
        assert reg.find_mergeable([3, 4]) is None
        reg.add(r1, index=True)
        assert reg.find_mergeable([3, 4]) is r1
        reg.add(r2, index=True)  # same key: first registration sticks
        assert reg.find_mergeable([3, 4]) is r1
        assert len(reg) == 2

    def test_unindexed_records_never_merge(self):
        from repro.emm.forwarding import _ReadRecord
        reg = InitReadRegistry()
        reg.add(_ReadRecord(0, 0, [5], 2, [9]), index=False)
        assert reg.find_mergeable([5]) is None
        assert len(reg) == 1

    def test_guard_defaults_to_n_lit(self):
        from repro.emm.forwarding import _ReadRecord
        rec = _ReadRecord(0, 0, [5], 2, [9])
        assert rec.guard_lit == 2
        rec2 = _ReadRecord(0, 0, [5], 2, [9], guard_lit=42)
        assert rec2.guard_lit == 42
