"""Dedicated unit tests for ``bmc/diameter.py`` and ``bmc/induction.py``.

Both modules were previously exercised only through the engine's
end-to-end flows; these tests pin their behaviour directly — the
loop-free-path constraint counts and satisfiability semantics of
:class:`~repro.bmc.induction.LoopFreeConstraints` on designs with a
known state graph, and the longest-shortest-path cutoff / option
handling of :func:`~repro.bmc.diameter.forward_recurrence_diameter`.
"""

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc.diameter import forward_recurrence_diameter
from repro.bmc.engine import BmcOptions
from repro.bmc.induction import LoopFreeConstraints
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.sat import Solver


def counter_design(width=2, step=1):
    d = Design(f"cnt{width}s{step}")
    c = d.latch("c", width, init=0)
    c.next = c.expr + step
    d.invariant("p", d.const(1, 1))
    return d


def lfp_setup(design, kept_latches=None):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter, kept_latches)
    a_lfp = solver.new_var()
    return solver, unroller, LoopFreeConstraints(unroller, a_lfp), a_lfp


class TestLoopFreeConstraints:
    def test_pair_and_clause_counts(self):
        """Frame k adds k pairs; each pair costs 2 clauses per state bit
        plus the closing some-bit-differs clause, and each frame >= 1
        adds one a_lfp -> g_k activation implication."""
        design = counter_design(width=3)
        solver, unroller, lfp, _ = lfp_setup(design)
        bits = 3  # one latch, width 3
        for k in range(5):
            unroller.add_frame()
            lfp.add_frame(k)
            expected_pairs = k * (k + 1) // 2
            assert lfp.pairs_added == expected_pairs
            assert lfp.clauses_added == expected_pairs * (2 * bits + 1) + k
            assert len(lfp.frame_lits) == k

    def test_loop_free_paths_bounded_by_state_count(self):
        """A free-running 2-bit counter has exactly 4 states: loop-free
        paths of length <= 3 exist (4 distinct states), length 4 does
        not — the LFP constraints must flip to UNSAT exactly there."""
        design = counter_design(width=2)
        solver, unroller, lfp, a_lfp = lfp_setup(design)
        sat_at = {}
        for k in range(5):
            unroller.add_frame()
            lfp.add_frame(k)
            sat_at[k] = solver.solve([a_lfp]).sat
        assert sat_at == {0: True, 1: True, 2: True, 3: True, 4: False}

    def test_deactivated_lfp_stays_satisfiable(self):
        """Without assuming the activation literal the pairwise
        difference constraints must not constrain anything (looping
        paths remain satisfiable past the state count)."""
        design = counter_design(width=1)
        solver, unroller, lfp, a_lfp = lfp_setup(design)
        for k in range(4):
            unroller.add_frame()
            lfp.add_frame(k)
        assert solver.solve([a_lfp]).sat is False  # 2 states, 4 frames
        assert solver.solve([]).sat is True
        assert solver.solve([-a_lfp]).sat is True

    def test_per_frame_assumptions_scope_only_checked_frames(self):
        """``assumptions(i)`` activates pairs among frames 0..i only —
        deeper frames already encoded (by a sibling property on a shared
        session) must not constrain a shallow check.  A 1-bit toggler
        with 4 encoded frames still has a loop-free path of length 1."""
        design = counter_design(width=1)
        solver, unroller, lfp, a_lfp = lfp_setup(design)
        for k in range(4):
            unroller.add_frame()
            lfp.add_frame(k)
        assert lfp.assumptions(0) == []
        assert solver.solve(lfp.assumptions(1)).sat is True
        assert solver.solve(lfp.assumptions(2)).sat is False
        assert solver.solve([a_lfp]).sat is False  # master implies all

    def test_kept_latches_scope_the_state(self):
        """Loop-freedom is judged over the *kept* latch words only: with
        the wide latch abstracted away, the 1-bit latch bounds the
        loop-free length instead."""
        d = Design("two")
        wide = d.latch("wide", 3, init=0)
        wide.next = wide.expr + 1
        small = d.latch("small", 1, init=0)
        small.next = ~small.expr
        d.invariant("p", d.const(1, 1))
        solver, unroller, lfp, a_lfp = lfp_setup(
            d, kept_latches=frozenset({"small"}))
        results = []
        for k in range(3):
            unroller.add_frame()
            lfp.add_frame(k)
            results.append(solver.solve([a_lfp]).sat)
        # 2 reachable small-states: length-2 loop-free paths impossible.
        assert results == [True, True, False]
        # 3 pairs of 1-bit states, plus one frame guard per frame >= 1.
        assert lfp.clauses_added == (2 * 1 + 1) * 3 + 2


class TestForwardRecurrenceDiameter:
    def test_known_diameter_full_period_counter(self):
        """A width-w step-1 counter walks all 2**w states in a line from
        init: the longest loop-free path from I has 2**w states, so the
        diameter (first UNSAT length) is exactly 2**w."""
        assert forward_recurrence_diameter(counter_design(width=2)) == 4
        assert forward_recurrence_diameter(counter_design(width=3)) == 8

    def test_short_period_counter(self):
        """Step 2 on 2 bits cycles through only 2 states from init 0."""
        assert forward_recurrence_diameter(counter_design(2, step=2)) == 2

    def test_cutoff_returns_none(self):
        """The longest-shortest-path cutoff: a bound below the true
        diameter must return None, never a wrong number."""
        d = counter_design(width=3)  # true diameter 8
        assert forward_recurrence_diameter(d, max_depth=7) is None
        assert forward_recurrence_diameter(d, max_depth=8) == 8

    def test_kept_latches_option_shrinks_diameter(self):
        """Latch abstraction turns the wide counter into a free input:
        the diameter is then governed by the remaining 1-bit toggler."""
        d = Design("two")
        wide = d.latch("wide", 3, init=0)
        wide.next = wide.expr + 1
        small = d.latch("small", 1, init=0)
        small.next = ~small.expr
        d.invariant("p", d.const(1, 1))
        full = forward_recurrence_diameter(d)
        abstracted = forward_recurrence_diameter(
            d, options=BmcOptions(kept_latches=frozenset({"small"})))
        assert full == 8
        assert abstracted == 2

    @pytest.mark.parametrize("init", [0, None])
    def test_memory_design_diameter_is_latch_bounded(self, init):
        """With an embedded memory (EMM constraints active, symbolic
        initial words for induction soundness) loop-freedom is still
        judged over the latch state: the memory must not extend the
        diameter of the 2-bit controller, under known or arbitrary
        initial memory contents."""
        d = Design("memctr")
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", 2, 2, init=init)
        mem.write(0).connect(addr=d.input("wa", 2), data=d.input("wd", 2),
                             en=d.input("we", 1))
        mem.read(0).connect(addr=t.expr, en=1)
        d.invariant("p", d.const(1, 1))
        assert forward_recurrence_diameter(d, max_depth=10) == 4

    def test_agrees_with_engine_forward_proof_depth(self):
        """The standalone computation must coincide with the depth at
        which the engine's forward termination check fires."""
        from repro.bmc import bmc3, verify

        # Step-2 counter: reachable states {0, 2}; "c != 1" holds on
        # them but fails at the unreachable 1, so the backward step
        # cannot close before the forward termination does.
        d = Design("cnt2s2")
        c = d.latch("c", 2, init=0)
        c.next = c.expr + 2
        d.invariant("p", c.expr.ne(1))
        diameter = forward_recurrence_diameter(d)
        r = verify(d, "p", bmc3(max_depth=10, pba=False))
        assert r.proved and r.method == "forward"
        assert r.depth == diameter == 2
