"""Tests for the accumulator-CPU case study (software programs on EMM)."""

import random

import pytest

from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.cpu import (OPCODES, CpuParams, assemble, build_cpu,
                                   indexed_fill_program, memcpy_program,
                                   sum_program)
from repro.design import expand_memories
from repro.design.equiv import check_equivalence
from repro.sim import Simulator

SMALL = CpuParams(pc_width=5, addr_width=3, data_width=4)


def run_until_halt(design, max_cycles=64, dmem=None):
    sim = Simulator(design, init_memories={"dmem": dmem or {}})
    for _ in range(max_cycles):
        if sim.latches["halted"]:
            break
        sim.step({})
    return sim


class TestAssembler:
    def test_encodes_opcode_and_operand(self):
        code = assemble([("LDI", 5), "HALT"], SMALL)
        ow = SMALL.operand_width
        assert code[0] == (OPCODES["LDI"] << ow) | 5
        assert code[1] == OPCODES["HALT"] << ow

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError, match="unknown mnemonic"):
            assemble([("FLY", 1)], SMALL)

    def test_operand_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            assemble([("LDI", 1 << SMALL.operand_width)], SMALL)

    def test_no_operand_ops_reject_operand(self):
        with pytest.raises(ValueError, match="takes no operand"):
            assemble([("HALT", 3)], SMALL)

    def test_program_size_checked(self):
        with pytest.raises(ValueError, match="does not fit"):
            assemble(["NOP"] * ((1 << SMALL.pc_width) + 1), SMALL)


class TestInstructionSemantics:
    def exec1(self, program, dmem=None, cycles=None):
        d = build_cpu(program, SMALL)
        sim = run_until_halt(d, cycles or 40, dmem)
        return sim

    def test_ldi_sta_lda(self):
        sim = self.exec1([("LDI", 9), ("STA", 2), ("LDI", 0), ("LDA", 2),
                          "HALT"])
        assert sim.latches["acc"] == 9
        assert sim.memories["dmem"][2] == 9

    def test_add_sub_wraparound(self):
        sim = self.exec1([("LDI", 14), ("STA", 0), ("ADD", 0), "HALT"])
        assert sim.latches["acc"] == (14 + 14) % 16
        sim = self.exec1([("LDI", 3), ("STA", 0), ("LDI", 1), ("SUB", 0),
                          "HALT"])
        assert sim.latches["acc"] == (1 - 3) % 16

    def test_jmp_skips(self):
        sim = self.exec1([("JMP", 3), ("LDI", 7), "HALT", ("LDI", 2), "HALT"])
        assert sim.latches["acc"] == 2

    def test_jnz_taken_and_not_taken(self):
        sim = self.exec1([("LDI", 1), ("JNZ", 3), ("LDI", 9), "HALT", "HALT"])
        assert sim.latches["acc"] == 1
        sim = self.exec1([("LDI", 0), ("JNZ", 4), ("LDI", 9), "HALT", "HALT"])
        assert sim.latches["acc"] == 9

    def test_x_register_ops(self):
        sim = self.exec1([("LDI", 5), "TAX", "INX", "TXA", "HALT"])
        assert sim.latches["x"] == 6
        assert sim.latches["acc"] == 6

    def test_lax_sax_indexed(self):
        sim = self.exec1([("LDI", 2), "TAX", ("LDI", 9), "SAX", ("LDI", 0),
                          "LAX", "HALT"])
        assert sim.latches["acc"] == 9

    def test_halt_freezes_state(self):
        d = build_cpu([("LDI", 4), "HALT"], SMALL)
        sim = Simulator(d)
        for _ in range(10):
            sim.step({})
        assert sim.latches["acc"] == 4
        assert sim.latches["halted"] == 1
        assert sim.latches["pc"] == 1

    def test_default_rom_word_is_halt(self):
        # Falling off the end of the program halts (ROM default word).
        sim = self.exec1([("LDI", 3)], cycles=10)
        assert sim.latches["halted"] == 1
        assert sim.latches["acc"] == 3


class TestMemcpyProgram:
    def test_self_check_passes_on_simulator(self):
        rng = random.Random(1)
        for _ in range(5):
            image = {a: rng.randrange(16) for a in range(3)}
            d = build_cpu(memcpy_program(3, src=0, dst=4, params=SMALL), SMALL)
            sim = run_until_halt(d, 64, image)
            assert sim.latches["acc"] == 1
            for i in range(3):
                assert sim.memories["dmem"][4 + i] == image.get(i, 0)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            memcpy_program(4, src=0, dst=2)

    def test_halts_witness_found(self):
        d = build_cpu(memcpy_program(2, src=0, dst=4, params=SMALL), SMALL)
        r = verify(d, "halts", BmcOptions(find_proof=False, max_depth=14))
        assert r.status == "cex"
        assert r.trace_validated is True

    @pytest.mark.slow
    def test_self_check_proved_for_arbitrary_memory(self):
        """The paper's Section 4.2 punchline on software: the self-check
        holds for EVERY initial memory image, proved by induction."""
        d = build_cpu(memcpy_program(2, src=0, dst=4, params=SMALL), SMALL)
        r = verify(d, "halted_acc_one", bmc3(max_depth=20, pba=False))
        assert r.proved, r.describe()
        assert r.method == "forward"

    @pytest.mark.slow
    def test_self_check_refuted_without_eq6(self):
        """Without equation (6) the proof must fail: two reads of the
        same unwritten address may disagree, so the self-check can
        'fail' in the over-approximate model."""
        d = build_cpu(memcpy_program(2, src=0, dst=4, params=SMALL), SMALL)
        r = verify(d, "halted_acc_one",
                   bmc3(max_depth=20, pba=False, init_consistency=False))
        assert not r.proved


class TestSumProgram:
    def test_expected_value_on_simulator(self):
        prog, data, expected = sum_program([3, 5, 6], out_addr=7, params=SMALL)
        d = build_cpu(prog, SMALL, dmem_init=0, dmem_words=data)
        sim = run_until_halt(d)
        assert sim.latches["acc"] == expected
        assert sim.memories["dmem"][7] == expected

    def test_bounded_check_of_result(self):
        prog, data, expected = sum_program([2, 9], out_addr=7, params=SMALL)
        d = build_cpu(prog, SMALL, dmem_init=0, dmem_words=data)
        d.invariant("sum_right", d.latches["halted"].expr.implies(
            d.latches["acc"].expr.eq(expected)))
        r = verify(d, "sum_right", BmcOptions(find_proof=False, max_depth=10))
        assert r.status == "bounded"

    def test_wrong_expectation_caught(self):
        prog, data, expected = sum_program([2, 9], out_addr=7, params=SMALL)
        d = build_cpu(prog, SMALL, dmem_init=0, dmem_words=data)
        d.invariant("sum_wrong", d.latches["halted"].expr.implies(
            d.latches["acc"].expr.eq((expected + 1) % 16)))
        r = verify(d, "sum_wrong", BmcOptions(find_proof=False, max_depth=10))
        assert r.status == "cex"
        assert r.trace_validated is True


class TestIndexedFill:
    def test_fill_on_simulator(self):
        d = build_cpu(indexed_fill_program(3, base=2, value=7), SMALL)
        sim = run_until_halt(d)
        assert all(sim.memories["dmem"][2 + i] == 7 for i in range(3))
        assert sim.latches["acc"] == 1

    def test_pc_in_bounds_bounded(self):
        d = build_cpu(indexed_fill_program(2, base=0, value=3), SMALL)
        r = verify(d, "pc_in_bounds", BmcOptions(find_proof=False,
                                                 max_depth=12))
        assert r.status == "bounded"


class TestCrossValidation:
    @pytest.mark.slow
    def test_cpu_emm_matches_explicit(self):
        """The CPU with both its memories agrees with full expansion."""
        d = build_cpu(memcpy_program(1, src=0, dst=2, params=SMALL), SMALL,
                      dmem_init=0)
        ex = expand_memories(d)
        r = check_equivalence(
            d, ex,
            [(d.latches["acc"].expr, ex.latches["acc"].expr),
             (d.latches["halted"].expr, ex.latches["halted"].expr)],
            max_depth=10)
        assert r.status == "bounded", r.describe()
