"""EncodingSession sharing, Design.fingerprint, and the service layer.

Three layers under test:

* the session/scheduler split — shared-session multi-property runs must
  be observationally identical to fresh per-property engines while
  strictly smaller in total encoding size;
* ``Design.fingerprint()`` — the service cache key: insensitive to
  declaration order, sensitive to every semantic change;
* ``VerificationService`` — inline and pooled execution, verdict parity
  with sequential ``verify()``, depth-window merging, and the
  first-CEX-wins cancellation policy (observable in stream order).
"""

import time

import pytest

from repro.bmc import (BmcEngine, BmcOptions, EncodingSession, SessionCache,
                       verify, verify_many)
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.casestudies.stack_machine import (StackMachineParams,
                                             build_stack_machine)
from repro.design import Design
from repro.sat.solver import Solver
from repro.service import (CANCELLED, VerificationService,
                           merge_window_results, shard_depths)


def tiny_fifo():
    return build_fifo(FifoParams(addr_width=2, data_width=2))


def tiny_stack():
    return build_stack_machine(StackMachineParams(addr_width=2, data_width=2))


def tiny_soc():
    return build_multiport_soc(MultiportSocParams(
        addr_width=2, data_width=2, counter_width=3, num_properties=4))


def quick_hit_fifo():
    """A fifo with an extra depth-0 witness — the fast first-CEX job."""
    design = build_fifo(FifoParams(addr_width=4, data_width=8))
    design.reach("quick", design.const(1, 1))
    return design


def assert_result_parity(shared, fresh, ctx, design):
    assert shared.status == fresh.status, (ctx, shared.status, fresh.status)
    assert shared.depth == fresh.depth, ctx
    assert shared.method == fresh.method, ctx
    assert shared.trace_validated == fresh.trace_validated, ctx
    if shared.trace is not None:
        assert len(shared.trace.cycles) == len(fresh.trace.cycles), ctx
    # PBA reasons: unsat cores are not unique, and on a shared session the
    # solver reaches a check with learned clauses from sibling properties,
    # so the *particular* core may differ from a fresh engine's.  What must
    # hold: the reason sequence has the same shape (one entry per UNSAT
    # depth) and every set is a sound abstraction seed — real latch /
    # memory names, accumulated monotonically.
    assert len(shared.latch_reasons) == len(fresh.latch_reasons), ctx
    assert len(shared.memory_reasons) == len(fresh.memory_reasons), ctx
    all_latches = frozenset(design.latches)
    all_mems = frozenset(design.memories)
    prev = frozenset()
    for lr in shared.latch_reasons:
        assert lr <= all_latches and lr >= prev, ctx
        prev = lr
    prev = frozenset()
    for mr in shared.memory_reasons:
        assert mr <= all_mems and mr >= prev, ctx
        prev = mr


# ---------------------------------------------------------------------------
# Shared-session parity and size savings.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("builder,depth", [
    (tiny_fifo, 5), (tiny_stack, 4), (tiny_soc, 5),
], ids=["fifo", "stack", "multiport_soc"])
def test_shared_session_matches_fresh_engines(builder, depth):
    design = builder()
    opts = BmcOptions(find_proof=True, pba=True, max_depth=depth)
    shared = verify_many(design, options=opts)
    assert set(shared) == set(design.properties)
    for name, result in shared.items():
        fresh = verify(builder(), name, opts)
        assert_result_parity(result, fresh, (design.name, name), design)


def test_shared_session_strictly_smaller_than_fresh_sum():
    design = tiny_soc()
    assert len(design.properties) >= 3
    opts = BmcOptions(find_proof=False, pba=False, max_depth=5)
    session = EncodingSession(design, opts)
    verify_many(design, options=opts, session=session)
    shared_total = session.clause_var_total()
    fresh_total = 0
    for name in design.properties:
        r = verify(tiny_soc(), name, opts)
        fresh_total += r.stats.sat_clauses + r.stats.sat_vars
    assert shared_total < fresh_total


def test_single_property_run_bit_identical_to_fresh_engine():
    """A fresh engine (private session) must replicate the monolith: the
    same run twice produces identical encodings and solver effort."""
    opts = BmcOptions(find_proof=True, pba=True, max_depth=4)
    a = verify(tiny_stack(), "sp_in_range", opts)
    b = verify(tiny_stack(), "sp_in_range", opts)
    assert a.stats.sat_vars == b.stats.sat_vars
    assert a.stats.sat_clauses == b.stats.sat_clauses
    assert a.stats.solver["conflicts"] == b.stats.solver["conflicts"]
    assert a.stats.solver["decisions"] == b.stats.solver["decisions"]


def test_engine_rejects_mismatched_session():
    design = tiny_fifo()
    session = EncodingSession(design, BmcOptions(find_proof=True))
    with pytest.raises(ValueError, match="encoding"):
        BmcEngine(design, "can_fill", BmcOptions(find_proof=False),
                  session=session)
    with pytest.raises(ValueError, match="different Design"):
        BmcEngine(tiny_fifo(), "can_fill", session.options, session=session)
    # Per-run knobs may differ freely.
    BmcEngine(design, "can_fill",
              BmcOptions(find_proof=True, max_depth=3, timeout_s=60),
              session=session)


def test_session_reuse_across_runs_keeps_verdicts():
    design = tiny_fifo()
    opts = BmcOptions(find_proof=False, max_depth=8)
    session = EncodingSession(design, opts)
    first = BmcEngine(design, "can_fill", opts, session=session).run()
    again = BmcEngine(design, "can_fill", opts, session=session).run()
    assert first.status == again.status == "cex"
    assert first.depth == again.depth


# ---------------------------------------------------------------------------
# BmcOptions.encoding_key and the session cache.
# ---------------------------------------------------------------------------


def test_encoding_key_ignores_run_knobs_only():
    base = BmcOptions()
    same = [BmcOptions(max_depth=7), BmcOptions(timeout_s=1.5),
            BmcOptions(max_conflicts_per_check=10),
            BmcOptions(validate_cex=False), BmcOptions(profile=True),
            BmcOptions(mem_quota_mb=64.0), BmcOptions(clause_var_quota=1000),
            BmcOptions(wall_quota_s=2.0)]
    for opt in same:
        assert opt.encoding_key() == base.encoding_key(), opt
    diff = [BmcOptions(find_proof=False), BmcOptions(pba=True),
            BmcOptions(emm_encoding="gates"), BmcOptions(strash=False),
            BmcOptions(kept_latches=frozenset({"x"})),
            BmcOptions(kept_read_ports={"m": frozenset({0})}),
            BmcOptions(solver_baseline=True)]
    for opt in diff:
        assert opt.encoding_key() != base.encoding_key(), opt


def test_session_cache_hits_and_eviction():
    cache = SessionCache(max_sessions=2)
    design = tiny_fifo()
    opts = BmcOptions()
    s1 = cache.get_or_create(design, opts)
    # Same content, different object: cache hit on the fingerprint.
    assert cache.get_or_create(tiny_fifo(), opts) is s1
    assert (cache.hits, cache.misses) == (1, 1)
    cache.get_or_create(design, BmcOptions(find_proof=False))
    cache.get_or_create(design, BmcOptions(emm_encoding="gates"))
    assert len(cache) == 2  # LRU evicted the oldest
    assert cache.get_or_create(design, opts) is not s1  # was evicted


# ---------------------------------------------------------------------------
# Design.fingerprint.
# ---------------------------------------------------------------------------


def _two_latch_design(order_ab: bool) -> Design:
    d = Design("fp")
    names = ["a", "b"] if order_ab else ["b", "a"]
    latches = {n: d.latch(n, 2, init=1) for n in names}
    inp = d.input("i", 2)
    for n in names:
        latches[n].next = latches[n].expr + inp
    mem = d.memory("m", 2, 2, init=None, init_words={1: 3})
    mem.write(0).connect(addr=latches["a"].expr, data=inp, en=1)
    mem.read(0).connect(addr=latches["b"].expr, en=1)
    d.invariant("p", latches["a"].expr.eq(latches["b"].expr))
    return d


def test_fingerprint_insensitive_to_declaration_order():
    assert _two_latch_design(True).fingerprint() == \
        _two_latch_design(False).fingerprint()


def test_fingerprint_stable_across_rebuilds():
    assert tiny_fifo().fingerprint() == tiny_fifo().fingerprint()
    assert tiny_fifo().fingerprint() != tiny_stack().fingerprint()


def test_fingerprint_sensitive_to_semantic_changes():
    base = _two_latch_design(True).fingerprint()
    seen = {base}

    def variant(mutate):
        d = _two_latch_design(True)
        mutate(d)
        fp = d.fingerprint()
        assert fp not in seen, mutate
        seen.add(fp)

    variant(lambda d: setattr(d.latches["a"], "init", 0))
    variant(lambda d: setattr(d.latches["a"], "_next",
                              d.latches["a"].expr + d.const(1, 2)))
    variant(lambda d: d.memories["m"].init_words.update({2: 1}))
    variant(lambda d: setattr(d.memories["m"], "init", 0))
    variant(lambda d: d.reach("extra", d.latches["a"].expr.eq(0)))
    variant(lambda d: setattr(d.properties["p"], "kind", "reach"))


# ---------------------------------------------------------------------------
# Timeout / conflict-limit attribution.
# ---------------------------------------------------------------------------


def test_solver_deadline_aborts_with_limit():
    s = Solver(proof=False)
    v = s.new_var()
    s.add_clause([v])
    r = s.solve([], deadline=time.monotonic() - 1.0)
    assert r.unknown and r.limit == "deadline"
    assert s.solve([]).sat  # solver still usable afterwards


def test_wall_timeout_trips_inside_check():
    result = verify(tiny_fifo(), "can_fill",
                    BmcOptions(find_proof=False, max_depth=30, timeout_s=0.0))
    assert result.status == "timeout"
    assert result.stats.limit_tripped == "wall"


def test_conflict_budget_trips_with_attribution():
    result = verify(tiny_stack(), "sp_in_range",
                    BmcOptions(find_proof=True, max_depth=10,
                               max_conflicts_per_check=0))
    if result.status == "timeout":  # a conflict occurred and hit the budget
        assert result.stats.limit_tripped == "conflicts"
    else:  # conflict-free run: the budget never engaged
        assert result.stats.limit_tripped is None


# ---------------------------------------------------------------------------
# VerificationService: inline + pooled, parity, sharding, first-CEX-wins.
# ---------------------------------------------------------------------------


def test_service_inline_matches_sequential_verify():
    design = tiny_soc()
    opts = BmcOptions(find_proof=True, max_depth=5)
    with VerificationService(tiny_soc, opts) as svc:
        served = svc.run()
    assert set(served) == set(design.properties)
    for name, result in served.items():
        fresh = verify(design, name, opts)
        assert (result.status, result.depth, result.method) == \
            (fresh.status, fresh.depth, fresh.method), name


def test_service_pool_matches_sequential_verify():
    design = tiny_soc()
    opts = BmcOptions(find_proof=True, max_depth=5)
    with VerificationService(tiny_soc, opts, jobs=2) as svc:
        served = svc.run()
    assert set(served) == set(design.properties)
    for name, result in served.items():
        fresh = verify(design, name, opts)
        assert (result.status, result.depth, result.method) == \
            (fresh.status, fresh.depth, fresh.method), name


def test_shard_depths_partitions_range():
    assert shard_depths(8, 2) == [(0, 4), (5, 8)]
    assert shard_depths(2, 5) == [(0, 0), (1, 1), (2, 2)]
    flat = [d for lo, hi in shard_depths(40, 7) for d in range(lo, hi + 1)]
    assert flat == list(range(41))


def test_windowed_run_merges_to_sequential_verdict():
    opts = BmcOptions(find_proof=False, max_depth=8)
    with VerificationService(tiny_fifo, opts) as svc:
        served = svc.run(["can_fill"], depth_windows=shard_depths(8, 3))
    fresh = verify(tiny_fifo(), "can_fill", opts)
    assert served["can_fill"].status == fresh.status == "cex"
    assert served["can_fill"].depth == fresh.depth


def test_merge_window_results_first_conclusive_wins():
    opts = BmcOptions(find_proof=False, max_depth=8)
    session = EncodingSession(tiny_fifo(), opts)
    eng = BmcEngine(session.design, "can_fill", opts, session=session)
    bounded = eng.run(window=(0, 2))
    cex = BmcEngine(session.design, "can_fill", opts, session=session) \
        .run(window=(3, 8))
    assert (bounded.status, cex.status) == ("bounded", "cex")
    assert merge_window_results([bounded, cex]) is cex


def test_first_cex_wins_inline_stream_order():
    opts = BmcOptions(find_proof=False, max_depth=6)
    with VerificationService(tiny_stack, opts) as svc:
        stream = list(svc.stream(["can_reach_depth3"],
                                 depth_windows=[(0, 4), (5, 6)]))
    assert [sr.status for sr in stream] == ["cex", CANCELLED]
    assert stream[0].window == (0, 4)
    assert stream[1].result is None


def test_first_cex_wins_cancels_slow_sibling_in_pool():
    # Window (0, 0) holds a depth-0 witness and resolves immediately; the
    # sibling window must first encode 25 more frames of a wide fifo — a
    # deliberately slow job that is still mid-flight when the CEX lands.
    opts = BmcOptions(find_proof=False, max_depth=25)
    with VerificationService(quick_hit_fifo, opts, jobs=2) as svc:
        stream = list(svc.stream(["quick"], depth_windows=[(0, 0), (1, 25)]))
    assert [sr.status for sr in stream] == ["cex", CANCELLED]
    assert stream[0].window == (0, 0)
    assert stream[0].result.depth == 0
    assert stream[1].window == (1, 25)


def test_service_repeated_requests_reuse_cached_session():
    opts = BmcOptions(find_proof=True, max_depth=4)
    with VerificationService(tiny_fifo, opts) as svc:
        first = svc.run(["empty_full_exclusive"])
        assert (svc.cache.hits, svc.cache.misses) == (0, 1)
        second = svc.run(["empty_full_exclusive"])
        assert svc.cache.hits == 1
    assert first["empty_full_exclusive"].status == \
        second["empty_full_exclusive"].status
