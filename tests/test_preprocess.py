"""Tests for the SatELite-style CNF preprocessor."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.preprocess import Preprocessor, simplify
from repro.sat.solver import Solver


def brute_force_models(num_vars, clauses):
    """All satisfying assignments by exhaustive enumeration."""
    models = []
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        ok = all(any(assignment[abs(lit)] == (lit > 0) for lit in c)
                 for c in clauses)
        if ok:
            models.append(assignment)
    return models


def solve_with_preprocessing(num_vars, clauses, **kw):
    """Simplify, solve the remainder, reconstruct a full model (or None)."""
    res = simplify(num_vars, clauses, **kw)
    if res.unsat:
        return None, res
    solver = Solver(proof=False)
    for _ in range(num_vars):
        solver.new_var()
    for c in res.clauses:
        solver.add_clause(c)
    if not solver.solve().sat:
        return None, res
    model = {v: solver.model_value(v) for v in range(1, num_vars + 1)}
    return res.extend_model(model), res


class TestUnits:
    def test_unit_propagation_fixes_variable(self):
        res = simplify(2, [[1], [-1, 2]])
        assert res.fixed == {1: True, 2: True}
        assert res.clauses == []

    def test_conflicting_units_unsat(self):
        res = simplify(1, [[1], [-1]])
        assert res.unsat

    def test_unit_chain(self):
        res = simplify(4, [[1], [-1, 2], [-2, 3], [-3, 4]])
        assert res.fixed == {1: True, 2: True, 3: True, 4: True}
        assert res.stats.units_propagated >= 4


class TestPureLiterals:
    def test_pure_positive_removes_clauses(self):
        res = simplify(2, [[1, 2], [1, -2]])
        # 1 is pure positive: both clauses satisfied, 2 becomes free.
        assert res.fixed[1] is True
        assert res.clauses == []

    def test_pure_literal_not_applied_to_frozen(self):
        pre = Preprocessor(3, [[1, 2], [1, 3]])
        for v in (1, 2, 3):
            pre.freeze(v)
        res = pre.simplify()
        assert 1 not in res.fixed
        assert len(res.clauses) == 2


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        pre = Preprocessor(3, [[1, 2], [1, 2, 3]])
        pre.freeze(1), pre.freeze(2), pre.freeze(3)
        res = pre.simplify()
        assert (1, 2) in res.clauses
        assert all(set(c) != {1, 2, 3} for c in res.clauses)
        assert res.stats.subsumed == 1

    def test_self_subsuming_resolution_strengthens(self):
        # (1 2) and (-1 2 3): second strengthens to (2 3).
        pre = Preprocessor(3, [[1, 2], [-1, 2, 3]])
        for v in (1, 2, 3):
            pre.freeze(v)
        res = pre.simplify()
        assert res.stats.strengthened >= 1
        assert (2, 3) in res.clauses

    def test_duplicate_clause_subsumed(self):
        pre = Preprocessor(2, [[1, 2], [2, 1]])
        pre.freeze(1), pre.freeze(2)
        res = pre.simplify()
        assert len(res.clauses) == 1


class TestVariableElimination:
    def test_single_occurrence_variable_eliminated(self):
        # 3 occurs once in each polarity: 1 resolvent replaces 2 clauses
        # (1 and 2 are frozen so pure-literal reasoning stays out).
        res = simplify(3, [[1, 3], [-3, 2]], frozen=[1, 2])
        assert res.stats.vars_eliminated >= 1
        assert (1, 2) in res.clauses

    def test_frozen_variable_survives(self):
        pre = Preprocessor(3, [[1, 3], [-3, 2]])
        pre.freeze(3), pre.freeze(1), pre.freeze(2)
        res = pre.simplify()
        assert res.stats.vars_eliminated == 0

    def test_elimination_preserves_satisfiability(self):
        clauses = [[1, 2, 3], [-1, 2], [1, -2], [-3, 1, 2]]
        model, res = solve_with_preprocessing(3, clauses)
        assert model is not None
        for c in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in c)


class TestTautologyAndEdges:
    def test_tautology_dropped_on_add(self):
        pre = Preprocessor(2, [[1, -1, 2]])
        assert pre.simplify().clauses == []

    def test_empty_clause_is_unsat(self):
        pre = Preprocessor(1)
        pre.add_clause([])
        assert pre.simplify().unsat

    def test_bad_literal_rejected(self):
        pre = Preprocessor(1)
        with pytest.raises(ValueError):
            pre.add_clause([2])
        with pytest.raises(ValueError):
            pre.add_clause([0])

    def test_empty_cnf_is_sat(self):
        res = simplify(3, [])
        assert not res.unsat
        assert res.extend_model({}) == {}


class TestModelReconstruction:
    def test_extend_model_rejects_bad_model(self):
        pre = Preprocessor(2, [[1], [2, -1]])
        pre.freeze(1), pre.freeze(2)
        res = pre.simplify()
        assert res.fixed == {1: True, 2: True}
        # Fixed assignments win; a contradicting input is overridden,
        # but a bad assignment to a surviving clause variable raises.
        res2 = simplify(2, [[1, 2]], frozen=[1, 2])
        with pytest.raises(ValueError):
            res2.extend_model({1: False, 2: False})

    def test_reconstruction_after_elimination(self):
        clauses = [[1, 2], [-2, 3], [-1, 3], [3, 4], [-4, -3]]
        model, res = solve_with_preprocessing(4, clauses)
        assert model is not None
        for c in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in c), (c, model)


def random_cnf(rng, num_vars, num_clauses, max_width=3):
    return [
        [rng.choice([-1, 1]) * rng.randint(1, num_vars)
         for _ in range(rng.randint(1, max_width))]
        for _ in range(num_clauses)
    ]


class TestEquisatisfiabilityFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_preprocess_preserves_satisfiability(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(2, 6)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 14))
        expected = bool(brute_force_models(num_vars, clauses))
        model, res = solve_with_preprocessing(num_vars, clauses)
        assert (model is not None) == expected
        if model is not None:
            for c in clauses:
                assert any(model[abs(lit)] == (lit > 0) for lit in c)

    @pytest.mark.parametrize("seed", range(10))
    def test_growth_budget_still_sound(self, seed):
        rng = random.Random(1000 + seed)
        num_vars = rng.randint(2, 6)
        clauses = random_cnf(rng, num_vars, rng.randint(1, 12))
        expected = bool(brute_force_models(num_vars, clauses))
        model, __ = solve_with_preprocessing(num_vars, clauses,
                                             elimination_growth=4, rounds=5)
        assert (model is not None) == expected


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=5))
    num_clauses = draw(st.integers(min_value=0, max_value=10))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [draw(st.integers(min_value=1, max_value=num_vars))
                  * draw(st.sampled_from([-1, 1])) for _ in range(width)]
        clauses.append(clause)
    return num_vars, clauses


class TestHypothesis:
    @settings(max_examples=60, deadline=None)
    @given(cnf_instances())
    def test_equisatisfiable(self, instance):
        num_vars, clauses = instance
        expected = bool(brute_force_models(num_vars, clauses))
        model, __ = solve_with_preprocessing(num_vars, clauses)
        assert (model is not None) == expected

    @settings(max_examples=40, deadline=None)
    @given(cnf_instances())
    def test_reconstructed_model_satisfies_original(self, instance):
        num_vars, clauses = instance
        model, __ = solve_with_preprocessing(num_vars, clauses)
        if model is not None:
            for c in clauses:
                assert any(model.get(abs(lit), False) == (lit > 0) for lit in c)
