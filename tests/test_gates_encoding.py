"""Tests for the pure gate-based EMM encoding (Section 3 comparison)."""

import random
from dataclasses import replace

import pytest

from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.design import Design

GATES = {"emm_encoding": "gates"}


def options(**kw):
    kw.setdefault("find_proof", False)
    kw.setdefault("max_depth", 8)
    return BmcOptions(emm_encoding="gates", **kw)


def scratchpad(aw=3, dw=4, init=0, init_words=None):
    d = Design("pad")
    waddr = d.input("waddr", aw)
    wdata = d.input("wdata", dw)
    wen = d.input("wen", 1)
    raddr = d.input("raddr", aw)
    mem = d.memory("m", addr_width=aw, data_width=dw, init=init,
                   init_words=init_words)
    mem.write(0).connect(addr=waddr, data=wdata, en=wen)
    rd = mem.read(0).connect(addr=raddr, en=1)
    out = d.latch("out", dw, init=0)
    out.next = rd
    return d, out


class TestVerdictParity:
    """Hybrid and gate encodings must agree on every verdict and depth."""

    @pytest.mark.parametrize("prop,expected", [
        ("can_fill", "cex"), ("data_integrity", "bounded"),
        ("count_bounded", "bounded")])
    def test_fifo_bounded_checks(self, prop, expected):
        d = build_fifo(FifoParams(addr_width=3, data_width=4))
        h = verify(d, prop, BmcOptions(find_proof=False, max_depth=9))
        g = verify(d, prop, options(max_depth=9))
        assert h.status == g.status == expected
        assert h.depth == g.depth

    @pytest.mark.parametrize("seed", range(6))
    def test_random_reach_targets(self, seed):
        rng = random.Random(seed)
        init_words = {1: 3} if seed % 2 else None
        d, out = scratchpad(init=rng.choice([0, 5]), init_words=init_words)
        d.reach("hit", out.expr.eq(rng.randrange(16)))
        h = verify(d, "hit", BmcOptions(find_proof=False, max_depth=5))
        g = verify(d, "hit", options(max_depth=5))
        assert h.status == g.status
        if h.status == "cex":
            assert h.depth == g.depth
            assert g.trace_validated is True

    def test_quicksort_p2_proof(self):
        d = build_quicksort(QuicksortParams(n=2, addr_width=3, data_width=3,
                                            stack_addr_width=3))
        g = verify(d, "P2", replace(bmc3(max_depth=30, pba=False),
                                    emm_encoding="gates"))
        h = verify(d, "P2", bmc3(max_depth=30, pba=False))
        assert g.proved and h.proved
        assert g.depth == h.depth
        assert g.method == h.method


class TestGateSpecifics:
    def test_counters_report_gates(self):
        d, out = scratchpad()
        d.invariant("p", d.const(1, 1))
        from repro.bmc.engine import BmcEngine
        eng = BmcEngine(d, "p", options(max_depth=4))
        eng.run()
        emm = eng.emms["m"]
        assert emm.counters.excl_gates > 0
        assert emm.counters.total_clauses > 0

    def test_disabled_read_forced_zero(self):
        """Gate encoding pins RD to 0 when RE is low (simulator semantics);
        the hybrid encoding leaves it free."""
        d = Design("gated")
        mem = d.memory("m", addr_width=2, data_width=4, init=0)
        mem.write(0).connect(addr=d.const(0, 2), data=d.const(0, 4), en=0)
        rd = mem.read(0).connect(addr=d.const(0, 2), en=0)
        d.reach("nonzero", rd.ne(0))
        g = verify(d, "nonzero", options(max_depth=2))
        h = verify(d, "nonzero", BmcOptions(find_proof=False, max_depth=2,
                                            validate_cex=False))
        assert g.status == "bounded"   # forced 0: unreachable
        assert h.status == "cex"       # free: spuriously reachable

    def test_race_monitoring_rejected(self):
        from repro.emm.gates import GateEmmMemory
        with pytest.raises(ValueError, match="hybrid"):
            GateEmmMemory(None, None, "m", check_races=True)

    def test_unknown_encoding_rejected(self):
        d, __ = scratchpad()
        d.invariant("p", d.const(1, 1))
        with pytest.raises(ValueError, match="emm_encoding"):
            verify(d, "p", BmcOptions(emm_encoding="bogus"))

    def test_rom_contents_via_mux_chain(self):
        d, out = scratchpad(init=0, init_words={2: 9})
        pc = d.latches["out"]  # reuse: read address driven by input
        d.reach("sees9", out.expr.eq(9))
        g = verify(d, "sees9", options(max_depth=4))
        assert g.status == "cex"
        assert g.trace_validated is True


class TestProofSoundness:
    def test_eq6_still_required_for_proofs(self):
        """The gates encoding shares the Section 4.2 machinery: dropping
        equation (6) must break arbitrary-init proofs the same way."""
        d = Design("pair")
        a1 = d.input("a", 3)
        mem = d.memory("m", addr_width=3, data_width=4, init=None)
        mem.write(0).connect(addr=d.const(0, 3), data=d.const(0, 4), en=0)
        rd = mem.read(0).connect(addr=a1, en=1)
        first = d.latch("first", 4, init=0)
        seen = d.latch("seen", 1, init=0)
        addr0 = d.latch("addr0", 3, init=0)
        first.next = seen.expr.ite(first.expr, rd)
        addr0.next = seen.expr.ite(addr0.expr, a1)
        seen.next = d.const(1, 1)
        # After the first sample, re-reading the same address must match.
        same_addr = seen.expr & a1.eq(addr0.expr)
        d.invariant("stable", same_addr.implies(rd.eq(first.expr)))
        good = verify(d, "stable", replace(bmc3(max_depth=12, pba=False),
                                           emm_encoding="gates"))
        assert good.proved, good.describe()
        bad = verify(d, "stable", replace(
            bmc3(max_depth=12, pba=False, init_consistency=False),
            emm_encoding="gates"))
        assert not bad.proved
