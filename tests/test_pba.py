"""Proof-based abstraction: latch reasons, stability, memory abstraction."""


from repro.bmc import BmcOptions, verify
from repro.design import Design
from repro.pba import run_pba_phase, verify_with_pba


def two_cone_design():
    """A design with a relevant and an irrelevant half.

    Memory `rel` feeds the property; memory `junk` (and the latches
    driving it) are disconnected from it.  PBA must keep `rel` and drop
    `junk`.
    """
    d = Design("cones")
    data = d.input("data", 4)
    # relevant cone: a capped write into `rel`, property reads it back
    rel_addr = d.latch("rel_addr", 2, init=0)
    rel_addr.next = rel_addr.expr + 1
    rel = d.memory("rel", 2, 4, init=0)
    capped = data.ult(4).ite(data, d.const(0, 4))
    rel.write(0).connect(addr=rel_addr.expr, data=capped, en=1)
    rel_rd = rel.read(0).connect(addr=d.input("ra", 2), en=1)
    # irrelevant cone: a separate counter drives `junk`
    junk_addr = d.latch("junk_addr", 2, init=0)
    junk_addr.next = junk_addr.expr + 3
    junk = d.memory("junk", 2, 4, init=0)
    junk.write(0).connect(addr=junk_addr.expr, data=data, en=1)
    junk.read(0).connect(addr=junk_addr.expr, en=1)
    d.invariant("rel_lt4", rel_rd.ult(4))
    return d


class TestLatchReasons:
    def test_reasons_accumulate_monotonically(self):
        d = two_cone_design()
        r = verify(d, "rel_lt4", BmcOptions(max_depth=5, pba=True,
                                            find_proof=False))
        assert r.status == "bounded"
        lr = r.latch_reasons
        assert len(lr) == 6
        for a, b in zip(lr, lr[1:]):
            assert a <= b

    def test_irrelevant_latch_not_in_reasons(self):
        d = two_cone_design()
        r = verify(d, "rel_lt4", BmcOptions(max_depth=5, pba=True,
                                            find_proof=False))
        assert "junk_addr" not in r.latch_reasons[-1]

    def test_memory_reasons_tracked(self):
        d = two_cone_design()
        r = verify(d, "rel_lt4", BmcOptions(max_depth=5, pba=True,
                                            find_proof=False))
        assert "rel" in r.memory_reasons[-1]
        assert "junk" not in r.memory_reasons[-1]


class TestPhase:
    def test_phase_drops_irrelevant_memory(self):
        d = two_cone_design()
        phase = run_pba_phase(d, "rel_lt4", stability_depth=3, max_depth=20)
        assert phase.stable
        assert "junk" in phase.abstracted_memories
        assert "rel" in phase.kept_memories
        assert "junk_addr" not in phase.latch_reasons
        assert phase.kept_latch_bits < phase.orig_latch_bits

    def test_phase_reports_cex(self):
        d = Design("bad")
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("lt3", c.expr.ult(3))
        phase = run_pba_phase(d, "lt3", stability_depth=3, max_depth=10)
        assert phase.cex_result is not None
        assert phase.cex_result.depth == 3

    def test_unstable_phase_flagged(self):
        # A counter whose reason set keeps growing within the bound.
        d = Design("grow")
        c = d.latch("c", 4, init=0)
        c.next = c.expr + 1
        d.invariant("lt16", c.expr.ule(15))
        phase = run_pba_phase(d, "lt16", stability_depth=50, max_depth=4)
        assert not phase.stable


class TestFullFlow:
    def test_proof_on_reduced_model(self):
        d = two_cone_design()
        outcome = verify_with_pba(d, "rel_lt4", stability_depth=3,
                                  abstraction_max_depth=20,
                                  proof_max_depth=30)
        assert outcome.status == "proof"
        assert "junk" in outcome.phase.abstracted_memories
        assert outcome.proof_result.proved

    def test_cex_short_circuits(self):
        d = Design("bad")
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("lt3", c.expr.ult(3))
        outcome = verify_with_pba(d, "lt3", stability_depth=3,
                                  abstraction_max_depth=10)
        assert outcome.status == "cex"
        assert outcome.proof_result.depth == 3

    def test_proof_transfers_from_abstraction(self):
        """The reduced model over-approximates, so its proof is sound.

        Cross-check: the property also holds on the concrete design.
        """
        d = two_cone_design()
        outcome = verify_with_pba(d, "rel_lt4", stability_depth=3,
                                  abstraction_max_depth=20,
                                  proof_max_depth=30)
        assert outcome.status == "proof"
        concrete = verify(two_cone_design(), "rel_lt4",
                          BmcOptions(max_depth=12))
        assert concrete.proved
