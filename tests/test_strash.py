"""Structural hashing (repro.aig strash layer): cross-checks + accounting.

Mirrors ``tests/test_addr_cache.py`` one layer down: hash-consing in
:meth:`repro.aig.aig.Aig.and_gate` and the CNF-level gate-triple cache in
:class:`repro.aig.tseitin.CnfEmitter` must be invisible to every
observable verification outcome.  Randomized recurring-address designs
are run through full BMC (induction + PBA) with ``strash`` on and off,
and statuses, depths, trace validity and the PBA latch/memory reason
sets must coincide while the strashed encoding stays strictly smaller.
Separate tests pin exact gate counts for a small ``eq_word`` cone, the
first-emitter-wins provenance rule for shared clause triples, and the
comparator-aware exclusivity-chain pruning of the hybrid EMM encoder.
"""

import random

import pytest

from repro.aig import Aig, CnfEmitter, FALSE, TRUE, evaluate
from repro.aig import ops
from repro.aig.eval import evaluate_word
from repro.bmc import bmc3, verify
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory
from repro.emm.gates import GateEmmMemory
from repro.sat import Solver


# ---------------------------------------------------------------------------
# Aig.and_gate: folding, hashing, counters, and the unstrashed baseline.
# ---------------------------------------------------------------------------


class TestAndGateStrash:
    def test_folds_are_counted(self):
        g = Aig()
        a = g.new_input("a")
        assert g.and_gate(a, FALSE) == FALSE
        assert g.and_gate(a, TRUE) == a
        assert g.and_gate(a, a) == a
        assert g.and_gate(a, a ^ 1) == FALSE
        assert g.strash_folds == 4
        assert g.strash_hits == 0
        assert g.num_ands == 0

    def test_hash_hits_are_counted(self):
        g = Aig()
        a, b = g.new_input(), g.new_input()
        n1 = g.and_gate(a, b)
        n2 = g.and_gate(b, a)
        assert n1 == n2
        assert g.num_ands == 1
        assert g.strash_hits == 1

    def test_strash_off_mints_fresh_nodes(self):
        g = Aig(strash=False)
        a, b = g.new_input(), g.new_input()
        n1 = g.and_gate(a, b)
        n2 = g.and_gate(a, b)
        n3 = g.and_gate(a, TRUE)
        assert len({n1, n2, n3}) == 3
        assert g.num_ands == 3
        assert g.strash_hits == 0
        assert g.strash_folds == 0
        # The duplicate nodes still compute the same function.
        for va in (False, True):
            for vb in (False, True):
                r = evaluate(g, {a: va, b: vb}, [n1, n2, n3])
                assert r == [va and vb, va and vb, va]

    def test_strash_property(self):
        assert Aig().strash is True
        assert Aig(strash=False).strash is False

    def test_modes_agree_on_word_ops(self):
        rng = random.Random(7)
        for _ in range(20):
            va, vb = rng.randrange(256), rng.randrange(256)
            outs = {}
            for strash in (True, False):
                g = Aig(strash=strash)
                a = ops.input_word(g, "a", 8)
                b = ops.input_word(g, "b", 8)
                env = {bit: bool((va >> i) & 1) for i, bit in enumerate(a)}
                env.update({bit: bool((vb >> i) & 1) for i, bit in enumerate(b)})
                outs[strash] = (
                    evaluate(g, env, [ops.eq_word(g, a, b)]),
                    evaluate_word(g, env, ops.add_word(g, a, b)),
                    evaluate_word(g, env, ops.mux_word(g, a[0], a, b)),
                )
            assert outs[True] == outs[False]
            assert outs[True][0] == [va == vb]
            assert outs[True][1] == (va + vb) & 0xFF


class TestEqWordExactCounts:
    """Regression: exact gate counts for a width-3 ``eq_word`` cone."""

    WIDTH = 3
    #: 3 AND nodes per per-bit IFF, plus 2 chain nodes (the TRUE seed of
    #: ``and_many`` folds into the first conjunct).
    STRASHED = 3 * WIDTH + 2
    #: Without folding the chain seed costs a real node: 3 per bit + 3.
    UNSTRASHED = 3 * WIDTH + 3

    def test_strash_on_builds_once(self):
        g = Aig()
        a = ops.input_word(g, "a", self.WIDTH)
        b = ops.input_word(g, "b", self.WIDTH)
        e1 = ops.eq_word(g, a, b)
        assert g.num_ands == self.STRASHED
        assert g.strash_folds == 1  # the and_many TRUE seed
        e2 = ops.eq_word(g, a, b)
        assert e1 == e2
        assert g.num_ands == self.STRASHED
        assert g.strash_hits == self.STRASHED

    def test_strash_off_rebuilds(self):
        g = Aig(strash=False)
        a = ops.input_word(g, "a", self.WIDTH)
        b = ops.input_word(g, "b", self.WIDTH)
        e1 = ops.eq_word(g, a, b)
        assert g.num_ands == self.UNSTRASHED
        e2 = ops.eq_word(g, a, b)
        assert e1 != e2
        assert g.num_ands == 2 * self.UNSTRASHED


# ---------------------------------------------------------------------------
# CnfEmitter: gate-triple cache and first-emitter-wins provenance.
# ---------------------------------------------------------------------------


def emitter_pair(aig_strash, cnf_strash):
    solver = Solver(proof=True)
    aig = Aig(strash=aig_strash)
    em = CnfEmitter(aig, solver, strash=cnf_strash)
    return solver, aig, em


class TestCnfGateCache:
    def test_triple_cache_reuses_vars(self):
        # AIG strash off so the two cones are distinct nodes; the CNF
        # cache must still collapse them onto one variable set.
        solver, aig, em = emitter_pair(False, True)
        a = ops.input_word(aig, "a", 3)
        b = ops.input_word(aig, "b", 3)
        v1 = em.sat_lit(ops.eq_word(aig, a, b))
        vars_after_first = solver.num_vars
        clauses_after_first = solver.num_clauses
        v2 = em.sat_lit(ops.eq_word(aig, a, b))
        assert v1 == v2
        assert solver.num_vars == vars_after_first
        assert solver.num_clauses == clauses_after_first
        assert em.strash_hits > 0

    def test_no_cache_reemits(self):
        solver, aig, em = emitter_pair(False, False)
        a = ops.input_word(aig, "a", 3)
        b = ops.input_word(aig, "b", 3)
        v1 = em.sat_lit(ops.eq_word(aig, a, b))
        gates_first = em.gates_emitted
        v2 = em.sat_lit(ops.eq_word(aig, a, b))
        assert v1 != v2
        assert em.gates_emitted == 2 * gates_first
        assert em.strash_hits == 0
        # Both emissions are equisatisfiable copies: they cannot disagree.
        assert solver.solve([v1, -v2]).sat is False
        assert solver.solve([-v1, v2]).sat is False

    def test_first_emitter_wins_labels(self):
        """A shared triple keeps its first label; cores attribute it there.

        Two provenance contexts lower structurally identical cones; the
        second is answered from the gate cache and emits nothing, so an
        unsat core that needs the gate semantics names the *first*
        context — never the second.  That keeps PBA reason extraction
        sound: the labels it reads always belong to clauses that exist.
        """
        solver, aig, em = emitter_pair(False, True)
        x, y = aig.new_input("x"), aig.new_input("y")
        em.set_label(("ctx", "A"))
        out_a = em.sat_lit(aig.and_gate(x, y))
        em.set_label(("ctx", "B"))
        out_b = em.sat_lit(aig.and_gate(x, y))
        assert out_a == out_b  # shared triple
        em.add_clause([em.sat_lit(x)], ("unit", "x"))
        em.add_clause([em.sat_lit(y)], ("unit", "y"))
        em.add_clause([-out_a], ("unit", "out"))
        assert solver.solve().sat is False
        labels = solver.core_labels()
        assert ("ctx", "A") in labels
        assert ("ctx", "B") not in labels

    def test_default_modes_unchanged_behaviour(self):
        # With AIG strashing on, node identity already dedups repeated
        # cones, so the CNF cache never fires on a plain run.
        solver, aig, em = emitter_pair(True, True)
        a = ops.input_word(aig, "a", 4)
        b = ops.input_word(aig, "b", 4)
        em.sat_lit(ops.eq_word(aig, a, b))
        em.sat_lit(ops.eq_word(aig, a, b))
        assert em.strash_hits == 0
        assert aig.strash_hits > 0


# ---------------------------------------------------------------------------
# Randomized cross-check: strash on/off must verify identically.
# ---------------------------------------------------------------------------


def random_recurring_design(rng):
    """A random single-memory design whose address cones recur.

    Same shape as the dedup cross-check generator: addresses drawn from
    a small pool (constants, a shared input, a walking latch) so both
    the AIG strash table and the comparator cache actually fire.
    """
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3])
    w_ports = rng.choice([1, 2])
    r_ports = rng.choice([2, 3])
    init = rng.choice([0, None, 3])
    d = Design("rand")
    t = d.latch("t", aw, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports, init=init)
    shared = d.input("sa", aw)
    addr_pool = [
        lambda: d.const(rng.randrange(1 << aw), aw),
        lambda: shared,
        lambda: t.expr,
    ]
    for w in range(w_ports):
        en = d.input(f"we{w}", 1)
        if w_ports > 1:
            addr = d.input(f"wa{w}", aw)
            en = en & addr[0].eq(w & 1)
        else:
            addr = rng.choice(addr_pool)()
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    for r in range(r_ports):
        mem.read(r).connect(addr=rng.choice(addr_pool)(), en=1)
    target = rng.randrange(1 << dw)
    d.reach("hit", mem.read(0).data.eq(target))
    return d, "hit"


@pytest.mark.parametrize("seed", range(6))
def test_strash_is_invisible_to_gate_verification(seed):
    """Gate encoding: verdicts, traces and PBA reasons match on/off."""
    rng = random.Random(seed)
    design, prop = random_recurring_design(rng)
    results = {}
    for strash in (True, False):
        results[strash] = verify(
            design,
            prop,
            bmc3(max_depth=4, emm_encoding="gates", strash=strash),
        )
    on, off = results[True], results[False]
    assert on.status == off.status, (seed, on.status, off.status)
    assert on.depth == off.depth
    assert on.method == off.method
    assert on.trace_validated == off.trace_validated
    if on.trace is not None:
        assert on.trace_validated is True
    assert on.latch_reasons == off.latch_reasons
    assert on.memory_reasons == off.memory_reasons
    # The strashed encoding is strictly smaller on recurring workloads.
    assert on.stats.sat_vars < off.stats.sat_vars
    assert on.stats.sat_clauses < off.stats.sat_clauses
    assert on.stats.strash_folds > 0
    if on.depth >= 2:  # a depth-0 cex ends the run before cones recur
        assert on.stats.strash_hits > 0
    assert off.stats.strash_hits == 0
    assert off.stats.strash_folds == 0


@pytest.mark.parametrize("seed", [1, 4])
def test_strash_is_invisible_to_hybrid_verification(seed):
    """Hybrid encoding: same verdict parity; never larger with strash."""
    rng = random.Random(seed)
    design, prop = random_recurring_design(rng)
    on = verify(design, prop, bmc3(max_depth=4, strash=True))
    off = verify(design, prop, bmc3(max_depth=4, strash=False))
    assert on.status == off.status
    assert on.depth == off.depth
    assert on.method == off.method
    assert on.latch_reasons == off.latch_reasons
    assert on.memory_reasons == off.memory_reasons
    assert on.stats.sat_vars <= off.stats.sat_vars
    assert on.stats.sat_clauses <= off.stats.sat_clauses


# ---------------------------------------------------------------------------
# Acceptance: >= 40% smaller gate-EMM encoding at depth >= 20.
# ---------------------------------------------------------------------------


def recurring_bench_design(aw=4, dw=4):
    """The recurring-address workload of the C2 strash benchmark."""
    d = Design("recur")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=1, init=None)
    mem.write(0).connect(
        addr=d.input("wa", aw), data=d.input("wd", dw), en=d.input("we", 1)
    )
    ra = d.input("ra", aw)
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=ra, en=1)
    mem.read(2).connect(addr=ra, en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def build_gate_frames(design, depth, strash):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(strash=strash), solver, strash=strash)
    unroller = Unroller(design, emitter)
    emm = GateEmmMemory(solver, unroller, "m", init_consistency=False)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return solver, emm


def test_gate_emm_strash_cuts_40_percent_at_depth_20():
    depth = 20
    design = recurring_bench_design()
    off_solver, off_emm = build_gate_frames(design, depth, strash=False)
    on_solver, on_emm = build_gate_frames(design, depth, strash=True)
    size_off = off_solver.num_clauses + off_solver.num_vars
    size_on = on_solver.num_clauses + on_solver.num_vars
    drop = 1.0 - size_on / size_off
    assert drop >= 0.40, f"strash saved only {drop:.1%} ({size_off} -> {size_on})"
    assert on_emm.counters.strash_hits > 0
    assert on_emm.counters.strash_folds > 0
    assert off_emm.counters.strash_hits == 0
    # Per-frame snapshots sum to the totals.
    assert (
        sum(f["strash_hits"] for f in on_emm.counters.per_frame)
        == on_emm.counters.strash_hits
    )
    assert (
        sum(f["strash_folds"] for f in on_emm.counters.per_frame)
        == on_emm.counters.strash_folds
    )


def deep_recurring_design(aw=3, dw=2):
    """Recurring-address workload with an unreachable read-back target.

    Write data can never set bit 1, so reading back 3 is impossible:
    every falsification check is UNSAT and a ``find_proof=False`` run
    walks the full depth with PBA collecting reasons at every step.
    """
    d = Design("recur20")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=1, init=0)
    wd = d.input("wd", dw)
    mem.write(0).connect(addr=d.input("wa", aw), data=wd & 1, en=d.input("we", 1))
    ra = d.input("ra", aw)
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=ra, en=1)
    mem.read(2).connect(addr=ra, en=1)
    d.reach("three", mem.read(1).data.eq(3))
    return d


def test_depth_20_verdict_and_pba_parity():
    """Acceptance: at depth 20 the strashed gate encoding is >= 40%
    smaller with identical verdicts and PBA reason sets."""
    from repro.bmc import BmcOptions

    results = {}
    for strash in (True, False):
        results[strash] = verify(
            deep_recurring_design(),
            "three",
            BmcOptions(
                find_proof=False,
                pba=True,
                max_depth=20,
                emm_encoding="gates",
                strash=strash,
            ),
        )
    on, off = results[True], results[False]
    assert on.status == off.status == "bounded"
    assert on.depth == off.depth == 20
    assert on.latch_reasons == off.latch_reasons
    assert on.memory_reasons == off.memory_reasons
    assert on.memory_reasons[-1] == frozenset({"m"})
    size_on = on.stats.sat_vars + on.stats.sat_clauses
    size_off = off.stats.sat_vars + off.stats.sat_clauses
    drop = 1.0 - size_on / size_off
    assert drop >= 0.40, f"only {drop:.1%} ({size_off} -> {size_on})"
    assert on.stats.strash_hits > 0


# ---------------------------------------------------------------------------
# Comparator-aware exclusivity chains (hybrid encoder fold pruning).
# ---------------------------------------------------------------------------


def run_hybrid_frames(design, depth, **kw):
    # These regressions pin the raw back-end's per-pair gate shapes
    # (3 raw CNF gates per live pair); the AIG-routed default prunes the
    # same folded pairs through ``and_gate`` and is asserted separately.
    kw.setdefault("hybrid_strash", False)
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = EmmMemory(solver, unroller, "m", **kw)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return emm


def const_addr_design(read_addr, write_addr, aw=3, dw=2):
    d = Design("constpair")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=1, write_ports=1, init=0)
    mem.write(0).connect(
        addr=d.const(write_addr, aw),
        data=d.input("wd", dw),
        en=d.input("we", 1),
    )
    mem.read(0).connect(addr=d.const(read_addr, aw), en=1)
    d.reach("hit", mem.read(0).data.eq((1 << dw) - 1))
    return d


class TestExclusivityFoldPruning:
    def test_false_fold_skips_all_three_gates(self):
        """Read 1 vs write 2: every pair folds FALSE -> zero chain gates.

        The unpruned encoding pays 3 gates per pair (s = E ∧ WE, the S
        signal and the PS step), all driven by a constant-false E.
        """
        depth = 4
        pairs = sum(k for k in range(depth + 1))
        on = run_hybrid_frames(const_addr_design(1, 2), depth).counters
        off = run_hybrid_frames(
            const_addr_design(1, 2), depth, addr_dedup=False
        ).counters
        assert on.excl_gates == 0
        assert off.excl_gates == 3 * pairs
        assert on.addr_eq_folded == 1  # one distinct comparison, cached after
        assert on.rd_clauses < off.rd_clauses  # dead pairs lose eq-(5) too

    def test_true_fold_reuses_write_enable(self):
        """Read 5 vs write 5: E is constant TRUE, so s == WE (one gate
        saved per pair, the chain keeps its 2 gates)."""
        depth = 4
        pairs = sum(k for k in range(depth + 1))
        on = run_hybrid_frames(const_addr_design(5, 5), depth).counters
        assert on.excl_gates == 2 * pairs

    @pytest.mark.parametrize("read_addr,write_addr", [(1, 2), (5, 5)])
    def test_pruning_preserves_verdicts(self, read_addr, write_addr):
        d = const_addr_design(read_addr, write_addr)
        results = [
            verify(d, "hit", bmc3(max_depth=4, emm_addr_dedup=dedup))
            for dedup in (True, False)
        ]
        on, off = results
        assert on.status == off.status
        assert on.depth == off.depth
        if on.trace is not None:
            assert on.trace_validated is True
        # Matching addresses make the target reachable; disjoint ones
        # leave the read pinned to the (zero) initial contents.
        expected = "cex" if read_addr == write_addr else "proof"
        assert on.status == expected

    def test_aig_backend_false_fold_builds_no_chain(self):
        """AIG back-end: a folded-FALSE comparator collapses the pair in
        ``and_gate``, so the whole chain (and its lowered CNF) vanishes —
        the routed equivalent of the raw back-end's dead-pair skip."""
        on = run_hybrid_frames(const_addr_design(1, 2), 4,
                               hybrid_strash=True).counters
        assert on.excl_gates == 0
        assert on.addr_eq_folded == 1
        assert on.addr_eq_clauses == 0

    def test_aig_backend_true_fold_reuses_write_enable(self):
        """AIG back-end: a folded-TRUE comparator makes s the aliased
        write enable via constant folding (zero gates for the match
        signal; only the chain/mux structure remains)."""
        on = run_hybrid_frames(const_addr_design(5, 5), 1,
                               hybrid_strash=True).counters
        # Depth 1, one live pair, dw=2: the no-match and fall-through
        # ANDs fold into the aliased literals (RE is constant) and each
        # data-bit mux against the constant-0 init seed folds to the
        # single ``WE ∧ WD`` gate — one AND per data bit survives.
        assert on.excl_gates == 2
        assert on.strash_folds > 0
