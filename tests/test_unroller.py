"""Unroller: time-frame expansion must match the simulator cycle-for-cycle."""

import random

import pytest

from repro.aig import Aig, CnfEmitter, evaluate
from repro.aig.eval import evaluate_word
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.sat import Solver
from repro.sim import Simulator


def random_latch_design(rng, n_latches=3, n_inputs=2, width=4):
    d = Design("rl")
    inputs = [d.input(f"i{k}", width) for k in range(n_inputs)]
    latches = [d.latch(f"l{k}", width, init=rng.randrange(1 << width))
               for k in range(n_latches)]
    pool = inputs + [lt.expr for lt in latches]

    def rand_expr(depth=0):
        if depth > 2 or rng.random() < 0.3:
            return rng.choice(pool)
        op = rng.choice(["add", "sub", "and", "or", "xor", "mux", "not"])
        a = rand_expr(depth + 1)
        if op == "not":
            return ~a
        b = rand_expr(depth + 1)
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        return a.eq(b).ite(a, b)

    for latch in latches:
        latch.next = rand_expr()
    probe = rand_expr()
    d.invariant("p", probe.eq(0))
    return d, latches, probe


@pytest.mark.parametrize("seed", range(8))
def test_unrolled_frames_match_simulator(seed):
    rng = random.Random(seed)
    d, latches, probe = random_latch_design(rng)
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(d, emitter)
    depth = 6
    for __ in range(depth + 1):
        un.add_frame()

    # Drive the AIG inputs with a random stimulus and compare every
    # latch word and the probe against the simulator, frame by frame.
    stimulus = [{name: rng.randrange(1 << d.inputs[name].width)
                 for name in d.inputs} for __ in range(depth + 1)]
    env = {}
    for k, vec in enumerate(stimulus):
        for name, value in vec.items():
            for i, bit in enumerate(un.input_word(name, k)):
                env[bit] = bool((value >> i) & 1)
    # Frame-0 latch values = declared inits.
    aig = un.aig
    for latch in latches:
        for i, bit in enumerate(un.latch_word(latch.name, 0)):
            env[bit] = bool((latch.init >> i) & 1)
    # Later frames: latch word k+1 must evaluate the frame-k next cone;
    # wire the frame-k+1 latch input bits to those evaluated values.
    sim = Simulator(d)
    for k in range(depth + 1):
        sim.begin_cycle(stimulus[k])
        for latch in latches:
            word = un.latch_word(latch.name, k)
            assert evaluate_word(aig, env, word) == sim.latches[latch.name]
        assert evaluate_word(aig, env, un.word(probe, k)) == sim.eval(probe)
        if k < depth:
            for latch in latches:
                nxt = un.word(latch.next, k)
                value = evaluate_word(aig, env, nxt)
                for i, bit in enumerate(un.latch_word(latch.name, k + 1)):
                    env[bit] = bool((value >> i) & 1)
        sim.commit_cycle()


def test_link_clauses_enforce_transitions():
    d = Design("t")
    c = d.latch("c", 3, init=5)
    c.next = c.expr + 1
    d.invariant("p", c.expr.ule(7))
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(d, emitter)
    un.add_frame()
    un.add_frame()
    un.add_frame()
    # Force frame-0 value via units, then frame-2 must be init+2.
    for i, bit in enumerate(un.latch_word("c", 0)):
        lit = emitter.sat_lit(bit)
        solver.add_clause([lit if (5 >> i) & 1 else -lit])
    assert solver.solve().sat
    val = 0
    for i, bit in enumerate(un.latch_word("c", 2)):
        if solver.model_value(emitter.sat_lit(bit)):
            val |= 1 << i
    assert val == 7


def test_freed_latches_have_no_link_clauses():
    d = Design("t")
    a = d.latch("a", 2, init=0)
    b = d.latch("b", 2, init=0)
    a.next = a.expr + 1
    b.next = b.expr + 1
    d.invariant("p", a.expr.ule(3))
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(d, emitter, kept_latches=frozenset({"a"}))
    un.add_frame()
    un.add_frame()
    # b@1 is a pseudo-primary input: both 0 and 3 must be satisfiable.
    b1 = [emitter.sat_lit(bit) for bit in un.latch_word("b", 1)]
    assert solver.solve([b1[0], b1[1]]).sat
    assert solver.solve([-b1[0], -b1[1]]).sat
    # a@1 is linked: force a@0 = 0, then a@1 == 1 is forced.
    a0 = [emitter.sat_lit(bit) for bit in un.latch_word("a", 0)]
    a1 = [emitter.sat_lit(bit) for bit in un.latch_word("a", 1)]
    assert not solver.solve([-a0[0], -a0[1], -a1[0]]).sat
    assert solver.solve([-a0[0], -a0[1], a1[0], -a1[1]]).sat


def test_frames_must_be_added_in_order():
    d = Design("t")
    c = d.latch("c", 2, init=0)
    c.next = c.expr
    d.invariant("p", c.expr.eq(0))
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(d, emitter)
    assert un.add_frame() == 0
    assert un.add_frame() == 1
    assert un.frames == 2
