"""BMC engine behaviours: options, statuses, reach properties, stats."""

import pytest

from repro.bmc import BmcEngine, BmcOptions, bmc1, bmc2, bmc3, verify
from repro.design import Design


def counter(width=3, init=0):
    d = Design("cnt")
    c = d.latch("c", width, init=init)
    c.next = c.expr + 1
    return d, c


class TestStatuses:
    def test_proof_forward_on_bounded_counter(self):
        d, c = counter()
        d.invariant("lt8", c.expr.ule(7))  # trivially true (3 bits)
        r = verify(d, "lt8", BmcOptions(max_depth=20))
        assert r.proved

    def test_cex_with_exact_depth(self):
        d, c = counter()
        d.invariant("lt5", c.expr.ult(5))
        r = verify(d, "lt5", BmcOptions(max_depth=20))
        assert r.falsified and r.depth == 5
        assert r.trace_validated is True

    def test_bounded_when_no_proof_possible(self):
        d = Design("free")
        x = d.input("x", 4)
        acc = d.latch("acc", 4, init=0)
        acc.next = x
        d.invariant("p", acc.expr.ne(9))
        r = verify(d, "p", BmcOptions(max_depth=0, find_proof=False))
        assert r.status == "bounded"

    def test_reach_witness(self):
        d, c = counter()
        d.reach("hit6", c.expr.eq(6))
        r = verify(d, "hit6", BmcOptions(max_depth=20))
        assert r.falsified  # witness found (CEX status semantics)
        assert r.depth == 6
        assert "witness" in r.describe()

    def test_reach_unreachable_proof(self):
        d, c = counter()
        d.reach("hit9", c.expr.zext(5).eq(9))  # 3-bit counter: impossible
        r = verify(d, "hit9", BmcOptions(max_depth=20))
        assert r.proved
        assert "unreachable" in r.describe()

    def test_backward_induction_proof(self):
        # x sticky-at-1 once set; property x=1 -> stays: 1-inductive.
        d = Design("sticky")
        inp = d.input("i", 1)
        x = d.latch("x", 1, init=0)
        y = d.latch("y", 1, init=0)
        x.next = x.expr | inp
        y.next = x.expr
        d.invariant("mono", ~y.expr | x.expr)
        r = verify(d, "mono", BmcOptions(max_depth=10))
        assert r.proved and r.method == "backward"


class TestOptions:
    def test_memories_require_emm(self):
        d = Design("m")
        lit = d.latch("l", 1, init=0)
        lit.next = lit.expr
        mem = d.memory("mem", 2, 2, init=0)
        mem.write(0).connect(addr=0, data=0, en=0)
        mem.read(0).connect(addr=0, en=1)
        d.invariant("p", lit.expr.eq(0))
        with pytest.raises(ValueError, match="use_emm"):
            BmcEngine(d, "p", BmcOptions(use_emm=False))

    def test_bmc2_has_no_proof_checks(self):
        d, c = counter()
        d.invariant("lt8", c.expr.ule(7))
        r = verify(d, "lt8", bmc2(max_depth=10))
        assert r.status == "bounded"  # falsification-only never proves

    def test_presets(self):
        assert bmc1().use_emm is False and bmc1().find_proof is True
        assert bmc2().use_emm is True and bmc2().find_proof is False
        assert bmc3().use_emm and bmc3().find_proof and bmc3().pba

    def test_unknown_property_rejected(self):
        d, c = counter()
        d.invariant("p", c.expr.ule(7))
        with pytest.raises(KeyError):
            BmcEngine(d, "nope", BmcOptions())

    def test_timeout_status(self):
        d, c = counter(width=4)
        d.invariant("p", c.expr.ule(15))
        r = verify(d, "p", BmcOptions(max_depth=50, timeout_s=0.0))
        assert r.status in ("timeout", "proof")  # proof may land first

    def test_kept_latches_abstraction(self):
        # Freeing the only latch makes the bounded invariant falsifiable.
        d, c = counter(width=3)
        d.invariant("lt4", c.expr.ult(4))
        r = verify(d, "lt4", BmcOptions(max_depth=5, find_proof=False,
                                        kept_latches=frozenset(),
                                        validate_cex=False))
        assert r.falsified and r.depth == 0  # free latch: CE immediately

    def test_arbitrary_latch_init_unconstrained(self):
        d = Design("arb")
        lit = d.latch("l", 3, init=None)
        lit.next = lit.expr
        d.invariant("p", lit.expr.ne(5))
        r = verify(d, "p", BmcOptions(max_depth=3))
        assert r.falsified and r.depth == 0
        assert r.trace.init_latches["l"] == 5


class TestStats:
    def test_stats_populated(self):
        d, c = counter()
        d.invariant("lt8", c.expr.ule(7))
        r = verify(d, "lt8", BmcOptions(max_depth=10))
        assert r.stats.sat_vars > 0
        assert r.stats.sat_clauses > 0
        assert r.stats.wall_time_s >= 0
        assert len(r.stats.time_per_depth) >= 1
        assert r.stats.peak_rss_mb > 0

    def test_emm_stats_counted(self):
        d = Design("m")
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("mem", 2, 4, init=0)
        mem.write(0).connect(addr=t.expr, data=d.input("x", 4), en=1)
        rd = mem.read(0).connect(addr=d.input("a", 2), en=1)
        d.invariant("p", rd.ule(15))
        r = verify(d, "p", bmc2(max_depth=4))
        assert r.stats.emm_clauses > 0
        assert r.stats.emm_gates > 0

    def test_describe_mentions_status(self):
        d, c = counter()
        d.invariant("lt8", c.expr.ule(7))
        r = verify(d, "lt8", BmcOptions(max_depth=10))
        assert "lt8" in r.describe()
        assert "proved" in r.describe() or "induction" in r.describe()


class TestTimePerDepth:
    """One entry per analyzed depth — regression for the double-append on
    the stop_check path and the bogus total-wall-time entry on loop exit."""

    def free_design(self):
        d = Design("free")
        x = d.input("x", 4)
        acc = d.latch("acc", 4, init=0)
        acc.next = x
        d.invariant("p", acc.expr.ule(15))  # trivially true, never proved
        return d

    def test_bounded_loop_exit(self):
        r = verify(self.free_design(), "p",
                   BmcOptions(max_depth=5, find_proof=False))
        assert r.status == "bounded" and r.depth == 5
        assert len(r.stats.time_per_depth) == r.depth + 1
        # Depth entries must sum to no more than the total wall time (the
        # old code appended the total as an extra "depth").
        assert sum(r.stats.time_per_depth) <= r.stats.wall_time_s + 1e-9

    def test_stop_check_path(self):
        from repro.bmc import BmcEngine
        eng = BmcEngine(self.free_design(), "p",
                        BmcOptions(max_depth=10, find_proof=False))
        r = eng.run(stop_check=lambda engine, depth: depth >= 2)
        assert r.status == "bounded" and r.depth == 2
        assert len(r.stats.time_per_depth) == r.depth + 1

    def test_cex_path(self):
        d, c = counter()
        d.invariant("lt5", c.expr.ult(5))
        r = verify(d, "lt5", BmcOptions(max_depth=20))
        assert r.falsified and r.depth == 5
        assert len(r.stats.time_per_depth) == r.depth + 1

    def test_proof_path(self):
        d, c = counter()
        d.invariant("lt8", c.expr.ule(7))
        r = verify(d, "lt8", BmcOptions(max_depth=20))
        assert r.proved
        assert len(r.stats.time_per_depth) == r.depth + 1
