"""Tests for the reference simulator's cycle semantics."""


from repro.design import Design
from repro.sim import Simulator


def counter_design():
    d = Design("cnt")
    en = d.input("en", 1)
    c = d.latch("c", 4, init=2)
    c.next = en.ite(c.expr + 1, c.expr)
    d.invariant("small", c.expr.ult(10))
    return d


class TestLatches:
    def test_initial_values(self):
        sim = Simulator(counter_design())
        assert sim.latches["c"] == 2

    def test_step_semantics(self):
        sim = Simulator(counter_design())
        sim.step({"en": 1})
        assert sim.latches["c"] == 3
        sim.step({"en": 0})
        assert sim.latches["c"] == 3

    def test_wraparound(self):
        sim = Simulator(counter_design())
        for _ in range(20):
            sim.step({"en": 1})
        assert sim.latches["c"] == (2 + 20) % 16

    def test_arbitrary_init_override(self):
        d = Design("t")
        lit = d.latch("l", 4, init=None)
        lit.next = lit.expr
        sim = Simulator(d, init_latches={"l": 9})
        assert sim.latches["l"] == 9
        sim2 = Simulator(d)
        assert sim2.latches["l"] == 0

    def test_missing_inputs_default_zero(self):
        sim = Simulator(counter_design())
        sim.step({})
        assert sim.latches["c"] == 2


class TestMemories:
    def make(self, init=0):
        d = Design("m")
        waddr = d.input("waddr", 2)
        wdata = d.input("wdata", 8)
        we = d.input("we", 1)
        raddr = d.input("raddr", 2)
        lit = d.latch("dummy", 1)
        lit.next = lit.expr
        mem = d.memory("mem", 2, 8, init=init)
        mem.write(0).connect(addr=waddr, data=wdata, en=we)
        rd = mem.read(0).connect(addr=raddr, en=1)
        d.invariant("probe", rd.eq(0))
        self.rd = rd
        return d

    def test_write_visible_next_cycle(self):
        d = self.make()
        sim = Simulator(d)
        sim.begin_cycle({"waddr": 1, "wdata": 0xAB, "we": 1, "raddr": 1})
        # Same-cycle read must NOT see the write.
        assert sim.eval(self.rd) == 0
        sim.commit_cycle()
        sim.begin_cycle({"raddr": 1})
        assert sim.eval(self.rd) == 0xAB

    def test_uniform_init(self):
        d = self.make(init=7)
        sim = Simulator(d)
        sim.begin_cycle({"raddr": 3})
        assert sim.eval(self.rd) == 7

    def test_injected_contents(self):
        d = self.make(init=None)
        sim = Simulator(d, init_memories={"mem": {2: 0x55}})
        sim.begin_cycle({"raddr": 2})
        assert sim.eval(self.rd) == 0x55
        sim.commit_cycle()
        sim.begin_cycle({"raddr": 3})
        assert sim.eval(self.rd) == 0  # unlisted arbitrary-init defaults to 0

    def test_read_enable_off_reads_zero(self):
        d = Design("m")
        raddr = d.input("raddr", 2)
        en = d.input("en", 1)
        lit = d.latch("dummy", 1)
        lit.next = lit.expr
        mem = d.memory("mem", 2, 8, init=3)
        mem.write(0).connect(addr=0, data=0, en=0)
        rd = mem.read(0).connect(addr=raddr, en=en)
        sim = Simulator(d)
        sim.begin_cycle({"raddr": 1, "en": 0})
        assert sim.eval(rd) == 0
        sim.begin_cycle({"raddr": 1, "en": 1})
        assert sim.eval(rd) == 3

    def test_multi_write_port_priority(self):
        d = Design("m")
        lit = d.latch("dummy", 1)
        lit.next = lit.expr
        mem = d.memory("mem", 2, 8, write_ports=2)
        # Both ports write address 0 in the same cycle; port 1 must win.
        mem.write(0).connect(addr=0, data=0x11, en=1)
        mem.write(1).connect(addr=0, data=0x22, en=1)
        rd = mem.read(0).connect(addr=0, en=1)
        sim = Simulator(d)
        sim.step({})
        sim.begin_cycle({})
        assert sim.eval(rd) == 0x22

    def test_chained_read_ports(self):
        d = Design("m")
        lit = d.latch("dummy", 1)
        lit.next = lit.expr
        mem = d.memory("mem", 2, 2, read_ports=2)
        mem.write(0).connect(addr=0, data=0, en=0)
        rd0 = mem.read(0).connect(addr=1, en=1)
        mem.read(1).connect(addr=rd0, en=1)
        rd1 = mem.read(1).data
        sim = Simulator(d, init_memories={"mem": {1: 3, 3: 2}})
        sim.begin_cycle({})
        assert sim.eval(rd0) == 3
        assert sim.eval(rd1) == 2


class TestRun:
    def test_trace_records(self):
        d = counter_design()
        sim = Simulator(d)
        trace = sim.run([{"en": 1}, {"en": 1}, {"en": 0}])
        assert len(trace) == 3
        assert [c["latches"]["c"] for c in trace.cycles] == [2, 3, 4]
        assert all(c["props"]["small"] == 1 for c in trace.cycles)

    def test_check_property_at(self):
        d = Design("t")
        c = d.latch("c", 4, init=0)
        c.next = c.expr + 1
        d.invariant("lt3", c.expr.ult(3))
        sim = Simulator(d)
        vals = sim.check_property_at("lt3", [{}] * 5)
        assert vals == [1, 1, 1, 0, 0]

    def test_format_table(self):
        d = counter_design()
        trace = Simulator(d).run([{"en": 1}] * 2)
        table = trace.format_table()
        assert "cycle" in table and "en" in table and "c" in table
