"""Multi-write-port race monitor under the shared chain builders.

The monitor (``repro.emm.races`` / ``EmmMemory(check_races=True)``) is
deliberately raw CNF with its own comparator and its own ``race_*``
counters; routing the forwarding chain through the AIG
(``hybrid_strash``, the default) must leave every race observable —
detection depths, witness inputs and the dedicated counters — exactly
as the raw back-end reports them.
"""

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, accounting, find_data_race
from repro.sat import Solver
from repro.sim import Simulator


def three_port_design(aw=3, dw=2, disjoint=False):
    """Three write ports; optionally parity-guarded so no race exists."""
    d = Design("threeport")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=1, write_ports=3, init=0)
    for w in range(3):
        addr = d.input(f"wa{w}", aw)
        en = d.input(f"we{w}", 1)
        if disjoint:
            # Ports claim distinct address classes mod 4: never racy.
            en = en & addr[0].eq(w & 1) & addr[1].eq((w >> 1) & 1)
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    mem.read(0).connect(addr=d.input("ra", aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def run_monitored(design, depth, **kw):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = EmmMemory(solver, unroller, "m", check_races=True, **kw)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return solver, emm


class TestRaceCountersUnderChainBuilders:
    @pytest.mark.parametrize("hybrid_strash", [True, False])
    def test_three_port_race_counters_pinned(self, hybrid_strash):
        """3 write ports, dedup off: each frame books one full 4m+1
        comparator per port pair, one both-enables AND per pair and one
        pair AND per pair, plus the OR aggregation clauses."""
        depth = 4
        __, emm = run_monitored(three_port_design(), depth,
                                addr_dedup=False,
                                hybrid_strash=hybrid_strash)
        c = emm.counters
        frames, pairs = depth + 1, 3  # C(3, 2) write-port pairs
        assert c.race_addr_eq_clauses == \
            frames * pairs * accounting.addr_eq_clauses_full(3)
        assert c.race_gates == frames * pairs * 2
        # race <-> OR(pairs): one clause per pair one way, one closing.
        assert c.race_clauses == frames * (pairs + 1)
        assert len(emm.race_lits) == frames

    def test_race_counters_independent_of_chain_backend(self):
        """The monitor is its own subsystem: every ``race_*`` counter —
        and the paper-formula counters it must never skew — agree
        between the AIG-routed and raw chain back-ends."""
        runs = {hs: run_monitored(three_port_design(), 4,
                                  hybrid_strash=hs)[1].counters
                for hs in (True, False)}
        for key in ("race_addr_eq_clauses", "race_clauses", "race_gates",
                    "race_addr_eq_cache_hits", "race_addr_eq_folded"):
            assert getattr(runs[True], key) == getattr(runs[False], key), key
        assert runs[True].addr_eq_clauses == runs[False].addr_eq_clauses

    @pytest.mark.parametrize("hybrid_strash", [True, False])
    def test_race_literal_satisfiable_iff_racy(self, hybrid_strash):
        """The per-frame race literal must be reachable on the
        unguarded design and unreachable on the parity-guarded one."""
        for disjoint, expect in ((False, True), (True, False)):
            solver, emm = run_monitored(three_port_design(disjoint=disjoint),
                                        2, hybrid_strash=hybrid_strash)
            hits = [solver.solve([lit]).sat for lit in emm.race_lits]
            assert any(hits) is expect, (disjoint, hits)


class TestFindDataRace:
    def test_finds_three_port_race_with_witness(self):
        r = find_data_race(three_port_design(), "m", max_depth=3)
        assert r.found and r.depth == 0
        assert len(r.inputs) == 1
        # The witness must really race: replay it on the simulator and
        # check two enabled ports hit one address.
        design = three_port_design()
        sim = Simulator(design)
        sim.begin_cycle(r.inputs[0])
        targets = []
        for w in range(3):
            port = design.memories["m"].write(w)
            if sim.eval(port.en):
                targets.append(sim.eval(port.addr))
        assert len(targets) != len(set(targets))

    def test_no_race_on_disjoint_ports(self):
        r = find_data_race(three_port_design(disjoint=True), "m",
                           max_depth=3)
        assert not r.found

    def test_single_port_memory_short_circuits(self):
        d = Design("single")
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", 2, 2, init=0)
        mem.write(0).connect(addr=d.input("wa", 2), data=d.input("wd", 2),
                             en=d.input("we", 1))
        mem.read(0).connect(addr=d.input("ra", 2), en=1)
        d.invariant("p", d.const(1, 1))
        r = find_data_race(d, "m", max_depth=5)
        assert not r.found
        assert r.wall_time_s == 0.0  # structural short-circuit, no solve
