"""Differential semantics fuzz: AIG lowering vs the reference simulator.

The expression layer has three independent interpretations — the
word-level interpreter in ``repro.sim.simulator``, the NumPy batch
evaluator in ``repro.sim.vector``, and the bit-level lowering in
``repro.aig.ops`` used by the BMC unroller.  For random expression trees
over random inputs, all must produce the same value; hypothesis
generates the trees and the operand values.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import Aig
from repro.aig.eval import evaluate
from repro.aig.tseitin import CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.sat.solver import Solver
from repro.sim import Simulator


def random_expr(rng: random.Random, d: Design, leaves, depth: int):
    """A random expression over the given leaf expressions."""
    if depth == 0 or rng.random() < 0.25:
        leaf = rng.choice(leaves)
        return leaf
    op = rng.choice(["add", "sub", "and", "or", "xor", "not", "eq", "ult",
                     "mux", "slice", "zext", "concat"])
    a = random_expr(rng, d, leaves, depth - 1)
    if op == "not":
        return ~a
    if op == "slice":
        lo = rng.randrange(a.width)
        hi = rng.randrange(lo + 1, a.width + 1)
        return a[lo:hi]
    if op == "zext":
        return a.zext(a.width + rng.randrange(0, 3))
    b = random_expr(rng, d, leaves, depth - 1)
    if op == "concat":
        return a.concat(b)
    if op == "mux":
        sel = random_expr(rng, d, leaves, depth - 1)
        sel1 = sel[0:1] if sel.width > 1 else sel
        if a.width < b.width:
            a = a.zext(b.width)
        elif b.width < a.width:
            b = b.zext(a.width)
        return sel1.ite(a, b)
    if a.width < b.width:
        a = a.zext(b.width)
    elif b.width < a.width:
        b = b.zext(a.width)
    if op == "eq":
        return a.eq(b)
    if op == "ult":
        return a.ult(b)
    return {"add": a + b, "sub": a - b, "and": a & b,
            "or": a | b, "xor": a ^ b}[op]


def build_and_compare(seed: int, x_val: int, y_val: int) -> None:
    rng = random.Random(seed)
    d = Design(f"expr{seed}")
    x = d.input("x", 4)
    y = d.input("y", 3)
    leaves = [x, y, d.const(rng.randrange(16), 4), d.const(1, 1)]
    expr = random_expr(rng, d, leaves, depth=4)
    d.invariant("p", expr.eq(0) | d.const(1, 1))  # keep design valid

    # Interpretation 1: the word-level simulator.
    sim = Simulator(d)
    sim.begin_cycle({"x": x_val, "y": y_val})
    expected = sim.eval(expr)

    # Interpretation 2: lower through the unroller to AIG, evaluate.
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(d, emitter)
    un.add_frame()
    word = un.word(expr, 0)
    assignment = {}
    for name, value in (("x", x_val), ("y", y_val)):
        for b, lit in enumerate(un.input_word(name, 0)):
            assignment[lit] = bool((value >> b) & 1)
    bits = evaluate(emitter.aig, assignment, word)
    got = sum(1 << i for i, bit in enumerate(bits) if bit)
    assert got == expected, (seed, x_val, y_val, expr)


class TestRandomExpressions:
    @pytest.mark.parametrize("seed", range(40))
    def test_seeded_trees(self, seed):
        rng = random.Random(10_000 + seed)
        build_and_compare(seed, rng.randrange(16), rng.randrange(8))

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500),
           x=st.integers(min_value=0, max_value=15),
           y=st.integers(min_value=0, max_value=7))
    def test_hypothesis_trees(self, seed, x, y):
        build_and_compare(seed, x, y)


def build_and_compare_vector(seed: int, pairs) -> None:
    """Scalar-vs-vector parity: every (x, y) pair is one lane."""
    np = pytest.importorskip("numpy")
    from repro.sim import VectorSimulator

    rng = random.Random(seed)
    d = Design(f"expr{seed}")
    x = d.input("x", 4)
    y = d.input("y", 3)
    leaves = [x, y, d.const(rng.randrange(16), 4), d.const(1, 1)]
    expr = random_expr(rng, d, leaves, depth=4)
    d.invariant("p", expr.eq(0) | d.const(1, 1))

    expected = []
    for x_val, y_val in pairs:
        sim = Simulator(d)
        sim.begin_cycle({"x": x_val, "y": y_val})
        expected.append(sim.eval(expr))

    vsim = VectorSimulator(d, len(pairs), watch={"e": expr})
    bt = vsim.run([{
        "x": np.array([p[0] for p in pairs], dtype=np.uint64),
        "y": np.array([p[1] for p in pairs], dtype=np.uint64),
    }])
    got = [bt.lane(i).cycles[0]["watch"]["e"] for i in range(len(pairs))]
    assert got == expected, (seed, pairs, expr)


class TestScalarVsVector:
    """The vector evaluator is a third interpretation of the same trees;
    its lanes must agree bit for bit with the scalar interpreter (which
    TestRandomExpressions pins against the AIG lowering — a three-way
    cross-check in total)."""

    @pytest.mark.parametrize("seed", range(40))
    def test_seeded_trees(self, seed):
        rng = random.Random(20_000 + seed)
        pairs = [(rng.randrange(16), rng.randrange(8)) for _ in range(8)]
        build_and_compare_vector(seed, pairs)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500),
           pairs=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7)),
                          min_size=1, max_size=6))
    def test_hypothesis_trees(self, seed, pairs):
        build_and_compare_vector(seed, pairs)


class TestOperatorEdges:
    """Pinpoint checks at operator boundaries."""

    def setup_method(self):
        self.d = Design("edges")
        self.x = self.d.input("x", 4)
        self.y = self.d.input("y", 4)

    def value(self, expr, x, y):
        sim = Simulator(self.d)
        sim.begin_cycle({"x": x, "y": y})
        return sim.eval(expr)

    def test_sub_wraps(self):
        assert self.value(self.x - self.y, 0, 1) == 15

    def test_add_wraps(self):
        assert self.value(self.x + self.y, 15, 1) == 0

    def test_ult_is_unsigned(self):
        assert self.value(self.x.ult(self.y), 8, 7) == 0
        assert self.value(self.x.ult(self.y), 7, 8) == 1

    def test_concat_order(self):
        # self is low bits, argument becomes the high bits.
        expr = self.x.concat(self.y)
        assert self.value(expr, 0x3, 0x5) == 0x53

    def test_slice_of_concat(self):
        expr = self.x.concat(self.y)[4:8]
        assert self.value(expr, 0x3, 0x5) == 0x5

    def test_zext_preserves_value(self):
        assert self.value(self.x.zext(8), 9, 0) == 9

    def test_mux_on_eq(self):
        expr = self.x.eq(self.y).ite(self.x + 1, self.y - 1)
        assert self.value(expr, 3, 3) == 4
        assert self.value(expr, 3, 9) == 8
