"""Tests for miter construction and sequential equivalence checking."""

import pytest

from repro.bmc import BmcOptions
from repro.design import Design, build_miter, check_equivalence, expand_memories
from repro.design.equiv import SIDE_SEP, shared_init_groups
from repro.sim import Simulator


def counter(name, step, width=4):
    d = Design(name)
    d.input("unused", 1)
    c = d.latch("c", width, init=0)
    c.next = c.expr + step
    return d, c.expr


class TestBuildMiter:
    def test_state_is_prefixed_per_side(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 1)
        m = build_miter(a, b, [(ea, eb)])
        assert f"a{SIDE_SEP}c" in m.latches
        assert f"b{SIDE_SEP}c" in m.latches
        assert set(m.inputs) == {"unused"}

    def test_properties_created(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 1)
        m = build_miter(a, b, [(ea, eb), (ea.eq(0), eb.eq(0))])
        assert set(m.properties) == {"equiv", "equiv_0", "equiv_1"}

    def test_mismatched_inputs_rejected(self):
        a, ea = counter("a", 1)
        b = Design("b")
        b.input("other", 2)
        lit = b.latch("c", 4, init=0)
        lit.next = lit.expr
        with pytest.raises(ValueError, match="input"):
            build_miter(a, b, [(ea, lit.expr)])

    def test_width_mismatch_rejected(self):
        a, ea = counter("a", 1, width=4)
        b, eb = counter("b", 1, width=5)
        with pytest.raises(ValueError, match="width"):
            build_miter(a, b, [(ea, eb)])

    def test_empty_outputs_rejected(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 1)
        with pytest.raises(ValueError, match="output"):
            build_miter(a, b, [])

    def test_foreign_expression_rejected(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 1)
        with pytest.raises(ValueError, match="belong"):
            build_miter(a, b, [(eb, ea)])

    def test_miter_simulates(self):
        a, ea = counter("a", 2)
        b, eb = counter("b", 2)
        m = build_miter(a, b, [(ea, eb)])
        sim = Simulator(m)
        out = sim.run([{"unused": 0}] * 4)
        assert all(cyc["props"]["equiv"] == 1 for cyc in out.cycles)


class TestCheckEquivalence:
    def test_equal_counters_bounded(self):
        a, ea = counter("a", 1)
        b = Design("b")
        b.input("unused", 1)
        k = b.latch("k", 4, init=0)
        k.next = (k.expr + 3) - 2
        assert check_equivalence(a, b, [(ea, k.expr)], max_depth=10).status \
            == "bounded"

    def test_unequal_counters_cex(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 2)
        r = check_equivalence(a, b, [(ea, eb)], max_depth=10)
        assert r.status == "cex"
        assert r.depth == 1  # first divergence one step in

    def test_initial_state_divergence_found_at_depth_zero(self):
        a, ea = counter("a", 1)
        b = Design("b")
        b.input("unused", 1)
        k = b.latch("c", 4, init=7)
        k.next = k.expr + 1
        r = check_equivalence(a, b, [(ea, k.expr)], max_depth=4)
        assert r.status == "cex"
        assert r.depth == 0

    def test_proof_via_induction(self):
        # Same machine on both sides: forward diameter closes quickly.
        a, ea = counter("a", 1, width=2)
        b, eb = counter("b", 1, width=2)
        r = check_equivalence(a, b, [(ea, eb)], max_depth=20, find_proof=True)
        assert r.status == "proof"

    def test_options_passthrough(self):
        a, ea = counter("a", 1)
        b, eb = counter("b", 1)
        r = check_equivalence(a, b, [(ea, eb)], max_depth=3,
                              options=BmcOptions(timeout_s=120.0))
        assert r.status == "bounded"


class TestEmmVsExplicit:
    """EMM and explicit expansion must agree on every design — checked by
    building the miter of a design against its own expansion."""

    def ring_buffer(self):
        d = Design("ring")
        data = d.input("d", 4)
        push = d.input("push", 1)
        ptr = d.latch("ptr", 3, init=0)
        ptr.next = push.ite(ptr.expr + 1, ptr.expr)
        mem = d.memory("buf", addr_width=3, data_width=4, init=0)
        mem.write(0).connect(addr=ptr.expr, data=data, en=push)
        rd = mem.read(0).connect(addr=ptr.expr - 1, en=1)
        out = d.latch("out", 4, init=0)
        out.next = rd
        return d, out.expr

    def test_ring_buffer_matches_expansion(self):
        d, out = self.ring_buffer()
        ex = expand_memories(d)
        r = check_equivalence(d, ex, [(out, ex.latches["out"].expr)],
                              max_depth=10)
        assert r.status == "bounded"

    def test_mutated_expansion_detected(self):
        d, out = self.ring_buffer()
        ex = expand_memories(d)
        # Corrupt one expanded word latch's update: equivalence must break.
        victim = ex.latches["buf::w3"]
        victim.next = victim.expr + 1
        r = check_equivalence(d, ex, [(out, ex.latches["out"].expr)],
                              max_depth=10)
        assert r.status == "cex"


class TestSharedArbitraryInit:
    def make_reader(self, name, twist=False):
        d = Design(name)
        addr = d.input("addr", 3)
        mem = d.memory("t", addr_width=3, data_width=4, init=None)
        mem.write(0).connect(addr=d.const(0, 3), data=d.const(0, 4), en=0)
        rd = mem.read(0).connect(addr=addr, en=1)
        out = d.latch("o", 4, init=0)
        out.next = rd + 1 if twist else rd
        return d, out.expr

    def test_groups_pair_same_named_memories(self):
        a, __ = self.make_reader("a")
        b, __ = self.make_reader("b")
        groups = shared_init_groups(a, b)
        assert groups == (frozenset({f"a{SIDE_SEP}t", f"b{SIDE_SEP}t"}),)

    def test_known_init_memories_not_grouped(self):
        a = Design("a")
        m = a.memory("t", addr_width=2, data_width=2, init=0)
        m.write(0).connect(addr=a.const(0, 2), data=a.const(0, 2), en=0)
        m.read(0).connect(addr=a.const(0, 2), en=1)
        b, __ = self.make_reader("b")
        assert shared_init_groups(a, b) == ()

    def test_shared_init_makes_readers_equal(self):
        a, oa = self.make_reader("a")
        b, ob = self.make_reader("b")
        r = check_equivalence(a, b, [(oa, ob)], max_depth=6,
                              share_arbitrary_init=True)
        assert r.status == "bounded"

    def test_unshared_init_differs(self):
        a, oa = self.make_reader("a")
        b, ob = self.make_reader("b")
        r = check_equivalence(a, b, [(oa, ob)], max_depth=6,
                              share_arbitrary_init=False)
        assert r.status == "cex"

    def test_twisted_reader_differs_even_shared(self):
        a, oa = self.make_reader("a")
        b, ob = self.make_reader("b", twist=True)
        r = check_equivalence(a, b, [(oa, ob)], max_depth=6,
                              share_arbitrary_init=True)
        assert r.status == "cex"

    def test_bad_group_geometry_rejected(self):
        from repro.bmc.engine import BmcEngine, BmcOptions
        d = Design("g")
        m1 = d.memory("m1", addr_width=2, data_width=2, init=None)
        m2 = d.memory("m2", addr_width=3, data_width=2, init=None)
        for m in (m1, m2):
            m.write(0).connect(addr=d.const(0, m.addr_width),
                               data=d.const(0, 2), en=0)
            m.read(0).connect(addr=d.const(0, m.addr_width), en=1)
        d.invariant("p", d.const(1, 1))
        opts = BmcOptions(shared_init_memories=(frozenset({"m1", "m2"}),))
        with pytest.raises(ValueError, match="geometr"):
            BmcEngine(d, "p", opts)

    def test_unknown_group_member_rejected(self):
        from repro.bmc.engine import BmcEngine, BmcOptions
        d = Design("g")
        d.invariant("p", d.const(1, 1))
        opts = BmcOptions(shared_init_memories=(frozenset({"nope"}),))
        with pytest.raises(ValueError, match="not in design"):
            BmcEngine(d, "p", opts)
