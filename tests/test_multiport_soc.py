"""Multiport SoC (Industry Design II analog): the full paper flow."""


from repro.bmc import BmcOptions, bmc2, bmc3, verify
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.props import free_memory_reads, prove_with_memory_invariant
from repro.sim import Simulator

PARAMS = MultiportSocParams(addr_width=3, data_width=4, counter_width=3,
                            num_properties=4)


class TestDesign:
    def test_memory_structure(self):
        d = build_multiport_soc(PARAMS)
        mem = d.memories["table"]
        assert mem.num_read_ports == 3 and mem.num_write_ports == 1
        assert mem.init == 0

    def test_simulation_we_stays_inactive(self):
        d = build_multiport_soc(PARAMS)
        sim = Simulator(d)
        for cyc in range(200):
            sim.begin_cycle({"tick": 1, "wr_req": 1, "data_in": 7,
                             "addr_a": cyc % 8})
            assert sim.eval(d.latches["we_reg"].expr) == 0
            assert sim.eval(d.properties["we_or_wd_zero"].expr) == 1
            sim.commit_cycle()
        assert sim.memories["table"] == {}  # never written


class TestPaperFlow:
    def test_step1_naive_abstraction_spurious_witnesses(self):
        """Paper: 'spurious witnesses at depth 7 if we abstract the memory'."""
        d = build_multiport_soc(PARAMS)
        freed = free_memory_reads(d, "table")
        r = verify(freed, "alarm_mode_0", BmcOptions(find_proof=False,
                                                     max_depth=10))
        assert r.falsified
        assert r.depth == 4  # our pipeline is 3 stages + arming
        # spuriousness is the point: EMM below disagrees

    def test_step2_emm_finds_no_witness(self):
        """Paper: 'using EMM, no witnesses up to depth 200'."""
        d = build_multiport_soc(PARAMS)
        r = verify(d, "alarm_mode_0", bmc2(max_depth=12))
        assert r.status == "bounded"

    def test_step3_invariant_proved_by_backward_induction(self):
        """Paper: G(WE=0 or WD=0) proved by backward induction at depth 2."""
        d = build_multiport_soc(PARAMS)
        r = verify(d, "we_or_wd_zero", bmc3(max_depth=10, pba=False))
        assert r.proved, r.describe()
        assert r.method == "backward"
        assert r.depth <= 2

    def test_step4_invariant_flow_proves_all_alarms(self):
        """Paper: memory replaced by rd=0, properties proved by induction."""
        d = build_multiport_soc(PARAMS)
        alarms = [n for n in d.properties if n.startswith("alarm_")]
        flow = prove_with_memory_invariant(
            d, "table", invariant_name="we_or_wd_zero",
            property_names=alarms,
            invariant_options=BmcOptions(max_depth=10),
            property_options=BmcOptions(max_depth=12))
        assert flow.all_proved
        for name in alarms:
            assert flow.property_results[name].proved

    def test_explicit_also_proves_invariant(self):
        """Cross-check the invariant on the explicit model (paper: 78s)."""
        from repro.design import expand_memories
        from repro.bmc import bmc1
        d = expand_memories(build_multiport_soc(PARAMS))
        r = verify(d, "we_or_wd_zero", bmc1(max_depth=6, pba=False))
        assert r.proved


class TestCounterInvariant:
    def test_error_mode_unreachable(self):
        d = build_multiport_soc(PARAMS)
        d.reach("err_on", d.latches["err"].expr)
        r = verify(d, "err_on", bmc3(max_depth=12, pba=False))
        assert r.proved, r.describe()  # unreachable


class TestBddLeg:
    """The paper: 'Our BDD-based model checker was unable to build even
    the transition relation' — the explicit model blows the node budget,
    while the invariant-reduced (memory-free) model is easy for BMC."""

    def test_bdd_blows_up_on_explicit_model(self):
        from repro.bdd import bdd_model_check
        from repro.design import expand_memories
        ex = expand_memories(build_multiport_soc(PARAMS))
        r = bdd_model_check(ex, "we_or_wd_zero", node_limit=20_000)
        assert r.status == "limit"

    def test_bdd_proves_on_reduced_model(self):
        # A monolithic transition relation with a naive static order is
        # sensitive to width, so the BDD leg runs a narrower instance —
        # the point is the contrast with the explicit model's blowup.
        from repro.bdd import bdd_model_check
        from repro.props import abstract_memory_reads
        small = MultiportSocParams(addr_width=2, data_width=2,
                                   counter_width=3, num_properties=2)
        reduced = abstract_memory_reads(build_multiport_soc(small), "table")
        r = bdd_model_check(reduced, "alarm_mode_0", node_limit=2_000_000)
        assert r.proved, r.describe()
