"""Differential and regression tests for the fast solver back-end.

The fast CDCL loop (blocker literals, dedicated binary watch lists,
LBD clause tiers, root-level clause shrinking, assumption-trail reuse)
must be *observationally identical* to the historical baseline loop:
same verdicts, sound models, sound failed-assumption sets, checkable
proofs.  The baseline (``Solver(fast=False)`` /
``BmcOptions(solver_baseline=True)``) is kept precisely to be the
differential oracle here and in ``benchmarks/bench_solver_wall.py``.
"""

import random

import pytest

from repro.bmc import BmcOptions, verify, verify_many
from repro.sat import Solver, certify_unsat
from repro.sim.fuzzfarm import build_fuzz_netlist


# ---------------------------------------------------------------------------
# Random-CNF differential: fast vs baseline on the same formula.
# ---------------------------------------------------------------------------


def random_cnf(seed, nvars=30, nclauses=None):
    """Random CNF near the SAT/UNSAT boundary, rich in binary clauses
    (the fast back-end's dedicated watch list must earn its keep)."""
    rng = random.Random(seed)
    nclauses = nclauses or int(nvars * rng.uniform(3.0, 4.6))
    clauses = []
    for _ in range(nclauses):
        width = rng.choice([2, 2, 2, 3, 3, 3, 3, 4])
        vs = rng.sample(range(1, nvars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def build(clauses, fast, proof=True):
    s = Solver(proof=proof, fast=fast)
    nvars = max(abs(l) for c in clauses for l in c)
    for _ in range(nvars):
        s.new_var()
    for i, c in enumerate(clauses):
        s.add_clause(c, ("c", i))
    return s


@pytest.mark.parametrize("seed", range(25))
def test_fast_matches_baseline_on_random_cnf(seed):
    clauses = random_cnf(seed)
    fast = build(clauses, fast=True)
    base = build(clauses, fast=False)
    rf = fast.solve()
    rb = base.solve()
    assert rf.sat == rb.sat, seed
    if rf.sat:
        # The model must actually satisfy the formula, clause by clause.
        for c in clauses:
            assert any(fast.model_value(l) for l in c), (seed, c)
    else:
        # The fast proof trace must survive independent RUP checking.
        assert certify_unsat(fast).ok, seed


@pytest.mark.parametrize("seed", range(12))
def test_fast_matches_baseline_under_assumption_sequences(seed):
    """Incremental differential: the same solver objects answer a
    sequence of assumption queries (shared prefixes included, so the
    fast side's trail reuse is live) and must agree round for round."""
    rng = random.Random(1000 + seed)
    clauses = random_cnf(seed, nvars=24)
    fast = build(clauses, fast=True)
    base = build(clauses, fast=False)
    prefix = [1 if rng.random() < 0.5 else -1,
              2 if rng.random() < 0.5 else -2]
    for rnd in range(8):
        extra = [v if rng.random() < 0.5 else -v
                 for v in rng.sample(range(3, 25), rng.randrange(0, 4))]
        assumps = (prefix if rnd % 2 else []) + extra
        rf = fast.solve(assumps)
        rb = base.solve(assumps)
        ctx = (seed, rnd, assumps)
        assert rf.sat == rb.sat, ctx
        if rf.sat:
            for c in clauses:
                assert any(fast.model_value(l) for l in c), ctx
            for a in assumps:
                assert fast.model_value(a), ctx
        else:
            for r in (rf, rb):
                assert set(r.failed_assumptions) <= set(assumps), ctx
            # The failed-assumption set must itself be UNSAT — re-verify
            # it on a fresh baseline solver.
            chk = build(clauses, fast=False, proof=False)
            assert not chk.solve(list(rf.failed_assumptions)).sat, ctx


def test_assumption_trail_reuse_keeps_verdicts_and_saves_levels():
    clauses = random_cnf(18, nvars=20)  # seed chosen SAT under the prefix
    fast = build(clauses, fast=True, proof=False)
    prefix = [1, -2, 3]
    queries = [prefix + [4], prefix + [-4], prefix + [5, 6], prefix]
    verdicts = [fast.solve(q).sat for q in queries]
    # The shared 3-assumption prefix must have been kept assigned at
    # least once instead of being cancelled and re-propagated.
    assert fast.stats.trail_saved_levels > 0
    for q, got in zip(queries, verdicts):
        chk = build(clauses, fast=False, proof=False)
        assert chk.solve(q).sat == got, q


def test_clause_addition_invalidates_saved_trail():
    """add_clause cancels to level 0; a later solve must re-propagate
    the (possibly changed) implications rather than trust stale ones."""
    s = Solver(proof=False, fast=True)
    for _ in range(4):
        s.new_var()
    s.add_clause([1, 2])
    assert s.solve([1, 3]).sat
    s.add_clause([-1, -3])  # now 1 and 3 conflict
    r = s.solve([1, 3])
    assert not r.sat
    assert set(r.failed_assumptions) <= {1, 3}


# ---------------------------------------------------------------------------
# LBD tiers: glue <= LBD_CORE clauses are pinned across reductions.
# ---------------------------------------------------------------------------


def hard_3sat(seed, nvars=60, ratio=4.3):
    """Uniform 3-SAT at the hardness ratio — enough conflicts to learn a
    populated, tiered clause database."""
    rng = random.Random(seed)
    return [[v if rng.random() < 0.5 else -v
             for v in rng.sample(range(1, nvars + 1), 3)]
            for _ in range(int(nvars * ratio))]


def test_reduce_db_pins_core_glue_clauses():
    clauses = hard_3sat(0)
    s = build(clauses, fast=True, proof=False)
    s._max_learnts = 15.0  # force frequent reductions during search
    s.solve()
    assert s.stats.deleted > 0, "workload never triggered a reduction"
    core_before = [cid for cid in s._learned_ids
                   if s._clauses[cid] is not None
                   and (len(s._clauses[cid]) <= 2
                        or s._clause_lbd.get(cid, 99) <= Solver.LBD_CORE)]
    assert core_before, "workload learned no core-tier clauses"
    deleted_before = s.stats.deleted
    s._reduce_db()
    for cid in core_before:
        assert s._clauses[cid] is not None, cid  # pinned forever
        assert cid in s._learned_ids, cid
    assert s.stats.deleted >= deleted_before


def test_reduce_db_tier2_survives_when_used():
    clauses = hard_3sat(1)
    s = build(clauses, fast=True, proof=False)
    s._max_learnts = 15.0
    s.solve()
    tier2 = [cid for cid in s._learned_ids
             if s._clauses[cid] is not None and len(s._clauses[cid]) > 2
             and Solver.LBD_CORE < s._clause_lbd.get(cid, 99)
             <= Solver.LBD_TIER2]
    if not tier2:
        pytest.skip("workload learned no tier2 clauses at rest")
    s._clause_used.update(tier2)  # mark as used since the last reduce
    s._reduce_db()
    for cid in tier2:
        assert s._clauses[cid] is not None, cid


# ---------------------------------------------------------------------------
# Deadline polling: a conflict-free search must still honor the wall
# deadline (regression — it used to be polled on conflict counts only).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fast", [True, False])
def test_deadline_polled_on_decisions_without_conflicts(monkeypatch, fast):
    import repro.sat.solver as solver_mod

    s = Solver(proof=False, fast=fast)
    n = 400
    for _ in range(n):
        s.new_var()
    for i in range(1, n, 2):
        s.add_clause([i, i + 1])  # satisfiable by any assignment touching
    clock = [0.0]                 # one positive literal: zero conflicts

    def fake_monotonic():
        clock[0] += 0.5
        return clock[0]

    monkeypatch.setattr(solver_mod.time, "monotonic", fake_monotonic)
    r = s.solve(deadline=0.3)
    assert r.unknown, "conflict-free search ran straight through the deadline"
    assert r.limit == "deadline"


# ---------------------------------------------------------------------------
# BMC-level differential: full engine runs, fast vs solver_baseline.
# ---------------------------------------------------------------------------


FAST_OPTS = dict(find_proof=True, pba=True, max_depth=4)


@pytest.mark.parametrize("seed", range(4))
def test_bmc_fast_vs_baseline_verdicts(seed):
    design = build_fuzz_netlist(seed)
    for prop in sorted(design.properties):
        rf = verify(build_fuzz_netlist(seed), prop, BmcOptions(**FAST_OPTS))
        rb = verify(build_fuzz_netlist(seed), prop,
                    BmcOptions(solver_baseline=True, **FAST_OPTS))
        ctx = (seed, prop)
        assert (rf.status, rf.depth, rf.method) == \
            (rb.status, rb.depth, rb.method), ctx
        assert rf.trace_validated == rb.trace_validated, ctx
        if rf.trace is not None:
            assert len(rf.trace.cycles) == len(rb.trace.cycles), ctx
        # PBA core labels: cores are not unique, but both back-ends'
        # accumulated reason sets must be sound, i.e. re-running the
        # *same* back-end reproduces them (determinism) — cross-backend
        # we require equal lengths (one entry per completed depth).
        assert len(rf.latch_reasons) == len(rb.latch_reasons), ctx
        assert len(rf.memory_reasons) == len(rb.memory_reasons), ctx


@pytest.mark.parametrize("seed", range(3))
def test_verify_many_fast_vs_baseline(seed):
    design = build_fuzz_netlist(seed)
    shared_f = verify_many(design, options=BmcOptions(**FAST_OPTS))
    shared_b = verify_many(build_fuzz_netlist(seed),
                           options=BmcOptions(solver_baseline=True,
                                              **FAST_OPTS))
    assert set(shared_f) == set(shared_b) == set(design.properties)
    for name in shared_f:
        rf, rb = shared_f[name], shared_b[name]
        assert (rf.status, rf.depth, rf.method) == \
            (rb.status, rb.depth, rb.method), (seed, name)


def test_verify_many_shares_assumption_trail():
    """Depth-major scheduling on one session must actually exercise the
    solver's saved-trail path (the whole point of the check ordering)."""
    design = build_fuzz_netlist(1)
    results = verify_many(design,
                          options=BmcOptions(find_proof=False, max_depth=4))
    saved = max(r.stats.solver["trail_saved_levels"]
                for r in results.values())
    assert saved > 0


def test_baseline_engine_reports_zero_saved_levels():
    design = build_fuzz_netlist(1)
    results = verify_many(design,
                          options=BmcOptions(find_proof=False, max_depth=4,
                                             solver_baseline=True))
    assert all(r.stats.solver["trail_saved_levels"] == 0
               for r in results.values())
