"""Property-based tests: solver vs brute force, core sufficiency."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sat import Solver


def brute_force_sat(num_vars, clauses, extra_units=()):
    all_clauses = [list(c) for c in clauses] + [[u] for u in extra_units]
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in all_clauses:
            if not any((bits[abs(lit) - 1] if lit > 0 else not bits[abs(lit) - 1])
                       for lit in clause):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_instances(draw, max_vars=7, max_clauses=28):
    nv = draw(st.integers(1, max_vars))
    lits = st.integers(1, nv).map(lambda v: v).flatmap(
        lambda v: st.sampled_from([v, -v]))
    clause = st.lists(lits, min_size=1, max_size=4)
    clauses = draw(st.lists(clause, min_size=1, max_size=max_clauses))
    return nv, clauses


@settings(max_examples=120, deadline=None)
@given(cnf_instances())
def test_agrees_with_brute_force(instance):
    nv, clauses = instance
    s = Solver()
    for _ in range(nv):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    result = s.solve()
    assert result.sat == brute_force_sat(nv, clauses)


@settings(max_examples=120, deadline=None)
@given(cnf_instances())
def test_models_satisfy_all_clauses(instance):
    nv, clauses = instance
    s = Solver()
    for _ in range(nv):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    if s.solve().sat:
        model = [s.model_value(v) for v in range(1, nv + 1)]
        for c in clauses:
            assert any((model[abs(lit) - 1] if lit > 0 else not model[abs(lit) - 1])
                       for lit in c)


@settings(max_examples=100, deadline=None)
@given(cnf_instances())
def test_unsat_cores_are_unsat(instance):
    nv, clauses = instance
    s = Solver()
    for _ in range(nv):
        s.new_var()
    cid_map = {}
    for c in clauses:
        cid = s.add_clause(c)
        if cid >= 0:
            cid_map[cid] = c
    if s.solve().sat:
        return
    core = s.core_clause_ids()
    assert core <= set(cid_map), "core must reference original clauses"
    s2 = Solver(proof=False)
    for _ in range(nv):
        s2.new_var()
    for cid in core:
        s2.add_clause(cid_map[cid])
    assert not s2.solve().sat, "core must be sufficient for UNSAT"


@settings(max_examples=100, deadline=None)
@given(cnf_instances(max_vars=6, max_clauses=20),
       st.lists(st.integers(1, 6).flatmap(
           lambda v: st.sampled_from([v, -v])), min_size=1, max_size=4))
def test_assumptions_match_added_units(instance, assumptions):
    nv, clauses = instance
    assumptions = [a for a in set(assumptions) if abs(a) <= nv]
    if not assumptions:
        return
    s = Solver()
    for _ in range(nv):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    if s.is_broken:
        return
    result = s.solve(assumptions)
    expected = brute_force_sat(nv, clauses, extra_units=assumptions)
    assert result.sat == expected
    if not result.sat:
        assert set(result.failed_assumptions) <= set(assumptions)
        # failed assumptions + core must be jointly unsatisfiable
        core_clauses = [c for cid, c in _cid_map(s, clauses).items()
                        if cid in s.core_clause_ids()]
        s2 = Solver(proof=False)
        for _ in range(nv):
            s2.new_var()
        for c in core_clauses:
            s2.add_clause(c)
        for a in result.failed_assumptions:
            s2.add_clause([a])
        assert not s2.solve().sat


def _cid_map(solver, clauses):
    # Re-derive the cid->clause map by re-adding in a twin solver.
    twin = Solver()
    for _ in range(solver.num_vars):
        twin.new_var()
    out = {}
    for c in clauses:
        cid = twin.add_clause(c)
        if cid >= 0:
            out[cid] = c
    return out


@settings(max_examples=40, deadline=None)
@given(cnf_instances(max_vars=5, max_clauses=14), cnf_instances(max_vars=5, max_clauses=14))
def test_incremental_equals_monolithic(first, second):
    nv = max(first[0], second[0])
    s = Solver()
    for _ in range(nv):
        s.new_var()
    for c in first[1]:
        s.add_clause(c)
    s.solve()
    if s.is_broken:
        return
    for c in second[1]:
        s.add_clause(c)
    incremental = s.solve().sat if not s.is_broken else False
    assert incremental == brute_force_sat(nv, first[1] + second[1])
