"""Differential harness over the full encoder/option matrix.

One harness instead of per-feature one-off tests (the modular-
verification argument of RealityCheck, PAPERS.md): every encoder/option
combination — {hybrid, gates} x {strash, addr_dedup, chain_share}
on/off — is run on the same workloads and cross-checked

* against the **explicit-model oracle**: the design with its memories
  expanded into registers (``repro.design.explicit.expand_memories``)
  verified without any EMM constraints.  Bounded falsification is
  exactly comparable across models, so verdicts, counterexample depths
  and trace validity must coincide at every depth;
* against **each other** under induction + PBA: proof statuses, depths,
  methods, and the accumulated latch/memory reason sets must be
  identical across all option combinations of an encoding — options are
  size optimisations and must be invisible to every observable outcome.

Workloads are randomized small netlists (multi-port, recurring address
cones, known/symbolic init — the shapes every option path bites on)
plus the fifo/stack/cache case studies at shallow depth.  The expensive
corners (the full 2^4 option cross-product, the deeper case-study
sweeps) are marked ``slow`` for the nightly job.
"""

import itertools
import random

import pytest

from repro.bmc import BmcOptions, verify, verify_many
from repro.casestudies.cache import CacheParams, build_cache
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.stack_machine import StackMachineParams, build_stack_machine
from repro.design import Design, build_miter, expand_memories
from repro.sim import Stimulus, default_oracle

#: The option axes of the matrix, as BmcOptions kwargs.  The raw hybrid
#: CNF back-end (``emm_hybrid_strash=False``) is retired from the
#: default axes — the AIG-routed chain has been the production path
#: since PR 5 — and survives as the explicit paper-exact ablation combo
#: below plus the nightly full matrix.
OPTION_AXES = ("strash", "emm_addr_dedup", "emm_chain_share")

#: Paper-exact ablation: everything on but the hybrid chain emitted as
#: raw per-frame CNF (the closed-form accounting baseline).
RAW_HYBRID_ABLATION = dict(dict.fromkeys(OPTION_AXES, True),
                           emm_hybrid_strash=False)

#: Representative sub-matrix for per-push runs: everything on,
#: everything off, each axis toggled off alone, and the raw-hybrid
#: ablation.  The full cross-product (including the retired
#: ``emm_hybrid_strash`` axis) runs nightly (`slow`).
REPRESENTATIVE = [dict.fromkeys(OPTION_AXES, True),
                  dict.fromkeys(OPTION_AXES, False)] + [
    {axis: (axis != off) for axis in OPTION_AXES} for off in OPTION_AXES
] + [RAW_HYBRID_ABLATION]

FULL_MATRIX = [dict(zip(OPTION_AXES + ("emm_hybrid_strash",), bits))
               for bits in itertools.product((True, False), repeat=4)]


def random_netlist(seed):
    """Random single-memory workload with recurring address cones.

    Shapes chosen so every optimisation path fires somewhere across the
    seeds: multi-write ports (disjoint parities, keeping the no-race
    assumption), known and arbitrary initial memory, and addresses
    drawn from constants, a shared input and a walking latch.
    """
    rng = random.Random(seed)
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3])
    w_ports = rng.choice([1, 2])
    r_ports = rng.choice([2, 3])
    init = rng.choice([0, None, 3])
    d = Design(f"rand{seed}")
    t = d.latch("t", aw, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init)
    shared = d.input("sa", aw)
    addr_pool = [lambda: d.const(rng.randrange(1 << aw), aw),
                 lambda: shared,
                 lambda: t.expr]
    for w in range(w_ports):
        en = d.input(f"we{w}", 1)
        if w_ports > 1:
            addr = d.input(f"wa{w}", aw)
            en = en & addr[0].eq(w & 1)
        else:
            addr = rng.choice(addr_pool)()
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    for r in range(r_ports):
        mem.read(r).connect(addr=rng.choice(addr_pool)(), en=1)
    target = rng.randrange(1 << dw)
    d.reach("hit", mem.read(0).data.eq(target))
    return d, "hit"


def multi_property_netlist(seed):
    """``random_netlist`` grown to several properties of both kinds —
    the shape the shared-session path must keep observationally
    identical to per-property engines."""
    rng = random.Random(10_000 + seed)
    d, _ = random_netlist(seed)
    mem = d.memories["m"]
    d.reach("hit2", mem.read(1).data.eq(rng.randrange(1 << mem.data_width)))
    t = d.latches["t"]
    d.invariant("t_in_range", t.expr.ult((1 << t.width) - 1) |
                t.expr.eq((1 << t.width) - 1))
    return d


def falsify(design, prop, depth, **options):
    return verify(design, prop,
                  BmcOptions(find_proof=False, max_depth=depth, **options))


def run_matrix(design, prop, depth, combos):
    """Bounded falsification of every (encoding, combo) pair."""
    out = {}
    for encoding in ("hybrid", "gates"):
        for combo in combos:
            key = (encoding,) + tuple(sorted(combo.items()))
            out[key] = falsify(design, prop, depth,
                               emm_encoding=encoding, **combo)
    return out


def assert_oracle_parity(results, oracle, ctx, design=None, prop=None):
    """Every matrix run agrees with the explicit-model oracle.

    With ``design``/``prop`` given, counterexample traces are
    additionally revalidated through the *concrete* oracle API
    (:func:`repro.sim.default_oracle`) — an independent replay outside
    the engine's own validation path.
    """
    checker = default_oracle(design) if design is not None else None
    for key, r in results.items():
        assert r.status == oracle.status, (ctx, key, r.status, oracle.status)
        assert r.depth == oracle.depth, (ctx, key)
        if r.status == "cex":
            assert r.trace_validated is True, (ctx, key)
            assert oracle.trace_validated is True, ctx
            assert len(r.trace.cycles) == len(oracle.trace.cycles), (ctx, key)
            if checker is not None:
                v = checker.check(prop, Stimulus.from_trace(r.trace))
                assert v.failed and v.cycle == r.depth, (ctx, key, v)


# ---------------------------------------------------------------------------
# Randomized netlists vs the explicit oracle (representative sub-matrix).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_random_netlists_match_explicit_oracle(seed):
    design, prop = random_netlist(seed)
    depth = 4
    oracle = falsify(expand_memories(design), prop, depth, use_emm=False)
    results = run_matrix(design, prop, depth, REPRESENTATIVE)
    assert_oracle_parity(results, oracle, seed, design=design, prop=prop)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(6, 14))
def test_random_netlists_full_matrix_nightly(seed):
    """The full 2^4 option cross-product per encoding (nightly)."""
    design, prop = random_netlist(seed)
    depth = 5
    oracle = falsify(expand_memories(design), prop, depth, use_emm=False)
    results = run_matrix(design, prop, depth, FULL_MATRIX)
    assert_oracle_parity(results, oracle, seed, design=design, prop=prop)


# ---------------------------------------------------------------------------
# Two-memory miters: cross-memory comparator sharing on/off.
# ---------------------------------------------------------------------------


def miter_netlist(seed, twist=False):
    """Miter of two copies of ``random_netlist(seed)`` — a randomized
    *two-memory* design whose ``a::m``/``b::m`` copies see identical
    address cones wherever the cone is input- or constant-driven, the
    workload cross-memory comparator sharing is built for.  ``twist``
    pairs read port 0 against read port 1 (different address cones), so
    the ``equiv`` property gets a falsifiable branch too.
    """
    a, __ = random_netlist(seed)
    b, __ = random_netlist(seed)
    ra = a.memories["m"].read(0).data
    rb = b.memories["m"].read(1 if twist else 0).data
    return build_miter(a, b, [(ra, rb)])


#: Everything-on combos with the cross-memory registry toggled — the
#: sharing must be invisible to every observable outcome.
CROSS_MEM_COMBOS = [dict(dict.fromkeys(OPTION_AXES, True),
                         emm_cross_mem_share=share)
                    for share in (True, False)]


@pytest.mark.parametrize("twist", [False, True], ids=["same", "twist"])
@pytest.mark.parametrize("seed", range(4))
def test_two_memory_miters_match_explicit_oracle(seed, twist):
    design = miter_netlist(seed, twist)
    depth = 4
    oracle = falsify(expand_memories(design), "equiv", depth, use_emm=False)
    results = run_matrix(design, "equiv", depth, CROSS_MEM_COMBOS)
    assert_oracle_parity(results, oracle, (seed, twist), design=design,
                         prop="equiv")


@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
@pytest.mark.parametrize("seed", [0, 2])
def test_miter_pba_reasons_invariant_across_share(seed, encoding):
    """PBA latch/memory reasons must not depend on whether comparator
    clauses were shared across the miter's memory copies — the
    multi-label joining is exactly what keeps the shared clause
    attributed to both memories."""
    design = miter_netlist(seed)
    runs = prove_matrix(design, "equiv", 4, encoding, CROSS_MEM_COMBOS)
    assert_observable_parity(runs, (seed, encoding))


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(4, 8))
def test_two_memory_miters_full_matrix_nightly(seed):
    """Nightly row: the full option cross-product x share on/off."""
    design = miter_netlist(seed)
    depth = 5
    oracle = falsify(expand_memories(design), "equiv", depth, use_emm=False)
    combos = [dict(c, emm_cross_mem_share=share)
              for c in FULL_MATRIX for share in (True, False)]
    results = run_matrix(design, "equiv", depth, combos)
    assert_oracle_parity(results, oracle, seed, design=design, prop="equiv")


# ---------------------------------------------------------------------------
# Induction + PBA: options must be invisible within an encoding.
# ---------------------------------------------------------------------------


def prove_matrix(design, prop, depth, encoding, combos):
    out = []
    for combo in combos:
        out.append((combo, verify(design, prop, BmcOptions(
            find_proof=True, pba=True, max_depth=depth,
            emm_encoding=encoding, **combo))))
    return out


def assert_observable_parity(runs, ctx):
    (ref_combo, ref), rest = runs[0], runs[1:]
    for combo, r in rest:
        c = (ctx, ref_combo, combo)
        assert r.status == ref.status, (c, r.status, ref.status)
        assert r.depth == ref.depth, c
        assert r.method == ref.method, c
        assert r.trace_validated == ref.trace_validated, c
        assert r.latch_reasons == ref.latch_reasons, c
        assert r.memory_reasons == ref.memory_reasons, c


@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
@pytest.mark.parametrize("seed", [1, 3, 5])
def test_pba_reasons_invariant_across_options(seed, encoding):
    design, prop = random_netlist(seed)
    runs = prove_matrix(design, prop, 4, encoding, REPRESENTATIVE)
    assert_observable_parity(runs, (seed, encoding))


@pytest.mark.slow
@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
@pytest.mark.parametrize("seed", [0, 2, 4])
def test_pba_reasons_full_matrix_nightly(seed, encoding):
    design, prop = random_netlist(seed)
    runs = prove_matrix(design, prop, 4, encoding, FULL_MATRIX)
    assert_observable_parity(runs, (seed, encoding))


# ---------------------------------------------------------------------------
# Shared-session runs vs fresh per-property engines.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
@pytest.mark.parametrize("seed", range(4))
def test_shared_session_matches_fresh_engines_random(seed, encoding):
    """N properties on one encoding session agree with N fresh engines
    on verdict, depth, method and trace shape — checks are assumption
    sets, invisible to one another.  (Reason *sets* are compared in
    test_session_service.py: unsat cores are not unique, so a shared
    solver may pick a different-but-sound core.)"""
    design = multi_property_netlist(seed)
    opts = BmcOptions(find_proof=True, pba=True, max_depth=4,
                      emm_encoding=encoding)
    shared = verify_many(design, options=opts)
    assert set(shared) == set(design.properties)
    for name, r in shared.items():
        fresh = verify(multi_property_netlist(seed), name, opts)
        ctx = (seed, encoding, name)
        assert r.status == fresh.status, (ctx, r.status, fresh.status)
        assert r.depth == fresh.depth, ctx
        assert r.method == fresh.method, ctx
        assert r.trace_validated == fresh.trace_validated, ctx
        if r.trace is not None:
            assert len(r.trace.cycles) == len(fresh.trace.cycles), ctx
        assert len(r.latch_reasons) == len(fresh.latch_reasons), ctx


@pytest.mark.slow
@pytest.mark.parametrize("encoding", ["hybrid", "gates"])
@pytest.mark.parametrize("seed", range(4, 10))
def test_shared_session_matches_fresh_engines_random_nightly(seed, encoding):
    design = multi_property_netlist(seed)
    opts = BmcOptions(find_proof=True, pba=True, max_depth=5,
                      emm_encoding=encoding)
    shared = verify_many(design, options=opts)
    for name, r in shared.items():
        fresh = verify(multi_property_netlist(seed), name, opts)
        ctx = (seed, encoding, name)
        assert (r.status, r.depth, r.method) == \
            (fresh.status, fresh.depth, fresh.method), ctx


# ---------------------------------------------------------------------------
# Case studies at shallow depth: fifo / stack machine / cache.
# ---------------------------------------------------------------------------


def tiny_fifo():
    return build_fifo(FifoParams(addr_width=2, data_width=2))


def tiny_stack():
    return build_stack_machine(StackMachineParams(addr_width=2, data_width=2))


def tiny_cache():
    return build_cache(CacheParams(index_width=1, tag_width=2, data_width=2))


CASE_STUDIES = [
    # (builder, property, depth) — a reachable witness and a bounded
    # invariant per design keeps both verdict branches exercised.
    (tiny_fifo, "can_fill", 6),
    (tiny_fifo, "empty_full_exclusive", 5),
    (tiny_stack, "can_reach_depth3", 4),
    (tiny_stack, "sp_in_range", 4),
    (tiny_cache, "reach_hit", 4),
    (tiny_cache, "read_after_fill", 3),
]


@pytest.mark.parametrize("builder,prop,depth", CASE_STUDIES,
                         ids=[f"{b.__name__}-{p}" for b, p, _ in CASE_STUDIES])
def test_case_studies_match_explicit_oracle(builder, prop, depth):
    design = builder()
    oracle = falsify(expand_memories(design), prop, depth, use_emm=False)
    results = run_matrix(design, prop, depth,
                         [dict.fromkeys(OPTION_AXES, True),
                          dict.fromkeys(OPTION_AXES, False)])
    assert_oracle_parity(results, oracle, prop, design=design, prop=prop)


@pytest.mark.slow
@pytest.mark.parametrize("builder,prop,depth", CASE_STUDIES,
                         ids=[f"{b.__name__}-{p}" for b, p, _ in CASE_STUDIES])
def test_case_studies_representative_matrix_nightly(builder, prop, depth):
    design = builder()
    oracle = falsify(expand_memories(design), prop, depth, use_emm=False)
    results = run_matrix(design, prop, depth, REPRESENTATIVE)
    assert_oracle_parity(results, oracle, prop)


# ---------------------------------------------------------------------------
# Mass trials through the fuzz farm (repro.sim.fuzzfarm).
# ---------------------------------------------------------------------------


def farm_failure_message(report):
    lines = [report.summary()]
    for div in report.divergences:
        lines.append(f"  [{div.kind}] seed={div.seed} prop={div.prop} "
                     f"{div.detail}")
        if div.stimulus is not None:
            lines.append(f"    reproducer: {div.stimulus}")
    lines += [f"  artifact: {p}" for p in report.artifacts]
    return "\n".join(lines)


def test_fuzzfarm_smoke(tmp_path):
    """Per-push farm smoke: a small batch through the whole differential
    (vector sim vs scalar vs explicit vs both BMC encodings)."""
    from repro.sim.fuzzfarm import FarmConfig, run_farm

    report = run_farm(FarmConfig(batch=32, depth=4, seed=0, rounds=2,
                                 bmc_depth=3, scalar_lanes=2,
                                 explicit_lanes=1, out_dir=str(tmp_path)))
    assert report.ok, farm_failure_message(report)
    assert report.trials > 64


@pytest.mark.slow
def test_fuzzfarm_mass_trials_nightly(tmp_path):
    """The nightly farm config: >= 1000 netlist x option x stimulus
    trials, seed-budgeted, with auto-shrunk reproducers persisted for
    the CI artifact upload on failure."""
    from repro.sim.fuzzfarm import FarmConfig, run_farm

    report = run_farm(FarmConfig(batch=128, depth=6, seed=1,
                                 min_trials=1000, budget_s=600.0,
                                 bmc_depth=4, scalar_lanes=4,
                                 explicit_lanes=2, out_dir=str(tmp_path)))
    assert report.trials >= 1000, report.summary()
    assert report.ok, farm_failure_message(report)
