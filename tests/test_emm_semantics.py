"""Differential tests: EMM vs explicit modeling vs simulator.

The heart of the reproduction's validation — for crafted and random
memory workloads, the EMM path (BMC-2/BMC-3 on the design with memories
removed) must agree with the explicit baseline (BMC-1 on the expanded
design) on verdicts and counterexample depths, and every concrete
counterexample must replay on the reference simulator.
"""

import random

import pytest

from repro.bmc import BmcOptions, bmc1, bmc2, bmc3, verify
from repro.design import Design, expand_memories


def _verify_both(make_design, prop, max_depth=8, find_proof=False):
    emm_opts = BmcOptions(use_emm=True, find_proof=find_proof,
                          max_depth=max_depth)
    r_emm = verify(make_design(), prop, emm_opts)
    ex_opts = BmcOptions(use_emm=False, find_proof=find_proof,
                         max_depth=max_depth)
    r_ex = verify(expand_memories(make_design()), prop, ex_opts)
    assert r_emm.status == r_ex.status, (r_emm.describe(), r_ex.describe())
    if r_emm.status == "cex":
        assert r_emm.depth == r_ex.depth
        assert r_emm.trace_validated is True
        assert r_ex.trace_validated is True
    return r_emm, r_ex


class TestForwardingBasics:
    def _rw_design(self):
        d = Design("rw")
        waddr = d.input("waddr", 2)
        wdata = d.input("wdata", 4)
        we = d.input("we", 1)
        raddr = d.input("raddr", 2)
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", 2, 4, init=0)
        mem.write(0).connect(addr=waddr, data=wdata, en=we)
        rd = mem.read(0).connect(addr=raddr, en=1)
        d.invariant("never9", rd.ne(9))
        d.invariant("always0", rd.eq(0))
        return d

    def test_write_then_read_found_at_depth1(self):
        r_emm, __ = _verify_both(self._rw_design, "never9")
        assert r_emm.status == "cex" and r_emm.depth == 1

    def test_zero_init_holds_at_depth0(self):
        # always0 is violated only after a nonzero write: depth exactly 1.
        r_emm, __ = _verify_both(self._rw_design, "always0")
        assert r_emm.status == "cex" and r_emm.depth == 1

    def test_same_cycle_write_invisible(self):
        def make():
            d = Design("t")
            wdata = d.input("wdata", 4)
            t = d.latch("t", 1, init=0)
            t.next = d.const(1, 1)
            mem = d.memory("m", 2, 4, init=0)
            # Write and read address 0 in the SAME cycle, always.
            mem.write(0).connect(addr=0, data=wdata, en=1)
            rd = mem.read(0).connect(addr=0, en=1)
            # At cycle 0 the read must still see the initial 0 even though
            # a write to the same address is in flight.
            d.invariant("init_visible", t.expr.nonzero() | rd.eq(0))
            return d
        r_emm, __ = _verify_both(make, "init_visible", max_depth=4)
        assert r_emm.status == "bounded"  # holds: no counterexample

    def test_most_recent_write_wins(self):
        def make():
            d = Design("t")
            cnt = d.latch("cnt", 2, init=0)
            cnt.next = cnt.expr + 1
            mem = d.memory("m", 2, 4, init=0)
            # Writes 1, then 2, then 3 ... to address 0 each cycle.
            mem.write(0).connect(addr=0, data=cnt.expr.zext(4) + 1, en=1)
            rd = mem.read(0).connect(addr=0, en=1)
            # At cycle k>0: rd must equal k (the value written at k-1).
            d.invariant("latest", cnt.expr.eq(0) | rd.eq(cnt.expr.zext(4)))
            return d
        r_emm, __ = _verify_both(make, "latest", max_depth=5)
        assert r_emm.status == "bounded"

    def test_distinct_addresses_do_not_alias(self):
        def make():
            d = Design("t")
            t = d.latch("t", 2, init=0)
            t.next = t.expr + 1
            mem = d.memory("m", 2, 4, init=0)
            mem.write(0).connect(addr=1, data=0xF, en=t.expr.eq(0))
            rd = mem.read(0).connect(addr=2, en=1)
            d.invariant("other_addr_stays_zero", rd.eq(0))
            return d
        r_emm, __ = _verify_both(make, "other_addr_stays_zero", max_depth=5)
        assert r_emm.status == "bounded"


class TestMultiPort:
    def test_same_frame_port_priority(self):
        """Two write ports hit the same address: the higher port wins."""
        def make():
            d = Design("t")
            t = d.latch("t", 1, init=0)
            t.next = d.const(1, 1)
            mem = d.memory("m", 2, 4, write_ports=2, init=0)
            mem.write(0).connect(addr=0, data=0x1, en=~t.expr)
            mem.write(1).connect(addr=0, data=0x2, en=~t.expr)
            rd = mem.read(0).connect(addr=0, en=t.expr)
            d.invariant("port1_wins", ~t.expr | rd.eq(2))
            return d
        r_emm, __ = _verify_both(make, "port1_wins", max_depth=3)
        assert r_emm.status == "bounded"

    def test_three_read_ports_consistent(self):
        def make():
            d = Design("t")
            a = d.input("a", 2)
            t = d.latch("t", 2, init=0)
            t.next = t.expr + 1
            mem = d.memory("m", 2, 4, read_ports=3, init=0)
            mem.write(0).connect(addr=t.expr, data=t.expr.zext(4), en=1)
            r0 = mem.read(0).connect(addr=a, en=1)
            r1 = mem.read(1).connect(addr=a, en=1)
            r2 = mem.read(2).connect(addr=a, en=1)
            d.invariant("coherent", r0.eq(r1) & r1.eq(r2))
            return d
        r_emm, __ = _verify_both(make, "coherent", max_depth=5)
        assert r_emm.status == "bounded"

    def test_cross_port_forwarding(self):
        """Port 0 writes, port 1 reads the value back next cycle."""
        def make():
            d = Design("t")
            data = d.input("data", 4)
            prev = d.latch("prev", 4, init=0)
            t = d.latch("t", 2, init=0)
            t.next = t.expr + 1
            prev.next = data
            mem = d.memory("m", 2, 4, read_ports=2, write_ports=2, init=0)
            mem.write(0).connect(addr=1, data=data, en=1)
            mem.write(1).connect(addr=2, data=0, en=0)
            rd = mem.read(1).connect(addr=1, en=1)
            mem.read(0).connect(addr=0, en=1)
            d.invariant("forwarded", t.expr.eq(0) | rd.eq(prev.expr))
            return d
        r_emm, __ = _verify_both(make, "forwarded", max_depth=5)
        assert r_emm.status == "bounded"


@pytest.mark.parametrize("seed", range(10))
def test_random_workloads_agree(seed):
    """Random memory workloads: EMM and explicit verdicts must match."""
    rng = random.Random(seed)
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3, 4])
    n_read = rng.choice([1, 2])
    n_write = rng.choice([1, 2])
    threshold = rng.randrange(0, 1 << dw)
    cmp_cycle = rng.randrange(1, 4)

    def make():
        d = Design(f"rand{seed}")
        t = d.latch("t", 3, init=0)
        t.next = t.expr + 1
        mem = d.memory("m", aw, dw, read_ports=n_read,
                       write_ports=n_write, init=0)
        for w in range(n_write):
            waddr = d.input(f"wa{w}", aw)
            wdata = d.input(f"wd{w}", dw)
            wen = d.input(f"we{w}", 1)
            # Avoid same-address data races between ports: port w only
            # writes addresses with low bits == w.
            guard = waddr[0].eq(w & 1) if n_write > 1 else d.const(1, 1)
            mem.write(w).connect(addr=waddr, data=wdata, en=wen & guard)
        rds = []
        for r in range(n_read):
            raddr = d.input(f"ra{r}", aw)
            rds.append(mem.read(r).connect(addr=raddr, en=1))
        probe = rds[rng.randrange(n_read)]
        d.invariant("p", t.expr.ne(cmp_cycle) | probe.ne(threshold))
        return d

    r_emm = verify(make(), "p", bmc2(max_depth=6))
    r_ex = verify(expand_memories(make()), "p",
                  BmcOptions(use_emm=False, find_proof=False, max_depth=6))
    assert r_emm.status == r_ex.status, (seed, r_emm.describe(), r_ex.describe())
    if r_emm.status == "cex":
        assert r_emm.depth == r_ex.depth
        assert r_emm.trace_validated is True


@pytest.mark.parametrize("seed", range(6))
def test_random_workloads_with_proofs_agree(seed):
    """With induction on, proofs found by EMM match the explicit engine."""
    rng = random.Random(100 + seed)
    dw = rng.choice([2, 3])
    bound = rng.randrange(1, 1 << dw)

    def make():
        d = Design(f"randp{seed}")
        t = d.latch("t", 2, init=0)
        t.next = t.expr + 1
        data = d.input("data", dw)
        mem = d.memory("m", 2, dw, init=0)
        capped = data.ult(bound).ite(data, d.const(0, dw))
        mem.write(0).connect(addr=t.expr, data=capped, en=1)
        rd = mem.read(0).connect(addr=d.input("ra", 2), en=1)
        d.invariant("p", rd.ult(max(bound, 1)))
        return d

    r_emm = verify(make(), "p", bmc3(max_depth=10, pba=False))
    r_ex = verify(expand_memories(make()), "p",
                  bmc1(max_depth=10, pba=False))
    assert r_emm.status == r_ex.status == "proof", (
        seed, r_emm.describe(), r_ex.describe())
