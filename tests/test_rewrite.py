"""Expression rewriting between designs."""

import pytest

from repro.design import Design
from repro.design.rewrite import ExprRewriter
from repro.sim import Simulator


def source_design():
    d = Design("src")
    x = d.input("x", 4)
    lit = d.latch("l", 4, init=1)
    lit.next = lit.expr + x
    mem = d.memory("m", 2, 4, init=0)
    mem.write(0).connect(addr=0, data=x, en=1)
    rd = mem.read(0).connect(addr=0, en=1)
    d.invariant("p", (lit.expr ^ rd).ne(3))
    return d


class TestRewriter:
    def test_leaves_resolved_by_name(self):
        src = source_design()
        dst = Design("dst")
        dst.input("x", 4)
        dl = dst.latch("l", 4, init=1)
        dl.next = dl.expr
        rw = ExprRewriter(src, dst)
        e = rw.rewrite(src.latches["l"].next)
        assert e.design is dst
        assert e.kind == "add"

    def test_missing_input_raises(self):
        src = source_design()
        dst = Design("dst")
        rw = ExprRewriter(src, dst)
        with pytest.raises(KeyError, match="input"):
            rw.rewrite(src.latches["l"].next)

    def test_memread_needs_mapping(self):
        src = source_design()
        dst = Design("dst")
        dst.input("x", 4)
        dl = dst.latch("l", 4, init=1)
        dl.next = dl.expr
        rw = ExprRewriter(src, dst)
        with pytest.raises(KeyError, match="memread"):
            rw.rewrite(src.properties["p"].expr)

    def test_memread_fallback(self):
        src = source_design()
        dst = Design("dst")
        dst.input("x", 4)
        dl = dst.latch("l", 4, init=1)
        dl.next = dl.expr
        rw = ExprRewriter(src, dst,
                          memread_fallback=lambda e: dst.const(0, e.width))
        e = rw.rewrite(src.properties["p"].expr)
        assert e.design is dst

    def test_width_mismatch_in_mapping_rejected(self):
        src = source_design()
        dst = Design("dst")
        dst.input("x", 4)
        rw = ExprRewriter(src, dst)
        rw.memread_map[("m", 0)] = dst.const(0, 2)  # wrong width
        with pytest.raises(ValueError, match="width"):
            rw.rewrite(src.memories["m"].read(0).data)

    def test_constants_and_structure_preserved(self):
        src = Design("s")
        a = src.input("a", 3)
        lit = src.latch("l", 3, init=2)
        lit.next = a.eq(5).ite(lit.expr + 1, lit.expr - 1)
        src.invariant("p", lit.expr.ne(7))
        dst = Design("d2")
        dst.input("a", 3)
        dl = dst.latch("l", 3, init=2)
        rw = ExprRewriter(src, dst)
        dl.next = rw.rewrite(src.latches["l"].next)
        dst.invariant("p", rw.rewrite(src.properties["p"].expr))
        # behavioural equivalence over a stimulus
        seq = [{"a": v} for v in (5, 5, 0, 5, 1, 1)]
        ta = Simulator(src).run(seq)
        tb = Simulator(dst).run(seq)
        for ca, cb in zip(ta.cycles, tb.cycles):
            assert ca["latches"]["l"] == cb["latches"]["l"]
            assert ca["props"]["p"] == cb["props"]["p"]
