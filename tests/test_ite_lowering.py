"""Native ITE lowering in the Tseitin emitter (CnfEmitter, ite=True).

The ``or(and(s, t), and(!s, e))`` shape — every mux the word layer
builds, and xor as the ``t = !e`` special case — must lower to one SAT
variable and four clauses instead of three AND triples, while staying
function-equivalent to the plain lowering and invisible to every
verdict.  The plain path (``ite=False``) stays available as the
ablation the EMM accounting closed forms were derived against.
"""

import itertools

import pytest

from repro.aig.aig import Aig
from repro.aig.tseitin import CnfEmitter
from repro.sat.solver import Solver


def emit_mux(ite, strash=True):
    aig = Aig(strash=strash)
    s = aig.new_input("s")
    t = aig.new_input("t")
    e = aig.new_input("e")
    solver = Solver(proof=False)
    em = CnfEmitter(aig, solver, strash=strash, ite=ite)
    out = em.sat_lit(aig.mux(s, t, e))
    return em, solver, out, [em.sat_lit(x) for x in (s, t, e)]


def assert_function(solver, out, ins, fn):
    """Exhaustively check ``out`` computes ``fn`` over the input lits."""
    for bits in itertools.product([False, True], repeat=len(ins)):
        assumps = [l if b else -l for l, b in zip(ins, bits)]
        r = solver.solve(assumps)
        assert r.sat
        assert solver.model_value(out) == fn(*bits), bits


def test_mux_lowered_to_four_clauses():
    em, solver, out, (ls, lt, le) = emit_mux(ite=True)
    assert em.ites_emitted == 1
    assert em.gates_emitted == 0  # the inner AND nodes got no CNF
    # 3 input vars + 1 ITE output var; 4 ITE clauses.
    assert solver.num_vars == 4
    assert solver.num_clauses == 4
    assert_function(solver, out, [ls, lt, le],
                    lambda s, t, e: t if s else e)


def test_plain_ablation_matches_mux_function():
    em, solver, out, ins = emit_mux(ite=False)
    assert em.ites_emitted == 0
    assert em.gates_emitted == 3  # two inner ANDs + the OR node
    assert_function(solver, out, ins, lambda s, t, e: t if s else e)


@pytest.mark.parametrize("ite", [True, False])
def test_xor_is_the_two_input_ite(ite):
    aig = Aig()
    a = aig.new_input("a")
    b = aig.new_input("b")
    solver = Solver(proof=False)
    em = CnfEmitter(aig, solver, ite=ite)
    out = em.sat_lit(aig.xor_(a, b))
    assert em.ites_emitted == (1 if ite else 0)
    assert_function(solver, out, [em.sat_lit(a), em.sat_lit(b)],
                    lambda a, b: a != b)


def test_ite_cache_shares_repeated_shapes():
    """Two structurally distinct AIG muxes over the same fanins (only
    possible unstrashed) must share one lowered ITE via the cache."""
    aig = Aig(strash=False)
    s = aig.new_input("s")
    t = aig.new_input("t")
    e = aig.new_input("e")
    m1 = aig.mux(s, t, e)
    m2 = aig.mux(s, t, e)
    assert m1 != m2  # unstrashed: distinct nodes
    solver = Solver(proof=False)
    em = CnfEmitter(aig, solver, strash=True, ite=True)
    o1 = em.sat_lit(m1)
    o2 = em.sat_lit(m2)
    assert o1 == o2
    assert em.ites_emitted == 1
    assert em.strash_hits == 1
    assert solver.num_clauses == 4


def test_ite_cache_is_selector_polarity_blind():
    """ITE(!s, t, e) == ITE(s, e, t): the normalized cache key must hit."""
    aig = Aig(strash=False)
    s = aig.new_input("s")
    t = aig.new_input("t")
    e = aig.new_input("e")
    m1 = aig.mux(s, t, e)
    m2 = aig.mux(s ^ 1, e, t)
    solver = Solver(proof=False)
    em = CnfEmitter(aig, solver, strash=True, ite=True)
    o1 = em.sat_lit(m1)
    o2 = em.sat_lit(m2)
    assert o1 == o2
    assert em.ites_emitted == 1


def test_lowered_inner_ands_fall_back_to_plain_triple():
    """When both inner AND cones already have CNF vars, one 3-clause
    triple over the existing vars beats a 4-clause ITE — the detector
    must step aside."""
    aig = Aig()
    s = aig.new_input("s")
    t = aig.new_input("t")
    e = aig.new_input("e")
    inner1 = aig.and_gate(s, t)
    inner2 = aig.and_gate(s ^ 1, e)
    m = aig.or_(inner1, inner2)
    solver = Solver(proof=False)
    em = CnfEmitter(aig, solver, ite=True)
    em.sat_lit(inner1)  # force both inner cones into CNF first
    em.sat_lit(inner2)
    out = em.sat_lit(m)
    assert em.ites_emitted == 0
    assert em.gates_emitted == 3
    assert_function(solver, out,
                    [em.sat_lit(x) for x in (s, t, e)],
                    lambda s, t, e: t if s else e)


def test_mux_word_counter_equivalence():
    """A word-level mux network lowered with and without ITE must agree
    on every output bit for every input assignment (4-bit exhaustive)."""
    def build(ite):
        aig = Aig()
        sel = aig.new_input("sel")
        a = [aig.new_input(f"a{i}") for i in range(2)]
        b = [aig.new_input(f"b{i}") for i in range(2)]
        outs = [aig.xor_(aig.mux(sel, a[i], b[i]), b[1 - i])
                for i in range(2)]
        solver = Solver(proof=False)
        em = CnfEmitter(aig, solver, ite=ite)
        out_lits = [em.sat_lit(o) for o in outs]
        in_lits = [em.sat_lit(x) for x in [sel] + a + b]
        return solver, out_lits, in_lits

    s1, outs1, ins1 = build(True)
    s2, outs2, ins2 = build(False)
    for bits in itertools.product([False, True], repeat=5):
        a1 = [l if v else -l for l, v in zip(ins1, bits)]
        a2 = [l if v else -l for l, v in zip(ins2, bits)]
        assert s1.solve(a1).sat and s2.solve(a2).sat
        got1 = [s1.model_value(o) for o in outs1]
        got2 = [s2.model_value(o) for o in outs2]
        assert got1 == got2, bits


def test_bmc_run_reports_ite_counter():
    from repro.bmc import BmcOptions, verify
    from repro.sim.fuzzfarm import build_fuzz_netlist

    r = verify(build_fuzz_netlist(0), "hit",
               BmcOptions(find_proof=False, max_depth=3))
    assert r.stats.ite_lowered > 0
    assert r.stats.to_dict()["ite_lowered"] == r.stats.ite_lowered
