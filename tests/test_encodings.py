"""Tests for the clause-level cardinality and XOR encodings."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import encodings
from repro.sat.solver import Solver


class Collector:
    """Clause sink + variable allocator backed by a real solver."""

    def __init__(self, num_vars):
        self.solver = Solver(proof=False)
        for _ in range(num_vars):
            self.solver.new_var()

    def add_clause(self, lits):
        self.solver.add_clause(lits)

    def new_var(self):
        return self.solver.new_var()


def count_models(collector, over_vars):
    """Enumerate models projected onto ``over_vars`` via blocking clauses."""
    models = set()
    while True:
        r = collector.solver.solve()
        if not r.sat:
            break
        assignment = tuple(collector.solver.model_value(v) for v in over_vars)
        models.add(assignment)
        collector.add_clause([
            -v if collector.solver.model_value(v) else v for v in over_vars])
    return models


def expected_assignments(n, predicate):
    return {bits for bits in itertools.product([False, True], repeat=n)
            if predicate(sum(bits))}


AMO_ENCODERS = {
    "pairwise": lambda lits, c: encodings.at_most_one_pairwise(lits, c.add_clause),
    "sequential": lambda lits, c: encodings.at_most_one_sequential(
        lits, c.add_clause, c.new_var),
    "commander": lambda lits, c: encodings.at_most_one_commander(
        lits, c.add_clause, c.new_var),
}


class TestAtMostOne:
    @pytest.mark.parametrize("name", sorted(AMO_ENCODERS))
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_amo_semantics(self, name, n):
        c = Collector(n)
        lits = list(range(1, n + 1))
        AMO_ENCODERS[name](lits, c)
        got = count_models(c, lits)
        assert got == expected_assignments(n, lambda k: k <= 1)

    def test_sequential_clause_count(self):
        added = []
        n = encodings.at_most_one_sequential(
            [1, 2, 3, 4], added.append, iter(range(10, 100)).__next__)
        assert n == len(added) == 3 * 4 - 4  # 3n-4 clauses for n=4

    def test_commander_group_validation(self):
        with pytest.raises(ValueError):
            encodings.at_most_one_commander([1, 2, 3], print, print, group=1)

    def test_amo_with_negative_literals(self):
        c = Collector(3)
        encodings.at_most_one_pairwise([-1, -2, -3], c.add_clause)
        got = count_models(c, [1, 2, 3])
        # At most one of the variables may be False.
        assert got == {bits for bits in itertools.product([False, True], repeat=3)
                       if sum(1 for b in bits if not b) <= 1}


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (5, 3), (5, 5)])
    def test_amk_semantics(self, n, k):
        c = Collector(n)
        lits = list(range(1, n + 1))
        encodings.at_most_k_sequential(lits, k, c.add_clause, c.new_var)
        got = count_models(c, lits)
        assert got == expected_assignments(n, lambda cnt: cnt <= k)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            encodings.at_most_k_sequential([1], -1, print, print)

    def test_k_zero_forces_all_false(self):
        c = Collector(3)
        encodings.at_most_k_sequential([1, 2, 3], 0, c.add_clause, c.new_var)
        got = count_models(c, [1, 2, 3])
        assert got == {(False, False, False)}


class TestExactlyOne:
    @pytest.mark.parametrize("encoding", ["pairwise", "sequential", "commander"])
    def test_exactly_one(self, encoding):
        c = Collector(4)
        lits = [1, 2, 3, 4]
        encodings.exactly_one(lits, c.add_clause, c.new_var, encoding)
        got = count_models(c, lits)
        assert got == expected_assignments(4, lambda k: k == 1)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            encodings.exactly_one([1], print, print, "magic")


class TestXor:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 9])
    @pytest.mark.parametrize("parity", [False, True])
    def test_xor_semantics(self, n, parity):
        c = Collector(n)
        lits = list(range(1, n + 1))
        encodings.xor_clauses(lits, parity, c.add_clause, c.new_var)
        got = count_models(c, lits)
        assert got == {bits for bits in itertools.product([False, True], repeat=n)
                       if (sum(bits) % 2 == 1) == parity}

    def test_empty_xor_true_is_unsat(self):
        c = Collector(1)
        encodings.xor_clauses([], True, c.add_clause, c.new_var)
        assert not c.solver.solve().sat

    def test_empty_xor_false_is_sat(self):
        c = Collector(1)
        encodings.xor_clauses([], False, c.add_clause, c.new_var)
        assert c.solver.solve().sat

    def test_xor_chain_with_negated_literals(self):
        c = Collector(2)
        encodings.xor_clauses([1, -2], True, c.add_clause, c.new_var)
        got = count_models(c, [1, 2])
        assert got == {(True, True), (False, False)}


class TestHypothesisCardinality:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6),
           k=st.integers(min_value=0, max_value=6))
    def test_amk_counts(self, n, k):
        c = Collector(n)
        lits = list(range(1, n + 1))
        encodings.at_most_k_sequential(lits, k, c.add_clause, c.new_var)
        got = count_models(c, lits)
        assert len(got) == sum(1 for bits in itertools.product(
            [False, True], repeat=n) if sum(bits) <= k)
