"""Tests for simulator-driven counterexample minimization."""

import pytest

from repro.bmc import BmcOptions, shrink_trace, verify
from repro.bmc.shrink import TraceShrinker
from repro.design import Design
from repro.sim import Simulator


def trigger_design():
    """Fails only when input `a` is 3 while armed; `b` is pure noise."""
    d = Design("trigger")
    a = d.input("a", 4)
    d.input("b", 8)
    armed = d.latch("armed", 1, init=0)
    armed.next = d.const(1, 1)
    bad = d.latch("bad", 1, init=0)
    bad.next = bad.expr | (armed.expr & a.eq(3))
    d.invariant("safe", bad.expr.eq(0))
    return d


def cex_for(design, prop, depth=10):
    r = verify(design, prop, BmcOptions(find_proof=False, max_depth=depth))
    assert r.status == "cex"
    return r.trace


class TestBasicShrinking:
    def test_noise_input_zeroed(self):
        d = trigger_design()
        trace = cex_for(d, "safe")
        res = shrink_trace(d, "safe", trace)
        for cyc in res.trace.cycles:
            assert cyc["inputs"]["b"] == 0

    def test_failure_preserved(self):
        d = trigger_design()
        res = shrink_trace(d, "safe", cex_for(d, "safe"))
        shr = TraceShrinker(d, "safe")
        assert shr.fails(res.trace.inputs_sequence(),
                         res.trace.init_latches,
                         res.trace.init_memories) is not None

    def test_trace_truncated_at_failure(self):
        d = trigger_design()
        trace = cex_for(d, "safe", depth=10)
        res = shrink_trace(d, "safe", trace)
        assert len(res.trace) == res.failure_cycle + 1
        # Earliest violation of this design is cycle 2 (arm, fire, observe).
        assert res.failure_cycle == 2

    def test_essential_input_survives(self):
        d = trigger_design()
        res = shrink_trace(d, "safe", cex_for(d, "safe"))
        fire_cycle = res.failure_cycle - 1
        assert res.trace.cycles[fire_cycle]["inputs"]["a"] == 3

    def test_log_records_changes(self):
        d = trigger_design()
        res = shrink_trace(d, "safe", cex_for(d, "safe"))
        assert res.applied <= res.attempted
        assert all(isinstance(line, str) for line in res.log)

    def test_passing_trace_rejected(self):
        d = trigger_design()
        sim = Simulator(d)
        good = sim.run([{"a": 0, "b": 0}] * 3)
        with pytest.raises(ValueError, match="does not violate"):
            shrink_trace(d, "safe", good)


class TestInitLatchShrinking:
    def test_arbitrary_init_latch_zeroed_when_irrelevant(self):
        d = Design("init_noise")
        noise = d.latch("noise", 8, init=None)
        noise.next = noise.expr
        c = d.latch("c", 3, init=0)
        c.next = c.expr + 1
        d.invariant("p", c.expr.ne(5))
        trace = cex_for(d, "p", depth=8)
        res = shrink_trace(d, "p", trace)
        assert res.trace.init_latches.get("noise", 0) == 0

    def test_essential_init_latch_kept_nonzero(self):
        d = Design("init_need")
        seed = d.latch("seed", 4, init=None)
        seed.next = seed.expr
        d.invariant("p", seed.expr.ne(9))
        trace = cex_for(d, "p", depth=3)
        res = shrink_trace(d, "p", trace)
        assert res.trace.init_latches["seed"] == 9


class TestMemoryShrinking:
    def memory_design(self):
        d = Design("mem_shrink")
        addr = d.input("addr", 3)
        mem = d.memory("m", addr_width=3, data_width=4, init=None)
        mem.write(0).connect(addr=d.const(0, 3), data=d.const(0, 4), en=0)
        rd = mem.read(0).connect(addr=addr, en=1)
        seen = d.latch("seen", 1, init=0)
        seen.next = seen.expr | rd.eq(11)
        d.invariant("p", seen.expr.eq(0))
        return d

    def test_irrelevant_memory_words_dropped(self):
        d = self.memory_design()
        trace = cex_for(d, "p", depth=6)
        # Inflate the initial contents with noise entries.
        trace.init_memories.setdefault("m", {})
        for a in range(8):
            trace.init_memories["m"].setdefault(a, 5)
        res = shrink_trace(d, "p", trace)
        contents = res.trace.init_memories["m"]
        assert len(contents) == 1  # only the address that reads 11 remains
        assert 11 in contents.values()

    def test_declared_rom_words_never_dropped(self):
        d = Design("romkeep")
        pc = d.latch("pc", 2, init=0)
        pc.next = pc.expr + 1
        rom = d.memory("r", addr_width=2, data_width=4, init=None,
                       init_words={1: 7})
        rom.write(0).connect(addr=d.const(0, 2), data=d.const(0, 4), en=0)
        rd = rom.read(0).connect(addr=pc.expr, en=1)
        hit = d.latch("hit", 1, init=0)
        hit.next = hit.expr | rd.eq(7)
        d.invariant("p", hit.expr.eq(0))
        trace = cex_for(d, "p", depth=5)
        res = shrink_trace(d, "p", trace)
        assert res.trace.init_memories["r"].get(1) == 7


class TestValueShrinking:
    def test_large_values_pushed_down(self):
        d = Design("magnitude")
        v = d.input("v", 8)
        big = d.latch("big", 1, init=0)
        big.next = big.expr | v.uge(10)
        d.invariant("p", big.expr.eq(0))
        trace = cex_for(d, "p", depth=4)
        res = shrink_trace(d, "p", trace)
        fire = res.failure_cycle - 1
        # 10 is the smallest value that still violates; halving stops there.
        assert res.trace.cycles[fire]["inputs"]["v"] in range(10, 20)
