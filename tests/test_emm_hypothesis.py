"""Property-based differential testing of EMM against the simulator.

For random single-memory workloads driven entirely by primary inputs, a
SAT model of the EMM-constrained unrolling — with all inputs pinned to a
random stimulus via assumptions — must assign every read-data word the
value the reference simulator computes.  This checks the forwarding
constraints bit-for-bit, not just through property verdicts.
"""

from hypothesis import given, settings, strategies as st

from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory
from repro.sat import Solver
from repro.sim import Simulator


@st.composite
def workloads(draw):
    aw = draw(st.integers(1, 2))
    dw = draw(st.integers(1, 3))
    depth = draw(st.integers(1, 4))
    n_write = draw(st.integers(1, 2))
    stimulus = []
    for __ in range(depth + 1):
        vec = {"ra": draw(st.integers(0, (1 << aw) - 1))}
        for w in range(n_write):
            vec[f"wa{w}"] = draw(st.integers(0, (1 << aw) - 1))
            vec[f"wd{w}"] = draw(st.integers(0, (1 << dw) - 1))
            vec[f"we{w}"] = draw(st.integers(0, 1))
        stimulus.append(vec)
    return aw, dw, depth, n_write, stimulus


def build_design(aw, dw, n_write):
    d = Design("hw")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, write_ports=n_write, init=0)
    for w in range(n_write):
        # Port w only writes addresses congruent to w (mod n_write-ish)
        # to avoid same-cycle same-address races between ports.
        en = d.input(f"we{w}", 1)
        addr = d.input(f"wa{w}", aw)
        guard = addr[0].eq(w & 1) if n_write > 1 else d.const(1, 1)
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw),
                             en=en & guard)
    rd = mem.read(0).connect(addr=d.input("ra", aw), en=1)
    d.invariant("p", rd.ule((1 << dw) - 1))
    return d


def build_recurring_design(aw, dw, n_write, const_addr):
    """Like :func:`build_design` plus comparator-cache fodder: a second
    read port duplicating port 0's address cone and a third reading a
    fixed constant address."""
    d = Design("hwc")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=n_write, init=0)
    for w in range(n_write):
        en = d.input(f"we{w}", 1)
        addr = d.input(f"wa{w}", aw)
        guard = addr[0].eq(w & 1) if n_write > 1 else d.const(1, 1)
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw),
                             en=en & guard)
    ra = d.input("ra", aw)
    mem.read(0).connect(addr=ra, en=1)
    mem.read(1).connect(addr=ra, en=1)
    mem.read(2).connect(addr=d.const(const_addr, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def solve_pinned(design, depth, stimulus, addr_dedup):
    """Unroll + EMM-constrain, pin the stimulus, return (solver pieces)."""
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(design, emitter)
    emm = EmmMemory(solver, un, "m", addr_dedup=addr_dedup)
    for k in range(depth + 1):
        un.add_frame()
        emm.add_frame(k)
    assumptions = []
    for k, vec in enumerate(stimulus):
        for name, value in vec.items():
            for i, bit in enumerate(un.input_word(name, k)):
                lit = emitter.sat_lit(bit)
                assumptions.append(lit if (value >> i) & 1 else -lit)
    for bit in un.latch_word("t", 0):
        assumptions.append(-emitter.sat_lit(bit))
    result = solver.solve(assumptions)
    return result, solver, emitter, un, emm


@st.composite
def recurring_workloads(draw):
    aw = draw(st.integers(1, 2))
    dw = draw(st.integers(1, 3))
    depth = draw(st.integers(1, 4))
    n_write = draw(st.integers(1, 2))
    const_addr = draw(st.integers(0, (1 << aw) - 1))
    stimulus = []
    for __ in range(depth + 1):
        vec = {"ra": draw(st.integers(0, (1 << aw) - 1))}
        for w in range(n_write):
            vec[f"wa{w}"] = draw(st.integers(0, (1 << aw) - 1))
            vec[f"wd{w}"] = draw(st.integers(0, (1 << dw) - 1))
            vec[f"we{w}"] = draw(st.integers(0, 1))
        stimulus.append(vec)
    return aw, dw, depth, n_write, const_addr, stimulus


@settings(max_examples=40, deadline=None)
@given(recurring_workloads())
def test_cached_and_uncached_emm_agree_with_simulator(workload):
    """Cached vs uncached runs read identical values, and both match the
    reference simulator on every read port — the dedup layer must be
    semantically invisible even at the bit level."""
    aw, dw, depth, n_write, const_addr, stimulus = workload
    design = build_recurring_design(aw, dw, n_write, const_addr)
    runs = {}
    for dedup in (True, False):
        result, solver, emitter, un, emm = solve_pinned(
            design, depth, stimulus, dedup)
        assert result.sat
        reads = {}
        for port in range(3):
            for k in range(depth + 1):
                got = 0
                for i, bit in enumerate(un.rd_word("m", port, k)):
                    var = emitter.var_for(bit)
                    if var is not None and solver.model_value(var):
                        got |= 1 << i
                reads[(port, k)] = got
        runs[dedup] = reads
        if dedup:
            assert emm.counters.addr_eq_cache_hits > 0
        else:
            assert emm.counters.addr_eq_cache_hits == 0
            assert emm.counters.addr_eq_folded == 0
    assert runs[True] == runs[False]

    sim = Simulator(design)
    for k in range(depth + 1):
        sim.begin_cycle(stimulus[k])
        for port in range(3):
            expected = sim.eval(design.memories["m"].read(port).data)
            assert runs[True][(port, k)] == expected, (port, k, stimulus)
        sim.commit_cycle()


@settings(max_examples=60, deadline=None)
@given(workloads())
def test_emm_model_reads_match_simulator(workload):
    aw, dw, depth, n_write, stimulus = workload
    design = build_design(aw, dw, n_write)
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    un = Unroller(design, emitter)
    emm = EmmMemory(solver, un, "m")
    for k in range(depth + 1):
        un.add_frame()
        emm.add_frame(k)

    # Pin all inputs and the initial latch values via assumptions.
    assumptions = []
    for k, vec in enumerate(stimulus):
        for name, value in vec.items():
            for i, bit in enumerate(un.input_word(name, k)):
                lit = emitter.sat_lit(bit)
                assumptions.append(lit if (value >> i) & 1 else -lit)
    for i, bit in enumerate(un.latch_word("t", 0)):
        assumptions.append(-emitter.sat_lit(bit))

    result = solver.solve(assumptions)
    assert result.sat

    sim = Simulator(design)
    for k in range(depth + 1):
        sim.begin_cycle(stimulus[k])
        expected = sim.eval(design.memories["m"].read(0).data)
        got = 0
        for i, bit in enumerate(un.rd_word("m", 0, k)):
            var = emitter.var_for(bit)
            if var is not None and solver.model_value(var):
                got |= 1 << i
        assert got == expected, (k, stimulus)
        sim.commit_cycle()
