"""EMM constraint-size accounting: implementation vs the paper's formulas.

Section 3 and 4.1 give closed-form clause/gate counts; these tests assert
the constraint generator emits *exactly* those numbers, which is the
strongest evidence the encoding is the paper's encoding.  The closed
forms describe the hand-written CNF back-end, so :func:`run_frames` pins
``hybrid_strash=False``; the AIG-routed default is covered by its own
accounting regressions at the bottom (guard/prune counts, the per-frame
plateau and the closed-form upper bounds of
``accounting.hybrid_chain_clauses_per_read_port``).
"""

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, accounting
from repro.sat import Solver


def make_port_design(aw, dw, r_ports, w_ports, init=0):
    d = Design("acct")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init)
    for w in range(w_ports):
        mem.write(w).connect(addr=d.input(f"wa{w}", aw),
                             data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1))
    for r in range(r_ports):
        mem.read(r).connect(addr=d.input(f"ra{r}", aw), en=d.input(f"re{r}", 1))
    rd = mem.read(0).data
    d.invariant("p", rd.ule((1 << dw) - 1))
    return d


def run_frames(design, depth, **emm_kwargs):
    # The paper's closed forms count the raw-CNF back-end; the AIG-routed
    # default books chain gates/triples instead (tested separately below).
    emm_kwargs.setdefault("hybrid_strash", False)
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = EmmMemory(solver, unroller, "m", **emm_kwargs)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return emm


@pytest.mark.parametrize("aw,dw", [(2, 2), (3, 5), (5, 8)])
@pytest.mark.parametrize("w_ports", [1, 2, 3])
@pytest.mark.parametrize("depth", [0, 1, 4])
def test_clause_count_matches_formula(aw, dw, w_ports, depth):
    """Per-depth clauses == ((4m+2n+1)kW + 2n+1) per read port (known init)."""
    design = make_port_design(aw, dw, r_ports=1, w_ports=w_ports)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    # With a known constant initial word the S_{-1} pair needs only n
    # clauses instead of the paper's 2n for a symbolic WD_{-1}; adjust.
    paper = accounting.clauses_per_read_port(depth, w_ports, aw, dw)
    assert measured == paper - dw


@pytest.mark.parametrize("aw,dw", [(3, 4)])
@pytest.mark.parametrize("w_ports", [1, 2])
@pytest.mark.parametrize("depth", [0, 2, 5])
def test_symbolic_init_matches_paper_count(aw, dw, w_ports, depth):
    """With a symbolic initial word the count matches the paper exactly."""
    design = make_port_design(aw, dw, r_ports=1, w_ports=w_ports, init=None)
    emm = run_frames(design, depth, init_consistency=False)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    assert measured == accounting.clauses_per_read_port(depth, w_ports, aw, dw)


@pytest.mark.parametrize("w_ports", [1, 2, 4])
@pytest.mark.parametrize("depth", [0, 1, 3, 6])
def test_gate_count_matches_formula(w_ports, depth):
    """Exclusivity chain gates == 3kW per read port at depth k."""
    design = make_port_design(3, 4, r_ports=1, w_ports=w_ports)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    assert frame["excl_gates"] == accounting.gates_per_read_port(depth, w_ports)


@pytest.mark.parametrize("r_ports", [1, 2, 3])
def test_multi_read_port_multiplier(r_ports):
    """Totals scale linearly with R (paper: multiply by R)."""
    depth = 3
    design = make_port_design(3, 4, r_ports=r_ports, w_ports=2)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    single = accounting.clauses_per_read_port(depth, 2, 3, 4) - 4
    assert measured == single * r_ports
    assert frame["excl_gates"] == accounting.gates_per_read_port(depth, 2) * r_ports


def test_cumulative_growth_is_quadratic():
    """Cumulative clauses over depth follow the quadratic closed form."""
    design = make_port_design(3, 4, r_ports=1, w_ports=1)
    emm = run_frames(design, 8)
    c = emm.counters
    measured_total = (c.addr_eq_clauses + c.rd_clauses + c.valid_clauses
                      + c.init_rd_clauses)
    expected = accounting.cumulative_clauses(8, 1, 1, 3, 4) - 9 * 4
    assert measured_total == expected
    assert c.excl_gates == accounting.cumulative_gates(8, 1, 1)


def test_symbolic_words_per_depth():
    """Arbitrary init introduces one fresh word per read per frame."""
    design = make_port_design(3, 4, r_ports=2, w_ports=1, init=None)
    emm = run_frames(design, 4, init_consistency=True)
    # k+1 frames, R=2 reads/frame, dw=4 bits per symbolic word.
    expected_pairs = accounting.init_consistency_pairs_all(5, 2)
    assert emm.counters.init_pairs == expected_pairs


def test_paper_vs_allpairs_formulas():
    assert accounting.init_consistency_pairs_paper(4, 1) == 0
    assert accounting.init_consistency_pairs_all(4, 1) == 6
    assert accounting.init_consistency_pairs_paper(3, 2) == 6
    assert accounting.init_consistency_pairs_all(3, 2) == 15


def test_explicit_state_bits():
    assert accounting.explicit_model_state_bits(10, 32) == 32768
    assert accounting.explicit_model_state_bits(3, 4) == 32


def test_pure_gate_formula():
    assert accounting.pure_gate_single_port(5, 10, 32) == (40 + 64 + 2) * 5 + 32


# -- comparator dedup: the closed forms become upper bounds ---------------

def make_recurring_design(aw=3, dw=4):
    """Two read ports sharing one address cone + one constant-address port."""
    d = Design("recur")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=1, init=0)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    ra = d.input("ra", aw)
    mem.read(0).connect(addr=ra, en=1)
    mem.read(1).connect(addr=ra, en=1)
    mem.read(2).connect(addr=d.const(5, aw), en=1)
    rd = mem.read(0).data
    d.invariant("p", rd.ule((1 << dw) - 1))
    return d


def test_repeated_addresses_produce_cache_hits():
    """Port 1 duplicates port 0's cone: its k comparisons per frame all hit;
    port 2's constant address repeats across frames: k-1 hits per frame."""
    depth = 4
    emm = run_frames(make_recurring_design(), depth)
    c = emm.counters
    dup_hits = sum(k for k in range(depth + 1))          # port 1 vs port 0
    const_hits = sum(k - 1 for k in range(1, depth + 1))  # port 2 cross-frame
    assert c.addr_eq_cache_hits == dup_hits + const_hits
    assert c.addr_eq_folded == 0  # no const-vs-const comparison here


def test_constant_addresses_produce_folds():
    """Constant read address vs constant write address folds to a constant."""
    d = Design("constfold")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", 3, 2, read_ports=2, write_ports=1, init=0)
    mem.write(0).connect(addr=d.const(5, 3), data=d.input("wd", 2),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(5, 3), en=1)  # always equal: TRUE
    mem.read(1).connect(addr=d.const(2, 3), en=1)  # never equal: FALSE
    d.invariant("p", mem.read(0).data.ule(3))
    depth = 3
    emm = run_frames(d, depth)
    c = emm.counters
    # Every (read, write-pair) comparison is const-vs-const: zero
    # comparator clauses.  Each of the two distinct constant pairs folds
    # once; the remaining comparisons are answered from the cache.
    comparisons = 2 * sum(k for k in range(depth + 1))
    assert c.addr_eq_folded == 2
    assert c.addr_eq_cache_hits == comparisons - 2
    assert c.addr_eq_clauses == 0


def test_const_vs_symbolic_uses_short_form():
    """A constant read address against a symbolic write address books m+1
    clauses (the _addr_eq_const shape) instead of the full 4m+1."""
    aw = 4
    d = Design("constsym")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, 2, read_ports=1, write_ports=1, init=0)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", 2),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(9, aw), en=1)
    d.invariant("p", mem.read(0).data.ule(3))
    emm = run_frames(d, 1)  # depth 1: exactly one fresh comparison
    c = emm.counters
    assert c.addr_eq_clauses == accounting.addr_eq_clauses_const(aw)
    assert c.addr_eq_cache_hits == 0


# -- AIG-routed hybrid back-end (hybrid_strash): accounting regressions ---


def make_const_pair_design(aw=3, dw=3):
    """Two reads pinned to distinct constant addresses, arbitrary init."""
    d = Design("constpair")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=2, write_ports=1, init=None)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=d.const(2, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


class TestHybridStrashAccounting:
    """Satellite regressions: the init-consistency guard/prune counters
    must be exact and backend-independent, and the AIG-routed counters
    must reconcile with the clauses that really reached the solver (no
    double-booking through ``EmmCounters.frame_delta``)."""

    @pytest.mark.parametrize("hybrid_strash", [True, False])
    @pytest.mark.parametrize("depth", [1, 4, 7])
    def test_guard_and_prune_counts_exact(self, depth, hybrid_strash):
        """Two constant-address reads, depth d: two founding records
        (one guard clause each), every later read merges (one guard
        clause each, 2d total), and exactly the one cross-address
        eq-(6) pair is pruned on its folded-FALSE comparator."""
        emm = run_frames(make_const_pair_design(), depth,
                         hybrid_strash=hybrid_strash)
        c = emm.counters
        assert c.init_records_merged == 2 * depth
        assert c.init_guard_clauses == 2 + 2 * depth
        assert c.init_pairs_pruned == 1
        assert c.init_pairs == 0  # the only candidate pair was pruned

    def test_backends_agree_on_init_counters(self):
        """The init machinery is shared code: pins, guards, merges and
        prunes must book identically under both chain back-ends."""
        on = run_frames(make_const_pair_design(), 5, hybrid_strash=True)
        off = run_frames(make_const_pair_design(), 5, hybrid_strash=False)
        for key in ("init_guard_clauses", "init_pairs_pruned",
                    "init_records_merged", "init_pin_clauses",
                    "init_addr_eq_clauses", "init_consistency_clauses",
                    "init_pairs"):
            assert getattr(on.counters, key) == getattr(off.counters, key), key

    @pytest.mark.parametrize("chain_share", [True, False])
    def test_total_clauses_not_double_counted(self, chain_share):
        """The counters reconcile with the clauses the EMM frames really
        added to the solver: booked == added + absorbed.  The single
        unbooked clause is the emitter's shared always-true unit
        (label ``("const",)``), allocated inside the first EMM frame on
        this constant-address workload — it belongs to the CNF
        substrate, not to any memory's constraints."""
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(make_const_pair_design(), emitter)
        emm = EmmMemory(solver, unroller, "m", hybrid_strash=True,
                        chain_share=chain_share)
        emm_added = 0
        for k in range(6):
            unroller.add_frame()
            before = solver.num_clauses
            emm.add_frame(k)
            emm_added += solver.num_clauses - before
        c = emm.counters
        assert c.total_clauses == (emm_added - 1) + c.absorbed
        assert sum(f["clauses"] for f in c.per_frame) == c.total_clauses
        assert sum(f["gates"] for f in c.per_frame) == c.total_gates

    def test_per_frame_clauses_plateau_within_closed_form(self):
        """Constant-address reads: per-frame new EMM clauses become a
        constant bounded by the closed-form upper bound (two read
        ports), while the raw back-end's per-frame clauses keep
        growing."""
        depth = 10
        on = run_frames(make_const_pair_design(), depth, hybrid_strash=True)
        off = run_frames(make_const_pair_design(), depth, hybrid_strash=False)
        cls_on = [f["clauses"] for f in on.counters.per_frame]
        cls_off = [f["clauses"] for f in off.counters.per_frame]
        tail = cls_on[3:]
        assert max(tail) == min(tail), cls_on
        assert tail[0] <= 2 * accounting.hybrid_suffix_shared_frame_clauses(3, 3)
        assert all(b > a for a, b in zip(cls_off[3:], cls_off[4:])), cls_off
        assert on.counters.chain_suffix_hits > 0
        assert off.counters.chain_suffix_hits == 0
        assert off.counters.strash_hits == 0

    def test_fresh_addresses_stay_within_upper_bound(self):
        """No sharing to find: the per-frame clause bound of
        ``hybrid_chain_clauses_per_read_port`` holds on fully symbolic
        address cones (where the closed form is tightest)."""
        depth = 5
        design = make_port_design(3, 4, r_ports=1, w_ports=2, init=None)
        emm = run_frames(design, depth, hybrid_strash=True,
                         init_consistency=False)
        for k, frame in enumerate(emm.counters.per_frame):
            bound = accounting.hybrid_chain_clauses_per_read_port(k, 2, 3, 4)
            assert frame["clauses"] <= bound, (k, frame["clauses"], bound)


def test_dedup_off_reproduces_paper_counts_on_recurring_design():
    """With addr_dedup=False the recurring workload pays full price."""
    depth = 3
    on = run_frames(make_recurring_design(), depth)
    off = run_frames(make_recurring_design(), depth, addr_dedup=False)
    assert off.counters.addr_eq_cache_hits == 0
    assert off.counters.addr_eq_folded == 0
    # Off books the closed-form 4m+1 per pair: 3 ports x k pairs at depth k.
    pairs = 3 * sum(k for k in range(depth + 1))
    assert off.counters.addr_eq_clauses == \
        pairs * accounting.addr_eq_clauses_full(3)
    assert on.counters.addr_eq_clauses < off.counters.addr_eq_clauses
    assert on.counters.vars_added < off.counters.vars_added
