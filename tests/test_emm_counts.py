"""EMM constraint-size accounting: implementation vs the paper's formulas.

Section 3 and 4.1 give closed-form clause/gate counts; these tests assert
the constraint generator emits *exactly* those numbers, which is the
strongest evidence the encoding is the paper's encoding.
"""

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, accounting
from repro.sat import Solver


def make_port_design(aw, dw, r_ports, w_ports, init=0):
    d = Design("acct")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init)
    for w in range(w_ports):
        mem.write(w).connect(addr=d.input(f"wa{w}", aw),
                             data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1))
    for r in range(r_ports):
        mem.read(r).connect(addr=d.input(f"ra{r}", aw), en=d.input(f"re{r}", 1))
    rd = mem.read(0).data
    d.invariant("p", rd.ule((1 << dw) - 1))
    return d


def run_frames(design, depth, **emm_kwargs):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = EmmMemory(solver, unroller, "m", **emm_kwargs)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return emm


@pytest.mark.parametrize("aw,dw", [(2, 2), (3, 5), (5, 8)])
@pytest.mark.parametrize("w_ports", [1, 2, 3])
@pytest.mark.parametrize("depth", [0, 1, 4])
def test_clause_count_matches_formula(aw, dw, w_ports, depth):
    """Per-depth clauses == ((4m+2n+1)kW + 2n+1) per read port (known init)."""
    design = make_port_design(aw, dw, r_ports=1, w_ports=w_ports)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    # With a known constant initial word the S_{-1} pair needs only n
    # clauses instead of the paper's 2n for a symbolic WD_{-1}; adjust.
    paper = accounting.clauses_per_read_port(depth, w_ports, aw, dw)
    assert measured == paper - dw


@pytest.mark.parametrize("aw,dw", [(3, 4)])
@pytest.mark.parametrize("w_ports", [1, 2])
@pytest.mark.parametrize("depth", [0, 2, 5])
def test_symbolic_init_matches_paper_count(aw, dw, w_ports, depth):
    """With a symbolic initial word the count matches the paper exactly."""
    design = make_port_design(aw, dw, r_ports=1, w_ports=w_ports, init=None)
    emm = run_frames(design, depth, init_consistency=False)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    assert measured == accounting.clauses_per_read_port(depth, w_ports, aw, dw)


@pytest.mark.parametrize("w_ports", [1, 2, 4])
@pytest.mark.parametrize("depth", [0, 1, 3, 6])
def test_gate_count_matches_formula(w_ports, depth):
    """Exclusivity chain gates == 3kW per read port at depth k."""
    design = make_port_design(3, 4, r_ports=1, w_ports=w_ports)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    assert frame["excl_gates"] == accounting.gates_per_read_port(depth, w_ports)


@pytest.mark.parametrize("r_ports", [1, 2, 3])
def test_multi_read_port_multiplier(r_ports):
    """Totals scale linearly with R (paper: multiply by R)."""
    depth = 3
    design = make_port_design(3, 4, r_ports=r_ports, w_ports=2)
    emm = run_frames(design, depth)
    frame = emm.counters.per_frame[depth]
    measured = (frame["addr_eq_clauses"] + frame["rd_clauses"]
                + frame["valid_clauses"] + frame["init_rd_clauses"])
    single = accounting.clauses_per_read_port(depth, 2, 3, 4) - 4
    assert measured == single * r_ports
    assert frame["excl_gates"] == accounting.gates_per_read_port(depth, 2) * r_ports


def test_cumulative_growth_is_quadratic():
    """Cumulative clauses over depth follow the quadratic closed form."""
    design = make_port_design(3, 4, r_ports=1, w_ports=1)
    emm = run_frames(design, 8)
    c = emm.counters
    measured_total = (c.addr_eq_clauses + c.rd_clauses + c.valid_clauses
                      + c.init_rd_clauses)
    expected = accounting.cumulative_clauses(8, 1, 1, 3, 4) - 9 * 4
    assert measured_total == expected
    assert c.excl_gates == accounting.cumulative_gates(8, 1, 1)


def test_symbolic_words_per_depth():
    """Arbitrary init introduces one fresh word per read per frame."""
    design = make_port_design(3, 4, r_ports=2, w_ports=1, init=None)
    emm = run_frames(design, 4, init_consistency=True)
    # k+1 frames, R=2 reads/frame, dw=4 bits per symbolic word.
    expected_pairs = accounting.init_consistency_pairs_all(5, 2)
    assert emm.counters.init_pairs == expected_pairs


def test_paper_vs_allpairs_formulas():
    assert accounting.init_consistency_pairs_paper(4, 1) == 0
    assert accounting.init_consistency_pairs_all(4, 1) == 6
    assert accounting.init_consistency_pairs_paper(3, 2) == 6
    assert accounting.init_consistency_pairs_all(3, 2) == 15


def test_explicit_state_bits():
    assert accounting.explicit_model_state_bits(10, 32) == 32768
    assert accounting.explicit_model_state_bits(3, 4) == 32


def test_pure_gate_formula():
    assert accounting.pure_gate_single_port(5, 10, 32) == (40 + 64 + 2) * 5 + 32
