"""Extensions beyond the base algorithms: data-race checking, port-level
abstraction, iterative abstraction."""


from repro.bmc import BmcOptions, verify
from repro.design import Design
from repro.emm import find_data_race
from repro.pba import iterative_abstraction, run_pba_phase


def racy_design(guarded: bool):
    """Two write ports that can (or, guarded, cannot) collide."""
    d = Design("racy")
    a0 = d.input("a0", 2)
    a1 = d.input("a1", 2)
    e0 = d.input("e0", 1)
    e1 = d.input("e1", 1)
    t = d.latch("t", 1, init=0)
    t.next = t.expr
    mem = d.memory("m", 2, 4, write_ports=2, init=0)
    en1 = e1 & a1.ne(a0) if guarded else e1
    mem.write(0).connect(addr=a0, data=1, en=e0)
    mem.write(1).connect(addr=a1, data=2, en=en1)
    mem.read(0).connect(addr=0, en=1)
    d.invariant("p", t.expr.eq(0))
    return d


class TestDataRaces:
    def test_race_found_when_unguarded(self):
        r = find_data_race(racy_design(guarded=False), "m", max_depth=4)
        assert r.found and r.depth == 0
        assert "race" in r.describe()
        # the reported inputs really do collide
        vec = r.inputs[r.depth]
        assert vec["a0"] == vec["a1"]
        assert vec["e0"] == 1 and vec["e1"] == 1

    def test_no_race_when_guarded(self):
        r = find_data_race(racy_design(guarded=True), "m", max_depth=4)
        assert not r.found

    def test_single_write_port_trivially_race_free(self):
        d = Design("single")
        t = d.latch("t", 1, init=0)
        t.next = t.expr
        mem = d.memory("m", 2, 4, init=0)
        mem.write(0).connect(addr=0, data=0, en=1)
        mem.read(0).connect(addr=0, en=1)
        d.invariant("p", t.expr.eq(0))
        r = find_data_race(d, "m", max_depth=4)
        assert not r.found

    def test_race_requires_reachability(self):
        """A collision gated by an unreachable mode is no race."""
        d = Design("gated")
        a = d.input("a", 2)
        err = d.latch("err", 1, init=0)
        err.next = err.expr  # stuck at 0
        mem = d.memory("m", 2, 4, write_ports=2, init=0)
        mem.write(0).connect(addr=a, data=1, en=err.expr)
        mem.write(1).connect(addr=a, data=2, en=err.expr)
        mem.read(0).connect(addr=0, en=1)
        d.invariant("p", err.expr.eq(0))
        r = find_data_race(d, "m", max_depth=5)
        assert not r.found


class TestPortAbstraction:
    def two_port_design(self):
        d = Design("pp")
        data = d.input("data", 4)
        addr_reg = d.latch("addr_reg", 2, init=0)
        addr_reg.next = addr_reg.expr + 1
        other_reg = d.latch("other_reg", 2, init=0)
        other_reg.next = other_reg.expr + 2
        mem = d.memory("m", 2, 4, read_ports=2, init=0)
        capped = data.ult(4).ite(data, d.const(0, 4))
        mem.write(0).connect(addr=addr_reg.expr, data=capped, en=1)
        rd0 = mem.read(0).connect(addr=addr_reg.expr, en=1)
        mem.read(1).connect(addr=other_reg.expr, en=1)
        d.invariant("p", rd0.ult(4))
        return d

    def test_engine_accepts_port_subset(self):
        d = self.two_port_design()
        r = verify(d, "p", BmcOptions(
            max_depth=8, kept_read_ports={"m": frozenset({0})}))
        assert r.proved, r.describe()

    def test_dropping_needed_port_loses_constraint(self):
        d = self.two_port_design()
        r = verify(d, "p", BmcOptions(
            max_depth=4, find_proof=False, validate_cex=False,
            kept_read_ports={"m": frozenset({1})}))
        assert r.falsified  # rd0 floats: spurious CE, as expected

    def test_pba_reports_port_subset(self):
        d = self.two_port_design()
        phase = run_pba_phase(d, "p", stability_depth=3, max_depth=16)
        if "m" in phase.kept_memories:
            ports = phase.kept_read_ports["m"]
            assert 0 in ports


class TestIterativeAbstraction:
    def layered_design(self):
        d = Design("layered")
        x = d.input("x", 1)
        a = d.latch("a", 1, init=0)
        b = d.latch("b", 1, init=0)
        c = d.latch("c", 4, init=0)
        a.next = a.expr | x
        b.next = a.expr
        c.next = c.expr + 1  # irrelevant counter
        d.invariant("mono", ~b.expr | a.expr)
        return d

    def test_reaches_fixpoint(self):
        out = iterative_abstraction(self.layered_design(), "mono",
                                    stability_depth=3, max_depth=16,
                                    max_rounds=4)
        assert out.converged
        assert out.status == "proof"
        assert "c" not in out.final_latches

    def test_monotone_shrinking(self):
        out = iterative_abstraction(self.layered_design(), "mono",
                                    stability_depth=3, max_depth=16,
                                    max_rounds=4)
        sizes = [len(ph.latch_reasons) for ph in out.rounds]
        assert all(s2 <= s1 for s1, s2 in zip(sizes, sizes[1:]))

    def test_cex_on_concrete_round_reported(self):
        d = Design("bad")
        cnt = d.latch("cnt", 3, init=0)
        cnt.next = cnt.expr + 1
        d.invariant("lt3", cnt.expr.ult(3))
        out = iterative_abstraction(d, "lt3", stability_depth=3,
                                    max_depth=10, max_rounds=3)
        assert out.status == "cex"
        assert out.proof_result is not None
        assert out.proof_result.depth == 3
