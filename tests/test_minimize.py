"""Tests for deletion-based reason minimization (repro.pba.minimize)."""

import pytest

from repro.bmc import BmcOptions
from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.design import Design
from repro.design.cone import memory_control_latches
from repro.pba import run_pba_phase, verify_with_pba
from repro.pba.minimize import holds_up_to, minimize_reasons


def two_memory_design() -> Design:
    """Property depends on memory `a` only; memory `b` is irrelevant."""
    d = Design("two_mems")
    cnt = d.latch("cnt", 3, init=0)
    cnt.next = cnt.expr + 1
    a_addr = d.latch("a_addr", 3, init=0)
    a_addr.next = a_addr.expr
    b_addr = d.latch("b_addr", 3, init=0)
    b_addr.next = b_addr.expr + 1
    a = d.memory("a", addr_width=3, data_width=4, init=0)
    b = d.memory("b", addr_width=3, data_width=4, init=0)
    a.write(0).connect(addr=a_addr.expr, data=d.const(5, 4), en=cnt.expr.eq(1))
    b.write(0).connect(addr=b_addr.expr, data=d.const(9, 4), en=1)
    a_rd = a.read(0).connect(addr=a_addr.expr, en=1)
    b.read(0).connect(addr=b_addr.expr, en=1)
    # a_rd is 0 before the write and 5 after: never 7.
    d.invariant("p", a_rd.ne(7))
    return d


class TestHoldsUpTo:
    def test_holds_on_concrete_model(self):
        d = two_memory_design()
        assert holds_up_to(d, "p", 6, BmcOptions())

    def test_fails_when_needed_memory_dropped(self):
        d = two_memory_design()
        # Dropping memory `a` frees its read data: p becomes falsifiable.
        opts = BmcOptions(kept_memories=frozenset({"b"}))
        assert not holds_up_to(d, "p", 2, opts)

    def test_holds_when_irrelevant_memory_dropped(self):
        d = two_memory_design()
        opts = BmcOptions(kept_memories=frozenset({"a"}))
        assert holds_up_to(d, "p", 6, opts)

    def test_bad_granularity_rejected(self):
        d = two_memory_design()
        with pytest.raises(ValueError, match="granularity"):
            minimize_reasons(d, "p", frozenset(d.latches), 3,
                             granularity="bogus")


class TestMemoryGranularity:
    def test_irrelevant_memory_dropped(self):
        d = two_memory_design()
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=6,
                               granularity="memory")
        assert "b" in res.dropped_memories
        assert res.memories == frozenset({"a"})
        # b's private control latch goes with it.
        assert "b_addr" in res.dropped_latches

    def test_needed_memory_survives(self):
        d = two_memory_design()
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=6,
                               granularity="memory")
        assert "a" in res.memories
        assert "a_addr" in res.latches

    def test_shared_control_latch_not_dropped(self):
        d = Design("shared_ctrl")
        addr = d.latch("addr", 2, init=0)
        addr.next = addr.expr + 1
        m1 = d.memory("m1", addr_width=2, data_width=2, init=0)
        m2 = d.memory("m2", addr_width=2, data_width=2, init=0)
        m1.write(0).connect(addr=addr.expr, data=1, en=1)
        m2.write(0).connect(addr=addr.expr, data=2, en=1)
        rd1 = m1.read(0).connect(addr=addr.expr, en=1)
        m2.read(0).connect(addr=addr.expr, en=1)
        d.invariant("p", rd1.ne(3))
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=5,
                               granularity="memory")
        # m2 can drop but addr is shared with m1, so it must be kept.
        assert "m2" in res.dropped_memories
        assert "addr" in res.latches

    def test_result_counts_checks(self):
        d = two_memory_design()
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=6,
                               granularity="memory")
        assert res.checks == 2  # one attempted deletion per memory


class TestLatchGranularity:
    def test_irrelevant_latch_dropped(self):
        d = two_memory_design()
        res = minimize_reasons(
            d, "p", frozenset(d.latches), depth=6,
            kept_memories=frozenset({"a"}), granularity="latch")
        assert "b_addr" in res.dropped_latches

    def test_subset_invariant(self):
        d = two_memory_design()
        start = frozenset(d.latches)
        res = minimize_reasons(d, "p", start, depth=6, granularity="both")
        assert res.latches <= start
        assert res.latches | res.dropped_latches == start


class TestQuicksortTable2:
    """The Table 2 phenomenon: P2 never needs the array module."""

    @pytest.fixture(scope="class")
    def design(self):
        return build_quicksort(QuicksortParams(
            n=3, addr_width=3, data_width=3, stack_addr_width=3))

    def test_array_dropped_after_minimization(self, design):
        phase = run_pba_phase(design, "P2", stability_depth=6, max_depth=20)
        res = minimize_reasons(
            design, "P2", phase.latch_reasons, depth=phase.stable_depth,
            kept_memories=phase.kept_memories,
            kept_read_ports=phase.kept_read_ports, granularity="memory")
        assert "arr" in res.dropped_memories
        assert "stack" in res.memories
        arr_ctrl = memory_control_latches(design, "arr")
        assert not arr_ctrl & res.latches

    @pytest.mark.slow
    def test_verify_with_pba_minimize_proves_p2(self, design):
        v = verify_with_pba(design, "P2", stability_depth=6,
                            abstraction_max_depth=20, proof_max_depth=80,
                            minimize="memory")
        assert v.status == "proof"
        assert "arr" in v.phase.abstracted_memories
        assert v.minimization is not None
        assert "arr" in v.minimization.dropped_memories


class TestMinimizeSoundness:
    def test_minimized_model_still_proves_property(self):
        d = two_memory_design()
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=6,
                               granularity="memory")
        opts = BmcOptions(kept_latches=res.latches,
                          kept_memories=res.memories, validate_cex=False)
        assert holds_up_to(d, "p", 8, opts)

    def test_failing_property_never_minimizes_to_nothing(self):
        d = Design("buggy")
        c = d.latch("c", 2, init=0)
        c.next = c.expr + 1
        d.invariant("p", c.expr.ne(3))  # fails at depth 3
        res = minimize_reasons(d, "p", frozenset(d.latches), depth=2,
                               granularity="latch")
        # Freeing c makes it an arbitrary word, so c==3 becomes reachable
        # at depth 0 and the deletion is rejected: c must stay.
        assert "c" in res.latches
