"""CLI smoke tests (driving main() in-process)."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quicksort" in out and "fifo" in out

    def test_info(self, capsys):
        assert main(["info", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "memory buf" in out
        assert "property count_bounded" in out

    def test_verify_single_property(self, capsys):
        rc = main(["verify", "stack_machine", "--property", "can_reach_depth3",
                   "--engine", "bmc2", "--max-depth", "6",
                   "--addr-width", "2", "--data-width", "3"])
        assert rc == 0
        assert "witness" in capsys.readouterr().out

    def test_verify_proof(self, capsys):
        rc = main(["verify", "stack_machine", "--property", "sp_in_range",
                   "--max-depth", "10", "--addr-width", "2",
                   "--data-width", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "induction" in out

    def test_verify_explicit_engine(self, capsys):
        rc = main(["verify", "fifo", "--property", "can_fill",
                   "--engine", "explicit", "--max-depth", "6",
                   "--addr-width", "2", "--data-width", "2"])
        assert rc == 0
        assert "witness" in capsys.readouterr().out

    def test_verify_show_trace(self, capsys):
        rc = main(["verify", "fifo", "--property", "can_fill",
                   "--engine", "bmc2", "--max-depth", "6", "--show-trace",
                   "--addr-width", "2", "--data-width", "2"])
        assert rc == 0
        assert "cycle" in capsys.readouterr().out

    def test_pba_command(self, capsys):
        rc = main(["pba", "quicksort", "--property", "P2", "--n", "2",
                   "--addr-width", "3", "--data-width", "3",
                   "--stability-depth", "4", "--max-depth", "24"])
        out = capsys.readouterr().out
        assert "abstracted memories" in out
        assert "arr" in out

    def test_bad_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "nonsense"])

    def test_ablation_flags(self, capsys):
        rc = main(["verify", "stack_machine", "--property", "can_reach_depth3",
                   "--engine", "bmc2", "--max-depth", "5", "--no-exclusivity",
                   "--addr-width", "2", "--data-width", "2"])
        assert rc == 0
        assert "witness" in capsys.readouterr().out


class TestExportParse:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "module fifo" in out
        assert "endmodule" in out

    def test_export_to_file_then_parse(self, tmp_path, capsys):
        target = tmp_path / "fifo.v"
        assert main(["export", "fifo", "-o", str(target)]) == 0
        assert main(["parse", str(target)]) == 0
        out = capsys.readouterr().out
        assert "parsed module 'fifo'" in out
        assert "1 memories" in out

    def test_parse_verify(self, tmp_path, capsys):
        target = tmp_path / "fifo.v"
        main(["export", "fifo", "-o", str(target)])
        rc = main(["parse", str(target), "--verify", "--no-proof",
                   "--max-depth", "8"])
        out = capsys.readouterr().out
        assert "can_fill: witness" in out

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("module broken (clk); input clk; garbage endmodule")
        assert main(["parse", str(bad)]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_roundtrip_command(self, capsys):
        assert main(["roundtrip", "fifo", "--max-depth", "6"]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out


class TestShrinkAndMinimize:
    def test_verify_with_shrink(self, capsys):
        rc = main(["verify", "fifo", "--property", "can_fill",
                   "--no-proof", "--shrink", "--show-trace",
                   "--max-depth", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shrunk:" in out

    def test_pba_with_minimize(self, capsys):
        rc = main(["pba", "quicksort", "--property", "P2", "--n", "2",
                   "--stability-depth", "4", "--max-depth", "20",
                   "--minimize", "memory"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "minimization: dropped memories ['arr']" in out


class TestCpuDesign:
    def test_cpu_listed(self, capsys):
        main(["list"])
        assert "cpu" in capsys.readouterr().out.split()

    def test_cpu_info(self, capsys):
        assert main(["info", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "memory imem" in out
        assert "memory dmem" in out

    def test_cpu_halts_witness(self, capsys):
        rc = main(["verify", "cpu", "--property", "halts", "--no-proof",
                   "--max-depth", "14"])
        assert rc == 0
        assert "witness" in capsys.readouterr().out
