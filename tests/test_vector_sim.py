"""Tests for the NumPy batch simulator and the Oracle API.

The contract under test is *bit-exactness*: every lane of a
:class:`repro.sim.vector.VectorSimulator` batch must reproduce the
scalar reference :class:`repro.sim.Simulator` exactly — same trace
values, same property verdicts, same initial-state bookkeeping — on
every netlist shape the repo generates, including multi-port memories,
chained read ports, arbitrary-init state and ROM init words.
"""

import random

import pytest

pytest.importorskip("numpy")
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies.fifo import FifoParams, build_fifo
from repro.design import Design
from repro.sim import (ExplicitOracle, Simulator, SimulatorOracle,
                       Stimulus, Trace, VectorOracle, VectorSimulator,
                       default_oracle, have_numpy)
from tests.test_differential_matrix import random_netlist


def counter_design():
    d = Design("cnt")
    en = d.input("en", 1)
    c = d.latch("c", 4, init=2)
    c.next = en.ite(c.expr + 1, c.expr)
    d.invariant("small", c.expr.ult(10))
    return d


def memory_design():
    """Two write ports (priority), chained reads, ROM words, noise latch."""
    d = Design("memdut")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    noise = d.latch("noise", 3, init=None)
    noise.next = noise.expr
    mem = d.memory("m", 2, 3, read_ports=2, write_ports=2, init=None,
                   init_words={1: 5})
    mem.write(0).connect(addr=d.input("wa0", 2), data=d.input("wd0", 3),
                         en=d.input("we0", 1))
    mem.write(1).connect(addr=d.input("wa1", 2), data=d.input("wd1", 3),
                         en=d.input("we1", 1))
    mem.read(0).connect(addr=t.expr, en=1)
    # Chained read: port 1's address comes from port 0's data.
    mem.read(1).connect(addr=mem.read(0).data[0:2], en=d.input("re1", 1))
    d.reach("hit", mem.read(1).data.eq(5))
    d.invariant("no7", ~mem.read(0).data.eq(7))
    return d


def random_inputs(design, rng, cycles):
    return [{n: rng.randrange(1 << i.width)
             for n, i in design.inputs.items()} for _ in range(cycles)]


class TestBatchOfOne:
    """Batch of 1 must degenerate exactly to the scalar simulator."""

    def test_counter(self):
        d = counter_design()
        seq = [{"en": k % 2} for k in range(8)]
        ref = Simulator(d).run(seq)
        got = VectorSimulator(d, 1).run(seq).lane(0)
        assert got.cycles == ref.cycles

    def test_memory_with_state_overrides(self):
        d = memory_design()
        rng = random.Random(7)
        seq = random_inputs(d, rng, 6)
        init_l = {"noise": 5}
        init_m = {"m": {0: 3, 2: 6}}
        ref = Simulator(d, init_latches=init_l, init_memories=init_m).run(seq)
        got = VectorSimulator(d, 1, init_latches=init_l,
                              init_memories=init_m).run(seq).lane(0)
        assert got.cycles == ref.cycles
        # The raw simulator records the effective initial state (caller
        # overrides merged over declared ROM words); the scalar Trace
        # leaves these to the oracle layer.
        assert got.init_latches == {"noise": 5}
        assert got.init_memories == {"m": {0: 3, 1: 5, 2: 6}}


class TestLaneSemantics:
    def test_per_lane_inputs_and_inits(self):
        """Each lane sees its own inputs/initial state, not a mixture."""
        d = memory_design()
        rng = random.Random(13)
        batch = 16
        stimuli = [Stimulus(
            inputs=random_inputs(d, rng, 5),
            init_latches={"noise": rng.randrange(8)},
            init_memories={"m": {a: rng.randrange(8)
                                 for a in range(rng.randrange(4))}})
            for _ in range(batch)]
        traces = VectorOracle(d).replay_batch(stimuli)
        scalar = SimulatorOracle(d)
        for s, got in zip(stimuli, traces):
            assert got.cycles == scalar.replay(s).cycles

    def test_scalar_int_init_broadcasts(self):
        d = counter_design()
        sim = VectorSimulator(d, 4, init_latches={"c": 9})
        assert [int(v) for v in sim.latches["c"]] == [9] * 4

    def test_array_init_per_lane(self):
        d = counter_design()
        sim = VectorSimulator(d, 4, init_latches={"c": [1, 2, 3, 4]})
        sim.step({"en": 1})
        assert [int(v) for v in sim.latches["c"]] == [2, 3, 4, 5]

    def test_write_port_priority_highest_wins(self):
        d = memory_design()
        # Both ports write address 0 in the same cycle; port 1 must win.
        seq = [{"wa0": 0, "wd0": 2, "we0": 1, "wa1": 0, "wd1": 6, "we1": 1,
                "re1": 0}, {"re1": 0}]
        sim = VectorSimulator(d, 2)
        sim.step(seq[0])
        assert int(sim.mems["m"][0, 0]) == 6
        ref = Simulator(d)
        ref.step(seq[0])
        assert ref.memories["m"].get(0, 0) == 6

    def test_read_enable_low_forces_zero(self):
        d = memory_design()
        bt = VectorSimulator(d, 1, init_memories={"m": {0: 7}}).run(
            [{"re1": 0}])
        # read(0) addresses t=0 -> 7 -> chained addr 3; with re1=0 the
        # chained read reports 0 regardless of contents.
        assert bt.cycles[0]["props"]["no7"].max() == 0  # 7 read -> invariant
        ref = Simulator(d, init_memories={"m": {0: 7}}).run([{"re1": 0}])
        assert bt.lane(0).cycles == ref.cycles


class TestBatchTrace:
    def make(self, batch=8, cycles=6, seed=3):
        d = memory_design()
        rng = random.Random(seed)
        seqs = [random_inputs(d, rng, cycles) for _ in range(batch)]
        merged = [{n: np.array([seqs[b][k][n] for b in range(batch)],
                               dtype=np.uint64)
                   for n in d.inputs} for k in range(cycles)]
        bt = VectorSimulator(d, batch).run(merged)
        refs = [Simulator(d).run(seqs[b]) for b in range(batch)]
        return d, bt, refs

    def test_lane_extraction_matches_scalar(self):
        _, bt, refs = self.make()
        for b, ref in enumerate(refs):
            assert bt.lane(b).cycles == ref.cycles

    def test_from_batch_constructor(self):
        _, bt, refs = self.make()
        assert Trace.from_batch(bt, 2).cycles == refs[2].cycles

    def test_lane_out_of_range(self):
        _, bt, _ = self.make(batch=4)
        with pytest.raises(IndexError):
            bt.lane(4)

    def test_prop_matrix_shape(self):
        _, bt, _ = self.make(batch=8, cycles=6)
        assert bt.prop_matrix("hit").shape == (6, 8)

    def test_first_cycle_where_matches_scan(self):
        d, bt, refs = self.make(batch=8, seed=11)
        oracle = SimulatorOracle(d)
        firsts = bt.first_cycle_where("hit", 1)
        for b, ref in enumerate(refs):
            v = oracle.scan("hit", ref)
            assert firsts[b] == (v.cycle if v.failed else None)


class TestGuards:
    def test_wide_expression_rejected(self):
        d = Design("wide")
        a = d.input("a", 64)
        lit = d.latch("l", 65, init=0)
        lit.next = a.zext(65) + lit.expr
        d.invariant("p", lit.expr.eq(0))
        with pytest.raises(ValueError, match="64-bit"):
            VectorSimulator(d, 2)

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            VectorSimulator(counter_design(), 0)

    def test_have_numpy_true_here(self):
        assert have_numpy()


class TestOracles:
    def test_default_oracle_is_vectorized(self):
        assert isinstance(default_oracle(counter_design()), VectorOracle)

    def test_check_batch_groups_mixed_lengths(self):
        d = memory_design()
        rng = random.Random(5)
        stimuli = [Stimulus(inputs=random_inputs(d, rng, rng.choice([3, 5])))
                   for _ in range(12)]
        vec = VectorOracle(d, max_batch=4)
        scalar = SimulatorOracle(d)
        for prop in ("hit", "no7"):
            got = vec.check_batch(prop, stimuli)
            want = scalar.check_batch(prop, stimuli)
            assert [(v.failed, v.cycle) for v in got] == \
                [(v.failed, v.cycle) for v in want]

    def test_explicit_oracle_matches_scalar_on_fifo(self):
        d = build_fifo(FifoParams(addr_width=2, data_width=2))
        rng = random.Random(2)
        stim = Stimulus(inputs=random_inputs(d, rng, 8))
        explicit = ExplicitOracle(d)
        scalar = SimulatorOracle(d)
        for prop in d.properties:
            got = explicit.check(prop, stim)
            want = scalar.check(prop, stim)
            assert (got.failed, got.cycle) == (want.failed, want.cycle), prop

    def test_stimulus_dict_roundtrip(self):
        s = Stimulus(inputs=[{"a": 1}, {"a": 0}], init_latches={"l": 3},
                     init_memories={"m": {0: 1, 3: 2}})
        s2 = Stimulus.from_dict(s.to_dict())
        assert s2.inputs == s.inputs
        assert s2.init_latches == s.init_latches
        assert s2.init_memories == s.init_memories


class TestRandomizedParity:
    """The satellite regression: scalar-vs-vector bit-exactness pinned
    with both seeded sweeps and hypothesis-driven stimulus."""

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_netlists(self, seed):
        design, _prop = random_netlist(seed)
        rng = random.Random(100 + seed)
        stimuli = [Stimulus(
            inputs=random_inputs(design, rng, 6),
            init_memories={m.name: {a: rng.randrange(1 << m.data_width)
                                    for a in range(rng.randrange(3))}
                           for m in design.memories.values()
                           if m.init is None})
            for _ in range(24)]
        traces = VectorOracle(design).replay_batch(stimuli)
        scalar = SimulatorOracle(design)
        for s, got in zip(stimuli, traces):
            ref = scalar.replay(s)
            assert got.cycles == ref.cycles
            assert got.init_latches == ref.init_latches
            assert got.init_memories == ref.init_memories

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_hypothesis_stimulus(self, data):
        d = memory_design()
        cycles = data.draw(st.integers(1, 6))
        inputs = [
            {n: data.draw(st.integers(0, (1 << i.width) - 1), label=f"{n}@{k}")
             for n, i in d.inputs.items()}
            for k in range(cycles)]
        init_l = {"noise": data.draw(st.integers(0, 7))}
        init_m = {"m": {a: data.draw(st.integers(0, 7))
                        for a in data.draw(st.sets(st.integers(0, 3)))}}
        stim = Stimulus(inputs=inputs, init_latches=init_l,
                        init_memories=init_m)
        got = VectorOracle(d).replay(stim)
        ref = SimulatorOracle(d).replay(stim)
        assert got.cycles == ref.cycles
