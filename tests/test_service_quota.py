"""Per-job quotas, DEGRADED semantics, and gap-aware window merging.

A quota-tripped job must abort *cleanly at depth granularity*: its
DEGRADED result reports the deepest fully-checked depth (a sound "no
counterexample up to d"), which :func:`merge_window_results` can fold
into a sharded verdict.  That is the contrast with TIMEOUT, whose depth
is the one being *attempted* when the deadline hit mid-check.
"""

import multiprocessing
import time
from dataclasses import replace

import pytest

from repro.bmc import BmcOptions, DEGRADED, verify, verify_many
from repro.bmc.results import BOUNDED, CEX, PROOF, TIMEOUT
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.service import (JobQuotas, VerificationService,
                           merge_window_results, shard_depths)


def tiny_fifo():
    return build_fifo(FifoParams(addr_width=2, data_width=2))


def wait_no_children(timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    assert not multiprocessing.active_children()


# ---------------------------------------------------------------------------
# Engine-level quota semantics.
# ---------------------------------------------------------------------------


class TestDegradedSemantics:
    def test_clause_quota_degrades_at_depth_granularity(self):
        base = verify(tiny_fifo(), "can_fill", BmcOptions(max_depth=8))
        assert base.status == CEX
        # A watermark the encoding crosses before the CEX depth: the run
        # must degrade at a *fully checked* shallower depth, not die.
        r = verify(tiny_fifo(), "can_fill",
                   BmcOptions(max_depth=8, clause_var_quota=200))
        assert r.status == DEGRADED
        assert r.stats.quota_tripped == "clauses"
        assert -1 <= r.depth < base.depth
        # Soundness: depths 0..r.depth really are CEX-free — the full
        # run's counterexample is strictly deeper.
        assert base.depth > r.depth

    def test_wall_quota_zero_degrades_with_nothing_checked(self):
        r = verify(tiny_fifo(), "can_fill",
                   BmcOptions(max_depth=8, wall_quota_s=0.0))
        assert r.status == DEGRADED
        assert r.stats.quota_tripped == "wall"
        assert r.depth == -1

    def test_mem_quota_degrades(self):
        r = verify(tiny_fifo(), "can_fill",
                   BmcOptions(max_depth=8, mem_quota_mb=0.001))
        assert r.status == DEGRADED
        assert r.stats.quota_tripped == "mem"
        assert r.depth == -1

    def test_timeout_stays_timeout_not_degraded(self):
        # The run-abort deadline (timeout_s) keeps its historical
        # mid-check TIMEOUT semantics; only wall_quota_s degrades.
        r = verify(tiny_fifo(), "can_fill",
                   BmcOptions(max_depth=8, timeout_s=0.0))
        assert r.status == TIMEOUT
        assert r.stats.quota_tripped is None

    def test_quota_knobs_do_not_change_encoding_key(self):
        base = BmcOptions()
        for opts in (BmcOptions(mem_quota_mb=1.0),
                     BmcOptions(clause_var_quota=10),
                     BmcOptions(wall_quota_s=0.5)):
            assert opts.encoding_key() == base.encoding_key()

    def test_degraded_flows_through_verify_many(self):
        results = verify_many(tiny_fifo(), options=BmcOptions(
            max_depth=8, find_proof=False, clause_var_quota=150))
        assert results
        for r in results.values():
            assert r.status == DEGRADED
            assert r.stats.quota_tripped == "clauses"

    def test_degraded_json_and_describe(self):
        r = verify(tiny_fifo(), "can_fill",
                   BmcOptions(max_depth=8, wall_quota_s=0.0))
        d = r.to_dict()
        assert d["status"] == DEGRADED
        assert d["stats"]["quota_tripped"] == "wall"
        assert "degraded" in r.describe()
        assert "wall quota exhausted" in r.describe()


# ---------------------------------------------------------------------------
# JobQuotas bundle.
# ---------------------------------------------------------------------------


class TestJobQuotas:
    def test_apply_sets_only_given_fields(self):
        opts = BmcOptions(max_depth=9, timeout_s=3.0)
        q = JobQuotas(mem_quota_mb=128.0, wall_quota_s=2.0)
        applied = q.apply(opts)
        assert applied.mem_quota_mb == 128.0
        assert applied.wall_quota_s == 2.0
        assert applied.clause_var_quota is None
        assert applied.max_depth == 9 and applied.timeout_s == 3.0

    def test_empty_quotas_are_falsy_noop(self):
        opts = BmcOptions()
        assert not JobQuotas()
        assert JobQuotas().apply(opts) is opts
        assert JobQuotas(wall_quota_s=1.0)

    def test_service_applies_quotas_to_every_job(self):
        svc = VerificationService(tiny_fifo, BmcOptions(max_depth=8),
                                  quotas=JobQuotas(clause_var_quota=150))
        for job in svc.plan():
            assert job.options.clause_var_quota == 150
        results = svc.run()
        assert all(r.status == DEGRADED for r in results.values())


# ---------------------------------------------------------------------------
# Gap-aware window merging.
# ---------------------------------------------------------------------------


def _mk(status, depth):
    return replace(verify(tiny_fifo(), "count_bounded",
                          BmcOptions(max_depth=0, find_proof=False)),
                   status=status, depth=depth)


class TestMergeWindowResults:
    WINDOWS = [(0, 2), (3, 5), (6, 8)]

    def test_legacy_first_conclusive_wins(self):
        merged = merge_window_results([_mk(BOUNDED, 2), _mk(CEX, 4),
                                       _mk(PROOF, 7)])
        assert merged.status == CEX and merged.depth == 4

    def test_legacy_all_bounded_returns_deepest(self):
        merged = merge_window_results([_mk(BOUNDED, 2), _mk(BOUNDED, 5)])
        assert merged.status == BOUNDED and merged.depth == 5

    def test_legacy_rejects_missing_without_windows(self):
        with pytest.raises(ValueError):
            merge_window_results([_mk(BOUNDED, 2), None])

    def test_hole_degrades_to_sound_prefix(self):
        merged = merge_window_results(
            [_mk(BOUNDED, 2), None, _mk(BOUNDED, 8)], self.WINDOWS)
        assert merged.status == DEGRADED
        assert merged.depth == 2  # the post-hole window proves nothing

    def test_degraded_window_caps_the_frontier(self):
        mid = _mk(DEGRADED, 4)  # window (3,5) checked only up to 4
        merged = merge_window_results(
            [_mk(BOUNDED, 2), mid, _mk(BOUNDED, 8)], self.WINDOWS)
        assert merged.status == DEGRADED
        assert merged.depth == 4

    def test_cex_wins_even_across_gaps(self):
        merged = merge_window_results(
            [None, None, _mk(CEX, 7)], self.WINDOWS)
        assert merged.status == CEX and merged.depth == 7

    def test_proof_after_gap_is_not_trusted(self):
        # A backward-induction proof in window (6,8) is conditional on
        # depths 0..5 being CEX-free — which the hole never established.
        merged = merge_window_results(
            [_mk(BOUNDED, 2), None, _mk(PROOF, 7)], self.WINDOWS)
        assert merged.status == DEGRADED
        assert merged.depth == 2

    def test_proof_on_contiguous_prefix_wins(self):
        merged = merge_window_results(
            [_mk(BOUNDED, 2), _mk(PROOF, 4), None], self.WINDOWS)
        assert merged.status == PROOF and merged.depth == 4

    def test_leading_hole_means_nothing_sound(self):
        merged = merge_window_results(
            [None, _mk(BOUNDED, 5), _mk(BOUNDED, 8)], self.WINDOWS)
        assert merged.status == DEGRADED
        assert merged.depth == -1

    def test_all_missing_raises(self):
        with pytest.raises(ValueError):
            merge_window_results([None, None, None], self.WINDOWS)

    def test_misaligned_lengths_raise(self):
        with pytest.raises(ValueError):
            merge_window_results([_mk(BOUNDED, 2)], self.WINDOWS)

    def test_sharded_service_run_with_quota_degrades_soundly(self):
        opts = BmcOptions(max_depth=8, find_proof=False)
        windows = shard_depths(8, 3)
        base = VerificationService(tiny_fifo, opts).run(
            ["count_bounded"], depth_windows=windows)["count_bounded"]
        assert base.status == BOUNDED and base.depth == 8
        svc = VerificationService(tiny_fifo, opts,
                                  quotas=JobQuotas(clause_var_quota=400))
        merged = svc.run(["count_bounded"],
                         depth_windows=windows)["count_bounded"]
        assert merged.status == DEGRADED
        assert -1 <= merged.depth < 8


# ---------------------------------------------------------------------------
# Pool-leak regression: abandoning a pooled stream must not leak workers.
# ---------------------------------------------------------------------------


class TestAbandonedStream:
    def test_abandoned_iterator_reaps_workers(self):
        with VerificationService(tiny_fifo, BmcOptions(max_depth=6),
                                 jobs=2) as svc:
            it = svc.stream()
            next(it)  # start the pool, consume one record, walk away
            it.close()
        wait_no_children()

    def test_abandoned_iterator_gc_reaps_workers(self):
        svc = VerificationService(tiny_fifo, BmcOptions(max_depth=6), jobs=2)
        it = svc.stream()
        next(it)
        del it  # generator finalizer must run the cleanup path
        svc.close()
        wait_no_children()

    def test_close_is_idempotent_and_restartable(self):
        svc = VerificationService(tiny_fifo, BmcOptions(max_depth=4), jobs=2)
        first = svc.run()
        svc.close()
        svc.close()
        again = svc.run()  # a fresh pool spins up transparently
        assert {k: v.status for k, v in first.items()} == \
               {k: v.status for k, v in again.items()}
        svc.close()
        wait_no_children()
