"""Quicksort case study: simulation correctness, BMC proofs, Table 2 PBA."""

import random

import pytest

from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.quicksort import (HALT, QuicksortParams,
                                         build_quicksort)
from repro.design import memory_control_latches
from repro.pba import minimize_reasons, run_pba_phase
from repro.sim import Simulator

TINY = QuicksortParams(n=2, addr_width=3, data_width=3, stack_addr_width=3)
SMALL = QuicksortParams(n=3, addr_width=3, data_width=3, stack_addr_width=3)


def run_to_halt(params, values, max_cycles=600):
    design = build_quicksort(params)
    sim = Simulator(design, init_memories={
        "arr": {i: v for i, v in enumerate(values)}})
    p1 = design.properties["P1"].expr
    p2 = design.properties["P2"].expr
    for cycle in range(max_cycles):
        sim.begin_cycle({})
        assert sim.eval(p1) == 1, f"P1 fails at {cycle} for {values}"
        assert sim.eval(p2) == 1, f"P2 fails at {cycle} for {values}"
        if sim.latches["pc"] == HALT:
            return [sim.memories["arr"].get(i, 0) for i in range(params.n)]
        sim.commit_cycle()
    raise AssertionError(f"no HALT for {values}")


class TestAlgorithm:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_sorts_random_arrays(self, seed, n):
        rng = random.Random(seed * 10 + n)
        params = QuicksortParams(n=n, addr_width=4, data_width=6,
                                 stack_addr_width=4)
        values = [rng.randrange(0, 64) for _ in range(n)]
        assert run_to_halt(params, values) == sorted(values)

    @pytest.mark.parametrize("values", [
        [0, 0], [7, 0], [1, 2, 3], [3, 2, 1], [5, 5, 5], [0, 7, 0, 7]])
    def test_sorts_adversarial_arrays(self, values):
        params = QuicksortParams(n=len(values), addr_width=4, data_width=3,
                                 stack_addr_width=4)
        assert run_to_halt(params, values) == sorted(values)

    def test_design_stats(self):
        d = build_quicksort(SMALL)
        assert len(d.memories) == 2
        assert d.memories["arr"].init is None  # arbitrary initial array
        assert d.memories["stack"].init is None

    def test_params_validation(self):
        with pytest.raises(ValueError):
            QuicksortParams(n=1)
        with pytest.raises(ValueError):
            QuicksortParams(n=8, addr_width=3)
        with pytest.raises(ValueError):
            QuicksortParams(n=5, addr_width=4, stack_addr_width=3)


class TestControlLatchSeparation:
    def test_array_control_is_interface_registers(self):
        d = build_quicksort(SMALL)
        control = memory_control_latches(d, "arr")
        assert control == {"arr_raddr", "arr_re", "arr_waddr",
                           "arr_wdata", "arr_we"}

    def test_stack_control_is_interface_registers(self):
        d = build_quicksort(SMALL)
        control = memory_control_latches(d, "stack")
        assert control == {"stk_raddr", "stk_re", "stk_waddr",
                           "stk_wdata", "stk_we"}


@pytest.mark.slow
class TestVerification:
    def test_p1_proof_tiny(self):
        r = verify(build_quicksort(TINY), "P1", bmc3(max_depth=30, pba=False))
        assert r.proved, r.describe()
        assert r.method == "forward"

    def test_p2_proof_tiny(self):
        r = verify(build_quicksort(TINY), "P2", bmc3(max_depth=30, pba=False))
        assert r.proved, r.describe()

    def test_p1_falsifiable_when_checker_inverted(self):
        # Mutation check: flipping the comparison must yield a real CE.
        d = build_quicksort(TINY)
        bad = ~d.properties["P1"].expr
        d.invariant("P1_bad", bad | d.latches["flag_valid"].expr.eq(0))
        r = verify(d, "P1_bad", BmcOptions(find_proof=False, max_depth=30))
        assert r.falsified
        assert r.trace_validated is True

    def test_p2_pba_abstracts_array(self):
        """Table 2's headline: the array module drops out for P2.

        Raw unsat cores are sufficient but not minimal — they may or may
        not include an array control latch — so the pipeline applies
        deletion-based minimization before deciding memory abstraction.
        """
        design = build_quicksort(TINY)
        phase = run_pba_phase(design, "P2", stability_depth=4, max_depth=24)
        res = minimize_reasons(design, "P2", phase.latch_reasons,
                               depth=phase.stable_depth,
                               kept_memories=phase.kept_memories,
                               kept_read_ports=phase.kept_read_ports,
                               granularity="memory")
        assert "arr" in res.dropped_memories, sorted(res.latches)
        assert "stack" in res.memories
        kept_bits = sum(design.latches[n].width for n in res.latches)
        assert kept_bits < design.num_latch_bits()
