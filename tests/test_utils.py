"""Unit tests for shared helpers."""

from hypothesis import given, strategies as st

from repro.utils import bits_to_int, int_to_bits, luby, mask


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
                    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 16]
        assert [luby(i) for i in range(len(expected))] == expected

    def test_values_are_powers_of_two(self):
        for i in range(200):
            v = luby(i)
            assert v & (v - 1) == 0 and v >= 1

    def test_peak_positions(self):
        # Element at index 2^k - 2 is 2^(k-1).
        for k in range(1, 8):
            assert luby((1 << k) - 2) == 1 << (k - 1)


class TestBitvec:
    def test_mask(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255

    def test_roundtrip_simple(self):
        assert int_to_bits(5, 4) == [True, False, True, False]
        assert bits_to_int([True, False, True, False]) == 5

    @given(st.integers(min_value=0, max_value=2**20), st.integers(1, 24))
    def test_roundtrip_masks(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value & mask(width)

    def test_truncation(self):
        assert bits_to_int(int_to_bits(0x1FF, 8)) == 0xFF

    def test_negative_width_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            int_to_bits(1, -1)
