"""Tests for per-address initial memory contents (ROM support)."""

import random

import pytest

from repro.bmc import BmcOptions, bmc3, verify
from repro.design import Design, expand_memories
from repro.design.equiv import check_equivalence
from repro.sim import Simulator


def rom_reader(init=0, init_words=None, aw=3, dw=8):
    """pc walks the ROM; acc latches the read value."""
    d = Design("rom_reader")
    pc = d.latch("pc", aw, init=0)
    pc.next = pc.expr + 1
    rom = d.memory("rom", addr_width=aw, data_width=dw, init=init,
                   init_words=init_words)
    rom.write(0).connect(addr=d.const(0, aw), data=d.const(0, dw), en=0)
    rd = rom.read(0).connect(addr=pc.expr, en=1)
    acc = d.latch("acc", dw, init=0)
    acc.next = rd
    return d, acc


class TestDeclaration:
    def test_values_masked_to_data_width(self):
        d = Design("t")
        m = d.memory("m", addr_width=2, data_width=4, init=0,
                     init_words={1: 0x1F})
        assert m.init_words[1] == 0xF

    def test_out_of_range_address_rejected(self):
        d = Design("t")
        with pytest.raises(ValueError, match="out of range"):
            d.memory("m", addr_width=2, data_width=4, init=0,
                     init_words={4: 1})

    def test_initial_word_lookup(self):
        d = Design("t")
        m = d.memory("m", addr_width=2, data_width=4, init=7,
                     init_words={2: 3})
        assert m.initial_word(2) == 3
        assert m.initial_word(0) == 7

    def test_initial_word_arbitrary_default(self):
        d = Design("t")
        m = d.memory("m", addr_width=2, data_width=4, init=None,
                     init_words={2: 3})
        assert m.initial_word(2) == 3
        assert m.initial_word(1) is None


class TestSimulator:
    def test_seeded_contents_visible(self):
        d, __ = rom_reader(init=9, init_words={0: 1, 2: 5})
        sim = Simulator(d)
        t = sim.run([{}] * 4)
        accs = [c["latches"]["acc"] for c in t.cycles]
        assert accs == [0, 1, 9, 5]  # one-cycle latency through acc

    def test_caller_override_wins(self):
        d, __ = rom_reader(init=0, init_words={1: 5})
        sim = Simulator(d, init_memories={"rom": {1: 7}})
        t = sim.run([{}] * 3)
        assert t.cycles[2]["latches"]["acc"] == 7


class TestBmcSemantics:
    def test_seeded_value_reachable_and_validated(self):
        d, acc = rom_reader(init=0, init_words={3: 42})
        d.reach("sees42", acc.expr.eq(42))
        r = verify(d, "sees42", BmcOptions(find_proof=False, max_depth=8))
        assert r.status == "cex"
        assert r.depth == 4
        assert r.trace_validated is True

    def test_seeded_address_pinned(self):
        d, acc = rom_reader(init=0, init_words={3: 42})
        pc = d.latches["pc"]
        d.reach("wrong", pc.expr.eq(4) & acc.expr.ne(42))
        r = verify(d, "wrong", BmcOptions(find_proof=False, max_depth=8))
        assert r.status == "bounded"  # unreachable: address 3 holds 42

    def test_unseeded_defaults_to_uniform_init(self):
        d, acc = rom_reader(init=9, init_words={3: 42})
        pc = d.latches["pc"]
        d.reach("wrong", pc.expr.eq(2) & acc.expr.ne(9))
        r = verify(d, "wrong", BmcOptions(find_proof=False, max_depth=8))
        assert r.status == "bounded"

    def test_arbitrary_default_with_overrides(self):
        d, acc = rom_reader(init=None, init_words={3: 42})
        pc = d.latches["pc"]
        d.reach("free_loc", pc.expr.eq(2) & acc.expr.eq(7))
        d.reach("pinned_loc", pc.expr.eq(4) & acc.expr.ne(42))
        assert verify(d, "free_loc",
                      BmcOptions(find_proof=False, max_depth=8)).status == "cex"
        assert verify(d, "pinned_loc",
                      BmcOptions(find_proof=False, max_depth=8)).status == "bounded"

    def test_induction_proof_with_rom(self):
        d, acc = rom_reader(init=0, init_words={1: 3, 2: 3})
        d.invariant("acc_small", acc.expr.ult(4))
        r = verify(d, "acc_small", bmc3(max_depth=16, pba=False))
        assert r.proved, r.describe()

    def test_write_overrides_rom_value(self):
        d = Design("wr")
        pc = d.latch("pc", 2, init=0)
        pc.next = pc.expr + 1
        m = d.memory("m", addr_width=2, data_width=4, init=0,
                     init_words={1: 5})
        m.write(0).connect(addr=d.const(1, 2), data=d.const(9, 4),
                           en=pc.expr.eq(0))
        rd = m.read(0).connect(addr=d.const(1, 2), en=1)
        d.reach("new_value", pc.expr.eq(2) & rd.eq(9))
        d.reach("old_value", pc.expr.eq(2) & rd.eq(5))
        assert verify(d, "new_value",
                      BmcOptions(find_proof=False, max_depth=4)).status == "cex"
        assert verify(d, "old_value",
                      BmcOptions(find_proof=False, max_depth=4)).status == "bounded"


class TestExplicitAgreement:
    @pytest.mark.parametrize("init,words", [
        (0, {0: 1, 5: 9}),
        (7, {2: 0}),
        (None, {1: 4, 6: 2}),
    ])
    def test_emm_matches_explicit_expansion(self, init, words):
        d, acc = rom_reader(init=init, init_words=words, aw=3, dw=4)
        ex = expand_memories(d)
        share = init is None
        r = check_equivalence(d, ex, [(acc.expr, ex.latches["acc"].expr)],
                              max_depth=9, share_arbitrary_init=share)
        # With an arbitrary default the two sides hold independent unknown
        # contents unless shared; sharing is only wired for same-name
        # arbitrary memories, which expansion removes — so restrict the
        # check to the pinned addresses in that case.
        if init is not None:
            assert r.status == "bounded", r.describe()

    def test_expanded_word_latches_seeded(self):
        d, __ = rom_reader(init=3, init_words={2: 9}, aw=2, dw=4)
        ex = expand_memories(d)
        assert ex.latches["rom::w2"].init == 9
        assert ex.latches["rom::w0"].init == 3

    def test_expanded_arbitrary_default_stays_arbitrary(self):
        d, __ = rom_reader(init=None, init_words={2: 9}, aw=2, dw=4)
        ex = expand_memories(d)
        assert ex.latches["rom::w2"].init == 9
        assert ex.latches["rom::w0"].init is None


class TestRandomizedCrossCheck:
    @pytest.mark.parametrize("seed", range(6))
    def test_simulator_vs_bmc_witness(self, seed):
        rng = random.Random(seed)
        words = {a: rng.randrange(16) for a in rng.sample(range(8), 3)}
        d, acc = rom_reader(init=0, init_words=words, aw=3, dw=4)
        target_addr = rng.choice(sorted(words))
        target_val = words[target_addr]
        pc = d.latches["pc"]
        d.reach("hit", pc.expr.eq((target_addr + 1) % 8) & acc.expr.eq(target_val))
        r = verify(d, "hit", BmcOptions(find_proof=False, max_depth=10))
        assert r.status == "cex"
        assert r.trace_validated is True
