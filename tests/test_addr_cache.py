"""Address-comparator dedup (repro.emm.addrcmp): cross-checks + accounting.

The comparator cache and constant folding must be invisible to every
observable verification outcome: randomized multi-port designs are run
through full BMC (induction + PBA) with ``emm_addr_dedup`` on and off,
and statuses, depths, trace validity and the PBA latch/memory reason
sets must coincide.  Separate tests pin down the accounting: recurring
address cones produce cache hits, constant addresses produce folds, the
const-vs-symbolic form costs m+1 clauses, and the race monitor books
into its dedicated counters without touching the paper-formula ones.
"""

import random

import pytest

from repro.aig import Aig, CnfEmitter
from repro.bmc import BmcOptions, bmc3, verify
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import AddrComparator, EmmMemory, accounting
from repro.sat import Solver


# ---------------------------------------------------------------------------
# Randomized cross-check: dedup on/off must verify identically.
# ---------------------------------------------------------------------------

def random_design(rng: random.Random) -> tuple[Design, str]:
    """A random multi-port single-memory design with recurring addresses.

    Address cones are drawn from a small pool (constants, a shared input,
    a walking latch) so the comparator cache actually fires; the checked
    property is a reach target on read-back data, reachable or not
    depending on the draw.
    """
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3])
    w_ports = rng.choice([1, 2])
    r_ports = rng.choice([2, 3])
    init = rng.choice([0, None, 3])
    d = Design("rand")
    t = d.latch("t", aw, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init)
    shared = d.input("sa", aw)
    addr_pool = [lambda: d.const(rng.randrange(1 << aw), aw),
                 lambda: shared,
                 lambda: t.expr]
    for w in range(w_ports):
        en = d.input(f"we{w}", 1)
        if w_ports > 1:
            # Ports write disjoint address parities: the EMM semantics
            # assume same-cycle same-address write races are absent.
            addr = d.input(f"wa{w}", aw)
            en = en & addr[0].eq(w & 1)
        else:
            addr = rng.choice(addr_pool)()
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    for r in range(r_ports):
        mem.read(r).connect(addr=rng.choice(addr_pool)(), en=1)
    target = rng.randrange(1 << dw)
    d.reach("hit", mem.read(0).data.eq(target))
    return d, "hit"


@pytest.mark.parametrize("seed", range(8))
def test_dedup_is_invisible_to_verification(seed):
    """Statuses, depths, trace validity and PBA reasons match on/off."""
    rng = random.Random(seed)
    design, prop = random_design(rng)
    results = []
    for dedup in (True, False):
        r = verify(design, prop, bmc3(max_depth=4, emm_addr_dedup=dedup))
        results.append(r)
    on, off = results
    assert on.status == off.status, (seed, on.status, off.status)
    assert on.depth == off.depth
    assert on.method == off.method
    assert on.trace_validated == off.trace_validated
    if on.trace is not None:
        assert on.trace_validated is True  # both replay on the simulator
    assert on.latch_reasons == off.latch_reasons
    assert on.memory_reasons == off.memory_reasons


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_dedup_never_grows_the_encoding(seed):
    """Dedup-on never emits more EMM clauses or variables than off."""
    rng = random.Random(seed)
    design, prop = random_design(rng)
    on = verify(design, prop, bmc3(max_depth=4, emm_addr_dedup=True))
    off = verify(design, prop, bmc3(max_depth=4, emm_addr_dedup=False))
    assert on.stats.emm_clauses <= off.stats.emm_clauses
    assert on.stats.emm_vars <= off.stats.emm_vars
    assert off.stats.emm_addr_eq_cache_hits == 0
    assert off.stats.emm_addr_eq_folded == 0


def test_gate_encoding_accepts_dedup_flag():
    d = Design("g")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", 2, 2, init=None)
    mem.write(0).connect(addr=d.input("wa", 2), data=d.input("wd", 2),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(1, 2), en=1)
    d.invariant("p", mem.read(0).data.ule(3))
    for dedup in (True, False):
        r = verify(d, "p", BmcOptions(max_depth=3, emm_encoding="gates",
                                      emm_addr_dedup=dedup))
        assert r.status == "proof"


# ---------------------------------------------------------------------------
# AddrComparator unit behaviour.
# ---------------------------------------------------------------------------

def fresh_cmp(nv=0, **kw):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    lits = [solver.new_var() for _ in range(nv)]
    from repro.emm.forwarding import EmmCounters
    return AddrComparator(solver, emitter, **kw), EmmCounters(), lits, solver


class TestComparatorUnit:
    def test_cache_hit_is_symmetric(self):
        cmp_, c, v, _ = fresh_cmp(4)
        a, b = v[:2], v[2:]
        e1 = cmp_.eq(a, b, None, c, "addr_eq_clauses")
        e2 = cmp_.eq(b, a, None, c, "addr_eq_clauses")
        assert e1 == e2
        assert c.addr_eq_cache_hits == 1
        assert c.addr_eq_clauses == accounting.addr_eq_clauses_full(2)

    def test_identical_words_fold_true(self):
        cmp_, c, v, solver = fresh_cmp(2)
        e = cmp_.eq(v, v, None, c, "addr_eq_clauses")
        assert c.addr_eq_folded == 1
        assert c.addr_eq_clauses == 0
        assert solver.solve([-e]).sat is False  # e is the TRUE literal

    def test_complementary_bit_folds_false(self):
        cmp_, c, v, solver = fresh_cmp(2)
        e = cmp_.eq([v[0], v[1]], [v[0], -v[1]], None, c, "addr_eq_clauses")
        assert c.addr_eq_folded == 1
        assert solver.solve([e]).sat is False  # e is the FALSE literal

    def test_const_vs_const_folds(self):
        cmp_, c, _, solver = fresh_cmp(0)
        e_eq = cmp_.eq_const([], 0, None, c, "addr_eq_clauses")
        t = cmp_.emitter.true_lit()
        word = [t, -t]  # constant 0b01
        e1 = cmp_.eq_const(word, 1, None, c, "addr_eq_clauses")
        e2 = cmp_.eq_const(word, 2, None, c, "addr_eq_clauses")
        assert solver.solve([-e1]).sat is False
        assert solver.solve([e2]).sat is False
        assert c.addr_eq_clauses == 0
        assert c.addr_eq_folded >= 2
        assert e_eq == t

    def test_const_vs_symbolic_costs_m_plus_1(self):
        cmp_, c, v, _ = fresh_cmp(3)
        cmp_.eq_const(v, 5, None, c, "addr_eq_clauses")
        assert c.addr_eq_clauses == accounting.addr_eq_clauses_const(3)

    def test_disabled_matches_paper_form(self):
        cmp_, c, v, _ = fresh_cmp(4, cache=False, fold=False)
        a, b = v[:2], v[2:]
        e1 = cmp_.eq(a, b, None, c, "addr_eq_clauses")
        e2 = cmp_.eq(a, b, None, c, "addr_eq_clauses")
        assert e1 != e2  # no reuse
        assert c.addr_eq_cache_hits == 0
        assert c.addr_eq_clauses == 2 * accounting.addr_eq_clauses_full(2)

    def test_width_mismatch_rejected(self):
        cmp_, c, v, _ = fresh_cmp(3)
        with pytest.raises(ValueError):
            cmp_.eq(v[:1], v[1:], None, c, "addr_eq_clauses")


# ---------------------------------------------------------------------------
# Race-monitor accounting: dedicated counters, paper formulas untouched.
# ---------------------------------------------------------------------------

def racy_two_port_design(aw=3, dw=2):
    d = Design("racy")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=1, write_ports=2, init=0)
    for w in range(2):
        mem.write(w).connect(addr=d.input(f"wa{w}", aw),
                             data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1))
    mem.read(0).connect(addr=d.input("ra", aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


def run_emm(design, depth, **kw):
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emm = EmmMemory(solver, unroller, "m", **kw)
    for k in range(depth + 1):
        unroller.add_frame()
        emm.add_frame(k)
    return emm


class TestRaceAccounting:
    def test_race_clauses_have_dedicated_counters(self):
        emm = run_emm(racy_two_port_design(), 4, check_races=True,
                      addr_dedup=False)
        c = emm.counters
        assert c.race_addr_eq_clauses > 0
        assert c.race_gates > 0
        # 5 frames, one write-pair comparator each: 4m+1 clauses apiece.
        assert c.race_addr_eq_clauses == 5 * accounting.addr_eq_clauses_full(3)
        assert c.race_gates == 5 * 2  # both-enables AND + pair AND per frame

    def test_race_monitor_does_not_skew_paper_counters(self):
        plain = run_emm(racy_two_port_design(), 4, addr_dedup=False)
        raced = run_emm(racy_two_port_design(), 4, check_races=True,
                        addr_dedup=False)
        c0, c1 = plain.counters, raced.counters
        assert c1.addr_eq_clauses == c0.addr_eq_clauses
        assert c1.excl_gates == c0.excl_gates
        assert c1.total_clauses == c0.total_clauses
        assert c1.total_gates == c0.total_gates

    def test_race_detection_still_works_with_dedup(self):
        from repro.emm import find_data_race
        r = find_data_race(racy_two_port_design(), "m", max_depth=3)
        assert r.found

    def test_paper_counters_independent_of_races_under_dedup(self):
        """The race monitor has its own comparator cache: even when a
        read shares an address cone with a write port (so the monitor
        and the forwarding chain request identical comparisons), the
        paper-formula counters must not depend on check_races."""
        def build():
            d = Design("overlap")
            t = d.latch("t", 2, init=0)
            t.next = t.expr + 1
            mem = d.memory("m", 3, 2, read_ports=1, write_ports=2, init=0)
            wa = d.input("wa", 3)
            # Write 0 and the read share one cone; write 1 is constant,
            # so the race pair (wa, const) is exactly the comparison the
            # forwarding chain needs one frame later.
            mem.write(0).connect(addr=wa, data=d.input("wd0", 2),
                                 en=d.input("we0", 1))
            mem.write(1).connect(addr=d.const(5, 3), data=d.input("wd1", 2),
                                 en=d.input("we1", 1))
            mem.read(0).connect(addr=wa, en=1)
            d.invariant("p", mem.read(0).data.ule(3))
            return d

        plain = run_emm(build(), 3, addr_dedup=True)
        raced = run_emm(build(), 3, check_races=True, addr_dedup=True)
        c0, c1 = plain.counters, raced.counters
        assert c1.addr_eq_clauses == c0.addr_eq_clauses
        assert c1.addr_eq_cache_hits == c0.addr_eq_cache_hits
        assert c1.addr_eq_folded == c0.addr_eq_folded
        assert c1.total_clauses == c0.total_clauses
        assert c1.vars_added > c0.vars_added  # races do cost something
        assert c1.race_addr_eq_clauses > 0
