"""Cross-engine validation: BDD reachability vs SAT-based BMC vs explicit.

Three independent engines implement the same semantics:

* ``repro.bdd`` — exact forward reachability over memory-free designs;
* ``repro.bmc`` with EMM — the paper's approach, memories abstracted;
* ``repro.bmc`` on ``expand_memories(design)`` — the explicit baseline.

On any design where all three run, their verdicts must agree, witness
depths must match the BDD's first-bad iteration, and the BMC forward
proof depth (longest loop-free path, the *recurrence diameter*) must be
at least the BDD's iterations-to-fixpoint (the reachability radius).
"""

import random

import pytest

from repro.bdd import bdd_model_check
from repro.bmc import BmcOptions, bmc1, bmc3, verify
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.design import Design, expand_memories


def modular_counter(step=1, width=3, bad=None):
    d = Design(f"cnt{step}w{width}")
    c = d.latch("c", width, init=0)
    c.next = c.expr + step
    if bad is None:
        bad = (1 << width) - 1
    d.invariant("p", c.expr.ne(bad))
    return d


def gated_toggler():
    d = Design("toggler")
    en = d.input("en", 1)
    a = d.latch("a", 1, init=0)
    b = d.latch("b", 1, init=1)
    a.next = en.ite(~a.expr, a.expr)
    b.next = en.ite(~b.expr, b.expr)
    d.invariant("p", a.expr.ne(b.expr) | a.expr.eq(0))
    return d


class TestVerdictAgreement:
    @pytest.mark.parametrize("step,width", [(1, 3), (3, 3), (2, 4), (5, 4)])
    def test_counter_reachability(self, step, width):
        d = modular_counter(step, width)
        bdd = bdd_model_check(d, "p")
        sat = verify(d, "p", bmc3(max_depth=40, pba=False))
        assert bdd.status in ("proof", "cex")
        assert sat.status == bdd.status, (sat.status, bdd.status)

    def test_cex_depths_match(self):
        # step=1, bad=5: first reached at BDD iteration 5, BMC depth 5.
        d = modular_counter(1, 3, bad=5)
        bdd = bdd_model_check(d, "p")
        sat = verify(d, "p", BmcOptions(find_proof=False, max_depth=10))
        assert bdd.status == sat.status == "cex"
        assert bdd.cex_depth == sat.depth == 5

    def test_input_driven_design(self):
        d = gated_toggler()
        bdd = bdd_model_check(d, "p")
        sat = verify(d, "p", bmc3(max_depth=10, pba=False))
        assert bdd.status == sat.status

    @pytest.mark.parametrize("seed", range(8))
    def test_random_linear_designs(self, seed):
        """Random 2-latch affine update designs, exhaustive agreement."""
        rng = random.Random(seed)
        width = rng.choice([2, 3])
        d = Design(f"rand{seed}")
        a = d.latch("a", width, init=rng.randrange(1 << width))
        b = d.latch("b", width, init=rng.randrange(1 << width))
        a.next = b.expr + rng.randrange(1 << width)
        b.next = a.expr ^ rng.randrange(1 << width)
        bad_a = rng.randrange(1 << width)
        bad_b = rng.randrange(1 << width)
        d.invariant("p", ~(a.expr.eq(bad_a) & b.expr.eq(bad_b)))
        bdd = bdd_model_check(d, "p")
        sat = verify(d, "p", bmc3(max_depth=30, pba=False))
        assert bdd.status in ("proof", "cex")
        assert sat.status == bdd.status
        if bdd.status == "cex":
            assert sat.depth == bdd.cex_depth


class TestRadiusVsRecurrenceDiameter:
    @pytest.mark.parametrize("step,width", [(1, 2), (1, 3), (3, 3), (2, 3)])
    def test_recurrence_diameter_bounds_radius(self, step, width):
        from repro.bmc import forward_recurrence_diameter

        d = modular_counter(step, width)
        d.properties.clear()
        d.invariant("true", d.const(1, 1))
        bdd = bdd_model_check(d, "true")
        diameter = forward_recurrence_diameter(d, max_depth=40)
        assert bdd.status == "proof"
        assert diameter is not None
        # Longest loop-free path >= number of distinct frontiers.
        assert diameter >= bdd.iterations

    def test_full_period_counter_depths_equal(self):
        from repro.bmc import forward_recurrence_diameter

        # step=1: the counter visits all 2**w states in a line, so radius
        # and recurrence diameter coincide at 2**w (the proof closes one
        # step after the last new state).
        d = modular_counter(1, 3)
        bdd_d = modular_counter(1, 3, bad=None)
        bdd_d.properties.clear()
        bdd_d.invariant("true", bdd_d.const(1, 1))
        bdd = bdd_model_check(bdd_d, "true")
        diameter = forward_recurrence_diameter(d, max_depth=20)
        assert bdd.iterations == 8
        assert diameter == 8

    def test_input_branching_diameter(self):
        from repro.bmc import forward_recurrence_diameter

        # A saturating counter that only advances when enabled: the
        # longest loop-free run still walks all 2**w states.
        d = Design("sat_cnt")
        en = d.input("en", 1)
        c = d.latch("c", 2, init=0)
        c.next = (en & c.expr.ne(3)).ite(c.expr + 1, c.expr)
        assert forward_recurrence_diameter(d, max_depth=10) == 4

    def test_unreached_bound_returns_none(self):
        from repro.bmc import forward_recurrence_diameter

        d = modular_counter(1, 4)
        assert forward_recurrence_diameter(d, max_depth=3) is None

    def test_diameter_with_memory_quicksort(self):
        """Table 1's D column, computed without running a property."""
        from repro.bmc import forward_recurrence_diameter
        from repro.casestudies.quicksort import (QuicksortParams,
                                                 build_quicksort)

        d = build_quicksort(QuicksortParams(n=2, addr_width=3, data_width=3,
                                            stack_addr_width=3))
        diameter = forward_recurrence_diameter(d, max_depth=40)
        assert diameter is not None
        # Must match what BMC-3's forward termination reports for P2.
        r = verify(d, "P2", bmc3(max_depth=40, pba=False))
        assert r.proved and r.method == "forward"
        assert r.depth == diameter


class TestThreeWayOnMemories:
    """EMM, explicit-BMC and BDD (on the expansion) against each other."""

    def tiny_fifo(self):
        return build_fifo(FifoParams(addr_width=2, data_width=2))

    def test_can_fill_witness_depth(self):
        d = self.tiny_fifo()
        emm = verify(d, "can_fill", BmcOptions(find_proof=False, max_depth=8))
        explicit = verify(expand_memories(d), "can_fill",
                          bmc1(max_depth=8, pba=False, find_proof=False))
        assert emm.status == explicit.status == "cex"
        assert emm.depth == explicit.depth

    def test_bdd_on_expansion_agrees(self):
        d = self.tiny_fifo()
        ex = expand_memories(d)
        bdd = bdd_model_check(ex, "can_fill", node_limit=2_000_000)
        emm = verify(d, "can_fill", BmcOptions(find_proof=False, max_depth=8))
        assert bdd.status == "cex"
        assert bdd.cex_depth == emm.depth

    def test_invariant_three_way(self):
        d = self.tiny_fifo()
        ex = expand_memories(d)
        emm = verify(d, "empty_full_exclusive", bmc3(max_depth=25, pba=False))
        explicit = verify(ex, "empty_full_exclusive",
                          bmc1(max_depth=25, pba=False))
        bdd = bdd_model_check(ex, "empty_full_exclusive",
                              node_limit=2_000_000)
        assert emm.proved
        assert explicit.proved
        assert bdd.status == "proof"
