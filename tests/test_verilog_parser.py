"""Tests for the Verilog frontend, including write->parse roundtrips."""

import io

import pytest

from repro.bmc import BmcOptions, verify
from repro.design import (Design, VerilogError, check_equivalence,
                          parse_verilog, write_verilog)
from repro.design.verilog_parser import tokenize, _parse_sized_literal
from repro.sim import Simulator

COUNTER = """
module counter (clk, rst, en, prop_small);
  input clk;
  input rst;
  input en;
  output prop_small;
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) begin
      count <= 4'd0;
    end else begin
      if (en) count <= count + 4'd1;
    end
  end
  assign prop_small = count < 4'd15;
endmodule
"""


class TestTokenizer:
    def test_comments_skipped(self):
        toks = tokenize("a // line\n b /* block\nmore */ c")
        assert [t.text for t in toks] == ["a", "b", "c"]

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n  c")
        assert [t.line for t in toks] == [1, 2, 3]

    def test_sized_literals(self):
        assert _parse_sized_literal("8'hFF", 1) == (255, 8)
        assert _parse_sized_literal("4'b1010", 1) == (10, 4)
        assert _parse_sized_literal("10'd512", 1) == (512, 10)

    def test_literal_overflow_rejected(self):
        with pytest.raises(VerilogError, match="overflow"):
            _parse_sized_literal("2'd7", 1)

    def test_xz_literals_rejected(self):
        with pytest.raises(VerilogError, match="x/z"):
            _parse_sized_literal("4'bxx00", 1)

    def test_unknown_character_rejected(self):
        with pytest.raises(VerilogError, match="unexpected character"):
            tokenize("a $$ b" if False else 'a " b')


class TestBasicParsing:
    def test_counter_shape(self):
        d = parse_verilog(COUNTER)
        assert d.name == "counter"
        assert set(d.inputs) == {"en"}
        assert d.latches["count"].width == 4
        assert d.latches["count"].init == 0
        assert set(d.properties) == {"small"}

    def test_counter_simulates(self):
        d = parse_verilog(COUNTER)
        sim = Simulator(d)
        out = sim.run([{"en": 1}] * 5)
        assert out.cycles[-1]["latches"]["count"] == 4

    def test_counter_property_verifies(self):
        d = parse_verilog(COUNTER)
        r = verify(d, "small", BmcOptions(find_proof=False, max_depth=16))
        assert r.status == "cex"  # count does reach 15
        assert r.depth == 15

    def test_gated_update_respected(self):
        d = parse_verilog(COUNTER)
        sim = Simulator(d)
        out = sim.run([{"en": 0}] * 3)
        assert out.cycles[-1]["latches"]["count"] == 0

    def test_arbitrary_init_when_unreset(self):
        # Without the reset idiom the register has arbitrary init.
        d = parse_verilog("""
module free_counter (clk, rst, en, prop_small);
  input clk; input rst; input en;
  output prop_small;
  reg [3:0] count;
  always @(posedge clk) begin
    if (en) count <= count + 4'd1;
  end
  assign prop_small = count < 4'd15;
endmodule
""")
        assert d.latches["count"].init is None


class TestExpressions:
    def make(self, rhs, width=4, extra_decl=""):
        return parse_verilog(f"""
module t (clk, rst, a, b, prop_p);
  input clk; input rst;
  input [3:0] a;
  input [3:0] b;
  output prop_p;
  {extra_decl}
  reg [{width - 1}:0] r;
  always @(posedge clk) begin
    if (rst) begin r <= {width}'d0; end
    else begin r <= {rhs}; end
  end
  assign prop_p = r == {width}'d0;
endmodule
""")

    def sim_step(self, design, a, b):
        sim = Simulator(design)
        out = sim.run([{"a": a, "b": b}, {"a": 0, "b": 0}])
        return out.cycles[-1]["latches"]["r"]

    def test_arith_and_logic(self):
        d = self.make("(a + b) ^ (a & b) | ~b")
        expected = ((10 + 5) ^ (10 & 5) | (~5 & 0xF)) & 0xF
        assert self.sim_step(d, 10, 5) == expected

    def test_comparisons(self):
        d = self.make("{3'd0, a < b}")
        assert self.sim_step(d, 2, 9) == 1
        assert self.sim_step(d, 9, 2) == 0

    def test_ternary_and_unsized_literal(self):
        d = self.make("a == b ? 4'd3 : 4'd8")
        assert self.sim_step(d, 5, 5) == 3
        assert self.sim_step(d, 5, 6) == 8

    def test_part_select_and_concat(self):
        d = self.make("{a[1:0], b[3:2]}")
        assert self.sim_step(d, 0b0110, 0b1000) == 0b1010

    def test_bit_select(self):
        d = self.make("{3'd0, a[2]}")
        assert self.sim_step(d, 0b0100, 0) == 1

    def test_wire_reference(self):
        d = self.make("sum", extra_decl="wire [3:0] sum = a + b;")
        assert self.sim_step(d, 3, 4) == 7

    def test_logical_ops_on_words(self):
        d = self.make("{3'd0, a && b}")
        assert self.sim_step(d, 4, 2) == 1
        assert self.sim_step(d, 0, 2) == 0

    def test_unary_minus(self):
        d = self.make("-a")
        assert self.sim_step(d, 3, 0) == (16 - 3)


class TestMemories:
    MEM = """
module memo (clk, rst, waddr, wdata, wen, raddr, prop_p);
  input clk; input rst;
  input [2:0] waddr;
  input [3:0] wdata;
  input wen;
  input [2:0] raddr;
  output prop_p;
  reg [3:0] store [0:7];
  reg [3:0] snapshot;
  always @(posedge clk) begin
    if (rst) begin
      snapshot <= 4'd0;
    end else begin
      snapshot <= store[raddr];
      if (wen) store[waddr] <= wdata;
    end
  end
  assign prop_p = snapshot == 4'd0;
endmodule
"""

    def test_memory_declared(self):
        d = parse_verilog(self.MEM)
        mem = d.memories["store"]
        assert mem.addr_width == 3
        assert mem.data_width == 4
        assert mem.init is None
        assert mem.num_read_ports == 1
        assert mem.num_write_ports == 1

    def test_memory_simulates(self):
        d = parse_verilog(self.MEM)
        sim = Simulator(d, init_memories={"store": {}})
        seq = [
            {"waddr": 3, "wdata": 9, "wen": 1, "raddr": 0},
            {"waddr": 0, "wdata": 0, "wen": 0, "raddr": 3},
            {"waddr": 0, "wdata": 0, "wen": 0, "raddr": 3},
        ]
        out = sim.run(seq)
        assert out.cycles[-1]["latches"]["snapshot"] == 9

    def test_two_writes_two_ports(self):
        src = self.MEM.replace(
            "if (wen) store[waddr] <= wdata;",
            "if (wen) store[waddr] <= wdata;\n"
            "      if (!wen) store[3'd0] <= 4'd1;")
        d = parse_verilog(src)
        assert d.memories["store"].num_write_ports == 2

    def test_distinct_read_addresses_distinct_ports(self):
        src = self.MEM.replace("snapshot <= store[raddr];",
                               "snapshot <= store[raddr] ^ store[3'd1];")
        d = parse_verilog(src)
        assert d.memories["store"].num_read_ports == 2

    def test_same_address_shares_port(self):
        src = self.MEM.replace("snapshot <= store[raddr];",
                               "snapshot <= store[raddr] ^ store[raddr];")
        d = parse_verilog(src)
        assert d.memories["store"].num_read_ports == 1

    def test_non_power_of_two_depth_rejected(self):
        with pytest.raises(VerilogError, match="power of two"):
            parse_verilog(self.MEM.replace("[0:7]", "[0:6]"))

    def test_read_only_in_property_gets_real_port(self):
        """Regression: a read appearing only in a property assign (never
        in a register's next-state cone) must still wire a live port."""
        d = parse_verilog("""
module proprd (clk, rst, waddr, wdata, wen, prop_zero);
  input clk; input rst;
  input [2:0] waddr;
  input [3:0] wdata;
  input wen;
  output prop_zero;
  reg [3:0] store [0:7];
  reg dummy;
  always @(posedge clk) begin
    if (rst) begin dummy <= 1'd0; end
    else begin
      dummy <= 1'd1;
      if (wen) store[waddr] <= wdata;
    end
  end
  assign prop_zero = store[3'd2] == 4'd0;
endmodule
""")
        port = d.memories["store"].read(0)
        assert port.en is not None and port.en.kind == "const"
        assert port.en.payload == 1  # live, always-enabled
        # Write 5 to address 2: the property must be falsifiable.
        r = verify(d, "zero", BmcOptions(find_proof=False, max_depth=4))
        assert r.status == "cex"

    def test_initial_block_roundtrips_uniform_init(self):
        """Known-init memories dump full contents; the parsed design
        preserves read-before-write semantics exactly."""
        src = Design("u")
        ptr = src.latch("ptr", 2, init=0)
        ptr.next = ptr.expr + 1
        mem = src.memory("m", addr_width=2, data_width=4, init=7,
                         init_words={2: 1})
        mem.write(0).connect(addr=src.const(0, 2), data=src.const(0, 4), en=0)
        rd = mem.read(0).connect(addr=ptr.expr, en=1)
        out = src.latch("out", 4, init=0)
        out.next = rd
        src.invariant("p", src.const(1, 1))
        buf = io.StringIO()
        write_verilog(buf, src)
        parsed = parse_verilog(buf.getvalue())
        assert parsed.memories["m"].init_words == {0: 7, 1: 7, 2: 1, 3: 7}
        sim = Simulator(parsed)
        t = sim.run([{}] * 4)
        assert [c["latches"]["out"] for c in t.cycles] == [0, 7, 7, 1]


class TestErrors:
    def test_blocking_assign_rejected(self):
        with pytest.raises(VerilogError, match="blocking"):
            parse_verilog(COUNTER.replace("count <= count + 4'd1",
                                          "count = count + 4'd1"))

    def test_negedge_rejected(self):
        with pytest.raises(VerilogError, match="posedge clk"):
            parse_verilog(COUNTER.replace("posedge clk", "negedge clk"))

    def test_unknown_identifier_located(self):
        with pytest.raises(VerilogError, match="unknown identifier"):
            parse_verilog(COUNTER.replace("count + 4'd1", "bogus + 4'd1"))

    def test_unsized_literal_without_context(self):
        with pytest.raises(VerilogError, match="unsized"):
            parse_verilog("""
module t (clk, rst, prop_p);
  input clk; input rst;
  output prop_p;
  reg r;
  always @(posedge clk) begin r <= 1 == 1; end
  assign prop_p = r;
endmodule
""")

    def test_width_overflow_rejected(self):
        with pytest.raises(VerilogError, match="does not fit"):
            parse_verilog(COUNTER.replace("count + 4'd1", "{count, count}"))

    def test_indexed_write_to_scalar_rejected(self):
        with pytest.raises(VerilogError, match="non-memory"):
            parse_verilog(COUNTER.replace("count <= count + 4'd1",
                                          "count[0] <= 1'd1"))

    def test_missing_endmodule(self):
        with pytest.raises(VerilogError):
            parse_verilog("module t (clk); input clk;")


class TestFormalBlock:
    def test_cover_becomes_reach(self):
        src = COUNTER.replace("endmodule", """
`ifdef FORMAL
  always @(posedge clk) begin
    if (!rst) cover (prop_small);
  end
`endif
endmodule""")
        d = parse_verilog(src)
        assert d.properties["small"].kind == "reach"

    def test_assert_becomes_invariant(self):
        src = COUNTER.replace("endmodule", """
`ifdef FORMAL
  always @(posedge clk) begin
    if (!rst) assert (prop_small);
  end
`endif
endmodule""")
        d = parse_verilog(src)
        assert d.properties["small"].kind == "invariant"


class RoundtripMixin:
    """write_verilog -> parse_verilog -> bounded equivalence."""

    def roundtrip(self, design, outputs, depth=8, share=False):
        buf = io.StringIO()
        write_verilog(buf, design)
        parsed = parse_verilog(buf.getvalue())
        pairs = [(expr, self._rewrite(parsed, expr)) for expr in outputs]
        r = check_equivalence(design, parsed, pairs, max_depth=depth,
                              share_arbitrary_init=share)
        assert r.status == "bounded", r.describe()
        return parsed

    @staticmethod
    def _rewrite(parsed, expr):
        if expr.kind != "latch":
            raise AssertionError("roundtrip outputs must be latch words")
        return parsed.latches[expr.payload].expr


class TestRoundtrip(RoundtripMixin):
    def test_counter_roundtrip(self):
        d = Design("rt")
        en = d.input("en", 1)
        c = d.latch("c", 4, init=5)
        c.next = en.ite(c.expr + 1, c.expr - 1)
        d.invariant("p", c.expr.ne(9))
        self.roundtrip(d, [c.expr], depth=8)

    def test_memory_design_roundtrip(self):
        d = Design("rtm")
        wa = d.input("wa", 2)
        wd = d.input("wd", 3)
        mem = d.memory("m", addr_width=2, data_width=3, init=None)
        mem.write(0).connect(addr=wa, data=wd, en=1)
        rd = mem.read(0).connect(addr=wa - 1, en=1)
        out = d.latch("out", 3, init=0)
        out.next = rd
        d.invariant("p", d.const(1, 1))
        self.roundtrip(d, [out.expr], depth=6, share=True)

    @pytest.mark.slow
    def test_quicksort_roundtrip(self):
        from repro.casestudies.quicksort import QuicksortParams, build_quicksort
        d = build_quicksort(QuicksortParams(n=2, addr_width=3, data_width=3,
                                            stack_addr_width=3))
        self.roundtrip(d, [d.latches["pc"].expr, d.latches["pair_ok"].expr],
                       depth=10, share=True)
