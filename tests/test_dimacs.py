"""DIMACS parsing and writing."""

import io

from hypothesis import given, settings, strategies as st

from repro.sat import Solver, parse_dimacs, write_dimacs


class TestParse:
    def test_basic(self):
        nv, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert nv == 3
        assert clauses == [[1, -2], [2, 3]]

    def test_comments_and_blank_lines(self):
        text = "c hello\n\np cnf 2 1\nc mid\n1 2 0\n"
        nv, clauses = parse_dimacs(text)
        assert nv == 2 and clauses == [[1, 2]]

    def test_header_widened_by_literals(self):
        nv, clauses = parse_dimacs("p cnf 1 1\n5 -6 0\n")
        assert nv == 6

    def test_missing_header(self):
        nv, clauses = parse_dimacs("1 2 0\n-1 0")
        assert nv == 2
        assert clauses == [[1, 2], [-1]]

    def test_multiline_clause(self):
        nv, clauses = parse_dimacs("p cnf 3 1\n1\n2\n3 0\n")
        assert clauses == [[1, 2, 3]]


class TestWrite:
    def test_roundtrip(self):
        clauses = [[1, -2], [3], [-1, -3, 2]]
        buf = io.StringIO()
        write_dimacs(buf, 3, clauses, comments=["generated"])
        nv, parsed = parse_dimacs(buf.getvalue())
        assert nv == 3 and parsed == clauses
        assert buf.getvalue().startswith("c generated\np cnf 3 3\n")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(1, 5).flatmap(
        lambda v: st.sampled_from([v, -v])), min_size=1, max_size=4),
        min_size=0, max_size=12))
    def test_roundtrip_preserves_satisfiability(self, clauses):
        buf = io.StringIO()
        write_dimacs(buf, 5, clauses)
        nv, parsed = parse_dimacs(buf.getvalue())

        def solve(cls):
            s = Solver(proof=False)
            for __ in range(5):
                s.new_var()
            for c in cls:
                s.add_clause(c)
            return s.solve().sat

        assert solve(clauses) == solve(parsed)
