"""Explicit memory expansion: equivalence against the memory simulator."""

import random

import pytest

from repro.design import Design, expand_memories
from repro.design.explicit import word_latch_name
from repro.sim import Simulator


def random_workload_design(rng, read_ports=1, write_ports=1, init=0):
    """A small design exercising a memory through its ports from inputs."""
    d = Design("wl")
    aw, dw = 2, 4
    waddrs = [d.input(f"waddr{w}", aw) for w in range(write_ports)]
    wdatas = [d.input(f"wdata{w}", dw) for w in range(write_ports)]
    wens = [d.input(f"wen{w}", 1) for w in range(write_ports)]
    raddrs = [d.input(f"raddr{r}", aw) for r in range(read_ports)]
    cnt = d.latch("cnt", 3, init=0)
    cnt.next = cnt.expr + 1
    mem = d.memory("m", aw, dw, read_ports=read_ports,
                   write_ports=write_ports, init=init)
    for w in range(write_ports):
        mem.write(w).connect(addr=waddrs[w], data=wdatas[w], en=wens[w])
    rds = [mem.read(r).connect(addr=raddrs[r], en=1) for r in range(read_ports)]
    acc = d.latch("acc", dw, init=0)
    acc.next = rds[0]
    d.invariant("probe", acc.expr.ule((1 << dw) - 1))
    return d, rds


def random_inputs(rng, design, cycles):
    seq = []
    for _ in range(cycles):
        vec = {}
        for inp in design.inputs.values():
            vec[inp.name] = rng.randrange(0, 1 << inp.width)
        seq.append(vec)
    return seq


class TestExpansion:
    def test_structure(self):
        d, __ = random_workload_design(random.Random(0))
        ex = expand_memories(d)
        assert not ex.memories
        assert word_latch_name("m", 0) in ex.latches
        assert ex.num_latch_bits() == d.num_latch_bits() + d.num_memory_bits()
        # original latches and inputs preserved
        assert set(d.inputs) <= set(ex.inputs)
        assert set(d.latches) <= set(ex.latches)
        assert set(d.properties) == set(ex.properties)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("ports", [(1, 1), (2, 1), (1, 2), (3, 2)])
    def test_simulation_equivalence(self, seed, ports):
        rng = random.Random(seed)
        read_ports, write_ports = ports
        d, __ = random_workload_design(rng, read_ports, write_ports)
        ex = expand_memories(d)
        inputs = random_inputs(rng, d, 24)
        sim_a = Simulator(d)
        sim_b = Simulator(ex)
        for vec in inputs:
            sim_a.step(vec)
            sim_b.step(vec)
            assert sim_a.latches["acc"] == sim_b.latches["acc"]
            # every expanded word latch mirrors the sparse memory contents
            for a in range(4):
                expected = sim_a.memories["m"].get(a, 0)
                assert sim_b.latches[word_latch_name("m", a)] == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_uniform_init_equivalence(self, seed):
        rng = random.Random(seed + 100)
        d, __ = random_workload_design(rng, init=5)
        ex = expand_memories(d)
        inputs = random_inputs(rng, d, 16)
        ta = Simulator(d).run(inputs)
        tb = Simulator(ex).run(inputs)
        for ca, cb in zip(ta.cycles, tb.cycles):
            assert ca["latches"]["acc"] == cb["latches"]["acc"]

    def test_arbitrary_init_maps_to_free_latches(self):
        d = Design("t")
        lit = d.latch("l", 1)
        lit.next = lit.expr
        mem = d.memory("m", 2, 4, init=None)
        mem.write(0).connect(addr=0, data=0, en=0)
        mem.read(0).connect(addr=0, en=1)
        ex = expand_memories(d)
        for a in range(4):
            assert ex.latches[word_latch_name("m", a)].init is None

    def test_explicit_contents_equivalence_with_injected_memory(self):
        rng = random.Random(7)
        d, __ = random_workload_design(rng, init=None)
        ex = expand_memories(d)
        contents = {a: rng.randrange(16) for a in range(4)}
        init_latches = {word_latch_name("m", a): v for a, v in contents.items()}
        inputs = random_inputs(rng, d, 20)
        ta = Simulator(d, init_memories={"m": contents}).run(inputs)
        tb = Simulator(ex, init_latches=init_latches).run(inputs)
        for ca, cb in zip(ta.cycles, tb.cycles):
            assert ca["latches"]["acc"] == cb["latches"]["acc"]


