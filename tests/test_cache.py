"""Cache-controller case study."""


from repro.bmc import bmc2, bmc3, verify
from repro.casestudies.cache import CacheParams, build_cache
from repro.sim import Simulator

PARAMS = CacheParams(index_width=2, tag_width=2, data_width=4)


class TestSimulation:
    def test_fill_then_hit(self):
        d = build_cache(PARAMS)
        sim = Simulator(d)
        sim.step({"fill": 1, "addr_idx": 1, "addr_tag": 2, "fill_data": 9})
        sim.begin_cycle({"req": 1, "addr_idx": 1, "addr_tag": 2})
        hit_now = sim.eval(d.properties["reach_hit"].expr)
        assert hit_now == 1
        sim.commit_cycle()
        assert sim.latches["hit_reg"] == 1
        assert sim.latches["out_reg"] == 9

    def test_wrong_tag_misses(self):
        d = build_cache(PARAMS)
        sim = Simulator(d)
        sim.step({"fill": 1, "addr_idx": 1, "addr_tag": 2, "fill_data": 9})
        sim.step({"req": 1, "addr_idx": 1, "addr_tag": 3})
        assert sim.latches["hit_reg"] == 0

    def test_invalid_set_misses_even_on_tag_zero(self):
        # tags memory initialises to 0; without valid bits a request for
        # tag 0 would spuriously hit.
        d = build_cache(PARAMS)
        sim = Simulator(d)
        sim.step({"req": 1, "addr_idx": 0, "addr_tag": 0})
        assert sim.latches["hit_reg"] == 0


class TestVerification:
    def test_read_after_fill_proved(self):
        r = verify(build_cache(PARAMS), "read_after_fill",
                   bmc3(max_depth=10, pba=False))
        assert r.proved, r.describe()

    def test_hit_implies_tag_match_bounded(self):
        # Trivially true by construction of `hit`; provable immediately.
        r = verify(build_cache(PARAMS), "hit_implies_tag_match",
                   bmc3(max_depth=6, pba=False))
        assert r.proved

    def test_reach_hit_witness(self):
        r = verify(build_cache(PARAMS), "reach_hit", bmc2(max_depth=6))
        assert r.falsified and r.depth == 1  # fill, then hit
        assert r.trace_validated is True

    def test_reach_miss_witness(self):
        r = verify(build_cache(PARAMS), "reach_miss", bmc2(max_depth=4))
        assert r.falsified and r.depth == 0
        assert r.trace_validated is True

    def test_read_after_fill_mutation_caught(self):
        d = build_cache(PARAMS)
        port = d.memories["data"].write_ports[0]
        port.addr = port.addr + 1  # fill the wrong line
        r = verify(d, "read_after_fill", bmc2(max_depth=6))
        assert r.falsified
        assert r.trace_validated is True
