"""Tests for the differential fuzzing farm.

The farm's *absence of divergences* on healthy code is covered by the
smoke run; the machinery that matters when something breaks — detection,
shrinking, reproducer persistence and replay — is exercised by rigging
one side of a differential (via monkeypatching) and checking that the
farm notices, minimizes and round-trips the reproducer.
"""

import json

import pytest

from repro.sim import fuzzfarm
from repro.sim.fuzzfarm import (DEFAULT_COMBOS, Divergence, FarmConfig,
                                FarmReport, build_fuzz_netlist,
                                persist_divergences, random_stimulus,
                                replay_reproducer, run_farm,
                                shrink_stimulus)
from repro.sim.oracle import SimulatorOracle, Stimulus, default_oracle


def small_config(**kw):
    base = dict(batch=16, depth=4, seed=0, rounds=1, bmc_depth=3,
                scalar_lanes=2, explicit_lanes=1)
    base.update(kw)
    return FarmConfig(**base)


class TestWorkloads:
    @pytest.mark.parametrize("seed", range(5))
    def test_netlists_validate_and_are_deterministic(self, seed):
        a = build_fuzz_netlist(seed)
        b = build_fuzz_netlist(seed)
        a.validate()
        assert a.fingerprint() == b.fingerprint()
        assert {"hit", "seen_hit", "t_in_range"} <= set(a.properties)

    def test_stimulus_respects_declared_state(self):
        import random
        d = build_fuzz_netlist(3)
        rng = random.Random(1)
        for _ in range(20):
            s = random_stimulus(d, rng, 4)
            assert len(s.inputs) == 4
            for name in s.init_latches:
                assert d.latches[name].init is None
            for mem, words in s.init_memories.items():
                assert d.memories[mem].init is None
                assert not (set(words) & set(d.memories[mem].init_words))


class TestFarmRuns:
    def test_healthy_smoke_no_divergence(self):
        report = run_farm(small_config(rounds=2))
        assert report.ok
        assert report.rounds == 2
        assert report.sim_trials == 32
        assert report.bmc_trials == len(DEFAULT_COMBOS) * 2 * 3 * 2
        assert report.trials > report.sim_trials + report.bmc_trials
        assert "0 divergences" in report.summary()

    def test_min_trials_termination(self):
        report = run_farm(small_config(rounds=None, min_trials=50,
                                       run_bmc=False))
        assert report.trials >= 50
        assert report.rounds >= 2

    def test_default_config_runs_one_round(self):
        report = run_farm(small_config(rounds=None, run_bmc=False))
        assert report.rounds == 1

    def test_detects_sim_divergence(self, monkeypatch, tmp_path):
        """Rig the trace comparison: every scalar lane check 'diverges',
        the farm must report, shrink and persist reproducers."""
        monkeypatch.setattr(fuzzfarm, "traces_equal", lambda a, b: False)
        report = run_farm(small_config(run_bmc=False,
                                       out_dir=str(tmp_path)))
        assert not report.ok
        assert len(report.divergences) == 2  # one per sampled scalar lane
        for div in report.divergences:
            assert div.kind == "scalar-vs-vector"
            # The rigged predicate always holds, so shrinking reaches the
            # all-zero single-cycle minimum.
            assert len(div.stimulus["inputs"]) == 1
            assert all(v == 0 for v in div.stimulus["inputs"][0].values())
        assert len(report.artifacts) == 2
        data = json.loads((tmp_path / report.artifacts[0].split("/")[-1]
                           ).read_text())
        assert data["kind"] == "scalar-vs-vector"
        # Replayed against the *real* semantics it no longer diverges.
        monkeypatch.undo()
        assert replay_reproducer(report.artifacts[0]) is False


class TestShrinkStimulus:
    def test_minimizes_under_predicate(self):
        d = build_fuzz_netlist(1)
        stim = Stimulus(
            inputs=[{n: (1 << i.width) - 1 for n, i in d.inputs.items()}
                    for _ in range(6)],
            init_latches={"noise": 3},
            init_memories={m.name: {0: 1, 1: 1} for m in d.memories.values()
                           if m.init is None})
        # Preserve "cycle count >= 2 and we0@1 is odd".
        def pred(s):
            return len(s.inputs) >= 2 and s.inputs[1]["we0"] % 2 == 1
        out = shrink_stimulus(stim, pred)
        assert pred(out)
        assert len(out.inputs) == 2
        assert out.inputs[1]["we0"] == 1
        # Everything irrelevant to the predicate is zeroed/dropped.
        assert all(v == 0 for v in out.inputs[0].values())
        assert all(v == 0 for n, v in out.inputs[1].items() if n != "we0")
        assert all(v == 0 for v in out.init_latches.values())
        assert all(not words for words in out.init_memories.values())

    def test_preserves_original_on_no_shrink(self):
        stim = Stimulus(inputs=[{"a": 1}])
        out = shrink_stimulus(stim, lambda s: s.inputs[0]["a"] == 1)
        assert out.inputs == [{"a": 1}]


class TestReproducers:
    def test_bmc_kind_roundtrip(self, tmp_path):
        div = Divergence(kind="bmc-verdict", seed=2, detail="synthetic",
                         prop="hit", encoding="hybrid",
                         options=dict.fromkeys(fuzzfarm.OPTION_AXES, True))
        paths = persist_divergences([div], str(tmp_path))
        assert len(paths) == 1
        # Healthy code: the synthetic BMC divergence does not reproduce.
        assert replay_reproducer(paths[0]) is False

    def test_explicit_kind_roundtrip(self, tmp_path):
        d = build_fuzz_netlist(0)
        import random
        stim = random_stimulus(d, random.Random(0), 3)
        div = Divergence(kind="explicit-vs-vector", seed=0,
                         detail="synthetic", prop="hit",
                         stimulus=stim.to_dict())
        [path] = persist_divergences([div], str(tmp_path))
        assert replay_reproducer(path) is False

    def test_cli_replay(self, tmp_path, capsys):
        div = Divergence(kind="bmc-verdict", seed=1, detail="synthetic",
                         prop="hit", encoding="gates", options={})
        [path] = persist_divergences([div], str(tmp_path))
        assert fuzzfarm.main(["--replay", path]) == 0
        assert "no longer diverges" in capsys.readouterr().out


class TestCli:
    def test_clean_run_exit_zero(self, capsys):
        code = fuzzfarm.main(["--batch", "8", "--depth", "3", "--rounds", "1",
                              "--no-bmc"])
        assert code == 0
        assert "fuzzfarm:" in capsys.readouterr().out

    def test_report_dataclass_defaults(self):
        r = FarmReport()
        assert r.ok and r.trials == 0


class TestOracleConsistency:
    """The farm's own cross-checks, run directly as assertions."""

    @pytest.mark.parametrize("seed", range(3))
    def test_vector_explicit_scalar_agree(self, seed):
        import random
        d = build_fuzz_netlist(seed)
        rng = random.Random(seed)
        stimuli = [random_stimulus(d, rng, 5) for _ in range(8)]
        fast = default_oracle(d)
        scalar = SimulatorOracle(d)
        from repro.sim.oracle import ExplicitOracle
        explicit = ExplicitOracle(d)
        for s in stimuli:
            for prop in d.properties:
                got = fast.check(prop, s)
                assert (got.failed, got.cycle) == \
                    (lambda v: (v.failed, v.cycle))(scalar.check(prop, s))
                assert (got.failed, got.cycle) == \
                    (lambda v: (v.failed, v.cycle))(explicit.check(prop, s))
