"""Platform scaling of ``ru_maxrss`` (repro.perf).

``getrusage().ru_maxrss`` is kibibytes on Linux but *bytes* on macOS;
``peak_rss_mb`` must scale per platform or the reported peak — and the
``mem_quota_mb`` degradation gated on the ``current_rss_mb`` fallback —
is off by 1024x off-Linux.
"""

import builtins
import resource

import pytest

import repro.perf as perf


class FakeUsage:
    def __init__(self, ru_maxrss):
        self.ru_maxrss = ru_maxrss


@pytest.fixture
def fake_rusage(monkeypatch):
    def set_maxrss(value):
        monkeypatch.setattr(resource, "getrusage",
                            lambda who: FakeUsage(value))
    return set_maxrss


class TestPeakRss:
    def test_linux_kib(self, monkeypatch, fake_rusage):
        monkeypatch.setattr(perf.sys, "platform", "linux")
        fake_rusage(512 * 1024)  # 512 MiB in KiB
        assert perf.peak_rss_mb() == pytest.approx(512.0)

    def test_macos_bytes(self, monkeypatch, fake_rusage):
        monkeypatch.setattr(perf.sys, "platform", "darwin")
        fake_rusage(512 * 1024 * 1024)  # 512 MiB in bytes
        assert perf.peak_rss_mb() == pytest.approx(512.0)

    def test_platforms_agree_on_the_same_footprint(self, monkeypatch,
                                                   fake_rusage):
        monkeypatch.setattr(perf.sys, "platform", "linux")
        fake_rusage(64 * 1024)
        linux = perf.peak_rss_mb()
        monkeypatch.setattr(perf.sys, "platform", "darwin")
        fake_rusage(64 * 1024 * 1024)
        assert perf.peak_rss_mb() == pytest.approx(linux)

    def test_engine_reports_sane_peak(self):
        """End-to-end: the stats peak on this platform is plausible for a
        python process, not off by 1024x in either direction."""
        from repro.bmc import BmcOptions, verify
        from repro.design import Design

        d = Design("t")
        x = d.latch("x", 2, init=0)
        x.next = x.expr + 1
        d.invariant("p", x.expr.eq(x.expr))
        r = verify(d, "p", BmcOptions(max_depth=2))
        assert 1.0 < r.stats.peak_rss_mb < 100_000.0


class TestCurrentRssFallback:
    def test_statm_path_monkeypatched_away(self, monkeypatch, fake_rusage):
        """Without /proc/self/statm the current-RSS poll falls back to the
        platform-scaled rusage peak."""
        real_open = builtins.open

        def no_statm(path, *a, **kw):
            if path == "/proc/self/statm":
                raise OSError("no procfs")
            return real_open(path, *a, **kw)

        monkeypatch.setattr(builtins, "open", no_statm)
        monkeypatch.setattr(perf.sys, "platform", "linux")
        fake_rusage(256 * 1024)
        assert perf.current_rss_mb() == pytest.approx(256.0)
        monkeypatch.setattr(perf.sys, "platform", "darwin")
        fake_rusage(256 * 1024 * 1024)
        assert perf.current_rss_mb() == pytest.approx(256.0)
