"""Randomized differential testing: EMM vs explicit expansion via miters.

For random small designs with embedded memories (varying port counts,
initial-state modes, and datapath logic), the miter of the design
against its own explicit expansion must be unfalsifiable — EMM and the
2**AW-latch model implement the same semantics.  A seeded mutation pass
then corrupts the expansion and requires the miter to *catch* it, so the
check is known to have teeth.

Write-port data races are avoided by construction (the paper assumes
race freedom): every write port owns an address parity — port p only
writes addresses with LSB == p & 1 when two ports share a memory.
"""

import random

import pytest

from repro.bmc import BmcOptions, verify
from repro.design import Design, expand_memories
from repro.design.equiv import check_equivalence
from repro.design.explicit import word_latch_name
from repro.sim import Simulator


def random_design(rng: random.Random) -> tuple[Design, list]:
    """A random memory design plus the outputs to compare."""
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3, 4])
    n_read = rng.choice([1, 1, 2])
    n_write = rng.choice([1, 1, 2])
    init_mode = rng.choice(["zero", "const", "words"])
    d = Design(f"fuzz_aw{aw}dw{dw}r{n_read}w{n_write}_{init_mode}")

    wdata = d.input("wdata", dw)
    waddr = d.input("waddr", aw)
    raddr = d.input("raddr", aw)
    wen = d.input("wen", 1)

    init = {"zero": 0, "const": (1 << dw) - 1, "words": 0}[init_mode]
    init_words = {1: 1, (1 << aw) - 1: 2} if init_mode == "words" else None
    mem = d.memory("m", addr_width=aw, data_width=dw,
                   read_ports=n_read, write_ports=n_write,
                   init=init, init_words=init_words)

    # Race-free write ports: each owns an address parity.
    for w in range(n_write):
        if n_write == 1:
            addr = waddr
        else:
            # LSB pinned to the port's parity, upper bits from the input.
            addr = d.const(w & 1, 1).concat(waddr[1:aw])
        data = wdata if w == 0 else ~wdata
        en = wen if w == 0 else ~wen
        mem.write(w).connect(addr=addr, data=data, en=en)

    outs = []
    ptr = d.latch("ptr", aw, init=0)
    ptr.next = ptr.expr + 1
    for r in range(n_read):
        addr = raddr if r == 0 else ptr.expr
        rd = mem.read(r).connect(addr=addr, en=1)
        out = d.latch(f"out{r}", dw, init=0)
        mixer = rng.choice(["plain", "xor", "add"])
        if mixer == "plain":
            out.next = rd
        elif mixer == "xor":
            out.next = rd ^ out.expr
        else:
            out.next = rd + 1
        outs.append(out)
    return d, outs


def miter_pairs(design, ex, outs):
    return [(o.expr, ex.latches[o.name].expr) for o in outs]


class TestEmmMatchesExplicit:
    @pytest.mark.parametrize("seed", range(14))
    def test_random_design_equivalent(self, seed):
        rng = random.Random(seed)
        d, outs = random_design(rng)
        ex = expand_memories(d)
        r = check_equivalence(d, ex, miter_pairs(d, ex, outs), max_depth=6)
        assert r.status == "bounded", (d.name, r.describe())

    @pytest.mark.parametrize("seed", range(6))
    def test_mutated_expansion_caught(self, seed):
        rng = random.Random(1000 + seed)
        d, outs = random_design(rng)
        ex = expand_memories(d)
        # Corrupt one random expanded word latch.
        mem = d.memories["m"]
        victim_addr = rng.randrange(mem.num_words)
        victim = ex.latches[word_latch_name("m", victim_addr)]
        victim.next = victim.expr + 1
        r = check_equivalence(d, ex, miter_pairs(d, ex, outs), max_depth=8)
        assert r.status == "cex", \
            f"mutation of {d.name} word {victim_addr} went unnoticed"


class TestSimulatorAgreesWithBothEngines:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_run_matches_simulation(self, seed):
        """Drive random inputs; the simulator of the original and of the
        expansion must produce identical latch streams."""
        rng = random.Random(2000 + seed)
        d, outs = random_design(rng)
        ex = expand_memories(d)
        sim_a = Simulator(d)
        sim_b = Simulator(ex)
        for _ in range(12):
            vec = {
                "wdata": rng.randrange(1 << d.inputs["wdata"].width),
                "waddr": rng.randrange(1 << d.inputs["waddr"].width),
                "raddr": rng.randrange(1 << d.inputs["raddr"].width),
                "wen": rng.randrange(2),
            }
            sim_a.step(vec)
            sim_b.step(vec)
            for out in outs:
                assert sim_a.latches[out.name] == sim_b.latches[out.name], \
                    (d.name, out.name)


class TestRaceFreedomByConstruction:
    """The parity-disjoint write ports really are race-free — discharge
    the paper's no-races assumption with the race checker itself."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_designs_race_free(self, seed):
        from repro.emm.races import find_data_race

        rng = random.Random(4000 + seed)
        d, __ = random_design(rng)
        result = find_data_race(d, "m", max_depth=5)
        assert not result.found, result.describe()

    def test_checker_finds_planted_race(self):
        d = Design("racy")
        waddr = d.input("waddr", 3)
        wen = d.input("wen", 1)
        mem = d.memory("m", addr_width=3, data_width=2,
                       read_ports=1, write_ports=2, init=0)
        mem.write(0).connect(addr=waddr, data=d.const(1, 2), en=wen)
        mem.write(1).connect(addr=waddr, data=d.const(2, 2), en=wen)
        mem.read(0).connect(addr=waddr, en=1)
        from repro.emm.races import find_data_race
        result = find_data_race(d, "m", max_depth=3)
        assert result.found
        assert result.depth == 0


class TestVerdictAgreementOnRandomProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_reachability_verdicts_match(self, seed):
        rng = random.Random(3000 + seed)
        d, outs = random_design(rng)
        target = rng.randrange(1 << outs[0].width)
        d.reach("hit", outs[0].expr.eq(target))
        ex = expand_memories(d)
        opts = BmcOptions(find_proof=False, max_depth=5)
        emm = verify(d, "hit", opts)
        explicit = verify(ex, "hit", opts)
        assert emm.status == explicit.status, (d.name, target)
        if emm.status == "cex":
            assert emm.depth == explicit.depth
            assert emm.trace_validated is True
