"""Per-clause multi-labels and unlabelled-core accounting (repro.sat).

A clause may carry several provenance labels — either passed to
``add_clause`` as a frozenset up front, or joined later with
``Solver.add_label`` when a cached encoding serves a second consumer
(the cross-memory comparator cache).  ``core_labels`` flattens label
sets back to individual tags; ``core_unlabeled_count`` exposes core
clauses that carry no label at all, so PBA never mistakes an
unattributed core for an exhaustively attributed one.
"""

import pytest

from repro.sat import Solver


def unsat_pair(solver, label_a, label_b):
    """Two contradictory unit clauses; returns their clause ids."""
    v = solver.new_var()
    ca = solver.add_clause([v], label_a)
    cb = solver.add_clause([-v], label_b)
    assert not solver.solve().sat
    return ca, cb


class TestMultiLabels:
    def test_frozenset_label_flattens_in_core(self):
        s = Solver()
        unsat_pair(s, frozenset({("emm", "a"), ("emm", "b")}), ("init", "x"))
        assert s.core_labels() == {("emm", "a"), ("emm", "b"), ("init", "x")}

    def test_add_label_joins_onto_single_label(self):
        s = Solver()
        ca, __ = unsat_pair(s, ("emm", "a"), ("init", "x"))
        s.add_label(ca, ("emm", "b"))
        assert s.core_labels() == {("emm", "a"), ("emm", "b"), ("init", "x")}

    def test_add_label_joins_frozenset(self):
        s = Solver()
        ca, __ = unsat_pair(s, ("emm", "a"), ("init", "x"))
        s.add_label(ca, frozenset({("emm", "b"), ("emm", "c")}))
        assert {("emm", "b"), ("emm", "c")} <= s.core_labels()

    def test_add_label_onto_unlabeled_clause(self):
        s = Solver()
        ca, cb = unsat_pair(s, None, None)
        s.add_label(ca, ("emm", "a"))
        assert s.core_labels() == {("emm", "a")}
        assert s.core_unlabeled_count() == 1  # cb still unlabelled

    def test_add_label_noops(self):
        s = Solver()
        ca, __ = unsat_pair(s, ("emm", "a"), ("init", "x"))
        s.add_label(ca, None)  # None label: no-op
        s.add_label(-1, ("emm", "b"))  # absorbed clause id: no-op
        s.add_label(ca, ("emm", "a"))  # already present: no growth
        assert s.clause_label(ca) in (("emm", "a"), frozenset({("emm", "a")}))
        assert s.core_labels() == {("emm", "a"), ("init", "x")}

    def test_clause_label_raw_forms(self):
        s = Solver()
        v = s.new_var()
        single = s.add_clause([v, s.new_var()], ("gate", 1))
        multi = s.add_clause([-v], frozenset({("a",), ("b",)}))
        bare = s.add_clause([v, s.new_var()], None)
        assert s.clause_label(single) == ("gate", 1)
        assert s.clause_label(multi) == frozenset({("a",), ("b",)})
        assert s.clause_label(bare) is None


class TestUnlabeledCores:
    def test_all_labeled_core_counts_zero(self):
        s = Solver()
        unsat_pair(s, ("emm", "a"), ("init", "x"))
        assert s.core_unlabeled_count() == 0
        assert not s.core_has_unlabeled()

    def test_unlabeled_core_is_not_an_empty_core(self):
        """A core made of unlabelled clauses must be distinguishable
        from a core that used no clauses at all."""
        s = Solver()
        unsat_pair(s, None, None)
        assert s.core_labels() == set()
        assert s.core_unlabeled_count() == 2
        assert s.core_has_unlabeled()

    def test_minimizer_refuses_unlabeled_cores(self):
        from repro.design import Design
        from repro.pba.minimize import minimize_reasons

        d = Design("t")
        x = d.latch("x", 2, init=0)
        x.next = x.expr
        d.invariant("p", x.expr.eq(0))
        with pytest.raises(ValueError, match="not exhaustive"):
            minimize_reasons(d, "p", frozenset({"x"}), depth=2,
                             core_unlabeled=3)
