"""Unit tests for the CDCL solver's public behaviour."""

import pytest

from repro.sat import Solver
from repro.sat.solver import SolveResult


def make(nv: int) -> Solver:
    s = Solver()
    for _ in range(nv):
        s.new_var()
    return s


class TestBasics:
    def test_empty_formula_is_sat(self):
        s = make(3)
        assert s.solve().sat

    def test_single_unit(self):
        s = make(1)
        s.add_clause([1])
        assert s.solve().sat
        assert s.model_value(1) is True
        assert s.model_value(-1) is False

    def test_contradicting_units(self):
        s = make(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat
        assert s.is_broken

    def test_implication_chain(self):
        s = make(5)
        for v in range(1, 5):
            s.add_clause([-v, v + 1])
        s.add_clause([1])
        assert s.solve().sat
        assert all(s.model_value(v) for v in range(1, 6))

    def test_empty_clause_breaks_solver(self):
        s = make(2)
        s.add_clause([])
        assert s.is_broken
        assert not s.solve().sat

    def test_unknown_variable_rejected(self):
        s = make(2)
        with pytest.raises(ValueError):
            s.add_clause([3])
        with pytest.raises(ValueError):
            s.solve([5])

    def test_tautology_absorbed(self):
        s = make(2)
        assert s.add_clause([1, -1]) == -1
        assert s.solve().sat

    def test_duplicate_literals_collapse(self):
        s = make(1)
        s.add_clause([1, 1, 1])
        assert s.solve().sat
        assert s.model_value(1)

    def test_bool_protocol(self):
        s = make(1)
        assert bool(s.solve()) is True
        s.add_clause([1])
        s.add_clause([-1])
        assert bool(s.solve()) is False


class TestIncremental:
    def test_clauses_between_solves(self):
        s = make(3)
        s.add_clause([1, 2])
        assert s.solve().sat
        s.add_clause([-1])
        s.add_clause([-2])
        assert not s.solve().sat

    def test_solve_after_unsat_stays_unsat(self):
        s = make(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat
        assert not s.solve().sat

    def test_new_vars_between_solves(self):
        s = make(1)
        s.add_clause([1])
        assert s.solve().sat
        v = s.new_var()
        s.add_clause([-v])
        assert s.solve().sat
        assert s.model_value(v) is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = make(2)
        s.add_clause([-1, 2])
        assert s.solve([1]).sat
        assert s.model_value(2)

    def test_conflicting_assumptions(self):
        s = make(2)
        r = s.solve([1, -1])
        assert not r.sat
        assert set(r.failed_assumptions) <= {1, -1}
        assert len(r.failed_assumptions) >= 1

    def test_assumptions_do_not_persist(self):
        s = make(1)
        assert s.solve([1]).sat
        assert s.solve([-1]).sat  # not permanent

    def test_failed_assumptions_subset(self):
        s = make(3)
        s.add_clause([-1, -2])
        r = s.solve([1, 2, 3])
        assert not r.sat
        fa = set(r.failed_assumptions)
        assert fa <= {1, 2, 3}
        assert 3 not in fa  # var 3 is irrelevant

    def test_unsat_under_assumption_then_sat(self):
        s = make(2)
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        assert not s.solve([1]).sat
        assert s.solve([-1]).sat


class TestCores:
    def test_core_of_unit_conflict(self):
        s = make(2)
        a = s.add_clause([1], label="a")
        b = s.add_clause([-1], label="b")
        assert not s.solve().sat
        assert s.core_clause_ids() <= {a, b}
        assert s.core_labels() <= {"a", "b"}
        assert len(s.core_labels()) == 2

    def test_core_excludes_irrelevant(self):
        s = make(4)
        s.add_clause([1], label="rel1")
        s.add_clause([-1, 2], label="rel2")
        s.add_clause([-2], label="rel3")
        s.add_clause([3, 4], label="junk")
        assert not s.solve().sat
        assert "junk" not in s.core_labels()

    def test_core_unavailable_after_sat(self):
        s = make(1)
        s.add_clause([1])
        assert s.solve().sat
        with pytest.raises(RuntimeError):
            s.core_clause_ids()

    def test_core_with_assumptions(self):
        s = make(3)
        c1 = s.add_clause([-1, 2], label="imp")
        s.add_clause([3], label="junk")
        r = s.solve([1, -2])
        assert not r.sat
        assert s.core_labels() == {"imp"}

    def test_no_proof_logging_rejects_core_queries(self):
        s = Solver(proof=False)
        s.new_var()
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat
        with pytest.raises(RuntimeError):
            s.core_clause_ids()


class TestBudget:
    def test_conflict_budget_unknown(self):
        import random
        random.seed(5)
        s = Solver(proof=False)
        nv = 120
        for _ in range(nv):
            s.new_var()
        for _ in range(int(nv * 4.26)):
            lits = random.sample(range(1, nv + 1), 3)
            s.add_clause([random.choice([1, -1]) * v for v in lits])
        r = s.solve(max_conflicts=1)
        if r.unknown:
            with pytest.raises(RuntimeError):
                bool(r)
        else:
            # trivially easy instance: fine either way
            assert isinstance(r, SolveResult)

    def test_budget_one_still_learns(self):
        """max_conflicts=N analyzes N conflicts before aborting; the old
        off-by-one aborted *on* the Nth so N=1 never learned anything.

        Clauses over (a, b): deciding a=False propagates b and -b — the
        first conflict, analyzed to the unit [a], which propagates into a
        level-0 conflict: a definitive UNSAT, not an unknown.
        """
        s = make(2)
        s.add_clause([1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        r = s.solve(max_conflicts=1)
        assert r.unknown is False
        assert r.sat is False
        assert s.stats.learned == 1  # the unit [a] was learned
        assert s.stats.conflicts == 2

    def test_budget_zero_aborts_without_learning(self):
        s = make(2)
        s.add_clause([1, 2])
        s.add_clause([1, -2])
        s.add_clause([-1, 2])
        s.add_clause([-1, -2])
        r = s.solve(max_conflicts=0)
        assert r.unknown
        assert s.stats.learned == 0

    def test_budget_exhaustion_aborts_next_conflict(self):
        """With budget N, the (N+1)th conflict aborts; learned clauses
        from the analyzed conflicts persist for the next solve call."""
        import random
        random.seed(11)
        s = Solver(proof=False)
        nv = 60
        for _ in range(nv):
            s.new_var()
        for _ in range(int(nv * 4.3)):
            lits = random.sample(range(1, nv + 1), 3)
            s.add_clause([random.choice([1, -1]) * v for v in lits])
        r = s.solve(max_conflicts=3)
        if r.unknown:
            assert s.stats.learned >= 3
            learned_before = s.stats.learned
            # The solver remains usable and keeps what it learned.
            r2 = s.solve()
            assert not r2.unknown
            assert s.stats.learned >= learned_before

    def test_budget_does_not_affect_easy_sat(self):
        s = make(3)
        s.add_clause([1, 2, 3])
        r = s.solve(max_conflicts=1)
        assert not r.unknown and r.sat


class TestStats:
    def test_counters_move(self):
        s = make(3)
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        s.solve()
        assert s.stats.solves == 1
        assert s.stats.decisions >= 1

    def test_num_clauses_counts_originals_only(self):
        s = make(2)
        s.add_clause([1, 2])
        s.add_clause([-1, 2])
        assert s.num_clauses == 2
