"""Trace container and VCD export."""

import io

from repro.design import Design
from repro.sim import Simulator, Trace, write_vcd


def traced_counter():
    d = Design("cnt")
    en = d.input("en", 1)
    c = d.latch("c", 4, init=0)
    c.next = en.ite(c.expr + 1, c.expr)
    d.invariant("p", c.expr.ult(9))
    sim = Simulator(d)
    return sim.run([{"en": 1}] * 5)


class TestTrace:
    def test_len_and_value(self):
        t = traced_counter()
        assert len(t) == 5
        assert t.value("latches", "c", 3) == 3
        assert t.value("inputs", "en", 0) == 1

    def test_inputs_sequence_replayable(self):
        t = traced_counter()
        seq = t.inputs_sequence()
        assert seq == [{"en": 1}] * 5

    def test_format_table_truncates(self):
        t = traced_counter()
        s = t.format_table(max_cycles=2)
        assert "more cycles" in s

    def test_empty_trace(self):
        assert Trace().format_table() == "<empty trace>"


class TestVcd:
    def test_structure(self):
        t = traced_counter()
        buf = io.StringIO()
        write_vcd(buf, t, {("latches", "c"): 4, ("inputs", "en"): 1})
        text = buf.getvalue()
        assert "$timescale" in text
        assert "$var wire 4" in text
        assert "$enddefinitions" in text
        assert "#0" in text and "#4" in text

    def test_only_changes_dumped(self):
        d = Design("hold")
        c = d.latch("c", 2, init=1)
        c.next = c.expr
        d.invariant("p", c.expr.eq(1))
        t = Simulator(d).run([{}] * 4)
        buf = io.StringIO()
        write_vcd(buf, t, {("latches", "c"): 2})
        body = buf.getvalue().split("$enddefinitions $end\n")[1]
        assert body.count("b1 ") == 1  # value dumped once, then held

    def test_scalar_format(self):
        t = traced_counter()
        buf = io.StringIO()
        write_vcd(buf, t, {("inputs", "en"): 1})
        body = buf.getvalue().split("$enddefinitions $end\n")[1]
        assert "1!" in body  # scalar change format
