"""Trace container, VCD export and the VCD/dict round-trips."""

import io
import random

import pytest

from repro.design import Design
from repro.sim import Simulator, Trace, read_vcd, write_vcd


def traced_counter():
    d = Design("cnt")
    en = d.input("en", 1)
    c = d.latch("c", 4, init=0)
    c.next = en.ite(c.expr + 1, c.expr)
    d.invariant("p", c.expr.ult(9))
    sim = Simulator(d)
    return sim.run([{"en": 1}] * 5)


class TestTrace:
    def test_len_and_value(self):
        t = traced_counter()
        assert len(t) == 5
        assert t.value("latches", "c", 3) == 3
        assert t.value("inputs", "en", 0) == 1

    def test_inputs_sequence_replayable(self):
        t = traced_counter()
        seq = t.inputs_sequence()
        assert seq == [{"en": 1}] * 5

    def test_format_table_truncates(self):
        t = traced_counter()
        s = t.format_table(max_cycles=2)
        assert "more cycles" in s

    def test_empty_trace(self):
        assert Trace().format_table() == "<empty trace>"


class TestVcd:
    def test_structure(self):
        t = traced_counter()
        buf = io.StringIO()
        write_vcd(buf, t, {("latches", "c"): 4, ("inputs", "en"): 1})
        text = buf.getvalue()
        assert "$timescale" in text
        assert "$var wire 4" in text
        assert "$enddefinitions" in text
        assert "#0" in text and "#4" in text

    def test_only_changes_dumped(self):
        d = Design("hold")
        c = d.latch("c", 2, init=1)
        c.next = c.expr
        d.invariant("p", c.expr.eq(1))
        t = Simulator(d).run([{}] * 4)
        buf = io.StringIO()
        write_vcd(buf, t, {("latches", "c"): 2})
        body = buf.getvalue().split("$enddefinitions $end\n")[1]
        assert body.count("b1 ") == 1  # value dumped once, then held

    def test_scalar_format(self):
        t = traced_counter()
        buf = io.StringIO()
        write_vcd(buf, t, {("inputs", "en"): 1})
        body = buf.getvalue().split("$enddefinitions $end\n")[1]
        assert "1!" in body  # scalar change format


def all_signal_widths(design):
    widths = {("inputs", n): i.width for n, i in design.inputs.items()}
    widths.update({("latches", n): latch.width
                   for n, latch in design.latches.items()})
    widths.update({("props", n): 1 for n in design.properties})
    return widths


class TestVcdRoundTrip:
    def roundtrip(self, design, trace):
        widths = all_signal_widths(design)
        buf = io.StringIO()
        write_vcd(buf, trace, widths)
        buf.seek(0)
        return read_vcd(buf)

    def test_counter_roundtrip(self):
        t = traced_counter()
        back = self.roundtrip(traced_counter_design(), t)
        assert back.design_name == "cnt"
        for k, cyc in enumerate(t.cycles):
            for group in ("inputs", "latches", "props"):
                assert back.cycles[k].get(group, {}) == cyc[group], (k, group)

    def test_vector_lane_matches_scalar_on_fifo(self):
        """A vector-extracted lane written to VCD parses back equal to
        the scalar trace of the same stimulus — on a memory-bearing
        case study."""
        pytest.importorskip("numpy")
        from repro.casestudies.fifo import FifoParams, build_fifo
        from repro.sim import SimulatorOracle, Stimulus, VectorOracle

        design = build_fifo(FifoParams(addr_width=2, data_width=2))
        rng = random.Random(4)
        stimuli = [Stimulus(inputs=[
            {n: rng.randrange(1 << i.width) for n, i in design.inputs.items()}
            for _ in range(8)]) for _ in range(6)]
        vec_traces = VectorOracle(design).replay_batch(stimuli)
        scalar = SimulatorOracle(design)
        lane = 3
        back = self.roundtrip(design, vec_traces[lane])
        ref = scalar.replay(stimuli[lane])
        assert len(back.cycles) == len(ref.cycles)
        for k, cyc in enumerate(ref.cycles):
            for group in ("inputs", "latches", "props"):
                assert back.cycles[k].get(group, {}) == cyc[group], (k, group)


def traced_counter_design():
    d = Design("cnt")
    en = d.input("en", 1)
    c = d.latch("c", 4, init=0)
    c.next = en.ite(c.expr + 1, c.expr)
    d.invariant("p", c.expr.ult(9))
    return d


class TestDictRoundTrip:
    def test_trace_from_dict_inverts_to_dict(self):
        t = traced_counter()
        t.init_latches = {"c": 0}
        t.init_memories = {"m": {0: 3, 2: 1}}
        back = Trace.from_dict(t.to_dict())
        assert back.design_name == t.design_name
        assert back.cycles == t.cycles
        assert back.init_latches == t.init_latches
        assert back.init_memories == t.init_memories

    def test_json_string_keys_become_ints(self):
        data = {"design_name": "x", "cycles": [],
                "init_memories": {"m": {"3": "7"}},
                "init_latches": {"l": "2"}}
        back = Trace.from_dict(data)
        assert back.init_memories == {"m": {3: 7}}
        assert back.init_latches == {"l": 2}
