"""FIFO and stack-machine teaching designs."""

import random

from repro.bmc import bmc2, bmc3, verify
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.stack_machine import (OP_POP, OP_PUSH,
                                             StackMachineParams,
                                             build_stack_machine)
from repro.sim import Simulator

FIFO_PARAMS = FifoParams(addr_width=2, data_width=4)
STACK_PARAMS = StackMachineParams(addr_width=2, data_width=4)


class TestFifoSimulation:
    def test_push_pop_order(self):
        d = build_fifo(FIFO_PARAMS)
        sim = Simulator(d)
        for v in (3, 7, 9):
            sim.step({"push": 1, "data_in": v})
        assert sim.latches["count"] == 3
        rd = d.memories["buf"].read(0).data
        popped = []
        for _ in range(3):
            sim.begin_cycle({"pop": 1})
            popped.append(sim.eval(rd))
            sim.commit_cycle()
        assert popped == [3, 7, 9]
        assert sim.latches["count"] == 0

    def test_full_blocks_push(self):
        d = build_fifo(FIFO_PARAMS)
        sim = Simulator(d)
        for v in range(6):
            sim.step({"push": 1, "data_in": v})
        assert sim.latches["count"] == 4  # depth 2^2

    def test_random_against_model(self):
        rng = random.Random(9)
        d = build_fifo(FIFO_PARAMS)
        sim = Simulator(d)
        rd = d.memories["buf"].read(0).data
        model = []
        for _ in range(200):
            push = rng.randint(0, 1)
            pop = rng.randint(0, 1)
            data = rng.randrange(16)
            sim.begin_cycle({"push": push, "pop": pop, "data_in": data})
            do_push = push and len(model) < 4
            do_pop = pop and len(model) > 0
            if do_pop:
                assert sim.eval(rd) == model[0]
            sim.commit_cycle()
            if do_pop:
                model.pop(0)
            if do_push:
                model.append(data)
            assert sim.latches["count"] == len(model)


class TestFifoVerification:
    def test_count_bounded_proved(self):
        r = verify(build_fifo(FIFO_PARAMS), "count_bounded",
                   bmc3(max_depth=12, pba=False))
        assert r.proved, r.describe()

    def test_empty_full_exclusive_proved(self):
        r = verify(build_fifo(FIFO_PARAMS), "empty_full_exclusive",
                   bmc3(max_depth=12, pba=False))
        assert r.proved, r.describe()

    def test_can_fill_witness(self):
        r = verify(build_fifo(FIFO_PARAMS), "can_fill", bmc2(max_depth=8))
        assert r.falsified and r.depth == 4  # 4 pushes
        assert r.trace_validated is True

    def test_data_integrity_holds_within_bound(self):
        r = verify(build_fifo(FIFO_PARAMS), "data_integrity",
                   bmc2(max_depth=10))
        assert r.status == "bounded"  # no violation

    def test_data_integrity_mutation_caught(self):
        """Corrupting the write address must violate data integrity."""
        p = FIFO_PARAMS
        d = build_fifo(p)
        mem = d.memories["buf"]
        port = mem.write_ports[0]
        # re-wire the write to a shifted slot
        port.addr = port.addr + 1
        r = verify(d, "data_integrity", bmc2(max_depth=10))
        assert r.falsified
        assert r.trace_validated is True


class TestStackMachine:
    def test_simulation(self):
        d = build_stack_machine(STACK_PARAMS)
        sim = Simulator(d)
        sim.step({"op": OP_PUSH, "data_in": 5})
        sim.step({"op": OP_PUSH, "data_in": 9})
        assert sim.latches["sp"] == 2
        rd = d.memories["stk"].read(0).data
        sim.begin_cycle({"op": OP_POP})
        assert sim.eval(rd) == 9
        sim.commit_cycle()
        assert sim.latches["sp"] == 1

    def test_underflow_guarded(self):
        d = build_stack_machine(STACK_PARAMS)
        sim = Simulator(d)
        sim.step({"op": OP_POP})
        assert sim.latches["sp"] == 0

    def test_roundtrip_proved_by_induction(self):
        """EMM's 1-step forwarding makes push;pop provable."""
        r = verify(build_stack_machine(STACK_PARAMS), "push_pop_roundtrip",
                   bmc3(max_depth=10, pba=False))
        assert r.proved, r.describe()

    def test_sp_in_range_proved(self):
        r = verify(build_stack_machine(STACK_PARAMS), "sp_in_range",
                   bmc3(max_depth=10, pba=False))
        assert r.proved, r.describe()

    def test_depth3_witness(self):
        r = verify(build_stack_machine(STACK_PARAMS), "can_reach_depth3",
                   bmc2(max_depth=6))
        assert r.falsified and r.depth == 3

    def test_roundtrip_mutation_caught(self):
        """Returning stack[sp] instead of stack[sp-1] must fail."""
        p = STACK_PARAMS
        d = build_stack_machine(p)
        port = d.memories["stk"].read_ports[0]
        port.addr = port.addr + 1  # off-by-one read address
        r = verify(d, "push_pop_roundtrip", bmc2(max_depth=8))
        assert r.falsified
