"""Experiment T1 — Table 1: quicksort induction proofs, EMM vs explicit.

Paper's Table 1 (array AW=10/DW=32, stack AW=10/DW=24, 2.8 GHz Xeon,
3-hour limit):

    N  Prop  D   EMM sec  EMM MB   Explicit
    3  P1    27  64       55       >3hr
    3  P2    27  30       44       >3hr
    4  P1    42  601      105      >3hr
    4  P2    42  453      124      >3hr
    5  P1    59  6376     423      >3hr
    5  P2    59  4916     411      >3hr

This reproduction runs the same algorithms at reduced widths (the array
only holds N elements either way).  The shape to reproduce: EMM proves
every property by forward induction at a diameter D that grows with N,
while explicit modeling exhausts its (scaled) time budget.
"""

import pytest

from benchmarks import common
from repro.bmc import bmc1, bmc3, verify
from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.design import expand_memories

PAPER = {
    (3, "P1"): (27, 64), (3, "P2"): (27, 30),
    (4, "P1"): (42, 601), (4, "P2"): (42, 453),
    (5, "P1"): (59, 6376), (5, "P2"): (59, 4916),
}

common.table(
    "Table 1 — Quick Sort (EMM vs Explicit Modeling)",
    ["N", "Prop", "paper D", "D", "paper EMM s", "EMM", "EMM clauses",
     "Explicit", "Explicit clauses"],
    note=("paper: AW=10/DW=32 on 2.8GHz Xeon, 3h limit; "
          f"here: reduced widths, {common.EXPLICIT_TIMEOUT_S:.0f}s budget "
          "standing in for the paper's timeout"),
)

if common.is_full():
    CONFIGS = [(3, "P1"), (3, "P2"), (4, "P1"), (4, "P2"), (5, "P1"), (5, "P2")]
    MAX_DEPTH = 120
else:
    CONFIGS = [(2, "P1"), (2, "P2"), (3, "P2")]
    MAX_DEPTH = 60


def params_for(n: int) -> QuicksortParams:
    return QuicksortParams(n=n, addr_width=3, data_width=3,
                           stack_addr_width=max(3, (2 * n).bit_length()))


@pytest.mark.parametrize("n,prop", CONFIGS, ids=[f"N{n}-{p}" for n, p in CONFIGS])
def bench_table1(benchmark, n, prop):
    paper_d, paper_sec = PAPER.get((n, prop), ("-", "-"))

    def run():
        emm = verify(build_quicksort(params_for(n)), prop,
                     bmc3(max_depth=MAX_DEPTH, pba=False,
                          timeout_s=common.EXPLICIT_TIMEOUT_S * 10))
        explicit = verify(expand_memories(build_quicksort(params_for(n))),
                          prop,
                          bmc1(max_depth=MAX_DEPTH, pba=False,
                               timeout_s=common.EXPLICIT_TIMEOUT_S))
        return emm, explicit

    emm, explicit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert emm.proved, emm.describe()
    benchmark.extra_info["depth"] = emm.depth
    benchmark.extra_info["emm_status"] = emm.status
    benchmark.extra_info["explicit_status"] = explicit.status
    common.add_row(
        "Table 1 — Quick Sort (EMM vs Explicit Modeling)",
        n, prop, paper_d, emm.depth, paper_sec, common.fmt_time(emm),
        emm.stats.sat_clauses, common.fmt_time(explicit),
        common.fmt_mem(explicit))
