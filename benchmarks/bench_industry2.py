"""Experiment I2 — Industry Design II: multiport memory + invariant flow.

Paper (in text): 1 memory AW=12/DW=32 with 1 write + 3 read ports; 8
unreachable properties.  Naive memory abstraction gives spurious
witnesses at depth 7; EMM finds none up to depth 200 (~10 s); the
invariant G(WE=0 or WD=0) is proved by backward induction at depth 2 in
<1 s (explicit: 78 s); replacing the memory by rd=0 and re-running PBA
lets forward induction prove every property in <1 s.

Shape to reproduce: each stage's verdict, the invariant proof being much
cheaper with EMM than explicit, and the final per-property proofs being
near-instant on the reduced model.
"""


from benchmarks import common
from repro.bmc import BmcOptions, bmc1, bmc2, bmc3, verify
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.design import expand_memories
from repro.props import free_memory_reads, prove_with_memory_invariant

common.table(
    "Industry II — multiport SoC invariant flow",
    ["stage", "paper", "measured"],
)

if common.is_full():
    PARAMS = MultiportSocParams(addr_width=6, data_width=16,
                                counter_width=5, num_properties=8)
    EMM_BOUND = 60
else:
    PARAMS = MultiportSocParams(addr_width=4, data_width=8,
                                counter_width=4, num_properties=8)
    EMM_BOUND = 20


def bench_industry2_flow(benchmark):
    def run():
        rows = []
        design = build_multiport_soc(PARAMS)
        # Stage 1: naive abstraction -> spurious witness.
        freed = free_memory_reads(design, "table")
        r1 = verify(freed, "alarm_mode_0",
                    BmcOptions(find_proof=False, max_depth=10))
        rows.append(("naive abstraction", "spurious witness at depth 7",
                     f"spurious witness at depth {r1.depth}"))
        # Stage 2: EMM -> no witness within bound.
        r2 = verify(design, "alarm_mode_0", bmc2(max_depth=EMM_BOUND))
        rows.append(("EMM bounded search", "no witness to depth 200 (~10s)",
                     f"no witness to depth {EMM_BOUND} "
                     f"({r2.stats.wall_time_s:.1f}s)"))
        # Stage 3: invariant by backward induction, EMM vs explicit.
        r3 = verify(design, "we_or_wd_zero", bmc3(max_depth=10, pba=False))
        rows.append(("invariant G(WE=0 or WD=0), EMM",
                     "backward induction depth 2, <1s",
                     f"{r3.method} induction depth {r3.depth}, "
                     f"{r3.stats.wall_time_s:.2f}s"))
        r3x = verify(expand_memories(build_multiport_soc(PARAMS)),
                     "we_or_wd_zero",
                     bmc1(max_depth=10, pba=False,
                          timeout_s=common.EXPLICIT_TIMEOUT_S))
        rows.append(("invariant, explicit model", "78s",
                     common.fmt_time(r3x)))
        # Stage 4: memory replaced by rd=0, all 8 properties proved.
        alarms = sorted(n for n in design.properties
                        if n.startswith("alarm_"))
        flow = prove_with_memory_invariant(
            design, "table", invariant_name="we_or_wd_zero",
            property_names=alarms,
            invariant_options=BmcOptions(max_depth=10),
            property_options=BmcOptions(max_depth=15))
        total = sum(r.stats.wall_time_s
                    for r in flow.property_results.values())
        proved = sum(r.proved for r in flow.property_results.values())
        rows.append(("8 properties on reduced model",
                     "all proved, <1s each",
                     f"{proved}/{len(alarms)} proved, {total:.2f}s total"))
        return rows, r1, r2, r3, flow

    rows, r1, r2, r3, flow = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r1.falsified
    assert r2.status == "bounded"
    assert r3.proved and r3.method == "backward" and r3.depth <= 2
    assert flow.all_proved
    for stage, paper, measured in rows:
        common.add_row("Industry II — multiport SoC invariant flow",
                       stage, paper, measured)
