"""Experiment S2 — solver wall-clock: fast back-end vs baseline CDCL.

The fast solver back-end (blocker literals + dedicated binary watch
lists, LBD clause tiers with root-level shrinking, assumption-trail
reuse) is the default; ``BmcOptions(solver_baseline=True)`` re-runs the
identical encoding and scheduler on the historical baseline loop.  Two
CI-gated workloads, both deep enough (depth >= 16) for the trail-reuse
and propagation machinery to dominate:

* **S2a** — a recurring-address workload (constant status address plus
  a shared symbolic read address over a gated-write memory) carrying 12
  reachability properties and an invariant through one shared encoding
  session.  Every falsification check at every depth shares the
  ``[a_init, a_meminit]`` assumption prefix, so the fast back-end keeps
  the propagated initial-state cone assigned across sibling checks.
  The CI gate requires the fast wall-clock strictly below baseline AND
  at least 1.5x faster (measured: ~2.2-2.6x on the dev machine; the
  1.5x floor absorbs CI-runner noise).  Verdict parity per property is
  asserted — the baseline is the differential oracle, not just a timing
  reference.
* **S2b** — the 5-property shared-session multiport SoC run (Industry
  II analog).  Gate: fast wall strictly below baseline with verdict
  parity; the speedup ratio is report-only here (smaller run, noisier).

Both workloads are propagation-dominated with nontrivial search — the
shapes the paper's deep BMC runs spend their time in — rather than
conflict-storm CNFs where verdict-preserving search-order divergence
between the back-ends swamps the structural wins.
"""

import time

from benchmarks import common
from repro.bmc import BmcOptions, verify_many
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.design import Design

common.table(
    "S2 — solver wall-clock: fast back-end vs baseline (shared sessions)",
    ["workload", "props", "depth", "fast wall", "base wall", "speedup",
     "saved levels"],
    note="identical encoding + scheduler, only the CDCL loop differs; "
         "'saved levels' counts assumption-trail levels the fast solver "
         "kept assigned instead of re-propagating (session-wide)",
)


def build_recurring_wall(aw=5, dw=16, num_props=12):
    """Recurring-address multi-property workload for the wall gate.

    The address structure of the C-series size benches (one read port
    pinned to a constant status address, two sharing a symbolic address
    cone) combined with the Industry II gated-write path (the write
    enable hangs off an error latch a saturating counter can never
    fire), so every falsification check is UNSAT through real EMM
    forwarding reasoning at every depth.
    """
    d = Design("recur_wall")
    cw = 4
    tick = d.input("tick", 1)
    wr_req = d.input("wr_req", 1)
    data_in = d.input("data_in", dw)
    ra = d.input("ra", aw)
    mode_in = d.input("mode_in", 4)
    cnt = d.latch("cnt", cw, init=0)
    cnt_max = (1 << cw) - 1
    cnt.next = tick.ite(
        cnt.expr.ult(cnt_max - 1).ite(cnt.expr + 1, d.const(0, cw)),
        cnt.expr)
    err = d.latch("err", 1, init=0)
    err.next = err.expr | cnt.expr.eq(cnt_max)
    we_reg = d.latch("we_reg", 1, init=0)
    we_reg.next = err.expr & wr_req
    wd_reg = d.latch("wd_reg", dw, init=0)
    wd_reg.next = err.expr.ite(d.const(0, dw), data_in)
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=1, init=0)
    rd0 = mem.read(0).connect(addr=d.const(1, aw), en=1)
    rd1 = mem.read(1).connect(addr=ra, en=1)
    rd2 = mem.read(2).connect(addr=ra, en=1)
    mem.write(0).connect(addr=ra, data=wd_reg.expr, en=we_reg.expr)
    hit = rd0.ne(0) | rd1.ne(0) | rd2.ne(0)
    s1 = d.latch("s1", 1, init=0)
    s1.next = hit
    s2 = d.latch("s2", 1, init=0)
    s2.next = s1.expr
    mode = d.latch("mode", 4, init=0)
    mode.next = mode_in
    for m in range(num_props):
        d.reach(f"alarm_{m}", s2.expr & mode.expr.eq(m))
    d.invariant("we_or_wd_zero", we_reg.expr.eq(0) | wd_reg.expr.eq(0))
    return d


RECUR_DEPTH = 20 if not common.is_full() else 28

SOC = MultiportSocParams(addr_width=5, data_width=8, num_properties=5)
SOC_DEPTH = 16 if not common.is_full() else 24


def _timed_pair(build, names, depth):
    """Run the shared-session verify-all fast and baseline; returns
    (wall_fast, wall_base, results_fast, results_base)."""
    t0 = time.monotonic()
    fast = verify_many(build(), names,
                       BmcOptions(find_proof=False, max_depth=depth))
    t_fast = time.monotonic() - t0
    t0 = time.monotonic()
    base = verify_many(build(), names,
                       BmcOptions(find_proof=False, max_depth=depth,
                                  solver_baseline=True))
    t_base = time.monotonic() - t0
    return t_fast, t_base, fast, base


def _assert_parity(fast, base, ctx):
    assert set(fast) == set(base), ctx
    for name in fast:
        rf, rb = fast[name], base[name]
        assert (rf.status, rf.depth, rf.method) == \
            (rb.status, rb.depth, rb.method), (ctx, name)


def bench_solver_wall_recurring(benchmark):
    """S2a CI gate: fast strictly below baseline and >= 1.5x on the
    depth-20 recurring-address 13-property shared session."""
    run = lambda: _timed_pair(build_recurring_wall, None, RECUR_DEPTH)
    t_fast, t_base, fast, base = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    _assert_parity(fast, base, "recurring")
    saved = max(r.stats.solver["trail_saved_levels"] for r in fast.values())
    assert saved > 0, "trail reuse never fired on the recurring workload"
    assert all(r.stats.solver["trail_saved_levels"] == 0
               for r in base.values())
    speedup = t_base / max(t_fast, 1e-9)
    assert t_fast < t_base, (t_fast, t_base)
    assert speedup >= 1.5, f"speedup regressed to {speedup:.2f}x"
    benchmark.extra_info["wall_fast_s"] = round(t_fast, 3)
    benchmark.extra_info["wall_base_s"] = round(t_base, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["trail_saved_levels"] = saved
    common.add_row(
        "S2 — solver wall-clock: fast back-end vs baseline (shared sessions)",
        "recurring-address", len(fast), RECUR_DEPTH,
        f"{t_fast:.2f}s", f"{t_base:.2f}s", f"{speedup:.2f}x", saved)


def bench_solver_wall_soc_session(benchmark):
    """S2b CI gate: fast strictly below baseline on the 5-property
    shared-session SoC run (speedup report-only)."""
    names = [f"alarm_mode_{m}" for m in range(SOC.num_properties)]
    build = lambda: build_multiport_soc(SOC)
    run = lambda: _timed_pair(build, names, SOC_DEPTH)
    t_fast, t_base, fast, base = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    _assert_parity(fast, base, "soc")
    speedup = t_base / max(t_fast, 1e-9)
    assert t_fast < t_base, (t_fast, t_base)
    benchmark.extra_info["wall_fast_s"] = round(t_fast, 3)
    benchmark.extra_info["wall_base_s"] = round(t_base, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    common.add_row(
        "S2 — solver wall-clock: fast back-end vs baseline (shared sessions)",
        "multiport SoC", len(names), SOC_DEPTH,
        f"{t_fast:.2f}s", f"{t_base:.2f}s", f"{speedup:.2f}x",
        max(r.stats.solver["trail_saved_levels"] for r in fast.values()))
