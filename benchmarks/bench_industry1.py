"""Experiment I1 — Industry Design I: the low-pass image filter.

Paper (in text): 216 reachability properties on a design with two
AW=10/DW=8 memories; EMM found 206 witnesses (max depth 51) in ~400 s /
50 MB and proved the remaining 10 by induction in <1 s; explicit modeling
needed 20 540 s / 912 MB for the witnesses.

Shape to reproduce: the witness/proof split of the property family, EMM
beating explicit by a large factor on total witness time, and the
induction proofs being nearly instant.
"""


from benchmarks import common
from repro.bmc import bmc1, bmc2, bmc3, verify
from repro.casestudies.image_filter import ImageFilterParams, build_image_filter
from repro.design import expand_memories

common.table(
    "Industry I — image filter property family",
    ["engine", "witnesses", "max depth", "witness time", "proofs",
     "proof time", "clauses (last run)"],
    note=("paper: 206/216 witnesses (max depth 51) EMM 400s vs explicit "
          "20540s; 10 induction proofs <1s"),
)

if common.is_full():
    PARAMS = ImageFilterParams(
        addr_width=5, data_width=8,
        reachable_values=tuple(range(0, 192, 12)),
        unreachable_values=(192, 200, 224, 255))
else:
    PARAMS = ImageFilterParams(
        addr_width=3, data_width=8,
        reachable_values=(0, 17, 64, 120, 191),
        unreachable_values=(192, 255))


def _family(design):
    wit = sorted(n for n in design.properties if n.startswith("reach_"))
    prf = sorted(n for n in design.properties if n.startswith("unreach_"))
    return wit, prf


def bench_industry1_emm(benchmark):
    design = build_image_filter(PARAMS)
    wit_names, prf_names = _family(design)
    max_depth = PARAMS.line_width + 3 * (PARAMS.line_width - 2) + 2

    def run():
        found, deepest, wit_time, prf_time, clauses = 0, 0, 0.0, 0.0, 0
        for name in wit_names:
            r = verify(build_image_filter(PARAMS), name,
                       bmc2(max_depth=max_depth))
            wit_time += r.stats.wall_time_s
            clauses = max(clauses, r.stats.sat_clauses)
            if r.falsified:
                found += 1
                deepest = max(deepest, r.depth)
        proofs = 0
        for name in prf_names:
            r = verify(build_image_filter(PARAMS), name,
                       bmc3(max_depth=20, pba=False))
            prf_time += r.stats.wall_time_s
            if r.proved:
                proofs += 1
        return found, deepest, wit_time, proofs, prf_time, clauses

    found, deepest, wt, proofs, pt, clauses = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert found == len(wit_names)
    assert proofs == len(prf_names)
    benchmark.extra_info["witnesses"] = found
    common.add_row("Industry I — image filter property family",
                   "EMM", f"{found}/{found + proofs}", deepest,
                   f"{wt:.1f}s", proofs, f"{pt:.2f}s", clauses)


def bench_industry1_explicit(benchmark):
    design = build_image_filter(PARAMS)
    wit_names, prf_names = _family(design)
    # The explicit baseline is the paper's 51x-slower leg; sample the
    # family instead of sweeping it so the quick tier stays bounded.
    if not common.is_full():
        wit_names = wit_names[:3]
        prf_names = prf_names[:1]
    max_depth = PARAMS.line_width + 3 * (PARAMS.line_width - 2) + 2
    budget = common.EXPLICIT_TIMEOUT_S

    def run():
        found, deepest, wit_time, clauses, timeouts = 0, 0, 0.0, 0, 0
        for name in wit_names:
            r = verify(expand_memories(build_image_filter(PARAMS)), name,
                       bmc1(max_depth=max_depth, pba=False,
                            find_proof=False, timeout_s=budget))
            wit_time += r.stats.wall_time_s
            clauses = max(clauses, r.stats.sat_clauses)
            if r.falsified:
                found += 1
                deepest = max(deepest, r.depth)
            elif r.status == "timeout":
                timeouts += 1
        prf_time = 0.0
        proofs = 0
        for name in prf_names:
            r = verify(expand_memories(build_image_filter(PARAMS)), name,
                       bmc1(max_depth=20, pba=False, timeout_s=budget))
            prf_time += r.stats.wall_time_s
            if r.proved:
                proofs += 1
        return found, deepest, wit_time, proofs, prf_time, clauses, timeouts

    found, deepest, wt, proofs, pt, clauses, timeouts = benchmark.pedantic(
        run, rounds=1, iterations=1)
    label = f"{found}/{len(wit_names) + len(prf_names)} (sampled)"
    if timeouts:
        label += f" ({timeouts} timeouts)"
    common.add_row("Industry I — image filter property family",
                   "Explicit", label, deepest, f"{wt:.1f}s",
                   proofs, f"{pt:.2f}s", clauses)
