"""Experiment A1 — ablation: exclusive valid-read signals (Section 3).

The paper (citing its CAV'04 predecessor) claims the explicit exclusivity
constraints "improve the SAT solve time significantly".  This bench runs
the same bounded checks with the chain enabled (paper encoding) and with
the naive long-clause encoding of equation (3), comparing wall time,
conflicts and formula size.
"""

import pytest

from benchmarks import common
from repro.bmc import BmcOptions, verify
from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.casestudies.stack_machine import StackMachineParams, build_stack_machine

common.table(
    "A1 — exclusivity-chain ablation",
    ["workload", "encoding", "status", "time", "conflicts", "decisions",
     "clauses"],
    note="paper claim: exclusive S/PS signals cut SAT solve time",
)

DEPTH = 24 if common.is_full() else 16


def _quicksort():
    return build_quicksort(QuicksortParams(
        n=3, addr_width=3, data_width=3, stack_addr_width=3))


def _stack():
    return build_stack_machine(StackMachineParams(addr_width=3, data_width=8))


WORKLOADS = [
    ("quicksort-P1-bounded", _quicksort, "P1"),
    ("stack-roundtrip-bounded", _stack, "push_pop_roundtrip"),
]


@pytest.mark.parametrize("label,factory,prop", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("exclusivity", [True, False],
                         ids=["with-S-chain", "naive-eq3"])
def bench_exclusivity(benchmark, label, factory, prop, exclusivity):
    opts = BmcOptions(find_proof=False, max_depth=DEPTH,
                      exclusivity=exclusivity)

    def run():
        return verify(factory(), prop, opts)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status == "bounded", result.describe()
    benchmark.extra_info["conflicts"] = result.stats.solver["conflicts"]
    common.add_row(
        "A1 — exclusivity-chain ablation",
        label, "S/PS chain" if exclusivity else "naive eq.(3)",
        result.status, f"{result.stats.wall_time_s:.2f}s",
        result.stats.solver["conflicts"], result.stats.solver["decisions"],
        result.stats.sat_clauses)
