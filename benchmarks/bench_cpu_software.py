"""Experiment S2 — software-program proofs on the accumulator CPU.

A second "software program" workload in the spirit of the paper's
quicksort study: the memcpy-with-self-check program must end with
``acc == 1`` for *every* initial data-memory image.  The proof needs the
arbitrary-initial-state machinery (equation (6)) exactly like quicksort
P1, and it runs over *two* embedded memories (instruction ROM + data
memory).  Reported EMM vs. Explicit, matching the Table 1 layout.
"""

import pytest

from benchmarks import common
from repro.bmc import bmc1, bmc3, verify
from repro.casestudies.cpu import CpuParams, build_cpu, memcpy_program
from repro.design import expand_memories

common.table(
    "S2 — CPU memcpy self-check proof (EMM vs Explicit)",
    ["N words", "proof depth", "EMM status", "EMM time",
     "Explicit status", "Explicit time"],
    note="G(halted -> acc=1) over arbitrary initial data memory; the "
         "instruction ROM is a second embedded memory (init_words)",
)

NS = [1, 2, 3] if common.is_full() else [1, 2]


def params_for(n: int) -> CpuParams:
    # The program is 5n+4 words long; size the ROM to fit.
    return CpuParams(pc_width=max(4, (5 * n + 4).bit_length()),
                     addr_width=3, data_width=4)


@pytest.mark.parametrize("n", NS, ids=[f"N{n}" for n in NS])
def bench_cpu_memcpy(benchmark, n):
    p = params_for(n)

    def run():
        design = build_cpu(memcpy_program(n, src=0, dst=4, params=p), p)
        emm = verify(design, "halted_acc_one", bmc3(max_depth=40, pba=False))
        explicit_design = expand_memories(
            build_cpu(memcpy_program(n, src=0, dst=4, params=p), p))
        explicit = verify(explicit_design, "halted_acc_one",
                          bmc1(max_depth=40, pba=False,
                               timeout_s=common.EXPLICIT_TIMEOUT_S))
        return emm, explicit

    emm, explicit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert emm.proved, emm.describe()
    common.add_row(
        "S2 — CPU memcpy self-check proof (EMM vs Explicit)",
        n, emm.depth, emm.status, common.fmt_time(emm),
        explicit.status, common.fmt_time(explicit))
