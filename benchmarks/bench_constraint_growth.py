"""Experiments C1 + A3 — constraint-size accounting.

Verifies the paper's closed-form sizes at benchmark scale and reports the
cumulative growth curve (quadratic in depth, linear in W*R and in the
address/data widths), plus the Section 3 comparison of the hybrid
(CNF+gate) representation against a purely circuit-based encoding.
"""

import pytest

from benchmarks import common
from repro.aig import Aig, CnfEmitter
from repro.bmc import BmcOptions, verify
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, accounting
from repro.emm.gates import GateEmmMemory
from repro.sat import Solver

common.table(
    "C1 — EMM constraint growth (measured vs formula)",
    ["AW", "DW", "R", "W", "depth", "clauses measured", "clauses formula",
     "gates measured", "gates formula"],
    note="formula: ((4m+2n+1)kW + 2n+1)R clauses and 3kWR gates per depth k",
)

common.table(
    "A3 — hybrid vs pure-gate encoding (single port)",
    ["depth", "hybrid clauses+gates", "pure-gate gates",
     "pure-gate as clauses (x3)"],
    note="Section 3: hybrid adds (4m+2n+1)k+2n+1 clauses + 3k gates; "
         "pure circuit needs (4m+2n+2)k+n gates (~3 CNF clauses each)",
)

common.table(
    "C1c — comparator dedup on recurring/constant addresses",
    ["AW", "DW", "depth", "clauses off", "clauses on", "vars off", "vars on",
     "drop", "cache hits", "folds"],
    note="emm_addr_dedup caches comparators per memory and folds constant "
         "addresses; 'drop' is the clauses+vars saving vs the paper's "
         "fresh-comparator encoding",
)

common.table(
    "C2 — structural hashing on the gate EMM encoding",
    ["AW", "DW", "depth", "cls+vars off", "cls+vars on", "drop",
     "strash hits", "folds"],
    note="strash hash-conses AIG nodes and dedups Tseitin gate triples; "
         "'drop' is the SAT clauses+vars saving of the pure-gate EMM "
         "encoding vs the unstrashed baseline on recurring addresses",
)

common.table(
    "C3 — cross-frame chain-suffix sharing (gate EMM totals)",
    ["workload", "AW", "DW", "depth", "gates off", "gates on", "cls off",
     "cls on", "gate drop", "suffix hits", "merged", "pruned"],
    note="chain_share builds the priority chain oldest-write-first as a "
         "mux chain, so recurring address cones make frame k's chain a "
         "strash prefix of frame k+1's; eq-(6) pairs are pruned on "
         "folded-FALSE comparators and fall-through reads merge on "
         "fold-TRUE ('off' is the latest-first / all-pairs baseline)",
)

common.table(
    "C5 — AIG-routed hybrid chain (hybrid_strash A/B, solver clauses+vars)",
    ["workload", "AW", "DW", "W", "depth", "cls+vars off", "cls+vars on",
     "drop", "plateau", "suffix hits", "merged", "plateau gated"],
    note="emm_hybrid_strash routes the hybrid encoder's eq-(4)/(5) chain "
         "through the strashed AIG over aliased CNF comparators; 'off' "
         "re-emits the paper's raw CNF per frame.  All workloads stay "
         "strictly below the raw baseline at every depth >= 8 (CI-gated) "
         "— native ITE lowering prices each chain mux at 4 clauses/1 var, "
         "so even the mixed fresh-address row wins where it used to pay "
         "a 3-triples-per-mux premium; the recurring-address rows "
         "additionally plateau to bounded per-frame growth",
)

common.table(
    "C4 — per-frame incremental growth (chain share A/B)",
    ["workload", "AW", "DW", "frames", "new gates/frame on (first..last)",
     "new gates/frame off (first..last)", "plateau"],
    note="per-frame *new* AIG gates of the gate EMM encoding; with "
         "chain_share on the constant-address workload plateaus to a "
         "bounded constant after warmup while the latest-first baseline "
         "grows linearly with depth",
)


def build(aw, dw, r_ports, w_ports):
    d = Design("growth")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=None)
    for w in range(w_ports):
        mem.write(w).connect(addr=d.input(f"wa{w}", aw),
                             data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1))
    for r in range(r_ports):
        mem.read(r).connect(addr=d.input(f"ra{r}", aw),
                            en=d.input(f"re{r}", 1))
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


CONFIGS = [
    (4, 4, 1, 1, 12),
    (6, 8, 1, 1, 12),
    (4, 4, 2, 1, 12),
    (4, 4, 1, 2, 12),
    (10, 32, 3, 1, 8),   # Industry II's port structure at paper widths
    (10, 8, 1, 1, 10),   # Industry I's memory shape at paper widths
]


@pytest.mark.parametrize("aw,dw,r,w,depth", CONFIGS,
                         ids=[f"m{c[0]}n{c[1]}R{c[2]}W{c[3]}" for c in CONFIGS])
def bench_constraint_growth(benchmark, aw, dw, r, w, depth):
    def run():
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(build(aw, dw, r, w), emitter)
        # The paper's closed forms price the raw-CNF hybrid back-end;
        # the AIG-routed default is measured by C5 instead.
        emm = EmmMemory(solver, unroller, "m", init_consistency=False,
                        hybrid_strash=False)
        for k in range(depth + 1):
            unroller.add_frame()
            emm.add_frame(k)
        return emm.counters

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = (counters.addr_eq_clauses + counters.rd_clauses
                + counters.valid_clauses + counters.init_rd_clauses)
    formula = accounting.cumulative_clauses(depth, w, r, aw, dw)
    gates_formula = accounting.cumulative_gates(depth, w, r)
    assert measured == formula, (measured, formula)
    assert counters.excl_gates == gates_formula
    common.add_row("C1 — EMM constraint growth (measured vs formula)",
                   aw, dw, r, w, depth, measured, formula,
                   counters.excl_gates, gates_formula)


def build_recurring(aw, dw):
    """Workload with the address structure real designs exhibit.

    One write port on a symbolic address; a read port pinned to a
    constant address (status-word pattern), plus two read ports sharing
    one address cone (dual-issue pattern).  ``init=None`` turns on the
    equation-(6) consistency pairs, whose all-pairs comparator set is
    where recurring addresses bite hardest.
    """
    d = Design("recur")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=3, write_ports=1, init=None)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    ra = d.input("ra", aw)
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=ra, en=1)
    mem.read(2).connect(addr=ra, en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


DEDUP_CONFIGS = [(4, 4, 20), (6, 8, 20), (8, 8, 24)]


@pytest.mark.parametrize("aw,dw,depth", DEDUP_CONFIGS,
                         ids=[f"m{c[0]}n{c[1]}k{c[2]}" for c in DEDUP_CONFIGS])
def bench_addr_dedup(benchmark, aw, dw, depth):
    """Acceptance check: dedup cuts clauses+vars >= 25% at depth >= 20.

    ``chain_share`` is pinned off: this experiment isolates the PR-1
    comparator cache/folding layer, whose fold-TRUE eq-(6) comparisons
    would otherwise be intercepted upstream by record merging (measured
    separately in C3/C4).
    """

    def run_one(dedup):
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(build_recurring(aw, dw), emitter)
        # chain_share and hybrid_strash pinned off: this experiment
        # isolates the PR-1 comparator layer on the paper's raw CNF.
        emm = EmmMemory(solver, unroller, "m", addr_dedup=dedup,
                        chain_share=False, hybrid_strash=False)
        for k in range(depth + 1):
            unroller.add_frame()
            emm.add_frame(k)
        return emm.counters

    def run():
        return run_one(False), run_one(True)

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    size_off = off.total_clauses + off.vars_added
    size_on = on.total_clauses + on.vars_added
    drop = 1.0 - size_on / size_off
    assert on.addr_eq_cache_hits > 0
    assert on.addr_eq_folded > 0
    assert drop >= 0.25, (
        f"dedup saved only {drop:.1%} of clauses+vars "
        f"({size_off} -> {size_on}) at depth {depth}")
    common.add_row("C1c — comparator dedup on recurring/constant addresses",
                   aw, dw, depth, off.total_clauses, on.total_clauses,
                   off.vars_added, on.vars_added, f"{drop:.1%}",
                   on.addr_eq_cache_hits, on.addr_eq_folded)


STRASH_CONFIGS = [(4, 4, 8), (4, 4, 20), (6, 8, 24)]


@pytest.mark.parametrize("aw,dw,depth", STRASH_CONFIGS,
                         ids=[f"m{c[0]}n{c[1]}k{c[2]}" for c in STRASH_CONFIGS])
def bench_gate_strash(benchmark, aw, dw, depth):
    """Acceptance check: the strashed gate encoding never emits more
    clauses than the unstrashed baseline, and cuts clauses+vars >= 40%
    at depth >= 20 on the recurring-address workload (CI's bench-smoke
    job runs this at every push).

    Native ITE lowering is pinned off on both sides: this experiment
    isolates the strash layer against the paper's plain triple lowering,
    and the ITE rewrite would otherwise compress the unstrashed baseline
    (muxes cost 4 clauses instead of 3 triples) and blur the A/B."""

    def run_one(strash):
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(strash=strash), solver, strash=strash,
                             ite=False)
        unroller = Unroller(build_recurring(aw, dw), emitter)
        emm = GateEmmMemory(solver, unroller, "m", init_consistency=False)
        for k in range(depth + 1):
            unroller.add_frame()
            emm.add_frame(k)
        return solver, emm.counters

    def run():
        return run_one(False), run_one(True)

    (s_off, c_off), (s_on, c_on) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    size_off = s_off.num_clauses + s_off.num_vars
    size_on = s_on.num_clauses + s_on.num_vars
    drop = 1.0 - size_on / size_off
    assert s_on.num_clauses <= s_off.num_clauses, (
        f"strash grew the CNF: {s_off.num_clauses} -> {s_on.num_clauses}")
    assert s_on.num_vars <= s_off.num_vars
    assert c_on.strash_hits > 0
    assert c_off.strash_hits == 0 and c_off.strash_folds == 0
    if depth >= 20:
        assert drop >= 0.40, (
            f"strash saved only {drop:.1%} of clauses+vars "
            f"({size_off} -> {size_on}) at depth {depth}")
    common.add_row("C2 — structural hashing on the gate EMM encoding",
                   aw, dw, depth, size_off, size_on, f"{drop:.1%}",
                   c_on.strash_hits, c_on.strash_folds)


def build_const_recurring(aw, dw):
    """Constant-address variant of the recurring workload.

    Both read ports are status-word patterns pinned to *distinct*
    constant addresses and the memory's initial state is arbitrary: the
    chain-suffix sharing, the fall-through record merging (fold-TRUE)
    and the eq-(6) pair pruning (fold-FALSE between the two distinct
    records) all fire at maximum strength.
    """
    d = Design("constrec")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=2, write_ports=1, init=None)
    mem.write(0).connect(addr=d.input("wa", aw), data=d.input("wd", dw),
                         en=d.input("we", 1))
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=d.const(2, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


CHAIN_WORKLOADS = {"recurring": build_recurring,
                   "const": build_const_recurring}

CHAIN_CONFIGS = [("recurring", 4, 4, 24), ("const", 4, 4, 24),
                 ("const", 6, 8, 24)]


@pytest.mark.parametrize("workload,aw,dw,depth", CHAIN_CONFIGS,
                         ids=[f"{c[0]}-m{c[1]}n{c[2]}k{c[3]}"
                              for c in CHAIN_CONFIGS])
def bench_chain_share(benchmark, workload, aw, dw, depth):
    """Acceptance checks for the suffix-shared gate encoding (CI runs
    this): total AIG gates never exceed the latest-first baseline at any
    measured depth >= 8, the constant-address variant's per-frame new
    gates plateau to a bounded constant after warmup (instead of the
    baseline's linear growth) with ``init_pairs_pruned > 0``, and the
    A/B verdicts agree at every depth.  The per-frame growth series is
    attached to the benchmark JSON (``extra_info``), which the CI
    bench-smoke job uploads as BENCH_ci.json."""

    def run_one(chain_share):
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(CHAIN_WORKLOADS[workload](aw, dw), emitter)
        emm = GateEmmMemory(solver, unroller, "m", chain_share=chain_share)
        for k in range(depth + 1):
            unroller.add_frame()
            emm.add_frame(k)
        return solver, emm

    def run():
        return run_one(False), run_one(True)

    (s_off, e_off), (s_on, e_on) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    gates_on = [f["gates"] for f in e_on.counters.per_frame]
    gates_off = [f["gates"] for f in e_off.counters.per_frame]
    cls_on = [f["clauses"] for f in e_on.counters.per_frame]
    cls_off = [f["clauses"] for f in e_off.counters.per_frame]
    benchmark.extra_info["per_frame_gates_on"] = gates_on
    benchmark.extra_info["per_frame_gates_off"] = gates_off
    benchmark.extra_info["per_frame_clauses_on"] = cls_on
    benchmark.extra_info["per_frame_clauses_off"] = cls_off
    # Totals: strictly below the baseline at *every* depth >= 8.
    for d in range(8, depth + 1):
        cum_on, cum_off = sum(gates_on[:d + 1]), sum(gates_off[:d + 1])
        assert cum_on < cum_off, (
            f"chain share grew the AIG at depth {d}: "
            f"{cum_off} -> {cum_on} gates ({workload})")
        assert sum(cls_on[:d + 1]) <= sum(cls_off[:d + 1])
    assert e_on.counters.chain_suffix_hits > 0
    assert e_off.counters.chain_suffix_hits == 0
    plateau = "-"
    if workload == "const":
        # Bounded-constant per-frame growth after warmup vs linear off.
        tail = gates_on[3:]
        assert max(tail) == min(tail), (
            f"per-frame gates did not plateau: {gates_on}")
        plateau = str(tail[0])
        assert all(b > a for a, b in zip(gates_off[3:], gates_off[4:])), (
            f"baseline should grow linearly: {gates_off}")
        assert e_on.counters.init_pairs_pruned > 0
        assert e_on.counters.init_records_merged > 0
    # A/B verdict parity at every depth on the full engine.
    design = CHAIN_WORKLOADS[workload](aw, dw)
    results = {share: verify(design, "p",
                             BmcOptions(find_proof=False, max_depth=8,
                                        emm_encoding="gates",
                                        emm_chain_share=share))
               for share in (True, False)}
    assert results[True].status == results[False].status == "bounded"
    assert results[True].depth == results[False].depth == 8
    gate_drop = 1.0 - sum(gates_on) / sum(gates_off)
    common.add_row("C3 — cross-frame chain-suffix sharing (gate EMM totals)",
                   workload, aw, dw, depth, sum(gates_off), sum(gates_on),
                   sum(cls_off), sum(cls_on), f"{gate_drop:.1%}",
                   e_on.counters.chain_suffix_hits,
                   e_on.counters.init_records_merged,
                   e_on.counters.init_pairs_pruned)
    def fmt(series):
        return f"{series[0]},{series[1]},{series[2]}..{series[-1]}"

    common.add_row("C4 — per-frame incremental growth (chain share A/B)",
                   workload, aw, dw, depth + 1, fmt(gates_on), fmt(gates_off),
                   plateau)


def build_const_multiwrite(aw, dw):
    """Two-write-port variant of the constant-address workload.

    Write ports cover disjoint address parities (the no-race assumption),
    so every frame appends two chain stages; the suffix sharing must
    still plateau with W > 1.
    """
    d = Design("constw2")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=2, write_ports=2, init=None)
    for w in range(2):
        addr = d.input(f"wa{w}", aw)
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1) & addr[0].eq(w))
    mem.read(0).connect(addr=d.const(1, aw), en=1)
    mem.read(1).connect(addr=d.const(2, aw), en=1)
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


HYBRID_CHAIN_WORKLOADS = {"const": build_const_recurring,
                          "constW2": build_const_multiwrite,
                          "mixed": build_recurring}

#: ``asserted=False`` rows skip the plateau checks only: the mixed
#: workload's read ports carry *fresh* symbolic address cones every
#: frame, so per-frame growth stays linear.  The strictly-below gate
#: runs on every row — native ITE lowering prices each chain mux at 4
#: clauses/1 var, which beats the raw back-end even when nothing recurs
#: (the plain 3-triples-per-mux lowering used to lose here; re-measured
#: at 25% clauses+vars saved on mixed-m4n4k24).
HYBRID_CHAIN_CONFIGS = [("const", 4, 4, 24, True),
                        ("constW2", 4, 4, 24, True),
                        ("const", 6, 8, 24, True),
                        ("mixed", 4, 4, 24, False)]


@pytest.mark.parametrize("workload,aw,dw,depth,asserted", HYBRID_CHAIN_CONFIGS,
                         ids=[f"{c[0]}-m{c[1]}n{c[2]}k{c[3]}"
                              for c in HYBRID_CHAIN_CONFIGS])
def bench_hybrid_chain_strash(benchmark, workload, aw, dw, depth, asserted):
    """Acceptance checks for the AIG-routed hybrid encoding (CI runs
    this): the solver-level clauses+vars of the routed encoding stay
    strictly below the raw-CNF hybrid baseline at every depth >= 8 on
    every workload, and on the recurring-address workloads the
    per-frame *new* clauses+vars additionally plateau to a bounded
    constant after warmup (the raw baseline grows linearly).  Verdict
    parity at depth 8 is re-checked on the full engine.  The per-frame
    series lands in the benchmark JSON (``extra_info``), which CI
    uploads as BENCH_ci.json."""

    def run_one(hybrid_strash):
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(HYBRID_CHAIN_WORKLOADS[workload](aw, dw), emitter)
        emm = EmmMemory(solver, unroller, "m", hybrid_strash=hybrid_strash)
        series = []
        for k in range(depth + 1):
            before = solver.num_clauses + solver.num_vars
            unroller.add_frame()
            emm.add_frame(k)
            series.append(solver.num_clauses + solver.num_vars - before)
        return solver, emm, series

    def run():
        return run_one(False), run_one(True)

    (s_off, e_off, cnf_off), (s_on, e_on, cnf_on) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    benchmark.extra_info["per_frame_cnf_on"] = cnf_on
    benchmark.extra_info["per_frame_cnf_off"] = cnf_off
    benchmark.extra_info["asserted"] = asserted
    w_ports = e_on.mem.num_write_ports
    size_on = sum(cnf_on)
    size_off = sum(cnf_off)
    drop = 1.0 - size_on / size_off
    plateau = "-"
    # Strictly below the raw baseline at *every* depth >= 8 — on every
    # workload: ITE lowering makes the routed chain win even when the
    # addresses are fresh each frame.
    for d in range(8, depth + 1):
        cum_on, cum_off = sum(cnf_on[:d + 1]), sum(cnf_off[:d + 1])
        assert cum_on < cum_off, (
            f"hybrid strash grew the CNF at depth {d}: "
            f"{cum_off} -> {cum_on} clauses+vars ({workload})")
    if asserted:
        # Bounded-constant per-frame growth after warmup vs linear off.
        tail = cnf_on[4:]
        assert max(tail) == min(tail), (
            f"per-frame clauses+vars did not plateau: {cnf_on}")
        plateau = str(tail[0])
        assert all(b > a for a, b in zip(cnf_off[4:], cnf_off[5:])), (
            f"raw baseline should grow linearly: {cnf_off}")
        # The EMM-attributed share of the plateau stays within the
        # closed-form bound (the remainder is the frame's design logic,
        # link clauses and fresh state variables — constant per frame).
        emm_frame_cls = e_on.counters.per_frame[-1]["clauses"]
        bound = accounting.hybrid_suffix_shared_frame_clauses(
            aw, dw, w_ports) * 2  # two read ports
        assert emm_frame_cls <= bound, (emm_frame_cls, bound)
        assert e_on.counters.chain_suffix_hits > 0
        assert e_on.counters.init_records_merged > 0
        assert e_off.counters.chain_suffix_hits == 0
        assert e_off.counters.strash_hits == 0
    # A/B verdict parity at depth 8 on the full engine, both workloads.
    design = HYBRID_CHAIN_WORKLOADS[workload](aw, dw)
    results = {hs: verify(design, "p",
                          BmcOptions(find_proof=False, max_depth=8,
                                     emm_hybrid_strash=hs))
               for hs in (True, False)}
    assert results[True].status == results[False].status == "bounded"
    assert results[True].depth == results[False].depth == 8
    common.add_row(
        "C5 — AIG-routed hybrid chain (hybrid_strash A/B, solver clauses+vars)",
        workload, aw, dw, w_ports, depth, size_off, size_on, f"{drop:.1%}",
        plateau, e_on.counters.chain_suffix_hits,
        e_on.counters.init_records_merged, "yes" if asserted else "no")


def bench_hybrid_vs_pure_gate(benchmark):
    aw, dw = 10, 32  # the paper's quicksort array widths

    def run():
        rows = []
        for depth in (5, 10, 20, 40):
            hybrid_clauses = accounting.cumulative_clauses(depth, 1, 1, aw, dw)
            hybrid_gates = accounting.cumulative_gates(depth, 1, 1)
            pure = sum(accounting.pure_gate_single_port(k, aw, dw)
                       for k in range(depth + 1))
            rows.append((depth, f"{hybrid_clauses}+{hybrid_gates}g",
                         pure, pure * 3))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for depth, hybrid, pure, pure3 in rows:
        common.add_row("A3 — hybrid vs pure-gate encoding (single port)",
                       depth, hybrid, pure, pure3)
