"""Experiments C1 + A3 — constraint-size accounting.

Verifies the paper's closed-form sizes at benchmark scale and reports the
cumulative growth curve (quadratic in depth, linear in W*R and in the
address/data widths), plus the Section 3 comparison of the hybrid
(CNF+gate) representation against a purely circuit-based encoding.
"""

import pytest

from benchmarks import common
from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design import Design
from repro.emm import EmmMemory, accounting
from repro.sat import Solver

common.table(
    "C1 — EMM constraint growth (measured vs formula)",
    ["AW", "DW", "R", "W", "depth", "clauses measured", "clauses formula",
     "gates measured", "gates formula"],
    note="formula: ((4m+2n+1)kW + 2n+1)R clauses and 3kWR gates per depth k",
)

common.table(
    "A3 — hybrid vs pure-gate encoding (single port)",
    ["depth", "hybrid clauses+gates", "pure-gate gates",
     "pure-gate as clauses (x3)"],
    note="Section 3: hybrid adds (4m+2n+1)k+2n+1 clauses + 3k gates; "
         "pure circuit needs (4m+2n+2)k+n gates (~3 CNF clauses each)",
)


def build(aw, dw, r_ports, w_ports):
    d = Design("growth")
    t = d.latch("t", 2, init=0)
    t.next = t.expr + 1
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=None)
    for w in range(w_ports):
        mem.write(w).connect(addr=d.input(f"wa{w}", aw),
                             data=d.input(f"wd{w}", dw),
                             en=d.input(f"we{w}", 1))
    for r in range(r_ports):
        mem.read(r).connect(addr=d.input(f"ra{r}", aw),
                            en=d.input(f"re{r}", 1))
    d.invariant("p", mem.read(0).data.ule((1 << dw) - 1))
    return d


CONFIGS = [
    (4, 4, 1, 1, 12),
    (6, 8, 1, 1, 12),
    (4, 4, 2, 1, 12),
    (4, 4, 1, 2, 12),
    (10, 32, 3, 1, 8),   # Industry II's port structure at paper widths
    (10, 8, 1, 1, 10),   # Industry I's memory shape at paper widths
]


@pytest.mark.parametrize("aw,dw,r,w,depth", CONFIGS,
                         ids=[f"m{c[0]}n{c[1]}R{c[2]}W{c[3]}" for c in CONFIGS])
def bench_constraint_growth(benchmark, aw, dw, r, w, depth):
    def run():
        solver = Solver(proof=False)
        emitter = CnfEmitter(Aig(), solver)
        unroller = Unroller(build(aw, dw, r, w), emitter)
        emm = EmmMemory(solver, unroller, "m", init_consistency=False)
        for k in range(depth + 1):
            unroller.add_frame()
            emm.add_frame(k)
        return emm.counters

    counters = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = (counters.addr_eq_clauses + counters.rd_clauses
                + counters.valid_clauses + counters.init_rd_clauses)
    formula = accounting.cumulative_clauses(depth, w, r, aw, dw)
    gates_formula = accounting.cumulative_gates(depth, w, r)
    assert measured == formula, (measured, formula)
    assert counters.excl_gates == gates_formula
    common.add_row("C1 — EMM constraint growth (measured vs formula)",
                   aw, dw, r, w, depth, measured, formula,
                   counters.excl_gates, gates_formula)


def bench_hybrid_vs_pure_gate(benchmark):
    aw, dw = 10, 32  # the paper's quicksort array widths

    def run():
        rows = []
        for depth in (5, 10, 20, 40):
            hybrid_clauses = accounting.cumulative_clauses(depth, 1, 1, aw, dw)
            hybrid_gates = accounting.cumulative_gates(depth, 1, 1)
            pure = sum(accounting.pure_gate_single_port(k, aw, dw)
                       for k in range(depth + 1))
            rows.append((depth, f"{hybrid_clauses}+{hybrid_gates}g",
                         pure, pure * 3))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for depth, hybrid, pure, pure3 in rows:
        common.add_row("A3 — hybrid vs pure-gate encoding (single port)",
                       depth, hybrid, pure, pure3)
