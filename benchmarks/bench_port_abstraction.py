"""Experiment A4 — port-level abstraction ablation (Section 4.3).

"We perform similar abstraction for each memory port."  The invariant of
Industry Design II (``G(WE=0 or WD=0)``) does not depend on any *read*
port of the table memory, so the EMM constraints of all three read ports
can be dropped; the write-path constraints alone carry the proof.  This
bench compares the backward-induction proof of that invariant with all
read ports modeled vs. none, reporting the EMM constraint budget and the
solve time.
"""

from dataclasses import replace

from benchmarks import common
from repro.bmc import bmc3, verify
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)

common.table(
    "A4 — read-port abstraction on Industry-II analog (invariant proof)",
    ["read ports kept", "EMM clauses", "EMM gates", "proof", "method",
     "depth", "time"],
    note="the invariant G(WE=0 or WD=0) needs no read port; dropping all "
         "three shrinks the constraint budget at equal strength",
)

PARAMS = MultiportSocParams() if not common.is_full() else \
    MultiportSocParams(addr_width=8, data_width=16)


def bench_port_abstraction_full(benchmark):
    opts = bmc3(max_depth=10, pba=False)

    def run():
        return verify(build_multiport_soc(PARAMS), "we_or_wd_zero", opts)

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r.proved, r.describe()
    common.add_row(
        "A4 — read-port abstraction on Industry-II analog (invariant proof)",
        "all 3", r.stats.emm_clauses, r.stats.emm_gates, r.status, r.method,
        r.depth, f"{r.stats.wall_time_s:.2f}s")


def bench_port_abstraction_dropped(benchmark):
    opts = replace(bmc3(max_depth=10, pba=False),
                   kept_read_ports={"table": frozenset()})

    def run():
        return verify(build_multiport_soc(PARAMS), "we_or_wd_zero", opts)

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert r.proved, r.describe()
    common.add_row(
        "A4 — read-port abstraction on Industry-II analog (invariant proof)",
        "none", r.stats.emm_clauses, r.stats.emm_gates, r.status, r.method,
        r.depth, f"{r.stats.wall_time_s:.2f}s")
