"""Experiment C6 — shared encoding sessions and the sharded service.

Quantifies what the EncodingSession/scheduler split buys on a
multi-property design (the Industry II analog, 8 reachability
properties over one 3-read-port memory):

* **C6** — N properties on one shared session encode one unrolled CNF;
  the CI gate asserts the shared session's total solver clauses+vars
  stay strictly below the *sum* of N per-property fresh engines, with
  verdict parity per property.  Wall-clock is reported but not gated —
  pure-Python solve times are too noisy for CI thresholds.
* **C6b** — the :class:`repro.service.VerificationService` front-end at
  ``jobs=1`` (inline, shared cache) and ``jobs=2`` (process pool, one
  session cache per worker), report-only wall-clock plus a verdict
  parity check between the two.
"""

import time

from benchmarks import common
from repro.bmc import BmcOptions, EncodingSession, verify, verify_many
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.service import VerificationService

common.table(
    "C6 — shared session vs per-property fresh engines (multiport SoC)",
    ["props", "depth", "shared cls+vars", "fresh sum", "ratio",
     "shared wall", "fresh wall"],
    note="one EncodingSession serves all properties (each adds only its "
         "P_i literals); 'fresh sum' totals N independent engines.  The "
         "clauses+vars ratio is the CI gate; wall-clock is report-only",
)

common.table(
    "C6b — verification service wall-clock (report-only)",
    ["props", "depth", "jobs", "wall", "statuses"],
    note="jobs=1 runs inline on one SessionCache; jobs=2 shards "
         "properties across worker processes with per-worker caches",
)

#: CI-friendly scale of the Industry II analog; the paper's AW=12/DW=32
#: shape is exercised by bench_industry2.py.
SOC = MultiportSocParams(addr_width=3, data_width=4, counter_width=3,
                         num_properties=4)

#: Module-level so the service can pickle it for worker processes.
def build_soc():
    return build_multiport_soc(SOC)


OPTS = BmcOptions(find_proof=True, pba=False, max_depth=6)


def bench_session_sharing(benchmark):
    """CI gate: shared-session clauses+vars < sum of fresh engines."""
    names = sorted(build_soc().properties)

    def run():
        design = build_soc()
        session = EncodingSession(design, OPTS)
        t0 = time.monotonic()
        shared = verify_many(design, options=OPTS, session=session)
        t_shared = time.monotonic() - t0
        shared_size = session.clause_var_total()
        fresh = {}
        fresh_sum = 0
        t0 = time.monotonic()
        for name in names:
            r = verify(build_soc(), name, OPTS)
            fresh[name] = r
            fresh_sum += r.stats.sat_clauses + r.stats.sat_vars
        t_fresh = time.monotonic() - t0
        return shared, shared_size, t_shared, fresh, fresh_sum, t_fresh

    shared, shared_size, t_shared, fresh, fresh_sum, t_fresh = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    for name, r in shared.items():
        f = fresh[name]
        assert (r.status, r.depth, r.method) == \
            (f.status, f.depth, f.method), name
    assert shared_size < fresh_sum, (
        f"shared session did not amortize the encoding: "
        f"{shared_size} clauses+vars vs {fresh_sum} across "
        f"{len(names)} fresh engines")
    ratio = shared_size / fresh_sum
    benchmark.extra_info["num_properties"] = len(names)
    benchmark.extra_info["shared_clauses_vars"] = shared_size
    benchmark.extra_info["fresh_sum_clauses_vars"] = fresh_sum
    benchmark.extra_info["share_ratio"] = round(ratio, 4)
    common.add_row(
        "C6 — shared session vs per-property fresh engines (multiport SoC)",
        len(names), OPTS.max_depth, shared_size, fresh_sum, f"{ratio:.1%}",
        f"{t_shared:.1f}s", f"{t_fresh:.1f}s")


def bench_service_jobs(benchmark):
    """Inline vs pooled service runs agree; wall-clock is report-only."""

    def run():
        out = {}
        for jobs in (1, 2):
            t0 = time.monotonic()
            with VerificationService(build_soc, OPTS, jobs=jobs) as svc:
                results = svc.run()
            out[jobs] = (time.monotonic() - t0, results)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    (t1, r1), (t2, r2) = out[1], out[2]
    verdicts = {n: (r.status, r.depth) for n, r in r1.items()}
    assert verdicts == {n: (r.status, r.depth) for n, r in r2.items()}
    benchmark.extra_info["wall_jobs1_s"] = round(t1, 3)
    benchmark.extra_info["wall_jobs2_s"] = round(t2, 3)
    statuses = ",".join(f"{n}={s}" for n, (s, _) in sorted(verdicts.items()))
    for jobs, t in ((1, t1), (2, t2)):
        common.add_row("C6b — verification service wall-clock (report-only)",
                       len(r1), OPTS.max_depth, jobs, f"{t:.1f}s", statuses)
