"""Benchmark session hooks: print the paper-vs-measured report at the end."""

from benchmarks import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = common.render_all()
    if text.strip():
        terminalreporter.write_line("")
        terminalreporter.write_line(
            "================ paper-vs-measured report ================")
        for line in text.splitlines():
            terminalreporter.write_line(line)
