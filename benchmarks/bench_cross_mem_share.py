"""Experiment C10 — cross-memory comparator sharing on miters.

The session-scoped comparator registry (``emm_cross_mem_share``,
PR 10) answers one memory's address comparisons from another memory's
cache entries whenever their cones lower to the same SAT literals.  The
headline workload is the miter of two memory copies
(``design/equiv.py``): both sides see identical input-driven address
cones, so nearly every comparator of the ``b::`` copy is a cross-memory
hit against the ``a::`` copy's entries.

* **C10** — per-depth encoding sweep on the two-copy miter.  The CI
  gate asserts the shared registry's solver clauses+vars stay
  *strictly below* the per-memory-cache baseline at every measured
  depth >= 8, and that the miter actually shares
  (``cross_mem_cmp_hits > 0`` — a zero means the registry went dead).
* **C10b** — observable parity on the same miter: verdict, depth,
  trace validity and PBA latch/memory reasons must be identical with
  sharing on and off, and the PBA core must attribute the shared
  comparator clauses to *both* memory copies (the multi-label story).
* **C10c** — the single-memory ``multiport_soc`` case study,
  report-only: with one memory there is nothing to share across, so
  the registry must be a no-op (identical sizes, zero cross hits).
"""

from benchmarks import common
from repro.bmc import BmcOptions, EncodingSession, verify
from repro.casestudies.multiport_soc import (MultiportSocParams,
                                             build_multiport_soc)
from repro.design import Design, build_miter

common.table(
    "C10 — cross-memory comparator sharing on the two-copy miter",
    ["depth", "shared cls+vars", "per-mem cls+vars", "ratio", "x-hits"],
    note="one SharedComparatorTables registry across the miter's a::/b:: "
         "memory copies vs the per-memory cache baseline; strictly-below "
         "at every depth >= 8 is the CI gate",
)

common.table(
    "C10c — single-memory SoC under the registry (report-only)",
    ["share", "depth", "cls+vars", "x-hits", "statuses"],
    note="one memory: the session registry has nothing to share across, "
         "so sizes must not move",
)


def build_memory_unit():
    """One multi-port memory read/written through input-driven cones —
    the shape whose miter shares comparators across the copies."""
    d = Design("unit")
    wa = d.input("wa", 3)
    wd = d.input("wd", 4)
    we = d.input("we", 1)
    ra0 = d.input("ra0", 3)
    mem = d.memory("m", addr_width=3, data_width=4, init=0, read_ports=3)
    mem.write(0).connect(addr=wa, data=wd, en=we)
    r0 = mem.read(0).connect(addr=ra0, en=1)
    # Recurring cones: a constant address and a reuse of the write
    # address, so the per-memory cache is already working hard and the
    # cross-memory win is measured *on top of* it.
    r1 = mem.read(1).connect(addr=d.const(5, 3), en=1)
    r2 = mem.read(2).connect(addr=wa, en=1)
    out = d.latch("out", 4, init=0)
    out.next = r0 ^ r1 ^ r2
    return d, out.expr


def build_miter_workload():
    a, oa = build_memory_unit()
    b, ob = build_memory_unit()
    return build_miter(a, b, [(oa, ob)])


#: Gate depths: strictly-below must hold at every depth >= 8.
DEPTHS = list(range(2, 25, 2)) if common.is_full() else list(range(2, 17, 2))
GATE_DEPTH = 8


def opts(share, **kw):
    return BmcOptions(emm_cross_mem_share=share, **kw)


def bench_cross_mem_miter_sizes(benchmark):
    """CI gate: registry clauses+vars strictly below per-memory at d>=8."""

    def run():
        series = {}
        for share in (True, False):
            session = EncodingSession(build_miter_workload(), opts(share))
            sizes = []
            for depth in DEPTHS:
                session.extend_to(depth)
                sizes.append(session.clause_var_total())
            hits = (session.cmp_registry.cross_mem_hits
                    if session.cmp_registry is not None else 0)
            series[share] = (sizes, hits)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    (shared_sizes, shared_hits), (base_sizes, base_hits) = \
        series[True], series[False]
    assert base_hits == 0
    assert shared_hits > 0, (
        "cross-memory sharing went dead on the miter workload: "
        "0 registry hits (every a::/b:: cone should coincide)")
    for depth, on, off in zip(DEPTHS, shared_sizes, base_sizes):
        if depth >= GATE_DEPTH:
            assert on < off, (
                f"cross-memory registry stopped paying at depth {depth}: "
                f"{on} clauses+vars vs per-memory baseline {off}")
        common.add_row(
            "C10 — cross-memory comparator sharing on the two-copy miter",
            depth, on, off, f"{on / off:.1%}",
            shared_hits if depth == DEPTHS[-1] else "")
    benchmark.extra_info["depths"] = DEPTHS
    benchmark.extra_info["shared_clauses_vars"] = shared_sizes
    benchmark.extra_info["per_memory_clauses_vars"] = base_sizes
    benchmark.extra_info["cross_mem_hits"] = shared_hits
    benchmark.extra_info["final_ratio"] = round(
        shared_sizes[-1] / base_sizes[-1], 4)


def bench_cross_mem_miter_verdicts(benchmark):
    """CI gate: sharing is invisible to every observable outcome, and
    the PBA core names both memory copies through shared clauses."""

    def run():
        out = {}
        for share in (True, False):
            # Bounded falsification (no induction): the equiv proof
            # closes at depth 1 by forward induction, before any core
            # ever walks the forwarding clauses — the bounded run's
            # UNSAT cores are the ones that must name both memories.
            out[share] = verify(build_miter_workload(), "equiv",
                                opts(share, find_proof=False, pba=True,
                                     max_depth=10))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    on, off = out[True], out[False]
    assert (on.status, on.depth, on.method) == \
        (off.status, off.depth, off.method), (on.status, off.status)
    assert on.trace_validated == off.trace_validated
    assert on.latch_reasons == off.latch_reasons
    assert on.memory_reasons == off.memory_reasons
    assert on.stats.cross_mem_cmp_hits > 0
    assert off.stats.cross_mem_cmp_hits == 0
    assert on.stats.core_unlabeled == 0
    # The multi-label regression: cores through shared comparators must
    # attribute them to both copies, never just the first emitter's.
    mems = on.memory_reasons[-1]
    assert {"a::m", "b::m"} <= mems, mems
    benchmark.extra_info["status"] = on.status
    benchmark.extra_info["cross_mem_cmp_hits"] = on.stats.cross_mem_cmp_hits


def bench_cross_mem_soc(benchmark):
    """Report-only: a single-memory design must not move."""
    soc = MultiportSocParams(addr_width=3, data_width=4, counter_width=3,
                             num_properties=2)

    def run():
        out = {}
        for share in (True, False):
            design = build_multiport_soc(soc)
            name = sorted(design.properties)[0]
            out[share] = verify(design, name,
                                opts(share, find_proof=False, max_depth=8))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    on, off = out[True], out[False]
    assert (on.status, on.depth) == (off.status, off.depth)
    assert on.stats.cross_mem_cmp_hits == 0
    assert on.stats.sat_clauses + on.stats.sat_vars \
        == off.stats.sat_clauses + off.stats.sat_vars
    for share, r in (("on", on), ("off", off)):
        common.add_row(
            "C10c — single-memory SoC under the registry (report-only)",
            share, r.depth, r.stats.sat_clauses + r.stats.sat_vars,
            r.stats.cross_mem_cmp_hits, r.status)
    benchmark.extra_info["soc_clauses_vars"] = (on.stats.sat_clauses
                                                + on.stats.sat_vars)
