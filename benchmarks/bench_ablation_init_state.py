"""Experiment A2 — ablation: equation (6) initial-state consistency.

Section 4.2's claim: without the pairwise consistency constraints on the
fresh symbolic words, the verification model has extra behaviours — so
induction proofs of properties that depend on the arbitrary initial
memory fail (spurious counterexamples appear).  With them, the quicksort
properties admit forward-induction proofs.

Also measures the constraint overhead the consistency pairs add.
"""

import pytest

from benchmarks import common
from repro.bmc import BmcOptions, verify
from repro.casestudies.quicksort import QuicksortParams, build_quicksort

common.table(
    "A2 — equation (6) initial-state consistency ablation",
    ["config", "eq(6)", "outcome", "time", "EMM clauses"],
    note="without eq(6), arbitrary-init proofs degrade to spurious CEXs",
)

PARAMS = QuicksortParams(n=2, addr_width=3, data_width=3, stack_addr_width=3)
DEPTH = 40


@pytest.mark.parametrize("consistency", [True, False], ids=["eq6-on", "eq6-off"])
def bench_init_consistency_quicksort(benchmark, consistency):
    opts = BmcOptions(find_proof=True, init_consistency=consistency,
                      max_depth=DEPTH, validate_cex=True)

    def run():
        return verify(build_quicksort(PARAMS), "P1", opts)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if consistency:
        assert result.proved, result.describe()
        outcome = f"proved ({result.method}, depth {result.depth})"
    else:
        # Extra behaviours: either a spurious CEX shows up or no proof is
        # possible within the bound — never a sound proof of P1.
        if result.falsified:
            assert result.trace_validated is False, "CEX must be spurious"
            outcome = f"SPURIOUS cex at depth {result.depth}"
        else:
            outcome = result.status
    common.add_row(
        "A2 — equation (6) initial-state consistency ablation",
        f"quicksort N={PARAMS.n} P1", "on" if consistency else "off",
        outcome, f"{result.stats.wall_time_s:.1f}s",
        result.stats.emm_clauses)
