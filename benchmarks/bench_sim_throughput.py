"""Vectorized vs scalar simulation throughput (trials per second).

The vector simulator exists for one reason: replaying *many* stimulus
vectors — fuzz-farm batches, shrink candidates, revalidation sweeps —
far faster than looping the scalar interpreter.  This bench measures
both engines on identical stimulus batches and **gates** on the speedup
at batch >= 256: the vectorized path must deliver at least 10x the
scalar trials/sec, else the whole batching machinery is dead weight.
"""

import random
import time

import pytest

pytest.importorskip("numpy")

from benchmarks import common
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.sim import SimulatorOracle, VectorOracle
from repro.sim.fuzzfarm import build_fuzz_netlist, random_stimulus

common.table(
    "S1 — vector vs scalar simulation throughput",
    ["workload", "mode", "batch", "cycles", "scalar trials/s",
     "vector trials/s", "speedup"],
    note="batched NumPy evaluation vs the scalar reference interpreter on "
         "identical stimulus.  'check' is the farm/shrinker hot path "
         "(verdicts only, no trace extraction) and carries the >=10x "
         "gate; 'replay' materializes full per-lane traces",
)

#: The CI gate: minimum vector-over-scalar verdict-checking speedup at
#: batch >= 256 — the fuzz farm's and the batched shrinker's hot path.
MIN_SPEEDUP = 10.0


def _fifo():
    return build_fifo(FifoParams(addr_width=3, data_width=4))


def _fuzz():
    return build_fuzz_netlist(3)


WORKLOADS = {"fifo": _fifo, "fuzz-netlist": _fuzz}

#: Scalar lanes actually interpreted (the full batch would dominate the
#: bench run); trials/sec extrapolates from this sample.
SCALAR_SAMPLE = 32


def _stimuli(design, batch, cycles, seed):
    rng = random.Random(seed)
    return [random_stimulus(design, rng, cycles) for _ in range(batch)]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def bench_sim_throughput(benchmark, workload):
    design = WORKLOADS[workload]()
    batch, cycles = 256, 16
    prop = sorted(design.properties)[0]
    stimuli = _stimuli(design, batch, cycles, seed=7)
    sample = stimuli[:SCALAR_SAMPLE]
    scalar = SimulatorOracle(design)
    vector = VectorOracle(design)
    # Warm the compiled plan cache so the bench measures the sweep, not
    # the one-time compilation.
    vector.replay_batch(stimuli[:2])

    def run():
        t0 = time.perf_counter()
        scalar_verdicts = scalar.check_batch(prop, sample)
        t1 = time.perf_counter()
        vector_verdicts = vector.check_batch(prop, stimuli)
        t2 = time.perf_counter()
        scalar_traces = scalar.replay_batch(sample)
        t3 = time.perf_counter()
        vector_traces = vector.replay_batch(stimuli)
        t4 = time.perf_counter()
        return (scalar_verdicts, vector_verdicts, scalar_traces,
                vector_traces, [t1 - t0, t2 - t1, t3 - t2, t4 - t3])

    scalar_verdicts, vector_verdicts, scalar_traces, vector_traces, times = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Same semantics before we compare speed.
    for ref, got in zip(scalar_verdicts, vector_verdicts):
        assert (ref.failed, ref.cycle) == (got.failed, got.cycle)
    for ref, got in zip(scalar_traces, vector_traces):
        assert ref.cycles == got.cycles

    speedups = {}
    for mode, t_scalar, t_vector in (("check", times[0], times[1]),
                                     ("replay", times[2], times[3])):
        scalar_tps = SCALAR_SAMPLE / t_scalar
        vector_tps = batch / t_vector
        speedups[mode] = vector_tps / scalar_tps
        common.add_row(
            "S1 — vector vs scalar simulation throughput",
            workload, mode, batch, cycles, f"{scalar_tps:,.0f}",
            f"{vector_tps:,.0f}", f"{speedups[mode]:.1f}x")
    assert speedups["check"] >= MIN_SPEEDUP, (
        f"{workload}: vectorized checking only {speedups['check']:.1f}x "
        f"over scalar at batch {batch} (gate: {MIN_SPEEDUP}x)")
