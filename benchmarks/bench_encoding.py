"""Experiment A3b — hybrid vs pure-gate EMM encodings, measured at solve.

`bench_constraint_growth.bench_hybrid_vs_pure_gate` compares the two
representations by their closed-form sizes (the paper's Section 3
numbers).  This bench runs both encodings end to end on real workloads
— same verdicts required, sizes and times reported — so the hybrid
representation's advantage is measured, not just counted.
"""

from dataclasses import replace

import pytest

from benchmarks import common
from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.cpu import CpuParams, build_cpu, memcpy_program
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.quicksort import QuicksortParams, build_quicksort

common.table(
    "A3b — hybrid vs gate EMM encodings (measured at solve)",
    ["workload", "encoding", "verdict", "depth", "SAT clauses", "strash h/f",
     "time"],
    note="Section 3's closing comparison run for real: all encodings must "
         "agree; the hybrid one keeps the CNF smaller, and structural "
         "hashing closes most of the gate encoding's gap",
)


def _quicksort():
    d = build_quicksort(QuicksortParams(n=2, addr_width=3, data_width=3,
                                        stack_addr_width=3))
    return d, "P2", bmc3(max_depth=30, pba=False)


def _fifo():
    d = build_fifo(FifoParams(addr_width=3, data_width=8))
    return d, "data_integrity", BmcOptions(find_proof=False, max_depth=10)


def _cpu():
    p = CpuParams(pc_width=5, addr_width=3, data_width=4)
    d = build_cpu(memcpy_program(2, src=0, dst=4, params=p), p)
    return d, "halted_acc_one", bmc3(max_depth=20, pba=False)


WORKLOADS = {"quicksort-P2": _quicksort, "fifo-integrity": _fifo,
             "cpu-memcpy": _cpu}


#: (label, emm_encoding, strash) rows measured per workload.  The
#: unstrashed gate run is the baseline CI's bench-smoke job gates on:
#: strash must never make the gate encoding bigger.
VARIANTS = [("hybrid", "hybrid", True),
            ("gates", "gates", True),
            ("gates-nostrash", "gates", False)]


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def bench_encoding(benchmark, workload):
    def run():
        out = {}
        for label, encoding, strash in VARIANTS:
            design, prop, opts = WORKLOADS[workload]()
            out[label] = verify(design, prop,
                                replace(opts, emm_encoding=encoding,
                                        strash=strash))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    hybrid, gates = results["hybrid"], results["gates"]
    baseline = results["gates-nostrash"]
    assert hybrid.status == gates.status == baseline.status, (
        hybrid.status, gates.status, baseline.status)
    assert hybrid.depth == gates.depth == baseline.depth
    # The strashed gate encoding must never exceed the unstrashed one.
    assert gates.stats.sat_clauses <= baseline.stats.sat_clauses, (
        gates.stats.sat_clauses, baseline.stats.sat_clauses)
    assert gates.stats.sat_vars <= baseline.stats.sat_vars
    for label, _, _ in VARIANTS:
        r = results[label]
        common.add_row(
            "A3b — hybrid vs gate EMM encodings (measured at solve)",
            workload, label, r.status, r.depth, r.stats.sat_clauses,
            f"{r.stats.strash_hits}h/{r.stats.strash_folds}f",
            f"{r.stats.wall_time_s:.2f}s")
