"""Experiment A3b — hybrid vs pure-gate EMM encodings, measured at solve.

`bench_constraint_growth.bench_hybrid_vs_pure_gate` compares the two
representations by their closed-form sizes (the paper's Section 3
numbers).  This bench runs both encodings end to end on real workloads
— same verdicts required, sizes and times reported — so the hybrid
representation's advantage is measured, not just counted.
"""

from dataclasses import replace

import pytest

from benchmarks import common
from repro.bmc import BmcOptions, bmc3, verify
from repro.casestudies.cpu import CpuParams, build_cpu, memcpy_program
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.quicksort import QuicksortParams, build_quicksort

common.table(
    "A3b — hybrid vs gate EMM encodings (measured at solve)",
    ["workload", "encoding", "verdict", "depth", "SAT clauses", "time"],
    note="Section 3's closing comparison run for real: both encodings "
         "must agree; the hybrid one keeps the CNF smaller",
)


def _quicksort():
    d = build_quicksort(QuicksortParams(n=2, addr_width=3, data_width=3,
                                        stack_addr_width=3))
    return d, "P2", bmc3(max_depth=30, pba=False)


def _fifo():
    d = build_fifo(FifoParams(addr_width=3, data_width=8))
    return d, "data_integrity", BmcOptions(find_proof=False, max_depth=10)


def _cpu():
    p = CpuParams(pc_width=5, addr_width=3, data_width=4)
    d = build_cpu(memcpy_program(2, src=0, dst=4, params=p), p)
    return d, "halted_acc_one", bmc3(max_depth=20, pba=False)


WORKLOADS = {"quicksort-P2": _quicksort, "fifo-integrity": _fifo,
             "cpu-memcpy": _cpu}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def bench_encoding(benchmark, workload):
    def run():
        out = {}
        for encoding in ("hybrid", "gates"):
            design, prop, opts = WORKLOADS[workload]()
            out[encoding] = verify(design, prop,
                                   replace(opts, emm_encoding=encoding))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    hybrid, gates = results["hybrid"], results["gates"]
    assert hybrid.status == gates.status, (hybrid.status, gates.status)
    assert hybrid.depth == gates.depth
    for encoding, r in results.items():
        common.add_row(
            "A3b — hybrid vs gate EMM encodings (measured at solve)",
            workload, encoding, r.status, r.depth, r.stats.sat_clauses,
            f"{r.stats.wall_time_s:.2f}s")
