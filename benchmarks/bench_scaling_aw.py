"""Experiment S1 — model size and BMC cost vs. memory size.

The paper's core claim, stated in the introduction and visible across
Tables 1-2: explicit modeling adds ``2**AW * DW`` state bits per memory,
so BMC cost explodes with memory size, while EMM constraints grow only
*linearly* with the address width (and quadratically with depth).  The
paper never plots this directly — its tables fix AW and scale N — so
this bench sweeps AW at a fixed workload and depth and reports both
model sizes and solve times.  The shape to reproduce: EMM's clause count
and runtime stay near-flat; the explicit model's grow with 2**AW.
"""

import pytest

from benchmarks import common
from repro.bmc import BmcOptions, verify
from repro.design import Design, expand_memories

common.table(
    "S1 — EMM vs Explicit as the memory grows (fixed depth 8)",
    ["AW", "words", "EMM clauses", "EMM dedup", "EMM time",
     "Explicit state bits", "Explicit clauses", "Explicit time"],
    note="EMM cost is linear in AW; explicit cost is linear in 2**AW "
         "(the paper's motivation for EMM); dedup = comparator cache "
         "hits / constant folds",
)

AWS = [3, 4, 5, 6, 7] if common.is_full() else [3, 4, 5, 6]
DW = 8
DEPTH = 8


def build(aw: int) -> Design:
    """Write-pointer walks the table; the checked value is unwritable."""
    d = Design(f"table_aw{aw}")
    ptr = d.latch("ptr", aw, init=0)
    ptr.next = ptr.expr + 1
    data = d.input("data", DW - 1)     # top data bit not drivable
    raddr = d.input("raddr", aw)
    mem = d.memory("table", addr_width=aw, data_width=DW, init=0)
    mem.write(0).connect(addr=ptr.expr, data=data.zext(DW), en=1)
    rd = mem.read(0).connect(addr=raddr, en=1)
    # Unreachable: bit 7 can be neither initial (init=0) nor written.
    d.reach("impossible", rd.uge(1 << (DW - 1)))
    return d


@pytest.mark.parametrize("aw", AWS, ids=[f"AW{a}" for a in AWS])
def bench_scaling_aw(benchmark, aw):
    opts = BmcOptions(find_proof=False, max_depth=DEPTH)

    def run():
        emm = verify(build(aw), "impossible", opts)
        explicit = verify(expand_memories(build(aw)), "impossible", opts)
        return emm, explicit

    emm, explicit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert emm.status == "bounded"
    assert explicit.status == "bounded"
    design = build(aw)
    explicit_bits = expand_memories(design).num_latch_bits()
    common.add_row(
        "S1 — EMM vs Explicit as the memory grows (fixed depth 8)",
        aw, 1 << aw, emm.stats.sat_clauses, common.fmt_dedup(emm),
        f"{emm.stats.wall_time_s:.2f}s", explicit_bits,
        explicit.stats.sat_clauses, f"{explicit.stats.wall_time_s:.2f}s")
    benchmark.extra_info["emm_clauses"] = emm.stats.sat_clauses
    benchmark.extra_info["explicit_clauses"] = explicit.stats.sat_clauses


def bench_scaling_shape(benchmark):
    """One-shot check of the growth *shape* across the sweep."""

    def run():
        opts = BmcOptions(find_proof=False, max_depth=DEPTH)
        rows = []
        for aw in (AWS[0], AWS[-1]):
            emm = verify(build(aw), "impossible", opts)
            explicit = verify(expand_memories(build(aw)), "impossible", opts)
            rows.append((aw, emm.stats.sat_clauses,
                         explicit.stats.sat_clauses))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (aw_lo, emm_lo, exp_lo), (aw_hi, emm_hi, exp_hi) = rows
    # EMM grows sub-linearly in the word count; explicit roughly with it.
    words_ratio = (1 << aw_hi) / (1 << aw_lo)
    assert emm_hi / emm_lo < words_ratio / 2, \
        f"EMM clauses grew too fast: {emm_lo} -> {emm_hi}"
    assert exp_hi / exp_lo > words_ratio / 4, \
        f"explicit clauses grew too slowly: {exp_lo} -> {exp_hi}"
