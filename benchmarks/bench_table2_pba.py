"""Experiment T2 — Table 2: quicksort P2 with proof-based abstraction.

Paper's Table 2 (P2 only; stability depth 10):

    N  EMM+PBA FF(orig)  PBA s  proof s  MB | Explicit FF(orig)  PBA s ...
    3  91 (167)          10     5        13 | 293 (37K)          293
    4  93 (167)          38     145      40 | 2858 (37K)         2858
    5  91 (167)          351    2316     116| - (timeout)

The shape to reproduce: PBA's stable latch-reason set excludes every
control latch of the *array* memory, so the whole array module is
abstracted away; the proof on the reduced model is much cheaper than the
full-model proof of Table 1; explicit+PBA stays far behind.
"""

import pytest

from benchmarks import common
from repro.bmc import BmcOptions
from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.design import expand_memories
from repro.pba import verify_with_pba

PAPER = {3: ("91 (167)", 10, 5, 13), 4: ("93 (167)", 38, 145, 40),
         5: ("91 (167)", 351, 2316, 116)}

common.table(
    "Table 2 — Quick Sort P2 with EMM+PBA",
    ["N", "paper FF(orig)", "FF(orig)", "array abstracted?", "PBA time",
     "proof", "proof time", "Explicit+PBA"],
    note="the array memory module must drop out of the model entirely",
)

# N=2 degenerates (a single two-element partition, no recursion): its
# unsat cores incidentally pull in `arr_raddr`, so the array is *not*
# abstracted — the paper's Table 2 phenomenon needs N >= 3.
NS = [3, 4, 5] if common.is_full() else [3]
# The paper uses stability depth 10; the quick tier trims it (and the
# abstraction bound) to keep the proof-logging phase minutes, not hours.
STABILITY = 10 if common.is_full() else 6
ABS_DEPTH = 40 if common.is_full() else 26


def params_for(n: int) -> QuicksortParams:
    return QuicksortParams(n=n, addr_width=3, data_width=3,
                           stack_addr_width=max(3, (2 * n).bit_length()))


@pytest.mark.parametrize("n", NS, ids=[f"N{n}" for n in NS])
def bench_table2(benchmark, n):
    paper_ff, __, paper_proof_s, __ = PAPER.get(n, ("-", "-", "-", "-"))

    def run():
        # Raw unsat cores are sufficient but not minimal; like the paper's
        # flow we shrink the stable reason set (here by attempted deletion
        # at memory granularity) so the irrelevant array module drops out.
        emm = verify_with_pba(
            build_quicksort(params_for(n)), "P2",
            stability_depth=STABILITY, abstraction_max_depth=ABS_DEPTH,
            proof_max_depth=120, minimize="memory")
        explicit = verify_with_pba(
            expand_memories(build_quicksort(params_for(n))), "P2",
            stability_depth=STABILITY, abstraction_max_depth=ABS_DEPTH,
            proof_max_depth=120,
            options=BmcOptions(use_emm=False,
                               timeout_s=common.EXPLICIT_TIMEOUT_S))
        return emm, explicit

    emm, explicit = benchmark.pedantic(run, rounds=1, iterations=1)
    phase = emm.phase
    assert emm.status == "proof", emm.status
    assert "arr" in phase.abstracted_memories
    benchmark.extra_info["kept_latch_bits"] = phase.kept_latch_bits
    benchmark.extra_info["abstracted"] = sorted(phase.abstracted_memories)
    ex_phase = explicit.phase
    ex_note = (f"{ex_phase.kept_latch_bits}/{ex_phase.orig_latch_bits} bits, "
               f"{explicit.status}")
    common.add_row(
        "Table 2 — Quick Sort P2 with EMM+PBA",
        n, paper_ff,
        f"{phase.kept_latch_bits} ({phase.orig_latch_bits})",
        "yes" if "arr" in phase.abstracted_memories else "NO",
        f"{phase.wall_time_s:.1f}s",
        emm.status,
        f"{emm.proof_result.stats.wall_time_s:.1f}s (paper {paper_proof_s}s)",
        ex_note)
