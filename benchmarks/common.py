"""Shared infrastructure for the reproduction benchmarks.

Every benchmark registers rows into a session-global report; the conftest
prints the paper-vs-measured tables after pytest-benchmark's own summary.

Scaling: the paper ran AW=10..12 memories on a 2.8 GHz Xeon with 3-hour
timeouts.  The pure-Python stack runs the same algorithms at reduced
address/data widths by default; set ``EMM_BENCH_SCALE=full`` for larger
configurations (expect long runtimes, faithfully to the paper's own
multi-hour numbers).
"""

from __future__ import annotations

import os
from collections import defaultdict

#: quick = CI-friendly minutes; full = closer to paper scale (much slower).
SCALE = os.environ.get("EMM_BENCH_SCALE", "quick")

#: Per-run wall-clock budget (seconds) standing in for the paper's 3 hours.
EXPLICIT_TIMEOUT_S = float(os.environ.get("EMM_BENCH_TIMEOUT", "60"))

_REPORTS: dict[str, list[list[str]]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}
_NOTES: dict[str, str] = {}


def is_full() -> bool:
    return SCALE == "full"


def table(name: str, headers: list[str], note: str = "") -> None:
    """Declare a report table (idempotent)."""
    _HEADERS[name] = headers
    if note:
        _NOTES[name] = note


def add_row(name: str, *cells) -> None:
    _REPORTS[name].append([str(c) for c in cells])


def fmt_time(result) -> str:
    if result.status == "timeout":
        return f">{EXPLICIT_TIMEOUT_S:.0f}s (timeout)"
    return f"{result.stats.wall_time_s:.1f}s"


def fmt_mem(result) -> str:
    if result.status == "timeout":
        return "-"
    return f"{result.stats.sat_clauses}"


def fmt_dedup(result) -> str:
    """Comparator-dedup savings of a BMC run, as "<hits>h/<folds>f".

    ``hits`` counts EMM address comparisons answered from the per-memory
    comparator cache; ``folds`` counts comparisons that collapsed to a
    constant without emitting any clauses (see repro.emm.addrcmp).  Both
    are zero when the run used ``emm_addr_dedup=False`` or the workload
    never repeats an address cone.
    """
    if result.status == "timeout":
        return "-"
    s = result.stats
    return f"{s.emm_addr_eq_cache_hits}h/{s.emm_addr_eq_folded}f"


def render_all() -> str:
    out = []
    for name, headers in _HEADERS.items():
        rows = _REPORTS.get(name, [])
        if not rows:
            continue
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        sep = "-" * len(line)
        out.append("")
        out.append(f"== {name} ==")
        if name in _NOTES:
            out.append(_NOTES[name])
        out.append(line)
        out.append(sep)
        for row in rows:
            out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
