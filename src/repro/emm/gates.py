"""Pure gate-based EMM encoding — the paper's Section 3 comparison point.

The closing paragraph of Section 3 contrasts the hybrid CNF+gate
representation ("(4m+2n+1)k + 2n + 1 clauses and 3k gates") against "a
purely circuit-based representation" needing "(4m+2n+2)k + n gates".
:class:`repro.emm.forwarding.EmmMemory` implements the hybrid encoding;
this module implements the circuit one: equation (2)/(5) built entirely
out of AIG nodes —

    RD_{k,r}  =  OR_{j,w} (S_{j,k,w,r} ∧ WD_{j,w})  ∨  (PS_0 ∧ V)

— and forced true bit by bit through the Tseitin emitter.  Same
semantics, different SAT back-end shape; ``BmcOptions.emm_encoding``
selects between them and the A3 benchmark measures both.

One deliberate refinement: with gates, a disabled read (RE=0) collapses
the whole chain to 0, so RD is *forced to zero* rather than left free as
in the hybrid encoding.  That matches the reference simulator; designs
must not consume RD while RE is low under either encoding.
"""

from __future__ import annotations

from typing import Optional

from repro.aig import ops
from repro.aig.aig import FALSE
from repro.bmc.unroller import PortSignals, Unroller
from repro.emm.addrcmp import AddrComparator
from repro.emm.forwarding import EmmCounters, _ReadRecord
from repro.sat.solver import Solver


class GateEmmMemory:
    """Gate-encoded EMM constraints for one memory (drop-in for EmmMemory).

    Supports the same feature set as the hybrid encoder except the
    exclusivity ablation (the chain *is* the encoding here) and race
    monitoring.  Counter semantics: ``excl_gates`` counts every AIG node
    the encoding creates; clause counters count the CNF the emitter
    produces for the forced output bits and the initial-state machinery.
    """

    def __init__(self, solver: Solver, unroller: Unroller, mem_name: str,
                 exclusivity: bool = True, init_consistency: bool = True,
                 symbolic_init: bool = False,
                 a_meminit: Optional[int] = None,
                 kept_read_ports: Optional[frozenset[int]] = None,
                 check_races: bool = False,
                 init_registry: Optional[list] = None,
                 addr_dedup: bool = True) -> None:
        if check_races:
            raise ValueError("race monitoring is only available with the "
                             "hybrid EMM encoding")
        self.solver = solver
        self.unroller = unroller
        self.aig = unroller.aig
        self.emitter = unroller.emitter
        self.mem = unroller.design.memories[mem_name]
        self.name = mem_name
        self.init_consistency = init_consistency
        self.kept_read_ports = (frozenset(range(self.mem.num_read_ports))
                                if kept_read_ports is None
                                else frozenset(kept_read_ports))
        self.symbolic_init = symbolic_init or self.mem.init is None
        self.a_meminit = a_meminit
        has_known_init = self.mem.init is not None or bool(self.mem.init_words)
        if self.symbolic_init and has_known_init and a_meminit is None:
            raise ValueError("symbolic_init for a known-init memory needs "
                             "a_meminit")
        self.counters = EmmCounters()
        #: CNF-side comparator cache for the equation-(6) consistency
        #: pairs; per memory, like the hybrid encoder's (the AIG side of
        #: this encoding already structurally hashes its eq cones).
        self.addr_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup)
        self.race_lits: list[int] = []
        self._writes: list[list[PortSignals]] = []  # AIG-level, per frame
        self._reads: list[_ReadRecord] = (init_registry
                                          if init_registry is not None
                                          else [])
        self._frames = 0

    # -- EMM_Constraints(k), gate flavour ---------------------------------

    def add_frame(self, k: int) -> None:
        if k != self._frames:
            raise ValueError(f"frames must be added in order (expected "
                             f"{self._frames})")
        self._frames += 1
        un = self.unroller
        aig = self.aig
        em = self.emitter
        ands_before = aig.num_ands
        clauses_before = self.solver.num_clauses
        hits_before = aig.strash_hits + em.strash_hits
        folds_before = aig.strash_folds
        writes = [un.write_port_aig(self.name, w, k)
                  for w in range(self.mem.num_write_ports)]
        self._writes.append(writes)
        for r in range(self.mem.num_read_ports):
            if r not in self.kept_read_ports:
                continue
            self._constrain_read(k, r, un.read_port_aig(self.name, r, k))
        hits = aig.strash_hits + em.strash_hits - hits_before
        folds = aig.strash_folds - folds_before
        self.counters.excl_gates += aig.num_ands - ands_before
        self.counters.rd_clauses += self.solver.num_clauses - clauses_before
        self.counters.strash_hits += hits
        self.counters.strash_folds += folds
        frame = {"gates": aig.num_ands - ands_before,
                 "clauses": self.solver.num_clauses - clauses_before,
                 "strash_hits": hits,
                 "strash_folds": folds}
        self.counters.per_frame.append(frame)

    def _constrain_read(self, k: int, r: int, read: PortSignals) -> None:
        aig = self.aig
        n_bits = self.mem.data_width
        # Priority chain, latest frame / highest write port first, exactly
        # the order of equation (4).
        ps = read.en
        value = [FALSE] * n_bits
        for j in range(k - 1, -1, -1):
            for w in range(self.mem.num_write_ports - 1, -1, -1):
                wsig = self._writes[j][w]
                s = aig.and_gate(ops.eq_word(aig, read.addr, wsig.addr),
                                 wsig.en)
                if s == FALSE:
                    # Comparator folded FALSE (or WE is constant 0): the
                    # pair is dead — skip its chain and data gates.
                    continue
                s_excl = aig.and_gate(s, ps)
                ps = aig.and_gate(s ^ 1, ps)  # AIG literals negate via bit 0
                for b in range(n_bits):
                    value[b] = aig.or_(value[b],
                                       aig.and_gate(s_excl, wsig.data[b]))
        n_lit = ps  # no write matched: fall through to the initial state
        init_word = self._initial_word(read.addr, n_lit, read, k, r)
        for b in range(n_bits):
            value[b] = aig.or_(value[b], aig.and_(n_lit, init_word[b]))
        # Force RD = value (per bit) through the emitter.
        em = self.emitter
        em.set_label(("emm", self.name, "rd"))
        for b in range(n_bits):
            em.add_clause([em.sat_lit(aig.iff_(read.data[b], value[b]))])

    def _initial_word(self, addr: list[int], n_lit: int,
                      read: PortSignals, k: int, r: int) -> list[int]:
        """AIG word holding the initial memory contents at ``addr``."""
        aig = self.aig
        mem = self.mem
        n_bits = mem.data_width
        if not self.symbolic_init:
            word = ops.const_word(mem.init, n_bits)
            for a in sorted(mem.init_words):
                hit = ops.eq_word(aig, addr, ops.const_word(a, len(addr)))
                word = ops.mux_word(aig, hit,
                                    ops.const_word(mem.init_words[a], n_bits),
                                    word)
            return word
        # Section 4.2: fresh symbolic inputs, pinned under a_meminit when
        # the declared init is known, cross-read-consistent via eq. (6).
        em = self.emitter
        v_aig = [aig.new_input(f"{self.name}.V{r}.{b}@{k}")
                 for b in range(n_bits)]
        em.set_label(("emm", self.name, "init"))
        v_sat = [em.sat_lit(v) for v in v_aig]
        c = self.counters
        if mem.init is not None or mem.init_words:
            self._pin_symbolic(addr, v_sat)
        addr_sat = em.sat_word(addr)
        record = _ReadRecord(k, r, addr_sat, em.sat_lit(n_lit), v_sat)
        if self.init_consistency:
            self._consistency(record)
        self._reads.append(record)
        c.vars_added += n_bits
        return v_aig

    def _pin_symbolic(self, addr: list[int], v_sat: list[int]) -> None:
        """``a_meminit -> V = declared initial contents at addr``."""
        aig = self.aig
        em = self.emitter
        mem = self.mem
        c = self.counters
        e_sats = []
        for a in sorted(mem.init_words):
            hit = ops.eq_word(aig, addr, ops.const_word(a, len(addr)))
            e_sat = em.sat_lit(hit)
            e_sats.append(e_sat)
            value = mem.init_words[a]
            for b, v in enumerate(v_sat):
                lit = v if (value >> b) & 1 else -v
                em.add_clause([-self.a_meminit, -e_sat, lit])
                c.init_pin_clauses += 1
        if mem.init is not None:
            for b, v in enumerate(v_sat):
                lit = v if (mem.init >> b) & 1 else -v
                em.add_clause([-self.a_meminit] + e_sats + [lit])
                c.init_pin_clauses += 1

    def _consistency(self, new: _ReadRecord) -> None:
        """Equation (6) across all recorded fall-through reads."""
        em = self.emitter
        c = self.counters
        for old in self._reads:
            eq = self._sat_addr_eq(new.addr, old.addr)
            guard = [-eq, -new.n_lit, -old.n_lit]
            for vb_new, vb_old in zip(new.v_vars, old.v_vars):
                em.add_clause(guard + [-vb_new, vb_old])
                em.add_clause(guard + [vb_new, -vb_old])
                c.init_consistency_clauses += 2
            c.init_pairs += 1

    def _sat_addr_eq(self, a_bits: list[int], b_bits: list[int]) -> int:
        """CNF equality indicator over already-emitted SAT literals."""
        label = ("emm", self.name, "init_consistency")
        return self.addr_cmp.eq(a_bits, b_bits, label, self.counters,
                                "init_addr_eq_clauses")
