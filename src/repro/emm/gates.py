"""Pure gate-based EMM encoding — the paper's Section 3 comparison point.

The closing paragraph of Section 3 contrasts the hybrid CNF+gate
representation ("(4m+2n+1)k + 2n + 1 clauses and 3k gates") against "a
purely circuit-based representation" needing "(4m+2n+2)k + n gates".
:class:`repro.emm.forwarding.EmmMemory` implements the hybrid encoding;
this module implements the circuit one: equation (2)/(5) built entirely
out of AIG nodes and forced true bit by bit through the Tseitin emitter.
Same semantics, different SAT back-end shape; ``BmcOptions.emm_encoding``
selects between them and the A3 benchmark measures both.

Two chain constructions are available, selected by ``chain_share``:

* ``chain_share=True`` (default) builds the priority chain
  **oldest-write-first as a mux chain** — ``value' = mux(S_j, WD_j,
  value)`` seeded from the initial-state word, with the no-match/PS
  fall-through accumulated alongside and the read enable applied at the
  end.  Newer writes are muxed in later, so the newest matching write
  wins, exactly equation (4)'s priority.  The payoff is *cross-frame
  structure*: for a read whose address cone recurs (a constant status
  word, a stable pointer), frame k's entire chain is a strash **prefix**
  of frame k+1's — the structural-hashing layer (PR 2) answers every
  repeated stage from its table (counted in
  ``EmmCounters.chain_suffix_hits``) and per-frame growth collapses from
  the quadratic per-frame rebuild to O(one new stage).

* ``chain_share=False`` builds latest-write-first with explicit
  exclusive ``S``/``PS`` signals, exactly the order of equation (4) —
  the A/B baseline.  Every node of that chain depends on the *newest*
  write, so frame k+1 shares nothing with frame k and the quadratic
  part is rebuilt every depth.

Both constructions live in :mod:`repro.aig.ops`
(:func:`~repro.aig.ops.priority_mux_chain`,
:func:`~repro.aig.ops.exclusive_select_chain`) and are shared with the
AIG-routed hybrid encoder (``EmmMemory(hybrid_strash=True)``): the two
encodings differ in how the match signals and the read-data binding are
produced, not in the chain itself.

One deliberate refinement (both modes): with gates, a disabled read
(RE=0) collapses the chain to 0, so RD is *forced to zero* rather than
left free as in the hybrid encoding.  That matches the reference
simulator; designs must not consume RD while RE is low under either
encoding.
"""

from __future__ import annotations

from typing import Optional

from repro.aig import ops
from repro.aig.aig import FALSE, TRUE, lit_not
from repro.bmc.unroller import PortSignals, Unroller
from repro.emm.addrcmp import AddrComparator
from repro.emm.forwarding import (EmmCounters, InitReadRegistry, _ReadRecord,
                                  emit_init_consistency)
from repro.sat.solver import Solver

#: Clause-booking counters whose clauses the blanket frame delta must not
#: double-count (they are booked where they are emitted, inside the
#: initial-state machinery, while ``rd_clauses`` absorbs the remainder).
_INIT_CLAUSE_COUNTERS = ("init_pin_clauses", "init_addr_eq_clauses",
                         "init_consistency_clauses", "init_guard_clauses")


class GateEmmMemory:
    """Gate-encoded EMM constraints for one memory (drop-in for EmmMemory).

    Supports the same feature set as the hybrid encoder except the
    exclusivity ablation (the chain *is* the encoding here) and race
    monitoring.  Counter semantics: ``excl_gates`` counts every AIG node
    the encoding creates; ``rd_clauses`` counts the CNF the emitter
    produces for the forced output bits, with the initial-state machinery
    booked into its own ``init_*`` counters.
    """

    def __init__(self, solver: Solver, unroller: Unroller, mem_name: str,
                 exclusivity: bool = True, init_consistency: bool = True,
                 symbolic_init: bool = False,
                 a_meminit: Optional[int] = None,
                 kept_read_ports: Optional[frozenset[int]] = None,
                 check_races: bool = False,
                 init_registry: Optional[InitReadRegistry] = None,
                 addr_dedup: bool = True,
                 chain_share: bool = True,
                 hybrid_strash: bool = True,
                 cmp_registry=None) -> None:
        # ``hybrid_strash`` is accepted for constructor parity with the
        # hybrid encoder (the engine passes one kwarg set to whichever
        # class the options select); this encoding is always AIG-routed.
        if check_races:
            raise ValueError("race monitoring is only available with the "
                             "hybrid EMM encoding")
        self.solver = solver
        self.unroller = unroller
        self.aig = unroller.aig
        self.emitter = unroller.emitter
        self.mem = unroller.design.memories[mem_name]
        self.name = mem_name
        self.init_consistency = init_consistency
        self.kept_read_ports = (frozenset(range(self.mem.num_read_ports))
                                if kept_read_ports is None
                                else frozenset(kept_read_ports))
        self.symbolic_init = symbolic_init or self.mem.init is None
        self.a_meminit = a_meminit
        has_known_init = self.mem.init is not None or bool(self.mem.init_words)
        if self.symbolic_init and has_known_init and a_meminit is None:
            raise ValueError("symbolic_init for a known-init memory needs "
                             "a_meminit")
        self.counters = EmmCounters()
        #: CNF-side comparator cache for the equation-(6) consistency
        #: pairs; per memory like the hybrid encoder's, or session-shared
        #: through ``cmp_registry`` (the AIG side of this encoding
        #: already structurally hashes its eq cones across memories).
        self.addr_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup,
                                       registry=cmp_registry, owner=mem_name)
        self.chain_share = chain_share
        self._merge_init = chain_share and init_consistency
        #: Declared-init signature scoping the merge index (see
        #: :class:`~repro.emm.forwarding.InitReadRegistry`).
        self._init_sig = (self.mem.init,
                          tuple(sorted(self.mem.init_words.items())))
        self.race_lits: list[int] = []
        self._writes: list[list[PortSignals]] = []  # AIG-level, per frame
        self._reads: InitReadRegistry = (init_registry
                                         if init_registry is not None
                                         else InitReadRegistry())
        self._frames = 0

    # -- EMM_Constraints(k), gate flavour ---------------------------------

    def add_frame(self, k: int) -> None:
        if k != self._frames:
            raise ValueError(f"frames must be added in order (expected "
                             f"{self._frames})")
        self._frames += 1
        un = self.unroller
        aig = self.aig
        em = self.emitter
        before = self.counters.snapshot_ints()
        ands_before = aig.num_ands
        clauses_before = self.solver.num_clauses
        hits_before = aig.strash_hits + em.strash_hits
        folds_before = aig.strash_folds
        writes = [un.write_port_aig(self.name, w, k)
                  for w in range(self.mem.num_write_ports)]
        self._writes.append(writes)
        for r in range(self.mem.num_read_ports):
            if r not in self.kept_read_ports:
                continue
            self._constrain_read(k, r, un.read_port_aig(self.name, r, k))
        c = self.counters
        c.excl_gates += aig.num_ands - ands_before
        # The frame's CNF, minus the clauses the init machinery already
        # booked into its own counters (absorbed clauses were counted
        # there but never reached the solver, so they are added back).
        init_booked = sum(getattr(c, key) - before[key]
                          for key in _INIT_CLAUSE_COUNTERS)
        absorbed = c.absorbed - before["absorbed"]
        c.rd_clauses += (self.solver.num_clauses - clauses_before
                         - (init_booked - absorbed))
        c.strash_hits += aig.strash_hits + em.strash_hits - hits_before
        c.strash_folds += aig.strash_folds - folds_before
        c.per_frame.append(c.frame_delta(before))

    def _constrain_read(self, k: int, r: int, read: PortSignals) -> None:
        if self.chain_share:
            self._constrain_read_oldest_first(k, r, read)
        else:
            self._constrain_read_latest_first(k, r, read)

    def _constrain_read_oldest_first(self, k: int, r: int,
                                     read: PortSignals) -> None:
        """Suffix-shared chain: oldest write first, newest mux wins.

        Stage order is (frame 0, port 0) .. (frame k-1, port W-1); a
        stage muxed in later overrides every earlier one, so the newest
        matching write takes priority — equation (4)'s semantics with
        the chain inverted.  Because stage j's cone depends only on
        writes 0..j and the (stable) seed, a recurring read address
        makes frame k's chain a strash prefix of frame k+1's.
        """
        aig = self.aig
        n_bits = self.mem.data_width
        stages: list[tuple[int, list[int]]] = []  # live (S, WD), oldest first
        nomatch = TRUE
        for j in range(k):
            for w in range(self.mem.num_write_ports):
                wsig = self._writes[j][w]
                s = aig.and_gate(ops.eq_word(aig, read.addr, wsig.addr),
                                 wsig.en)
                if s == FALSE:
                    # Comparator folded FALSE (or WE is constant 0): the
                    # pair is dead — skip its chain and data gates.
                    continue
                stages.append((s, wsig.data))
                nomatch = aig.and_gate(nomatch, lit_not(s))
        n_lit = aig.and_gate(read.en, nomatch)  # the paper's S_{-1} / PS_0
        seed = self._initial_word(read.addr, n_lit, read, k, r)
        value, suffix_hits = ops.priority_mux_chain(aig, stages, seed)
        self.counters.chain_suffix_hits += suffix_hits
        # Gate by the read enable (disabled reads are forced to zero,
        # matching the latest-first construction and the simulator).
        value = [aig.and_gate(read.en, vb) for vb in value]
        em = self.emitter
        em.set_label(("emm", self.name, "rd"))
        for b in range(n_bits):
            em.add_clause([em.sat_lit(aig.iff_(read.data[b], value[b]))])

    def _constrain_read_latest_first(self, k: int, r: int,
                                     read: PortSignals) -> None:
        """The PR-2 baseline: equation (4) order, rebuilt every frame."""
        aig = self.aig
        n_bits = self.mem.data_width
        # Priority chain, latest frame / highest write port first, exactly
        # the order of equation (4).
        stages: list[tuple[int, list[int]]] = []
        for j in range(k - 1, -1, -1):
            for w in range(self.mem.num_write_ports - 1, -1, -1):
                wsig = self._writes[j][w]
                s = aig.and_gate(ops.eq_word(aig, read.addr, wsig.addr),
                                 wsig.en)
                if s == FALSE:
                    # Comparator folded FALSE (or WE is constant 0): the
                    # pair is dead — skip its chain and data gates.
                    continue
                stages.append((s, wsig.data))
        selected, ps = ops.exclusive_select_chain(aig, stages, read.en)
        n_lit = ps  # no write matched: fall through to the initial state
        init_word = self._initial_word(read.addr, n_lit, read, k, r)
        value = ops.onehot_select_word(aig, selected, n_lit, init_word)
        # Force RD = value (per bit) through the emitter.
        em = self.emitter
        em.set_label(("emm", self.name, "rd"))
        for b in range(n_bits):
            em.add_clause([em.sat_lit(aig.iff_(read.data[b], value[b]))])

    def _initial_word(self, addr: list[int], n_lit: int,
                      read: PortSignals, k: int, r: int) -> list[int]:
        """AIG word holding the initial memory contents at ``addr``."""
        aig = self.aig
        mem = self.mem
        n_bits = mem.data_width
        if not self.symbolic_init:
            word = ops.const_word(mem.init, n_bits)
            for a in sorted(mem.init_words):
                hit = ops.eq_word(aig, addr, ops.const_word(a, len(addr)))
                word = ops.mux_word(aig, hit,
                                    ops.const_word(mem.init_words[a], n_bits),
                                    word)
            return word
        # Section 4.2: fresh symbolic inputs, pinned under a_meminit when
        # the declared init is known, cross-read-consistent via eq. (6).
        # With chain_share, a read whose lowered address repeats an
        # existing record's is merged into it: the shared AIG inputs are
        # exactly what keeps the mux-chain seed stable across frames.
        em = self.emitter
        em.set_label(("emm", self.name, "init"))
        c = self.counters
        addr_sat = em.sat_word(addr)
        merged = (self._reads.find_mergeable(addr_sat, self._init_sig)
                  if self._merge_init else None)
        if merged is not None:
            self._init_clause([-em.sat_lit(n_lit), merged.guard_lit],
                              "init_guard_clauses")
            c.init_records_merged += 1
            return merged.v_aig
        v_aig = [aig.new_input(f"{self.name}.V{r}.{b}@{k}")
                 for b in range(n_bits)]
        v_sat = [em.sat_lit(v) for v in v_aig]
        if mem.init is not None or mem.init_words:
            self._pin_symbolic(addr, v_sat)
        guard = None
        if self._merge_init:
            guard = self.solver.new_var()
            c.vars_added += 1
            self._init_clause([-em.sat_lit(n_lit), guard],
                              "init_guard_clauses")
        record = _ReadRecord(k, r, addr_sat, em.sat_lit(n_lit), v_sat,
                             guard_lit=guard, v_aig=v_aig)
        if self.init_consistency:
            self._consistency(record)
        self._reads.add(record, index=self._merge_init, sig=self._init_sig)
        c.vars_added += n_bits
        return v_aig

    def _init_clause(self, lits: list[int], counter: str) -> None:
        """Book an initial-state clause into its own counter.

        Tracking absorption mirrors the hybrid encoder's ``_clause`` and
        lets :meth:`add_frame` subtract exactly the init clauses that
        really reached the solver from its blanket CNF delta.
        """
        c = self.counters
        setattr(c, counter, getattr(c, counter) + 1)
        if self.emitter.add_clause(lits) < 0:
            c.absorbed += 1

    def _pin_symbolic(self, addr: list[int], v_sat: list[int]) -> None:
        """``a_meminit -> V = declared initial contents at addr``."""
        aig = self.aig
        em = self.emitter
        mem = self.mem
        e_sats = []
        for a in sorted(mem.init_words):
            hit = ops.eq_word(aig, addr, ops.const_word(a, len(addr)))
            e_sat = em.sat_lit(hit)
            e_sats.append(e_sat)
            value = mem.init_words[a]
            for b, v in enumerate(v_sat):
                lit = v if (value >> b) & 1 else -v
                self._init_clause([-self.a_meminit, -e_sat, lit],
                                  "init_pin_clauses")
        if mem.init is not None:
            for b, v in enumerate(v_sat):
                lit = v if (mem.init >> b) & 1 else -v
                self._init_clause([-self.a_meminit] + e_sats + [lit],
                                  "init_pin_clauses")

    def _consistency(self, new: _ReadRecord) -> None:
        """Equation (6) across all recorded fall-through reads."""
        emit_init_consistency(
            new, self._reads.records,
            addr_eq=self._sat_addr_eq,
            const_value=self.addr_cmp.const_value,
            emit=lambda lits: self._init_clause(lits,
                                                "init_consistency_clauses"),
            c=self.counters, chain_share=self.chain_share)

    def _sat_addr_eq(self, a_bits: list[int], b_bits: list[int]) -> int:
        """CNF equality indicator over already-emitted SAT literals."""
        label = ("emm", self.name, "init_consistency")
        return self.addr_cmp.eq(a_bits, b_bits, label, self.counters,
                                "init_addr_eq_clauses")
