"""Data-race detection for multi-port memories.

Section 4.1 assumes data races are absent ("a memory location can be
updated at any given cycle through only one write port") and notes the
approach extends to checking for them.  This module is that extension: a
bounded search for a reachable cycle in which two write ports of the same
memory target the same address with both enables active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.aig import Aig, CnfEmitter
from repro.bmc.unroller import Unroller
from repro.design.netlist import Design
from repro.emm.forwarding import EmmMemory
from repro.sat import Solver


@dataclass
class RaceResult:
    """Outcome of a bounded data-race search."""

    memory: str
    found: bool
    depth: Optional[int] = None
    #: Input vectors per frame leading to the race (when found).
    inputs: list[dict] = field(default_factory=list)
    wall_time_s: float = 0.0

    def describe(self) -> str:
        if self.found:
            return (f"memory {self.memory!r}: write-write race reachable "
                    f"at depth {self.depth}")
        return (f"memory {self.memory!r}: no data race within the bound "
                f"({self.wall_time_s:.2f}s)")


def find_data_race(design: Design, mem_name: str,
                   max_depth: int = 20) -> RaceResult:
    """Search depths 0..max_depth for a reachable write-write race."""
    design.validate()
    mem = design.memories[mem_name]
    if mem.num_write_ports < 2:
        return RaceResult(memory=mem_name, found=False, wall_time_s=0.0)
    t0 = time.monotonic()
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(), solver)
    unroller = Unroller(design, emitter)
    emms = {
        name: EmmMemory(solver, unroller, name,
                        check_races=(name == mem_name))
        for name in design.memories
    }
    for k in range(max_depth + 1):
        unroller.add_frame()
        if k == 0:
            _assert_initial_state(design, unroller, emitter)
        for emm in emms.values():
            emm.add_frame(k)
        race_lit = emms[mem_name].race_lits[k]
        if solver.solve([race_lit]).sat:
            inputs = _extract_inputs(design, unroller, emitter, solver, k)
            return RaceResult(memory=mem_name, found=True, depth=k,
                              inputs=inputs,
                              wall_time_s=time.monotonic() - t0)
    return RaceResult(memory=mem_name, found=False,
                      wall_time_s=time.monotonic() - t0)


def _assert_initial_state(design: Design, unroller: Unroller,
                          emitter: CnfEmitter) -> None:
    for name, latch in design.latches.items():
        if latch.init is None:
            continue
        word = unroller.latch_word(name, 0)
        emitter.set_label(("init", name))
        for b in range(latch.width):
            lit = emitter.sat_lit(word[b])
            emitter.add_clause([lit if (latch.init >> b) & 1 else -lit])


def _extract_inputs(design, unroller, emitter, solver, depth) -> list[dict]:
    out = []
    for k in range(depth + 1):
        vec = {}
        for name, inp in design.inputs.items():
            value = 0
            for i, bit in enumerate(unroller.input_word(name, k)):
                var = emitter.var_for(bit)
                if var is not None and solver.model_value(var):
                    value |= 1 << i
            vec[name] = value
        out.append(vec)
    return out
