"""Closed-form EMM constraint counts from the paper, for verification.

Section 3 (single memory, single read/write port, depth k, address width
m, data width n):

* hybrid representation: ``(4m+2n+1)k + 2n + 1`` clauses and ``3k`` gates;
* purely circuit-based: ``(4m+2n+2)k + n`` gates.

Section 4.1 (W write ports, R read ports): per read port
``(4m+2n+1)kW + 2n + 1`` clauses and ``3kW`` gates; multiply by R for all
read ports.  Growth stays quadratic in depth (the counts above are *new*
constraints at depth k; cumulative totals sum over k).

Section 4.2: ``kR`` fresh symbolic words at (k-1)-depth analysis.  The
paper prints ``kR(R-1)`` for the number of equation-(6) consistency
constraints; an all-pairs count over the kR fresh reads is
``kR(kR-1)/2`` — see :func:`init_consistency_pairs_all` and DESIGN.md for
why this reproduction constrains all pairs (same-port reads at different
depths also need consistency for induction proofs to be sound).

Comparator dedup (:mod:`repro.emm.addrcmp`, on by default): the closed
forms above assume every comparison pays the full ``4m+1`` clauses and
``m+1`` variables.  With the per-memory comparator cache and constant
folding they become *upper bounds*: a structural repeat costs 0 (counted
in ``EmmCounters.addr_eq_cache_hits``), a fully constant comparison
costs 0 (``addr_eq_folded``), and a const-vs-symbolic comparison costs
:func:`addr_eq_clauses_const` instead of :func:`addr_eq_clauses_full`.
The exact-count tests therefore use workloads whose address cones are
fresh symbolic inputs, where dedup finds nothing and the bounds are
tight.
"""

from __future__ import annotations


def addr_eq_clauses_full(addr_width: int) -> int:
    """Clauses of one full symbolic address comparator: ``4m + 1``."""
    return 4 * addr_width + 1


def addr_eq_clauses_const(addr_width: int) -> int:
    """Clauses of one const-vs-symbolic comparator: ``m + 1``."""
    return addr_width + 1


def clauses_per_read_port(k: int, w_ports: int, addr_width: int,
                          data_width: int) -> int:
    """Paper formula: CNF clauses added at depth k for one read port."""
    m, n = addr_width, data_width
    return (4 * m + 2 * n + 1) * k * w_ports + 2 * n + 1


def gates_per_read_port(k: int, w_ports: int) -> int:
    """Paper formula: 2-input gates added at depth k for one read port."""
    return 3 * k * w_ports


def clauses_at_depth(k: int, w_ports: int, r_ports: int, addr_width: int,
                     data_width: int) -> int:
    """All read ports: ``((4m+2n+1)kW + 2n + 1) * R``."""
    return clauses_per_read_port(k, w_ports, addr_width, data_width) * r_ports


def gates_at_depth(k: int, w_ports: int, r_ports: int) -> int:
    """All read ports: ``3kWR``."""
    return gates_per_read_port(k, w_ports) * r_ports


def cumulative_clauses(depth: int, w_ports: int, r_ports: int,
                       addr_width: int, data_width: int) -> int:
    """Total clauses after analysing depths 0..depth (quadratic growth)."""
    return sum(clauses_at_depth(k, w_ports, r_ports, addr_width, data_width)
               for k in range(depth + 1))


def cumulative_gates(depth: int, w_ports: int, r_ports: int) -> int:
    return sum(gates_at_depth(k, w_ports, r_ports) for k in range(depth + 1))


def pure_gate_single_port(k: int, addr_width: int, data_width: int) -> int:
    """Section 3's purely circuit-based alternative: ``(4m+2n+2)k + n`` gates."""
    m, n = addr_width, data_width
    return (4 * m + 2 * n + 2) * k + n


def explicit_model_state_bits(addr_width: int, data_width: int) -> int:
    """State bits the explicit baseline adds per memory: ``2**AW * DW``."""
    return (1 << addr_width) * data_width


def symbolic_init_words(k: int, r_ports: int) -> int:
    """Fresh symbolic data words introduced for arbitrary initial state."""
    return k * r_ports


def init_consistency_pairs_paper(k: int, r_ports: int) -> int:
    """The count as printed in the paper: ``kR(R-1)``."""
    return k * r_ports * (r_ports - 1)


def init_consistency_pairs_all(k: int, r_ports: int) -> int:
    """All-pairs count over the ``kR`` fresh reads (what we implement)."""
    total = k * r_ports
    return total * (total - 1) // 2


# -- chain-share closed forms (reproduction extension, not in the paper) --
#
# ``BmcOptions.emm_chain_share`` (on by default) changes two growth
# terms.  The gate EMM encoding's priority chain becomes an
# oldest-write-first mux chain whose per-pair cost is bounded by
# :func:`mux_chain_gates_per_read_port`; on recurring address cones the
# strash layer answers whole repeated stages from its table
# (``EmmCounters.chain_suffix_hits``), so the *new* gates per frame drop
# from the linear-in-k rebuild to the bounded constant of
# :func:`suffix_shared_frame_gates`.  The equation-(6) pass prunes pairs
# whose comparator folds FALSE (``EmmCounters.init_pairs_pruned``) and
# merges fall-through reads whose comparator folds TRUE
# (``init_records_merged``): a fully recurring read port contributes one
# record total instead of one per frame, collapsing its share of the
# quadratic all-pairs set to the linear number of guard clauses.


def mux_chain_gates_per_read_port(k: int, w_ports: int,
                                  data_width: int) -> int:
    """Upper bound on oldest-first chain gates at depth k, one read port.

    Per live (frame, write-port) pair: the ``S = E ∧ WE`` gate, one
    no-match accumulation step and a ``3n``-gate data mux; plus the
    final read-enable fall-through AND and the per-bit output gating.
    Comparator cones are excluded (shared, counted like the hybrid's
    ``4m+1`` closed form); strash folding makes this an upper bound.
    """
    n = data_width
    return (3 * n + 2) * k * w_ports + n + 1


def suffix_shared_frame_gates(addr_width: int, data_width: int,
                              w_ports: int = 1) -> int:
    """Upper bound on *new* chain gates per frame under full sharing.

    For a read whose address cone and initial word are stable across
    frames, everything but the newest write's stage is a strash hit:
    one fresh comparator cone (≤ ``4m`` nodes), the ``S`` and no-match
    gates and one ``3n``-gate mux stage per write port, plus the
    re-gated output and forced-equality cones (≤ ``4n``).  Constant in
    the depth — the plateau the C4 bench asserts.
    """
    m, n = addr_width, data_width
    return (4 * m + 3 * n + 2) * w_ports + 4 * n


# -- AIG-routed hybrid back-end (``BmcOptions.emm_hybrid_strash``) --------
#
# The hybrid encoder's comparators stay CNF (the ``4m+1`` closed forms
# above still price them), but the chain and data muxes become AIG nodes
# lowered as 3-clause Tseitin triples.  Per live pair the chain costs at
# most the ``S = E ∧ WE`` gate, one no-match accumulation AND and a
# ``3n``-gate mux stage; per read there is one fall-through AND and the
# ``2n`` forced ``RE -> RD == value`` clauses (which subsume the raw
# back-end's validity clause and ``N -> RD = init`` block).  Strash
# folding makes both forms below upper bounds; on recurring address
# cones the suffix sharing collapses the per-frame growth to
# :func:`hybrid_suffix_shared_frame_clauses`.


def hybrid_chain_clauses_per_read_port(k: int, w_ports: int,
                                       addr_width: int,
                                       data_width: int) -> int:
    """Upper bound on CNF clauses the AIG-routed hybrid adds at depth k.

    One read port, no sharing: ``(4m+1)kW`` comparator clauses plus
    three clauses per chain gate — ``(3n+2)kW + 1`` gates — plus the
    ``2n`` forced read-data clauses.  Compare
    :func:`clauses_per_read_port` (the raw back-end) and
    :func:`mux_chain_gates_per_read_port` (the same chain in the gate
    encoding, where the comparators are AIG cones too).
    """
    m, n = addr_width, data_width
    return ((4 * m + 1) * k * w_ports
            + 3 * ((3 * n + 2) * k * w_ports + 1)
            + 2 * n)


def hybrid_suffix_shared_frame_clauses(addr_width: int, data_width: int,
                                       w_ports: int = 1) -> int:
    """Upper bound on *new* hybrid clauses per frame under full sharing.

    For a constant-address read with a merged (stable) initial word,
    frame k re-uses frame k-1's entire chain; the only fresh work is the
    newest write's comparator (≤ ``m+1`` clauses in the const-vs-symbolic
    short form, bounded here by the full ``4m+1``), three clauses per
    new-stage gate (``(3n+2)W + 1`` gates), the ``2n`` forced read-data
    clauses and one merge-guard clause.  Constant in the depth — the
    plateau the C5 bench asserts.
    """
    m, n = addr_width, data_width
    return ((4 * m + 1) * w_ports
            + 3 * ((3 * n + 2) * w_ports + 1)
            + 2 * n + 1)
