"""EMM constraint generation for multi-port, multi-memory systems.

One :class:`EmmMemory` instance manages one memory module for the
lifetime of a BMC run; :meth:`EmmMemory.add_frame` is the paper's
``EMM_Constraints(k)`` (Figure 2, lines 8-11), invoked after every
unrolling.  All clauses carry labels ``("emm", memory, kind)`` so
proof-based abstraction can tell which memories a proof actually used.

Pair ordering follows equation (4): for a read at depth k, candidate
writes are scanned latest-frame-first and, within a frame, highest
write-port-first; ``PS(i,p)`` means "no match strictly after (i,p)",
``S(i,p)`` means "(i,p) is the unique matching write".  ``PS`` at the
very bottom of the chain is the paper's ``S_{-1}`` — the read falls
through to the initial memory state.

Address comparators are produced by a per-memory
:class:`repro.emm.addrcmp.AddrComparator` (``addr_dedup=True``, the
default): structurally recurring (read, write-pair) address comparisons
return the already-encoded ``E`` literal instead of a fresh ``4m+1``
clause block, and constant address cones fold to TRUE/FALSE (zero
clauses) or the ``m+1``-clause const form.  With a session-scoped
:class:`repro.emm.addrcmp.SharedComparatorTables` registry
(``cmp_registry``, wired by the encoding session under
``BmcOptions.emm_cross_mem_share``) the cache spans *all* memories:
proof-based abstraction stays sound because a cache hit joins the
calling memory's ``("emm", name, *)`` label onto the entry's clauses
(per-clause multi-labels, ``Solver.add_label``), so unsat cores through
a shared comparator attribute it to every memory it served.  Without a
registry the cache is scoped to this one memory — the historical
baseline.  Hits are counted in ``EmmCounters.addr_eq_cache_hits`` and
folds in ``EmmCounters.addr_eq_folded`` (cross-memory hits additionally
in ``EmmCounters.cross_mem_cmp_hits``); all are per-frame snapshotted
and surfaced as ``BmcRunStats.emm_addr_eq_cache_hits`` /
``emm_addr_eq_folded`` / ``cross_mem_cmp_hits``.

The data-race monitor (``check_races=True``) books its clauses into the
dedicated ``race_addr_eq_clauses`` / ``race_clauses`` / ``race_gates``
counters, which are *excluded* from ``total_clauses`` and
``total_gates`` so the paper-formula comparisons stay exact whether or
not the monitor is on.

Two chain back-ends (``hybrid_strash``):

* ``hybrid_strash=True`` (default) routes the equation-(4)/(5)
  forwarding logic through the structurally hashed AIG: the comparator
  ``E`` literals stay CNF (the layer above) but enter the AIG as
  *aliased inputs* (:meth:`repro.aig.tseitin.CnfEmitter.aig_lit_for`),
  and the ``s``/``PS`` chain plus the data-forwarding muxes are built
  with the same shared chain builders the pure-gate encoding uses
  (:func:`repro.aig.ops.priority_mux_chain` /
  :func:`~repro.aig.ops.exclusive_select_chain`).  Because aliased
  inputs have stable identity and cached comparators return the same
  ``E`` across frames, a recurring read-address cone makes frame k's
  chain a strash prefix of frame k+1's — per-frame growth plateaus on
  constant-address reads exactly as in the gate encoding (bench C5).
  The lowered chain clauses keep per-memory ``("emm", name, *)``
  provenance labels under the emitter's first-emitter-wins rule, so
  proof-based abstraction is unaffected.
* ``hybrid_strash=False`` re-emits the paper's hand-written CNF every
  frame — equation (5)'s ``2n`` implication clauses per pair, the
  validity clause, raw 3-clause ``AND`` gates for the chain.  This is
  the exact-closed-form baseline the accounting tests pin and the A/B
  reference for the differential matrix.  The ``exclusivity=False``
  ablation always uses this back-end (the naive long-clause encoding
  has no chain to route).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aig import ops
from repro.aig.aig import FALSE, TRUE, lit_not
from repro.bmc.unroller import PortSignals, Unroller
from repro.emm.addrcmp import AddrComparator
from repro.sat.solver import Solver


@dataclass
class EmmCounters:
    """Measured constraint sizes, comparable to the paper's formulas."""

    addr_eq_clauses: int = 0
    excl_gates: int = 0
    rd_clauses: int = 0
    valid_clauses: int = 0
    init_rd_clauses: int = 0
    init_pin_clauses: int = 0
    init_rom_clauses: int = 0
    init_addr_eq_clauses: int = 0
    init_consistency_clauses: int = 0
    init_pairs: int = 0
    vars_added: int = 0
    #: clauses absorbed by the solver (tautologies from constant addresses)
    absorbed: int = 0
    #: address comparisons answered from the per-memory comparator cache
    addr_eq_cache_hits: int = 0
    #: address comparisons folded to a constant (zero clauses emitted)
    addr_eq_folded: int = 0
    #: race-monitor comparator clauses (excluded from ``total_clauses``)
    race_addr_eq_clauses: int = 0
    #: race-monitor aggregation (OR / unit) clauses
    race_clauses: int = 0
    #: race-monitor 2-input gates (excluded from ``total_gates``)
    race_gates: int = 0
    #: race-monitor comparator cache hits / folds (own comparator: the
    #: monitor never shares entries with the forwarding chain, so the
    #: paper-formula counters are independent of ``check_races``)
    race_addr_eq_cache_hits: int = 0
    race_addr_eq_folded: int = 0
    #: comparator cache hits answered by an entry another memory encoded
    #: (session-scoped registry, ``emm_cross_mem_share``); a subset of
    #: ``addr_eq_cache_hits``/``race_addr_eq_cache_hits``, not a clause
    #: counter — the clauses were booked by the founding memory.
    cross_mem_cmp_hits: int = 0
    #: AIG/CNF structural-hashing savings attributed to this memory's
    #: constraint construction — fed by the gate encoding and by the
    #: hybrid's AIG-routed back-end (``hybrid_strash``); the raw hybrid
    #: back-end emits CNF directly and books its sharing into the
    #: addr_eq_* counters above.  Hits are reused AND cones / gate
    #: triples, folds are requests collapsed by constant/idempotence/
    #: complement rules.
    strash_hits: int = 0
    strash_folds: int = 0
    #: Equation-(6) pairs skipped because their address comparator folded
    #: to constant FALSE — their 2n data clauses were never built (with
    #: ``chain_share`` off they are built and absorbed by the solver).
    init_pairs_pruned: int = 0
    #: Fall-through reads merged into an existing record because their
    #: address cone is structurally identical (the comparator would fold
    #: TRUE): the read reuses the record's symbolic word instead of
    #: minting fresh variables, pins and quadratic consistency pairs.
    init_records_merged: int = 0
    #: One-directional guard clauses ``n_read -> G_record`` that keep
    #: merged records covered by every already-emitted eq-(6) pair.
    init_guard_clauses: int = 0
    #: Mux-chain stages answered entirely by the strash layer (zero new
    #: gates), in the gate encoding and the hybrid's AIG-routed back-end
    #: alike.  On recurring address cones this is frame k's chain
    #: re-appearing as a prefix of frame k+1's; within-frame reuse —
    #: read ports sharing one address cone — counts too.
    chain_suffix_hits: int = 0
    per_frame: list[dict] = field(default_factory=list)

    #: The clause counters summed by :attr:`total_clauses` and the
    #: per-frame ``"clauses"`` aggregate — one list so the two can never
    #: desynchronize.  Race-monitor counters are deliberately excluded:
    #: the monitor is an extension outside the Section 3/4 closed forms.
    CLAUSE_COUNTERS = ("addr_eq_clauses", "rd_clauses", "valid_clauses",
                       "init_rd_clauses", "init_pin_clauses",
                       "init_rom_clauses", "init_addr_eq_clauses",
                       "init_consistency_clauses", "init_guard_clauses")

    @property
    def total_clauses(self) -> int:
        """Forwarding/init clauses comparable to the paper's formulas."""
        return sum(getattr(self, key) for key in self.CLAUSE_COUNTERS)

    @property
    def total_gates(self) -> int:
        return self.excl_gates

    def snapshot_ints(self) -> dict:
        """Current values of every integer counter (per-frame baseline)."""
        return {key: val for key, val in vars(self).items()
                if isinstance(val, int)}

    def frame_delta(self, before: dict) -> dict:
        """Per-frame counter growth since ``before`` (:meth:`snapshot_ints`).

        Both EMM encoders append this to :attr:`per_frame`, so per-frame
        growth is directly comparable across encodings: besides the raw
        counter diffs it carries the ``"gates"`` / ``"clauses"``
        aggregates (paper-formula gate and clause totals added by the
        frame, race monitor excluded).
        """
        frame = {key: getattr(self, key) - before[key] for key in before}
        frame["gates"] = frame["excl_gates"]
        frame["clauses"] = sum(frame[key] for key in self.CLAUSE_COUNTERS)
        return frame


class _ReadRecord:
    """Bookkeeping for one fall-through read (equation (6) pairs).

    ``guard_lit`` is the literal equation-(6) pairs test for "this record
    fell through".  Without record merging it is simply ``n_lit``.  With
    merging (``chain_share``) it is a dedicated indicator variable ``G``
    constrained one-directionally — ``n_read -> G`` for the founding read
    and every read merged in later — so pairs emitted *before* a merge
    still cover reads merged *after* them.  One-directional is enough:
    ``G`` spuriously true only tightens toward the exact memory
    semantics (the shared word really is the initial content at the
    shared address), and the solver may always pick ``G`` minimal, so
    satisfiability over design signals is unchanged.

    ``v_aig`` is the symbolic word's AIG input literals (gate encoding
    only): merged reads seed their mux chains from it, which is what
    keeps the chain a stable strash prefix across frames.
    """

    __slots__ = ("frame", "port", "addr", "n_lit", "v_vars", "guard_lit",
                 "v_aig")

    def __init__(self, frame: int, port: int, addr: list[int],
                 n_lit: int, v_vars: list[int],
                 guard_lit: Optional[int] = None,
                 v_aig: Optional[list[int]] = None) -> None:
        self.frame = frame
        self.port = port
        self.addr = addr
        self.n_lit = n_lit
        self.v_vars = v_vars
        self.guard_lit = n_lit if guard_lit is None else guard_lit
        self.v_aig = v_aig


class InitReadRegistry:
    """Fall-through read records plus the record-merging index.

    One registry per memory by default; memories in a shared-initial-state
    group share a single registry (the miter case), so equation (6) — and
    record merging — relate reads of different memory copies.  The merge
    index is keyed on the tuple of address SAT literals: two address
    cones whose comparator would fold TRUE lower to *identical* literal
    tuples (constants all map to the emitter's single const variable), so
    key equality is exactly the fold-TRUE condition.

    The key also carries the reading memory's declared-init signature
    (``sig``): shared-init grouping only requires ``init is None``, so
    two grouped memories may declare *different* ``init_words``
    overrides.  A merged read inherits the founding record's a_meminit
    pins, which is only sound when the declared inits agree — records
    founded under a different signature are never merge targets (the
    reads still relate through ordinary equation-(6) pairs, exactly the
    unmerged baseline).
    """

    __slots__ = ("records", "_by_addr")

    def __init__(self) -> None:
        self.records: list[_ReadRecord] = []
        self._by_addr: dict[tuple, _ReadRecord] = {}

    def __len__(self) -> int:
        return len(self.records)

    def find_mergeable(self, addr: list[int], sig=None) -> Optional[_ReadRecord]:
        return self._by_addr.get((sig, tuple(addr)))

    def add(self, record: _ReadRecord, index: bool, sig=None) -> None:
        """Append a record; ``index=True`` registers it as a merge target."""
        self.records.append(record)
        if index:
            self._by_addr.setdefault((sig, tuple(record.addr)), record)


def emit_init_consistency(new: _ReadRecord, records: list[_ReadRecord],
                          addr_eq, const_value, emit, c: EmmCounters,
                          chain_share: bool) -> None:
    """Equation (6) between ``new`` and every existing record.

    The single implementation behind both encoders'
    ``_add_init_consistency`` / ``_consistency`` — the comparator
    constructor (``addr_eq``) and clause sink (``emit``) differ per
    encoder, the pair semantics must not.  With ``chain_share``, a pair
    whose comparator folds to constant FALSE is pruned outright: its
    ``2n`` data clauses are never built (without pruning they are built
    only for the solver to absorb them at level 0, so pruning is
    invisible to solving).  The fold-TRUE case never reaches this loop
    when merging is on — the read was merged before a record existed.
    """
    for old in records:
        eq = addr_eq(new.addr, old.addr)
        if chain_share and const_value(eq) is False:
            c.init_pairs_pruned += 1
            continue
        guard = [-eq, -new.guard_lit, -old.guard_lit]
        for vb_new, vb_old in zip(new.v_vars, old.v_vars):
            emit(guard + [-vb_new, vb_old])
            emit(guard + [vb_new, -vb_old])
        c.init_pairs += 1


class EmmMemory:
    """EMM constraints for a single memory module across BMC depths.

    Parameters
    ----------
    exclusivity:
        When False, the exclusive ``S`` signals are dropped and the
        forwarding semantics are encoded as the naive long-clause
        implications of equation (3) — the ablation of Section 3 item 3.
    init_consistency:
        When False, arbitrary-initial-state reads still get fresh
        symbolic words but the pairwise equation-(6) constraints are
        omitted — the unsound-for-proofs ablation of Section 4.2.
    addr_dedup:
        When True (default) address comparators are cached and
        constant-folded through a per-memory
        :class:`~repro.emm.addrcmp.AddrComparator`; when False every
        comparison emits the paper's fresh ``4m+1``-clause block (the
        baseline for the dedup cross-checks and the exact-count tests).
    chain_share:
        When True (default) the equation-(6) pass is incremental: pairs
        whose address comparator folds to constant FALSE skip their
        ``2n`` data clauses entirely, and fall-through reads whose
        address cone is structurally identical to an existing record's
        (the fold-TRUE case) are *merged* into it — reusing its symbolic
        word and guard instead of minting fresh variables, pins and a
        quadratic number of new pairs.  With ``hybrid_strash`` (or in
        the gate encoding) the same option additionally selects the
        oldest-write-first mux chain whose cross-frame suffix sharing
        the strash layer exploits; with the raw CNF back-end the chain
        keeps the paper's equation-(4) order either way.  False
        reproduces the PR-2 behaviour exactly (the A/B baseline for the
        chain-share cross-checks).
    hybrid_strash:
        When True (default) the forwarding chain and read-data muxes are
        built on the structurally hashed AIG over aliased comparator /
        port literals (see the module docstring); when False every frame
        re-emits the paper's direct CNF.  Ignored (raw CNF) under the
        ``exclusivity=False`` ablation.
    """

    def __init__(self, solver: Solver, unroller: Unroller, mem_name: str,
                 exclusivity: bool = True, init_consistency: bool = True,
                 symbolic_init: bool = False,
                 a_meminit: Optional[int] = None,
                 kept_read_ports: Optional[frozenset[int]] = None,
                 check_races: bool = False,
                 init_registry: Optional[InitReadRegistry] = None,
                 addr_dedup: bool = True,
                 chain_share: bool = True,
                 hybrid_strash: bool = True,
                 cmp_registry=None) -> None:
        self.solver = solver
        self.unroller = unroller
        self.emitter = unroller.emitter
        self.aig = unroller.aig
        self.mem = unroller.design.memories[mem_name]
        self.name = mem_name
        self.exclusivity = exclusivity
        self.init_consistency = init_consistency
        #: Port-level abstraction (Section 4.3): read ports outside this
        #: set get no forwarding constraints — their RD words stay free.
        self.kept_read_ports = (frozenset(range(self.mem.num_read_ports))
                                if kept_read_ports is None
                                else frozenset(kept_read_ports))
        #: Data-race monitoring (Section 4.1 mentions the extension): when
        #: enabled, a literal per frame witnesses two write ports hitting
        #: the same address with both enables active.
        self.check_races = check_races
        self.race_lits: list[int] = []
        #: When True, even known-init memories read a *symbolic* word on the
        #: initial fall-through, pinned to the declared init only under the
        #: ``a_meminit`` activation literal.  Required for sound backward
        #: induction (Section 4.2): an induction path starts from an
        #: arbitrary state, where the memory may hold anything.
        self.symbolic_init = symbolic_init or self.mem.init is None
        self.a_meminit = a_meminit
        has_known_init = self.mem.init is not None or bool(self.mem.init_words)
        if self.symbolic_init and has_known_init and a_meminit is None:
            raise ValueError("symbolic_init for a known-init memory needs a_meminit")
        self.counters = EmmCounters()
        #: Per-memory comparator cache (see module docstring for why the
        #: scope must not widen past one memory: PBA label attribution).
        self.addr_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup,
                                       registry=cmp_registry, owner=mem_name)
        #: The race monitor books into dedicated counters, so it gets an
        #: *isolated* comparator: sharing the forwarding cache would let
        #: whichever consumer encodes a pair first steal the clause
        #: booking, making ``addr_eq_clauses`` depend on ``check_races``.
        self.race_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup,
                                       hit_counter="race_addr_eq_cache_hits",
                                       fold_counter="race_addr_eq_folded",
                                       registry=cmp_registry, owner=mem_name)
        self._writes: list[list[PortSignals]] = []  # [frame][write_port]
        #: Fall-through read registry; *shared across memories* when this
        #: memory is in a shared-initial-state group (the miter case:
        #: equation (6) — and record merging — then relate reads of
        #: different memory copies).
        self._reads: InitReadRegistry = (init_registry
                                         if init_registry is not None
                                         else InitReadRegistry())
        self.chain_share = chain_share
        #: AIG-routed chain back-end; the naive eq-(3) ablation has no
        #: chain to route, so it always keeps the raw CNF emission.
        self.hybrid_strash = hybrid_strash and exclusivity
        #: Record merging needs the eq-(6) machinery to be on: with the
        #: init-consistency ablation active, sharing a symbolic word
        #: would silently re-introduce (part of) the constraints the
        #: ablation is meant to drop.
        self._merge_init = chain_share and init_consistency
        #: Declared-init signature scoping the merge index (see
        #: :class:`InitReadRegistry`): merging across memories is only
        #: sound when their a_meminit pins agree.
        self._init_sig = (self.mem.init,
                          tuple(sorted(self.mem.init_words.items())))
        self._frames = 0

    # -- the paper's EMM_Constraints(k) -----------------------------------

    def add_frame(self, k: int) -> None:
        """Add memory-modeling constraints for depth ``k``."""
        if k != self._frames:
            raise ValueError(f"frames must be added in order (expected {self._frames})")
        self._frames += 1
        un = self.unroller
        before = self.counters.snapshot_ints()
        writes = [un.write_port_signals(self.name, w, k)
                  for w in range(self.mem.num_write_ports)]
        self._writes.append(writes)
        if self.check_races:
            self._monitor_races(k, writes)
        for r in range(self.mem.num_read_ports):
            if r not in self.kept_read_ports:
                continue  # abstracted port: RD left unconstrained
            read = un.read_port_signals(self.name, r, k)
            self._constrain_read(k, r, read)
        self.counters.per_frame.append(self.counters.frame_delta(before))

    def _constrain_read(self, k: int, r: int, read: PortSignals) -> None:
        if self.hybrid_strash:
            self._constrain_read_aig(k, r, read)
        else:
            self._constrain_read_raw(k, r, read)

    # -- AIG-routed back-end (hybrid_strash=True) --------------------------

    def _constrain_read_aig(self, k: int, r: int, read: PortSignals) -> None:
        """Equations (4)/(5) routed through the structurally hashed AIG.

        Comparators stay the hybrid's CNF layer — per-memory cache,
        ``4m+1`` closed form, per-memory PBA labels — and their ``E``
        literals enter the AIG as aliased inputs alongside the port
        enables and write-data words.  The chain and the data muxes are
        built with the shared builders of :mod:`repro.aig.ops` and
        lowered back through the emitter's gate-triple cache; the read
        is bound by ``RE -> RD == value`` (``2n`` clauses), which leaves
        RD free while RE is low exactly like the raw back-end.  Counter
        semantics follow the gate encoder: ``excl_gates`` counts AIG
        nodes, ``rd_clauses`` the lowered gate triples (3 clauses each),
        native ITE lowerings (4 clauses each) and the forced read-data
        clauses; sharing is reported through
        ``strash_hits`` / ``strash_folds`` / ``chain_suffix_hits``.
        """
        aig = self.aig
        em = self.emitter
        c = self.counters
        mem = self.mem
        n_bits = mem.data_width
        label_excl = ("emm", self.name, "excl")
        ands0 = aig.num_ands
        triples0 = em.gates_emitted
        ites0 = em.ites_emitted
        hits0 = aig.strash_hits + em.strash_hits
        folds0 = aig.strash_folds
        # Match signals s = E ∧ WE, oldest pair first (the comparator
        # request order of the raw back-end's step 1).  A comparator
        # folded to FALSE makes the pair dead — ``and_gate`` collapses
        # it and the stage is skipped, mirroring the raw pruning; a fold
        # to TRUE makes s coincide with the (aliased) write enable.
        stages: list[tuple[int, list[int]]] = []  # live (s, WD), oldest first
        for j in range(k):
            for w in range(mem.num_write_ports):
                wsig = self._writes[j][w]
                e_var = self._addr_eq(read.addr, wsig.addr,
                                      ("emm", self.name, "addr_eq"), c,
                                      "addr_eq_clauses")
                s = aig.and_gate(em.aig_lit_for(e_var),
                                 em.aig_lit_for(wsig.en))
                if s == FALSE:
                    continue
                stages.append((s, [em.aig_lit_for(b) for b in wsig.data]))
        re_aig = em.aig_lit_for(read.en)
        em.set_label(label_excl)
        # ``n_lit`` ("the read fell through to the initial state") is only
        # consumed by the symbolic-init record machinery — for known-init
        # memories the seed is a constant word and the mux chain needs no
        # explicit fall-through signal, so its cone is neither built (mux
        # mode) nor lowered (exclusive mode).
        if self.chain_share:
            # Oldest-write-first mux chain: recurring address cones make
            # frame k's chain a strash prefix of frame k+1's.
            n_lit = None
            if self.symbolic_init:
                nomatch = TRUE
                for s, _ in stages:
                    nomatch = aig.and_gate(nomatch, lit_not(s))
                n_lit = em.sat_lit(aig.and_gate(re_aig, nomatch))
            seed = self._chain_init_word(read, n_lit, k, r)
            value, suffix_hits = ops.priority_mux_chain(aig, stages, seed)
            c.chain_suffix_hits += suffix_hits
        else:
            # Equation (4)'s latest-first exclusive chain, rebuilt per
            # frame — the chain-share A/B baseline on the AIG back-end.
            selected, n_aig = ops.exclusive_select_chain(
                aig, list(reversed(stages)), re_aig)
            n_lit = em.sat_lit(n_aig) if self.symbolic_init else None
            seed = self._chain_init_word(read, n_lit, k, r)
            value = ops.onehot_select_word(aig, selected, n_aig, seed)
        v_sats = [em.sat_lit(vb) for vb in value]
        label_rd = ("emm", self.name, "rd")
        for b in range(n_bits):
            self._clause([-read.en, -read.data[b], v_sats[b]],
                         label_rd, c, "rd_clauses")
            self._clause([-read.en, read.data[b], -v_sats[b]],
                         label_rd, c, "rd_clauses")
        c.excl_gates += aig.num_ands - ands0
        # Lowered chain CNF: 3 clauses per gate triple plus 4 per native
        # ITE lowering (each mux the emitter collapses to one var).
        c.rd_clauses += (3 * (em.gates_emitted - triples0)
                         + 4 * (em.ites_emitted - ites0))
        c.strash_hits += aig.strash_hits + em.strash_hits - hits0
        c.strash_folds += aig.strash_folds - folds0

    def _chain_init_word(self, read: PortSignals, n_lit: Optional[int],
                         k: int, r: int) -> list[int]:
        """AIG word holding the initial memory contents at the read address.

        The ``hybrid_strash`` counterpart of the raw back-end's step 4:
        the chain *seed* is the initial word, so the separate
        ``N -> RD = init`` clauses (``init_rd_clauses``) are subsumed by
        the routed chain.  Known-init memories seed from constants with
        ROM overrides selected by the cached CNF comparators;
        symbolic-init reads mint (or merge into) the same SAT-level
        records as the raw back-end — pins, guards and equation (6) are
        shared code — and alias the record's word into the AIG, which is
        what keeps a merged read's seed stable across frames.
        """
        aig = self.aig
        em = self.emitter
        mem = self.mem
        c = self.counters
        n_bits = mem.data_width
        # Every clause this method books carries an explicit label; the
        # seed's AIG cones (ROM-override muxes included) are lowered
        # later with the rest of the chain, under the caller's current
        # ("emm", name, "excl") label — same memory, so PBA reason
        # extraction is indifferent to the split.
        label_init = ("emm", self.name, "init")
        if not self.symbolic_init:
            word = ops.const_word(mem.init, n_bits)
            for a in sorted(mem.init_words):
                hit = self._addr_eq_const(read.addr, a, label_init, c)
                word = ops.mux_word(aig, em.aig_lit_for(hit),
                                    ops.const_word(mem.init_words[a], n_bits),
                                    word)
            return word
        v_vars = self._init_read_record(read.addr, n_lit, k, r)
        return [em.aig_lit_for(v) for v in v_vars]

    def _init_read_record(self, addr: list[int], n_lit: int, k: int,
                          r: int) -> list[int]:
        """Merge into or mint the fall-through read record; returns its word.

        The single record-minting implementation behind both hybrid
        back-ends: merge lookup, guard emission, ``a_meminit`` pins,
        equation (6) and registry insertion live here once — the callers
        differ only in how the returned symbolic word binds to RD (the
        raw back-end's direct ``2n`` clauses vs the routed chain seed).
        """
        mem = self.mem
        c = self.counters
        label_init = ("emm", self.name, "init")
        merged = (self._reads.find_mergeable(addr, self._init_sig)
                  if self._merge_init else None)
        if merged is not None:
            # Identical address cone *and* declared-init signature (both
            # are merge-key components): the record's pins already say
            # everything a_meminit would; pairs against every other
            # record stay valid through its guard.
            self._clause([-n_lit, merged.guard_lit], label_init, c,
                         "init_guard_clauses")
            c.init_records_merged += 1
            return merged.v_vars
        v_vars = [self._new_var() for _ in range(mem.data_width)]
        if mem.init is not None or mem.init_words:
            # Pin the symbols to the declared init under a_meminit, so
            # falsification / forward checks see the real initial memory
            # while backward induction sees an arbitrary one.
            self._pin_word(v_vars, self.a_meminit, addr, label_init, c,
                           "init_pin_clauses")
        guard = None
        if self._merge_init:
            guard = self._new_var()
            self._clause([-n_lit, guard], label_init, c,
                         "init_guard_clauses")
        record = _ReadRecord(k, r, list(addr), n_lit, v_vars,
                             guard_lit=guard)
        if self.init_consistency:
            self._add_init_consistency(record, c)
        self._reads.add(record, index=self._merge_init, sig=self._init_sig)
        return v_vars

    # -- raw-CNF back-end (hybrid_strash=False, the paper's encoding) ------

    def _constrain_read_raw(self, k: int, r: int, read: PortSignals) -> None:
        mem = self.mem
        w_ports = mem.num_write_ports
        c = self.counters

        # 1. Address comparison + s = E ∧ WE per (frame, write port) pair.
        # A comparator that folded to constant FALSE makes the pair dead:
        # its s/PS gates and read-data clauses are skipped entirely (the
        # entry is None); a fold to constant TRUE makes s coincide with WE
        # and saves the E ∧ WE gate.
        label_excl = ("emm", self.name, "excl")
        s_lits: list[list[Optional[int]]] = []  # [frame j][write port w]
        for j in range(k):
            row: list[Optional[int]] = []
            for w in range(w_ports):
                wsig = self._writes[j][w]
                e_var = self._addr_eq(read.addr, wsig.addr,
                                      ("emm", self.name, "addr_eq"), c, "addr_eq_clauses")
                folded = self.emitter.const_value(e_var)
                if folded is False:
                    row.append(None)  # address never matches: dead pair
                elif folded is True:
                    row.append(wsig.en)  # always matches: s == WE
                else:
                    row.append(self._and2(e_var, wsig.en, label_excl))
            s_lits.append(row)

        label_rd = ("emm", self.name, "rd")
        n_bits = mem.data_width

        if self.exclusivity:
            # 2. Exclusive valid-read chain, equation (4).
            ps_next = read.en  # PS(k, k, 0, r) = RE(k, r)
            s_valid: list[int] = []
            pairs: list[tuple[int, int, int]] = []  # (frame, wport, S lit)
            for j in range(k - 1, -1, -1):
                for w in range(w_ports - 1, -1, -1):
                    s = s_lits[j][w]
                    if s is None:
                        continue  # folded-FALSE pair: PS passes through
                    s_sig = self._and2(s, ps_next, label_excl)
                    ps = self._and2(-s, ps_next, label_excl)
                    pairs.append((j, w, s_sig))
                    s_valid.append(s_sig)
                    ps_next = ps
            n_lit = ps_next  # PS(0, k, 0, r): no write matched at all
            # 3. Read-data constraints, equation (5): S -> RD = WD.
            for j, w, s_sig in pairs:
                wd = self._writes[j][w].data
                for b in range(n_bits):
                    self._clause([-s_sig, -read.data[b], wd[b]], label_rd, c, "rd_clauses")
                    self._clause([-s_sig, read.data[b], -wd[b]], label_rd, c, "rd_clauses")
            # Validity of the read: RE -> some S or the initial fall-through.
            self._clause([-read.en, n_lit] + s_valid,
                         ("emm", self.name, "valid"), c, "valid_clauses")
        else:
            # Ablation: naive long-clause encoding of equation (3); the
            # "no intermediate write" side condition is spelled out as the
            # disjunction of all later pair signals inside every clause.
            flat: list[int] = []  # pair s-lits in chain order (latest first)
            order: list[tuple[int, int]] = []
            for j in range(k - 1, -1, -1):
                for w in range(w_ports - 1, -1, -1):
                    s = s_lits[j][w]
                    if s is None:
                        continue  # folded-FALSE pair contributes nothing
                    flat.append(s)
                    order.append((j, w))
            for idx, (j, w) in enumerate(order):
                s = flat[idx]
                later = flat[:idx]  # pairs with higher priority
                wd = self._writes[j][w].data
                for b in range(n_bits):
                    self._clause([-read.en, -s] + later + [-read.data[b], wd[b]],
                                 label_rd, c, "rd_clauses")
                    self._clause([-read.en, -s] + later + [read.data[b], -wd[b]],
                                 label_rd, c, "rd_clauses")
            # N = no pair matched, built as an AND chain (needed for the
            # initial-state fall-through even without exclusivity).
            n_lit = read.en
            for s in flat:
                n_lit = self._and2(-s, n_lit, label_excl)

        # 4. Initial-state fall-through: N -> RD = initial word.
        label_init = ("emm", self.name, "init")
        if not self.symbolic_init:
            # Known init, falsification-only runs: direct constants, with
            # per-address overrides (ROM contents) selected by E vars.
            self._pin_word(read.data, n_lit, read.addr, label_init, c,
                           "init_rd_clauses")
        else:
            # Section 4.2: a symbolic word per fall-through read.  With
            # chain_share, a read whose address cone structurally repeats
            # an existing record's (the comparator would fold TRUE) is
            # merged into it: same word, no new pins, no new pairs — only
            # the 2n read-data clauses and one guard clause.  The record
            # machinery is shared with the AIG back-end; only the RD
            # binding below is raw-CNF-specific.
            v_vars = self._init_read_record(read.addr, n_lit, k, r)
            for b in range(n_bits):
                self._clause([-n_lit, -read.data[b], v_vars[b]],
                             label_init, c, "init_rd_clauses")
                self._clause([-n_lit, read.data[b], -v_vars[b]],
                             label_init, c, "init_rd_clauses")

    def _pin_word(self, word: list[int], guard: int, addr: list[int],
                  label, c: EmmCounters, counter: str) -> None:
        """``guard -> word = initial contents at addr``.

        Uniform-init memories need one clause per data bit; per-address
        overrides (``init_words``) add an address-match indicator per
        override and guard each bit clause with it.  A memory whose
        default is arbitrary (``init=None`` with overrides) pins only the
        overridden addresses.
        """
        mem = self.mem
        keys = sorted(mem.init_words)
        e_vars = []
        for a in keys:
            e = self._addr_eq_const(addr, a, label, c)
            e_vars.append(e)
            value = mem.init_words[a]
            for b, w in enumerate(word):
                lit = w if (value >> b) & 1 else -w
                self._clause([-guard, -e, lit], label, c, counter)
        if mem.init is not None:
            for b, w in enumerate(word):
                lit = w if (mem.init >> b) & 1 else -w
                self._clause([-guard] + e_vars + [lit], label, c, counter)

    def _addr_eq_const(self, addr: list[int], value: int, label,
                       c: EmmCounters) -> int:
        """E with E <-> (addr == value); at most m+1 clauses (cached)."""
        return self.addr_cmp.eq_const(addr, value, label, c,
                                      "init_rom_clauses")

    def _add_init_consistency(self, new: _ReadRecord, c: EmmCounters) -> None:
        """Equation (6): equal fresh-read addresses give equal symbols."""
        label = ("emm", self.name, "init_consistency")
        emit_init_consistency(
            new, self._reads.records,
            addr_eq=lambda a, b: self._addr_eq(a, b, label, c,
                                               "init_addr_eq_clauses"),
            const_value=self.addr_cmp.const_value,
            emit=lambda lits: self._clause(lits, label, c,
                                           "init_consistency_clauses"),
            c=c, chain_share=self.chain_share)

    def _monitor_races(self, k: int, writes: list[PortSignals]) -> None:
        """OR over write-port pairs of (same address AND both enabled).

        The paper assumes data races are absent; this monitor lets a user
        discharge that assumption: verify the invariant "race literal is
        never true" with the engine (see ``BmcEngine.race_property``).
        """
        label = ("emm", self.name, "race")
        c = self.counters
        pair_lits: list[int] = []
        for i in range(len(writes)):
            for j in range(i + 1, len(writes)):
                eq = self.race_cmp.eq(writes[i].addr, writes[j].addr, label,
                                      c, "race_addr_eq_clauses")
                folded = self.emitter.const_value(eq)
                if folded is False:
                    continue  # distinct constant addresses: no race possible
                both = self._and2(writes[i].en, writes[j].en, label,
                                  gate_counter="race_gates")
                if folded is True:
                    pair_lits.append(both)  # same address cone: race = both
                else:
                    pair_lits.append(self._and2(eq, both, label,
                                                gate_counter="race_gates"))
        if not pair_lits:
            # Single write port: a race is structurally impossible.
            race = self._new_var()
            self._clause([-race], label, c, "race_clauses")
        elif len(pair_lits) == 1:
            race = pair_lits[0]
        else:
            # race <-> OR(pairs), encoded one-directionally both ways.
            race = self._new_var()
            for p in pair_lits:
                self._clause([-p, race], label, c, "race_clauses")
            self._clause([-race] + pair_lits, label, c, "race_clauses")
        self.race_lits.append(race)

    # -- low-level helpers ----------------------------------------------

    def _new_var(self) -> int:
        self.counters.vars_added += 1
        return self.solver.new_var()

    def _clause(self, lits: list[int], label, c: EmmCounters, counter: str) -> None:
        setattr(c, counter, getattr(c, counter) + 1)
        if self.solver.add_clause(lits, label) < 0:
            c.absorbed += 1

    def _addr_eq(self, a_bits: list[int], b_bits: list[int], label,
                 c: EmmCounters, counter: str) -> int:
        """The paper's 4m+1 clause address comparison, deduplicated.

        Returns the literal of a variable E with E <-> (a == b): E ->
        per-bit equality directly, and per-bit indicator variables e_i
        with (a_i == b_i) -> e_i plus the closing clause
        (!e_0 + ... + !e_{m-1} + E).  With ``addr_dedup`` the per-memory
        :class:`AddrComparator` returns the existing E on a structural
        repeat and folds constant comparisons (see module docstring).
        """
        return self.addr_cmp.eq(a_bits, b_bits, label, c, counter)

    def _and2(self, a: int, b: int, label,
              gate_counter: str = "excl_gates") -> int:
        """A 2-input AND gate in CNF (counted as one gate, per the paper)."""
        v = self._new_var()
        s = self.solver
        s.add_clause([-v, a], label)
        s.add_clause([-v, b], label)
        s.add_clause([v, -a, -b], label)
        setattr(self.counters, gate_counter,
                getattr(self.counters, gate_counter) + 1)
        return v
