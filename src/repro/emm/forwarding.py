"""EMM constraint generation for multi-port, multi-memory systems.

One :class:`EmmMemory` instance manages one memory module for the
lifetime of a BMC run; :meth:`EmmMemory.add_frame` is the paper's
``EMM_Constraints(k)`` (Figure 2, lines 8-11), invoked after every
unrolling.  All clauses carry labels ``("emm", memory, kind)`` so
proof-based abstraction can tell which memories a proof actually used.

Pair ordering follows equation (4): for a read at depth k, candidate
writes are scanned latest-frame-first and, within a frame, highest
write-port-first; ``PS(i,p)`` means "no match strictly after (i,p)",
``S(i,p)`` means "(i,p) is the unique matching write".  ``PS`` at the
very bottom of the chain is the paper's ``S_{-1}`` — the read falls
through to the initial memory state.

Address comparators are produced by a per-memory
:class:`repro.emm.addrcmp.AddrComparator` (``addr_dedup=True``, the
default): structurally recurring (read, write-pair) address comparisons
return the already-encoded ``E`` literal instead of a fresh ``4m+1``
clause block, and constant address cones fold to TRUE/FALSE (zero
clauses) or the ``m+1``-clause const form.  The cache is deliberately
scoped to this one memory so proof-based abstraction stays sound: every
clause a cached comparator ever emitted carries an ``("emm", name, *)``
label of the *same* memory, so unsat cores that reuse a shared
comparator still attribute it to the right memory.  Hits are counted in
``EmmCounters.addr_eq_cache_hits`` and folds in
``EmmCounters.addr_eq_folded``; both are per-frame snapshotted and
surfaced as ``BmcRunStats.emm_addr_eq_cache_hits`` /
``emm_addr_eq_folded``.

The data-race monitor (``check_races=True``) books its clauses into the
dedicated ``race_addr_eq_clauses`` / ``race_clauses`` / ``race_gates``
counters, which are *excluded* from ``total_clauses`` and
``total_gates`` so the paper-formula comparisons stay exact whether or
not the monitor is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bmc.unroller import PortSignals, Unroller
from repro.emm.addrcmp import AddrComparator
from repro.sat.solver import Solver


@dataclass
class EmmCounters:
    """Measured constraint sizes, comparable to the paper's formulas."""

    addr_eq_clauses: int = 0
    excl_gates: int = 0
    rd_clauses: int = 0
    valid_clauses: int = 0
    init_rd_clauses: int = 0
    init_pin_clauses: int = 0
    init_rom_clauses: int = 0
    init_addr_eq_clauses: int = 0
    init_consistency_clauses: int = 0
    init_pairs: int = 0
    vars_added: int = 0
    #: clauses absorbed by the solver (tautologies from constant addresses)
    absorbed: int = 0
    #: address comparisons answered from the per-memory comparator cache
    addr_eq_cache_hits: int = 0
    #: address comparisons folded to a constant (zero clauses emitted)
    addr_eq_folded: int = 0
    #: race-monitor comparator clauses (excluded from ``total_clauses``)
    race_addr_eq_clauses: int = 0
    #: race-monitor aggregation (OR / unit) clauses
    race_clauses: int = 0
    #: race-monitor 2-input gates (excluded from ``total_gates``)
    race_gates: int = 0
    #: race-monitor comparator cache hits / folds (own comparator: the
    #: monitor never shares entries with the forwarding chain, so the
    #: paper-formula counters are independent of ``check_races``)
    race_addr_eq_cache_hits: int = 0
    race_addr_eq_folded: int = 0
    #: AIG/CNF structural-hashing savings attributed to this memory's
    #: constraint construction (gate encoding only: the hybrid encoder
    #: emits CNF directly and books its sharing into the addr_eq_*
    #: counters above).  Hits are reused AND cones, folds are requests
    #: collapsed by constant/idempotence/complement rules.
    strash_hits: int = 0
    strash_folds: int = 0
    per_frame: list[dict] = field(default_factory=list)

    @property
    def total_clauses(self) -> int:
        """Forwarding/init clauses comparable to the paper's formulas.

        Deliberately excludes the race-monitor counters: the monitor is
        an extension outside the Section 3/4 closed forms.
        """
        return (self.addr_eq_clauses + self.rd_clauses + self.valid_clauses
                + self.init_rd_clauses + self.init_pin_clauses
                + self.init_rom_clauses + self.init_addr_eq_clauses
                + self.init_consistency_clauses)

    @property
    def total_gates(self) -> int:
        return self.excl_gates


class _ReadRecord:
    """Bookkeeping for one read access (needed by equation (6) pairs)."""

    __slots__ = ("frame", "port", "addr", "n_lit", "v_vars")

    def __init__(self, frame: int, port: int, addr: list[int],
                 n_lit: int, v_vars: list[int]) -> None:
        self.frame = frame
        self.port = port
        self.addr = addr
        self.n_lit = n_lit
        self.v_vars = v_vars


class EmmMemory:
    """EMM constraints for a single memory module across BMC depths.

    Parameters
    ----------
    exclusivity:
        When False, the exclusive ``S`` signals are dropped and the
        forwarding semantics are encoded as the naive long-clause
        implications of equation (3) — the ablation of Section 3 item 3.
    init_consistency:
        When False, arbitrary-initial-state reads still get fresh
        symbolic words but the pairwise equation-(6) constraints are
        omitted — the unsound-for-proofs ablation of Section 4.2.
    addr_dedup:
        When True (default) address comparators are cached and
        constant-folded through a per-memory
        :class:`~repro.emm.addrcmp.AddrComparator`; when False every
        comparison emits the paper's fresh ``4m+1``-clause block (the
        baseline for the dedup cross-checks and the exact-count tests).
    """

    def __init__(self, solver: Solver, unroller: Unroller, mem_name: str,
                 exclusivity: bool = True, init_consistency: bool = True,
                 symbolic_init: bool = False,
                 a_meminit: Optional[int] = None,
                 kept_read_ports: Optional[frozenset[int]] = None,
                 check_races: bool = False,
                 init_registry: Optional[list] = None,
                 addr_dedup: bool = True) -> None:
        self.solver = solver
        self.unroller = unroller
        self.emitter = unroller.emitter
        self.mem = unroller.design.memories[mem_name]
        self.name = mem_name
        self.exclusivity = exclusivity
        self.init_consistency = init_consistency
        #: Port-level abstraction (Section 4.3): read ports outside this
        #: set get no forwarding constraints — their RD words stay free.
        self.kept_read_ports = (frozenset(range(self.mem.num_read_ports))
                                if kept_read_ports is None
                                else frozenset(kept_read_ports))
        #: Data-race monitoring (Section 4.1 mentions the extension): when
        #: enabled, a literal per frame witnesses two write ports hitting
        #: the same address with both enables active.
        self.check_races = check_races
        self.race_lits: list[int] = []
        #: When True, even known-init memories read a *symbolic* word on the
        #: initial fall-through, pinned to the declared init only under the
        #: ``a_meminit`` activation literal.  Required for sound backward
        #: induction (Section 4.2): an induction path starts from an
        #: arbitrary state, where the memory may hold anything.
        self.symbolic_init = symbolic_init or self.mem.init is None
        self.a_meminit = a_meminit
        has_known_init = self.mem.init is not None or bool(self.mem.init_words)
        if self.symbolic_init and has_known_init and a_meminit is None:
            raise ValueError("symbolic_init for a known-init memory needs a_meminit")
        self.counters = EmmCounters()
        #: Per-memory comparator cache (see module docstring for why the
        #: scope must not widen past one memory: PBA label attribution).
        self.addr_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup)
        #: The race monitor books into dedicated counters, so it gets an
        #: *isolated* comparator: sharing the forwarding cache would let
        #: whichever consumer encodes a pair first steal the clause
        #: booking, making ``addr_eq_clauses`` depend on ``check_races``.
        self.race_cmp = AddrComparator(solver, unroller.emitter,
                                       cache=addr_dedup, fold=addr_dedup,
                                       hit_counter="race_addr_eq_cache_hits",
                                       fold_counter="race_addr_eq_folded")
        self._writes: list[list[PortSignals]] = []  # [frame][write_port]
        #: Fall-through read records; a list *shared across memories* when
        #: this memory is in a shared-initial-state group (the miter case:
        #: equation (6) then relates reads of different memory copies).
        self._reads: list[_ReadRecord] = (init_registry
                                          if init_registry is not None
                                          else [])
        self._frames = 0

    # -- the paper's EMM_Constraints(k) -----------------------------------

    def add_frame(self, k: int) -> None:
        """Add memory-modeling constraints for depth ``k``."""
        if k != self._frames:
            raise ValueError(f"frames must be added in order (expected {self._frames})")
        self._frames += 1
        un = self.unroller
        before = dict(vars(self.counters))
        writes = [un.write_port_signals(self.name, w, k)
                  for w in range(self.mem.num_write_ports)]
        self._writes.append(writes)
        if self.check_races:
            self._monitor_races(k, writes)
        for r in range(self.mem.num_read_ports):
            if r not in self.kept_read_ports:
                continue  # abstracted port: RD left unconstrained
            read = un.read_port_signals(self.name, r, k)
            self._constrain_read(k, r, read)
        frame_counts = {
            key: vars(self.counters)[key] - before[key]
            for key in before if isinstance(before[key], int)
        }
        self.counters.per_frame.append(frame_counts)

    def _constrain_read(self, k: int, r: int, read: PortSignals) -> None:
        mem = self.mem
        w_ports = mem.num_write_ports
        c = self.counters

        # 1. Address comparison + s = E ∧ WE per (frame, write port) pair.
        # A comparator that folded to constant FALSE makes the pair dead:
        # its s/PS gates and read-data clauses are skipped entirely (the
        # entry is None); a fold to constant TRUE makes s coincide with WE
        # and saves the E ∧ WE gate.
        label_excl = ("emm", self.name, "excl")
        s_lits: list[list[Optional[int]]] = []  # [frame j][write port w]
        for j in range(k):
            row: list[Optional[int]] = []
            for w in range(w_ports):
                wsig = self._writes[j][w]
                e_var = self._addr_eq(read.addr, wsig.addr,
                                      ("emm", self.name, "addr_eq"), c, "addr_eq_clauses")
                folded = self.emitter.const_value(e_var)
                if folded is False:
                    row.append(None)  # address never matches: dead pair
                elif folded is True:
                    row.append(wsig.en)  # always matches: s == WE
                else:
                    row.append(self._and2(e_var, wsig.en, label_excl))
            s_lits.append(row)

        label_rd = ("emm", self.name, "rd")
        n_bits = mem.data_width

        if self.exclusivity:
            # 2. Exclusive valid-read chain, equation (4).
            ps_next = read.en  # PS(k, k, 0, r) = RE(k, r)
            s_valid: list[int] = []
            pairs: list[tuple[int, int, int]] = []  # (frame, wport, S lit)
            for j in range(k - 1, -1, -1):
                for w in range(w_ports - 1, -1, -1):
                    s = s_lits[j][w]
                    if s is None:
                        continue  # folded-FALSE pair: PS passes through
                    s_sig = self._and2(s, ps_next, label_excl)
                    ps = self._and2(-s, ps_next, label_excl)
                    pairs.append((j, w, s_sig))
                    s_valid.append(s_sig)
                    ps_next = ps
            n_lit = ps_next  # PS(0, k, 0, r): no write matched at all
            # 3. Read-data constraints, equation (5): S -> RD = WD.
            for j, w, s_sig in pairs:
                wd = self._writes[j][w].data
                for b in range(n_bits):
                    self._clause([-s_sig, -read.data[b], wd[b]], label_rd, c, "rd_clauses")
                    self._clause([-s_sig, read.data[b], -wd[b]], label_rd, c, "rd_clauses")
            # Validity of the read: RE -> some S or the initial fall-through.
            self._clause([-read.en, n_lit] + s_valid,
                         ("emm", self.name, "valid"), c, "valid_clauses")
        else:
            # Ablation: naive long-clause encoding of equation (3); the
            # "no intermediate write" side condition is spelled out as the
            # disjunction of all later pair signals inside every clause.
            flat: list[int] = []  # pair s-lits in chain order (latest first)
            order: list[tuple[int, int]] = []
            for j in range(k - 1, -1, -1):
                for w in range(w_ports - 1, -1, -1):
                    s = s_lits[j][w]
                    if s is None:
                        continue  # folded-FALSE pair contributes nothing
                    flat.append(s)
                    order.append((j, w))
            for idx, (j, w) in enumerate(order):
                s = flat[idx]
                later = flat[:idx]  # pairs with higher priority
                wd = self._writes[j][w].data
                for b in range(n_bits):
                    self._clause([-read.en, -s] + later + [-read.data[b], wd[b]],
                                 label_rd, c, "rd_clauses")
                    self._clause([-read.en, -s] + later + [read.data[b], -wd[b]],
                                 label_rd, c, "rd_clauses")
            # N = no pair matched, built as an AND chain (needed for the
            # initial-state fall-through even without exclusivity).
            n_lit = read.en
            for s in flat:
                n_lit = self._and2(-s, n_lit, label_excl)

        # 4. Initial-state fall-through: N -> RD = initial word.
        label_init = ("emm", self.name, "init")
        if not self.symbolic_init:
            # Known init, falsification-only runs: direct constants, with
            # per-address overrides (ROM contents) selected by E vars.
            self._pin_word(read.data, n_lit, read.addr, label_init, c,
                           "init_rd_clauses")
        else:
            # Section 4.2: a fresh symbolic word per fall-through read.
            v_vars = [self._new_var() for _ in range(n_bits)]
            for b in range(n_bits):
                self._clause([-n_lit, -read.data[b], v_vars[b]],
                             label_init, c, "init_rd_clauses")
                self._clause([-n_lit, read.data[b], -v_vars[b]],
                             label_init, c, "init_rd_clauses")
            if mem.init is not None or mem.init_words:
                # Pin the symbols to the declared init under a_meminit, so
                # falsification / forward checks see the real initial
                # memory while backward induction sees an arbitrary one.
                self._pin_word(v_vars, self.a_meminit, read.addr, label_init,
                               c, "init_pin_clauses")
            record = _ReadRecord(k, r, list(read.addr), n_lit, v_vars)
            if self.init_consistency:
                self._add_init_consistency(record, c)
            self._reads.append(record)

    def _pin_word(self, word: list[int], guard: int, addr: list[int],
                  label, c: EmmCounters, counter: str) -> None:
        """``guard -> word = initial contents at addr``.

        Uniform-init memories need one clause per data bit; per-address
        overrides (``init_words``) add an address-match indicator per
        override and guard each bit clause with it.  A memory whose
        default is arbitrary (``init=None`` with overrides) pins only the
        overridden addresses.
        """
        mem = self.mem
        keys = sorted(mem.init_words)
        e_vars = []
        for a in keys:
            e = self._addr_eq_const(addr, a, label, c)
            e_vars.append(e)
            value = mem.init_words[a]
            for b, w in enumerate(word):
                lit = w if (value >> b) & 1 else -w
                self._clause([-guard, -e, lit], label, c, counter)
        if mem.init is not None:
            for b, w in enumerate(word):
                lit = w if (mem.init >> b) & 1 else -w
                self._clause([-guard] + e_vars + [lit], label, c, counter)

    def _addr_eq_const(self, addr: list[int], value: int, label,
                       c: EmmCounters) -> int:
        """E with E <-> (addr == value); at most m+1 clauses (cached)."""
        return self.addr_cmp.eq_const(addr, value, label, c,
                                      "init_rom_clauses")

    def _add_init_consistency(self, new: _ReadRecord, c: EmmCounters) -> None:
        """Equation (6): equal fresh-read addresses give equal symbols."""
        label = ("emm", self.name, "init_consistency")
        for old in self._reads:
            eq = self._addr_eq(new.addr, old.addr, label, c, "init_addr_eq_clauses")
            guard = [-eq, -new.n_lit, -old.n_lit]
            for vb_new, vb_old in zip(new.v_vars, old.v_vars):
                self._clause(guard + [-vb_new, vb_old], label, c,
                             "init_consistency_clauses")
                self._clause(guard + [vb_new, -vb_old], label, c,
                             "init_consistency_clauses")
            c.init_pairs += 1

    def _monitor_races(self, k: int, writes: list[PortSignals]) -> None:
        """OR over write-port pairs of (same address AND both enabled).

        The paper assumes data races are absent; this monitor lets a user
        discharge that assumption: verify the invariant "race literal is
        never true" with the engine (see ``BmcEngine.race_property``).
        """
        label = ("emm", self.name, "race")
        c = self.counters
        pair_lits: list[int] = []
        for i in range(len(writes)):
            for j in range(i + 1, len(writes)):
                eq = self.race_cmp.eq(writes[i].addr, writes[j].addr, label,
                                      c, "race_addr_eq_clauses")
                folded = self.emitter.const_value(eq)
                if folded is False:
                    continue  # distinct constant addresses: no race possible
                both = self._and2(writes[i].en, writes[j].en, label,
                                  gate_counter="race_gates")
                if folded is True:
                    pair_lits.append(both)  # same address cone: race = both
                else:
                    pair_lits.append(self._and2(eq, both, label,
                                                gate_counter="race_gates"))
        if not pair_lits:
            # Single write port: a race is structurally impossible.
            race = self._new_var()
            self._clause([-race], label, c, "race_clauses")
        elif len(pair_lits) == 1:
            race = pair_lits[0]
        else:
            # race <-> OR(pairs), encoded one-directionally both ways.
            race = self._new_var()
            for p in pair_lits:
                self._clause([-p, race], label, c, "race_clauses")
            self._clause([-race] + pair_lits, label, c, "race_clauses")
        self.race_lits.append(race)

    # -- low-level helpers ----------------------------------------------

    def _new_var(self) -> int:
        self.counters.vars_added += 1
        return self.solver.new_var()

    def _clause(self, lits: list[int], label, c: EmmCounters, counter: str) -> None:
        setattr(c, counter, getattr(c, counter) + 1)
        if self.solver.add_clause(lits, label) < 0:
            c.absorbed += 1

    def _addr_eq(self, a_bits: list[int], b_bits: list[int], label,
                 c: EmmCounters, counter: str) -> int:
        """The paper's 4m+1 clause address comparison, deduplicated.

        Returns the literal of a variable E with E <-> (a == b): E ->
        per-bit equality directly, and per-bit indicator variables e_i
        with (a_i == b_i) -> e_i plus the closing clause
        (!e_0 + ... + !e_{m-1} + E).  With ``addr_dedup`` the per-memory
        :class:`AddrComparator` returns the existing E on a structural
        repeat and folds constant comparisons (see module docstring).
        """
        return self.addr_cmp.eq(a_bits, b_bits, label, c, counter)

    def _and2(self, a: int, b: int, label,
              gate_counter: str = "excl_gates") -> int:
        """A 2-input AND gate in CNF (counted as one gate, per the paper)."""
        v = self._new_var()
        s = self.solver
        s.add_clause([-v, a], label)
        s.add_clause([-v, b], label)
        s.add_clause([v, -a, -b], label)
        setattr(self.counters, gate_counter,
                getattr(self.counters, gate_counter) + 1)
        return v
