"""Shared address-comparison layer for the EMM encodings.

Both EMM encoders (the hybrid :class:`repro.emm.forwarding.EmmMemory`
and the CNF side of :class:`repro.emm.gates.GateEmmMemory`) need many
indicator literals ``E <-> (AddrA == AddrB)`` over SAT-literal words.
The paper's direct encoding mints a fresh variable and ``4m+1`` clauses
for every comparison; across the forwarding chain, read ports sharing an
address cone, the equation-(6) consistency pairs and the race monitor,
the *same* pair of address words recurs many times.  This module
deduplicates that structure:

* **Comparator cache** — keyed on the canonically ordered pair of
  SAT-literal tuples of the two address words.  Equality is symmetric,
  so ``(A, B)`` and ``(B, A)`` share one entry; a hit returns the
  existing ``E`` literal with zero new clauses or variables.  Literal
  tuples are stable keys because the unroller memoizes port signals and
  the Tseitin emitter memoizes cones (see
  :meth:`repro.bmc.unroller.Unroller.read_port_signals`).
* **Constant folding** — address bits that lower to the emitter's
  constant variable are recognised: const-vs-const comparisons fold to
  the TRUE/FALSE literal with zero clauses; const-vs-symbolic
  comparisons use the ``m+1``-clause unit form (the shape of the ROM
  ``_addr_eq_const`` encoding) instead of the full ``4m+1``; bit pairs
  that are the *same* literal are skipped and bit pairs that are
  complementary literals fold the whole comparator to FALSE.

PBA provenance: every cache entry remembers the clause ids it emitted
and the labels it has served.  A hit requested under a label the entry
has not seen yet *joins* that label onto the entry's clauses
(:meth:`repro.sat.solver.Solver.add_label`), so an unsat core that uses
a shared comparator attributes it to **every** consumer it served —
``Solver.core_labels`` flattens the resulting multi-labels back into
individual ``("emm", name, *)`` tuples.  That label joining is what
makes a **cross-memory** cache sound: with
``BmcOptions.emm_cross_mem_share`` (default on) the
:class:`EncodingSession` owns one :class:`SharedComparatorTables`
registry and every memory's comparator resolves against it, so two
memories whose address cones lower to the same SAT-literal tuples — the
miter/equivalence case, where both copies see identical cones — share
one ``4m+1``-clause block and the core names *both* memories.  (The
historical per-memory scoping survives as the ``registry=None``
default and the ``--no-cross-mem-share`` baseline.)

The registry is still split by **consumer booking class** (keyed on the
comparator's ``hit_counter`` name): the race monitor books into
dedicated ``race_*`` counters excluded from the paper-formula totals,
and sharing one table across differently-booked consumers would let
whichever encodes a pair first steal the clause booking from the other,
making ``addr_eq_clauses`` depend on ``check_races``.  Forwarding-chain
and eq-(6) comparators of *all* memories share one class (same
booking), race comparators another.

Folded comparators return the emitter's always-true variable (possibly
negated); cores that use a folded result pick up the ``("const",)``
unit instead of EMM clauses, exactly as they already did when the
paper encoding's constant-address clauses were absorbed at level 0.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.aig.tseitin import CnfEmitter
from repro.sat.solver import Solver


class _CacheEntry:
    """One cached comparator: its E literal, clause ids, served labels.

    ``cids`` lets a later hit join the new caller's label onto every
    clause of the entry; ``labels`` avoids redundant joins; ``owner``
    identifies the comparator instance (memory) that first encoded it,
    so cross-memory reuse can be counted.
    """

    __slots__ = ("lit", "cids", "labels", "owner")

    def __init__(self, lit: int, cids: tuple[int, ...],
                 label: Hashable, owner) -> None:
        self.lit = lit
        self.cids = cids
        self.labels: set = {label}
        self.owner = owner


class SharedComparatorTables:
    """Session-scoped comparator registry (``emm_cross_mem_share``).

    Owned by :class:`repro.bmc.session.EncodingSession` and handed to
    every memory's :class:`AddrComparator`: comparators with the same
    booking class (``hit_counter`` name) resolve against one shared
    table keyed on canonical SAT-literal tuples, so structurally
    identical address comparisons are encoded once *across* memories.
    Hits whose entry was founded by a different memory are counted in
    :attr:`cross_mem_hits` (and the calling memory's
    ``EmmCounters.cross_mem_cmp_hits``).
    """

    __slots__ = ("_tables", "cross_mem_hits")

    def __init__(self) -> None:
        self._tables: dict[str, dict] = {}
        self.cross_mem_hits = 0

    def table(self, booking_class: str) -> dict:
        """The shared key->entry table for one consumer booking class."""
        return self._tables.setdefault(booking_class, {})


class AddrComparator:
    """Cache of address-equality indicator literals (one per memory,
    optionally resolving against a session-shared registry).

    Parameters
    ----------
    solver, emitter:
        The run's solver and Tseitin emitter (the emitter owns the
        dedicated always-true constant variable used for folds).
    cache:
        Enable comparator reuse.  With ``cache=False`` every call
        encodes afresh (the A/B baseline for the dedup cross-checks).
    fold:
        Enable constant detection.  With ``fold=False`` the encoding is
        bit-for-bit the paper's ``4m+1``-clause form regardless of the
        operands, which keeps the closed-form accounting tests exact.
    hit_counter, fold_counter:
        Names of the counter attributes bumped on cache hits / folds.
        A consumer whose clause counters must stay independent of other
        consumers (the race monitor vs the forwarding chain) gets its
        *own* comparator instance with its own counter names — the
        ``hit_counter`` name doubles as the registry booking class, so
        differently-booked consumers never share a table and neither
        can steal the clause booking from the other.
    registry, owner:
        With a :class:`SharedComparatorTables` registry the cache table
        is shared across all comparators of the same booking class
        (cross-memory sharing; hits join the caller's label, see the
        module docstring); ``owner`` names this consumer (the memory)
        for cross-memory hit attribution.  Without a registry the table
        is private — the historical per-memory scope.
    """

    __slots__ = ("solver", "emitter", "cache", "fold", "hit_counter",
                 "fold_counter", "owner", "_registry", "_table")

    def __init__(self, solver: Solver, emitter: CnfEmitter,
                 cache: bool = True, fold: bool = True,
                 hit_counter: str = "addr_eq_cache_hits",
                 fold_counter: str = "addr_eq_folded",
                 registry: Optional[SharedComparatorTables] = None,
                 owner: Optional[str] = None) -> None:
        self.solver = solver
        self.emitter = emitter
        self.cache = cache
        self.fold = fold
        self.hit_counter = hit_counter
        self.fold_counter = fold_counter
        self.owner = owner
        self._registry = registry
        #: canonical (tuple, tuple) key -> _CacheEntry; shared across
        #: same-booking-class comparators when a registry is given.
        self._table: dict[tuple[tuple[int, ...], tuple[int, ...]],
                          _CacheEntry] = (registry.table(hit_counter)
                                          if registry is not None else {})

    # -- public API -----------------------------------------------------

    def eq(self, a_bits: list[int], b_bits: list[int], label: Hashable,
           c, counter: str) -> int:
        """Literal of ``E`` with ``E <-> (a_bits == b_bits)``.

        Clauses are booked into ``getattr(c, counter)``; cache hits and
        folds bump the counters named by ``hit_counter``/``fold_counter``.
        A hit under a label the entry has not served yet joins it onto
        the entry's clauses, so unsat cores attribute the comparator to
        every consumer (PBA multi-label soundness — module docstring).
        """
        if len(a_bits) != len(b_bits):
            raise ValueError("address words differ in width")
        ta, tb = tuple(a_bits), tuple(b_bits)
        key = (ta, tb) if ta <= tb else (tb, ta)
        if self.cache:
            entry = self._table.get(key)
            if entry is not None:
                setattr(c, self.hit_counter, getattr(c, self.hit_counter) + 1)
                if label not in entry.labels:
                    for cid in entry.cids:
                        self.solver.add_label(cid, label)
                    entry.labels.add(label)
                if self._registry is not None and entry.owner != self.owner:
                    self._registry.cross_mem_hits += 1
                    c.cross_mem_cmp_hits += 1
                return entry.lit
        cids: list[int] = []
        e = self._encode(ta, tb, label, c, counter, cids)
        if self.cache:
            self._table[key] = _CacheEntry(e, tuple(cids), label, self.owner)
        return e

    def eq_const(self, addr: list[int], value: int, label: Hashable,
                 c, counter: str) -> int:
        """``E <-> (addr == value)`` for an integer constant ``value``.

        The constant is lowered to literals of the emitter's always-true
        variable, so it shares the cache and folding rules of :meth:`eq`
        (a constant address cone against a constant value folds to
        TRUE/FALSE with zero clauses).  With ``fold=False`` it emits the
        legacy uncached ``m+1``-clause unit form instead.
        """
        if self.fold:
            t = self.emitter.true_lit()
            const_bits = [t if (value >> i) & 1 else -t
                          for i in range(len(addr))]
            return self.eq(addr, const_bits, label, c, counter)
        e = self._new_var(c)
        lits = [addr[i] if (value >> i) & 1 else -addr[i]
                for i in range(len(addr))]
        for lit in lits:
            self._clause([-e, lit], label, c, counter)
        self._clause([e] + [-lit for lit in lits], label, c, counter)
        return e

    @property
    def size(self) -> int:
        """Number of distinct comparators currently cached."""
        return len(self._table)

    def const_value(self, e_lit: int) -> Optional[bool]:
        """Fold result of a literal returned by :meth:`eq` / :meth:`eq_const`.

        ``True``/``False`` when the comparison folded to a constant (the
        literal is the emitter's always-true variable, possibly negated),
        ``None`` for a symbolic comparator.  This is the public face of
        the fold layer: consumers that want to *act* on folds — the
        exclusivity-chain pruning, the equation-(6) pair pruning — ask
        the comparator instead of reaching into the emitter.
        """
        return self.emitter.const_value(e_lit)

    # -- encoding -------------------------------------------------------

    def _const_value(self, lit: int) -> Optional[bool]:
        return self.emitter.const_value(lit)

    def _encode(self, ta: tuple[int, ...], tb: tuple[int, ...],
                label: Hashable, c, counter: str,
                cids: Optional[list[int]] = None) -> int:
        em = self.emitter
        if self.fold:
            sym_pairs: list[tuple[int, int]] = []  # both sides symbolic
            units: list[int] = []  # literal equivalent to one bit's equality
            for a, b in zip(ta, tb):
                if a == b:
                    continue  # identical literal: equal by construction
                if a == -b:
                    self._bump_fold(c)
                    return -em.true_lit()  # complementary: never equal
                va, vb = self._const_value(a), self._const_value(b)
                if va is not None and vb is not None:
                    if va != vb:
                        self._bump_fold(c)
                        return -em.true_lit()
                    continue  # equal constants
                if va is not None:
                    units.append(b if va else -b)
                elif vb is not None:
                    units.append(a if vb else -a)
                else:
                    sym_pairs.append((a, b))
            if not sym_pairs and not units:
                self._bump_fold(c)
                return em.true_lit()  # structurally identical words
        else:
            sym_pairs = list(zip(ta, tb))
            units = []

        e_total = self._new_var(c)
        closing = []
        for a, b in sym_pairs:
            e_i = self._new_var(c)
            self._clause([-e_total, a, -b], label, c, counter, cids)
            self._clause([-e_total, -a, b], label, c, counter, cids)
            self._clause([e_i, a, b], label, c, counter, cids)
            self._clause([e_i, -a, -b], label, c, counter, cids)
            closing.append(-e_i)
        for lit in units:
            self._clause([-e_total, lit], label, c, counter, cids)
            closing.append(-lit)
        self._clause(closing + [e_total], label, c, counter, cids)
        return e_total

    def _bump_fold(self, c) -> None:
        setattr(c, self.fold_counter, getattr(c, self.fold_counter) + 1)

    def _new_var(self, c) -> int:
        c.vars_added += 1
        return self.solver.new_var()

    def _clause(self, lits: list[int], label: Hashable, c, counter: str,
                cids: Optional[list[int]] = None) -> None:
        setattr(c, counter, getattr(c, counter) + 1)
        cid = self.solver.add_clause(lits, label)
        if cid < 0:
            c.absorbed += 1
        elif cids is not None:
            cids.append(cid)
