"""Efficient Memory Modeling (the paper's core contribution, S6).

For every memory kept in the verification model, an :class:`EmmMemory`
adds constraints at each BMC depth that preserve the data-forwarding
semantics *data read = most recent data written at the same address*
(equations (1)/(3)) without modeling a single memory bit:

* address-comparison signals in direct CNF — exactly the paper's
  ``4m+1``-clause encoding per read/write pair;
* exclusive valid-read signal chains ``s / PS / S`` as 2-input gates —
  equation (4), 3 gates per pair — giving the solver the one-hot
  "choose a matching pair, kill the others" propagation of Section 3;
* read-data constraints in direct CNF — equation (5), ``2n`` clauses per
  pair plus the validity clause;
* precise arbitrary-initial-state modeling — fresh symbolic words per
  read with the pairwise consistency constraints of equation (6), which
  is what makes SAT-based induction proofs sound (Section 4.2).

Two chain back-ends realise those semantics: the default routes the
chain and read-data muxes through the structurally hashed AIG
(``hybrid_strash``, shared builders with the pure-gate encoding in
:mod:`repro.aig.ops`, cross-frame suffix sharing on recurring address
cones), while ``hybrid_strash=False`` re-emits the paper's direct CNF
above — the exact encoding the closed forms below count.

:mod:`repro.emm.accounting` carries the paper's closed-form constraint
counts; tests assert the implementation matches them clause for clause.
:mod:`repro.emm.addrcmp` deduplicates the address comparators behind
those counts (per-memory or session-shared cache + constant folding,
multi-label PBA provenance) — the closed forms are upper bounds once
dedup is on, and ``EmmCounters`` reports how much was saved
(``addr_eq_cache_hits`` / ``addr_eq_folded`` /
``cross_mem_cmp_hits``).
"""

from repro.emm.addrcmp import AddrComparator, SharedComparatorTables
from repro.emm.forwarding import EmmMemory, EmmCounters, InitReadRegistry
from repro.emm.races import RaceResult, find_data_race
from repro.emm import accounting

__all__ = ["AddrComparator", "SharedComparatorTables", "EmmMemory",
           "EmmCounters", "InitReadRegistry", "RaceResult", "find_data_race",
           "accounting"]
