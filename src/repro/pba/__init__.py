"""Proof-based abstraction (substrate S7).

From the unsat core of each bounded falsification check, the engine
accumulates *latch reasons* ``LR_i`` (Figure 1 lines 10-11 / Figure 3
lines 11-12).  This package turns those reasons into abstract models:

* latches outside the stable reason set become pseudo-primary inputs
  (their link/init clauses are dropped);
* a memory module is abstracted away entirely — no EMM constraints —
  when none of its control latches (the latches driving its interface
  signals) appear in the reason set (Section 4.3);
* the stability-depth loop and iterative abstraction follow the paper's
  reference [10].
"""

from repro.pba.abstraction import (PbaPhase, run_pba_phase, verify_with_pba,
                                   PbaVerification)
from repro.pba.iterative import (IterativeAbstractionResult,
                                 iterative_abstraction)
from repro.pba.minimize import MinimizationResult, minimize_reasons

__all__ = ["PbaPhase", "run_pba_phase", "verify_with_pba", "PbaVerification",
           "IterativeAbstractionResult", "iterative_abstraction",
           "MinimizationResult", "minimize_reasons"]
