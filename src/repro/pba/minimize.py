"""Deletion-based minimization of PBA latch reasons.

Unsat cores are *sufficient* but not *minimal*: the solver's refutation
may incidentally walk through link clauses of latches the property does
not actually need (Section 4.3 decides memory abstraction by exactly
those latches, so a spurious control latch keeps a whole memory module
alive).  This module shrinks a stable reason set the same way MUS
extractors shrink cores — try deleting a candidate, keep the deletion if
the bounded correctness check still holds on the (more abstract) model.

Soundness: freeing a latch or dropping a memory's EMM constraints only
*adds* behaviours.  If the property still holds up to the stability
depth on the smaller model, the smaller model preserves correctness up
to that depth just as the PBA abstraction itself does [9, 10]; the
subsequent unbounded proof runs on the reduced model and transfers to
the concrete design.

Two granularities, coarse first (the cheap win the paper reports —
dropping the quicksort *array* module entirely for property P2):

* ``memory`` — drop a memory module's EMM constraints together with the
  control latches only it uses;
* ``latch`` — drop one latch at a time (pseudo-primary input).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bmc.engine import BmcEngine, BmcOptions
from repro.bmc.results import CEX
from repro.design.cone import memory_control_latches
from repro.design.netlist import Design


@dataclass
class MinimizationResult:
    """Outcome of :func:`minimize_reasons`."""

    latches: frozenset[str]
    memories: frozenset[str]
    read_ports: dict = field(default_factory=dict)
    #: Candidates whose deletion was attempted and kept.
    dropped_latches: frozenset[str] = frozenset()
    dropped_memories: frozenset[str] = frozenset()
    #: Bounded checks performed (one BMC run per attempted deletion).
    checks: int = 0


def holds_up_to(design: Design, property_name: str, depth: int,
                options: BmcOptions) -> bool:
    """True when the property has no counterexample at any depth <= depth.

    Runs plain bounded falsification (no proof or PBA machinery) under the
    abstraction encoded in ``options``; abstract models over-approximate,
    so a True answer transfers to the concrete design up to ``depth``.
    """
    opts = replace(options, find_proof=False, pba=False, max_depth=depth,
                   validate_cex=False)
    result = BmcEngine(design, property_name, opts).run()
    if result.status == "timeout":
        return False  # inconclusive: treat as "cannot delete"
    return result.status != CEX


def minimize_reasons(design: Design, property_name: str,
                     latch_reasons: frozenset[str], depth: int,
                     options: Optional[BmcOptions] = None,
                     kept_memories: Optional[frozenset[str]] = None,
                     kept_read_ports: Optional[dict] = None,
                     granularity: str = "memory",
                     core_unlabeled: int = 0,
                     ) -> MinimizationResult:
    """Shrink ``latch_reasons`` by attempted deletion at ``depth``.

    ``granularity`` is ``"memory"`` (drop whole memory modules — cheap,
    usually all Table 2 needs), ``"latch"`` (drop latches one by one), or
    ``"both"`` (memories first, then remaining latches).

    ``core_unlabeled`` is the source run's
    ``BmcRunStats.core_unlabeled``: deletion-based shrinking treats the
    reason list as *exhaustive* (anything outside it is assumed safe to
    try deleting), which only holds if every core clause carried a
    provenance label.  A nonzero count is refused rather than silently
    minimized on incomplete reasons.
    """
    if granularity not in ("memory", "latch", "both"):
        raise ValueError(f"unknown granularity {granularity!r}")
    if core_unlabeled:
        raise ValueError(
            f"reason list is not exhaustive: {core_unlabeled} core "
            "clause(s) carried no provenance label "
            "(see BmcRunStats.core_unlabeled)")
    base = options or BmcOptions()
    latches = set(latch_reasons)
    memories = set(kept_memories if kept_memories is not None
                   else frozenset(design.memories))
    ports = dict(kept_read_ports or {})
    dropped_l: set[str] = set()
    dropped_m: set[str] = set()
    checks = 0

    def current_options(try_latches: set[str], try_memories: set[str]) -> BmcOptions:
        return replace(base,
                       kept_latches=frozenset(try_latches),
                       kept_memories=frozenset(try_memories),
                       kept_read_ports={m: p for m, p in ports.items()
                                        if m in try_memories})

    if granularity in ("memory", "both"):
        for mem_name in sorted(memories):
            control = memory_control_latches(design, mem_name) & latches
            # Control latches shared with another kept memory must stay.
            shared = set()
            for other in memories:
                if other != mem_name:
                    shared |= memory_control_latches(design, other)
            removable = control - shared
            try_latches = latches - removable
            try_memories = memories - {mem_name}
            checks += 1
            if holds_up_to(design, property_name, depth,
                           current_options(try_latches, try_memories)):
                latches = try_latches
                memories = try_memories
                dropped_m.add(mem_name)
                dropped_l |= removable

    if granularity in ("latch", "both"):
        for name in sorted(latches):
            try_latches = latches - {name}
            checks += 1
            if holds_up_to(design, property_name, depth,
                           current_options(try_latches, memories)):
                latches = try_latches
                dropped_l.add(name)
            # A latch that cannot be dropped stays; continue with the rest
            # (deletion order is fixed by name for reproducibility).

    return MinimizationResult(
        latches=frozenset(latches),
        memories=frozenset(memories),
        read_ports={m: p for m, p in ports.items() if m in memories},
        dropped_latches=frozenset(dropped_l),
        dropped_memories=frozenset(dropped_m),
        checks=checks,
    )
