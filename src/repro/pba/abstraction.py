"""PBA driver: stability loop, abstract-model generation, verification.

The flow reproduces Table 2 of the paper:

1. *Abstraction phase* — run BMC with PBA (unsat-core latch reasons) until
   the reason set ``LR`` is unchanged for ``stability_depth`` consecutive
   depths (or a counterexample/bound is hit).
2. *Model reduction* — keep only the latches in the stable ``LR``; keep a
   memory module only if one of its control latches survived.
3. *Proof phase* — run full BMC-3 (induction) on the reduced model.  The
   abstraction only adds behaviours, so a proof transfers to the concrete
   design; an abstract counterexample is reported as inconclusive
   (``abstract-cex``) rather than trusted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bmc.engine import BmcEngine, BmcOptions
from repro.bmc.results import CEX, PROOF, BmcResult
from repro.bmc.session import SessionCache
from repro.design.cone import latch_support, memory_control_latches
from repro.design.netlist import Design


def _make_engine(design: Design, property_name: str, opts: BmcOptions,
                 session_cache: Optional[SessionCache]) -> BmcEngine:
    """Engine on a cached session when a cache is supplied.

    Rounds with different kept sets encode differently and thus get
    different sessions, but *repeated* flows over the same (design,
    options) — re-verification requests, the proof run of a converged
    fixpoint — reuse the live encoding and its learned clauses.
    """
    if session_cache is None:
        return BmcEngine(design, property_name, opts)
    session = session_cache.get_or_create(design, opts)
    return BmcEngine(session.design, property_name, opts, session=session)


@dataclass
class PbaPhase:
    """Outcome of the abstraction (reason-collection) phase."""

    stable: bool
    stable_depth: int
    latch_reasons: frozenset[str]
    kept_memories: frozenset[str]
    abstracted_memories: frozenset[str]
    reasons_per_depth: list[frozenset[str]]
    #: Latch *bits* kept vs original (the paper's "FF (orig)" columns).
    kept_latch_bits: int
    orig_latch_bits: int
    wall_time_s: float
    #: Set when the phase ended early with a real counterexample.
    cex_result: Optional[BmcResult] = None
    #: Per-kept-memory read ports retained (Section 4.3 port abstraction).
    kept_read_ports: dict = field(default_factory=dict)
    #: Unlabelled clauses seen in the source run's cores
    #: (``BmcRunStats.core_unlabeled``); nonzero means the reason lists
    #: are incomplete and deletion-based minimization must refuse.
    core_unlabeled: int = 0


@dataclass
class PbaVerification:
    """Full PBA pipeline outcome: abstraction phase + proof on reduced model."""

    phase: PbaPhase
    #: Result of the proof run on the reduced model (None if phase found CEX).
    proof_result: Optional[BmcResult]
    #: 'proof' | 'cex' | 'abstract-cex' | 'bounded' | 'timeout'
    status: str
    #: Set when reason minimization ran (``minimize != "off"``).
    minimization: Optional["MinimizationResult"] = None


def run_pba_phase(design: Design, property_name: str,
                  stability_depth: int = 10,
                  max_depth: int = 60,
                  options: Optional[BmcOptions] = None,
                  session_cache: Optional[SessionCache] = None) -> PbaPhase:
    """Collect latch reasons until the set is stable (paper's [10])."""
    base = options or BmcOptions()
    opts = replace(base, pba=True, find_proof=False, max_depth=max_depth)
    t0 = time.monotonic()
    engine = _make_engine(design, property_name, opts, session_cache)

    def stable_enough(eng: BmcEngine, _depth: int) -> bool:
        lr = eng.latch_reasons
        if len(lr) <= stability_depth:
            return False
        window = lr[-(stability_depth + 1):]
        return all(s == window[0] for s in window)

    result = engine.run(stop_check=stable_enough)
    reasons = result.latch_reasons
    mem_reasons = result.memory_reasons
    unlabeled = result.stats.core_unlabeled
    if result.status == CEX:
        return _phase_from(design, reasons, mem_reasons, stable=False,
                           stable_depth=result.depth, t0=t0, cex=result,
                           core_unlabeled=unlabeled)
    stable_at = _stability_point(reasons, stability_depth)
    if stable_at is None:
        # Bound hit without stabilising: use the final set, flag unstable.
        return _phase_from(design, reasons, mem_reasons, stable=False,
                           stable_depth=len(reasons) - 1, t0=t0,
                           core_unlabeled=unlabeled)
    return _phase_from(design, reasons, mem_reasons, stable=True,
                       stable_depth=stable_at, t0=t0,
                       core_unlabeled=unlabeled)


def _stability_point(reasons: list[frozenset[str]],
                     stability_depth: int) -> Optional[int]:
    """First depth whose reason set persists for ``stability_depth`` depths."""
    if not reasons:
        return None
    run_start = 0
    for i in range(1, len(reasons)):
        if reasons[i] != reasons[run_start]:
            run_start = i
    # reasons[run_start:] are all equal; require the run to be long enough.
    if len(reasons) - run_start > stability_depth:
        return run_start
    return None


def _phase_from(design: Design, reasons: list[frozenset[str]],
                mem_reasons: list[frozenset[str]], stable: bool,
                stable_depth: int, t0: float,
                cex: Optional[BmcResult] = None,
                core_unlabeled: int = 0) -> PbaPhase:
    # A counterexample run has reason entries only for the depths whose
    # falsification check was UNSAT; clamp into range.
    index = min(stable_depth, len(reasons) - 1)
    latch_reasons = reasons[index] if reasons else frozenset()
    used_memories = mem_reasons[min(index, len(mem_reasons) - 1)] \
        if mem_reasons else frozenset()
    kept_mems = set()
    kept_ports: dict = {}
    for mem_name, mem in design.memories.items():
        # The paper's criterion: a memory stays if a control latch (logic
        # driving its interface signals) is among the latch reasons.  We
        # additionally keep a memory whose own EMM constraints appeared in
        # an unsat core — possible when the refutation needs only the
        # forwarding semantics (data facts) and no address latch.
        control = memory_control_latches(design, mem_name)
        if control & latch_reasons or mem_name in used_memories:
            kept_mems.add(mem_name)
            # Port-level abstraction: drop read ports none of whose
            # control latches survived.  Ports with latch-free interfaces
            # (pure input addressing) are always kept — there is nothing
            # to decide them by, and keeping them is the safe default.
            ports = set()
            for port in mem.read_ports:
                support = latch_support([e for e in (port.addr, port.en)
                                         if e is not None])
                if not support or support & latch_reasons:
                    ports.add(port.index)
            if not ports:
                ports = {p.index for p in mem.read_ports}
            kept_ports[mem_name] = frozenset(ports)
    kept_bits = sum(design.latches[n].width for n in latch_reasons)
    return PbaPhase(
        stable=stable,
        stable_depth=stable_depth,
        latch_reasons=latch_reasons,
        kept_memories=frozenset(kept_mems),
        abstracted_memories=frozenset(design.memories) - frozenset(kept_mems),
        reasons_per_depth=list(reasons),
        kept_latch_bits=kept_bits,
        orig_latch_bits=design.num_latch_bits(),
        wall_time_s=time.monotonic() - t0,
        cex_result=cex,
        kept_read_ports=kept_ports,
        core_unlabeled=core_unlabeled,
    )


def verify_with_pba(design: Design, property_name: str,
                    stability_depth: int = 10,
                    abstraction_max_depth: int = 40,
                    proof_max_depth: int = 80,
                    options: Optional[BmcOptions] = None,
                    minimize: str = "off",
                    session_cache: Optional[SessionCache] = None,
                    ) -> PbaVerification:
    """The paper's combined EMM+PBA flow (Section 4.3 / Table 2).

    ``minimize`` shrinks the stable reason set by attempted deletion
    before the proof run: ``"off"`` uses the raw unsat-core reasons,
    ``"memory"`` / ``"latch"`` / ``"both"`` invoke
    :func:`repro.pba.minimize.minimize_reasons` at that granularity.
    Raw cores are sufficient but not minimal — a spurious control latch
    can keep a whole memory module alive (see Table 2: the quicksort
    array must drop out for P2).
    """
    phase = run_pba_phase(design, property_name, stability_depth,
                          abstraction_max_depth, options,
                          session_cache=session_cache)
    if phase.cex_result is not None:
        return PbaVerification(phase=phase, proof_result=phase.cex_result,
                               status=CEX)
    base = options or BmcOptions()
    minimization = None
    if minimize != "off":
        from repro.pba.minimize import minimize_reasons
        minimization = minimize_reasons(
            design, property_name, phase.latch_reasons,
            depth=phase.stable_depth, options=base,
            kept_memories=phase.kept_memories,
            kept_read_ports=phase.kept_read_ports,
            granularity=minimize,
            core_unlabeled=phase.core_unlabeled)
        kept_bits = sum(design.latches[n].width for n in minimization.latches)
        phase = replace(
            phase,
            latch_reasons=minimization.latches,
            kept_memories=minimization.memories,
            abstracted_memories=(frozenset(design.memories)
                                 - minimization.memories),
            kept_read_ports=minimization.read_ports,
            kept_latch_bits=kept_bits,
        )
    proof_opts = replace(
        base,
        pba=False,
        find_proof=True,
        max_depth=proof_max_depth,
        kept_latches=phase.latch_reasons,
        kept_memories=phase.kept_memories,
        kept_read_ports=phase.kept_read_ports,
        # Abstract models over-approximate: counterexamples there are not
        # trustworthy, so replay-validation is pointless.
        validate_cex=False,
    )
    result = _make_engine(design, property_name, proof_opts,
                          session_cache).run()
    if result.status == PROOF:
        status = PROOF
    elif result.status == CEX:
        # Spurious unless the model happens to be concrete.
        concrete = (phase.latch_reasons == frozenset(design.latches)
                    and phase.kept_memories == frozenset(design.memories))
        status = CEX if concrete else "abstract-cex"
    else:
        status = result.status
    return PbaVerification(phase=phase, proof_result=result, status=status,
                           minimization=minimization)
