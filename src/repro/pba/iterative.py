"""Iterative abstraction (the paper's reference [10], Section 2.2).

"One can apply PBA techniques iteratively, called iterative abstraction,
to further reduce the set LRd and hence, obtain a smaller abstract
model."  Each round re-runs the reason-collection phase *on the current
abstract model* (kept latches / memories from the previous round); freed
latches cannot re-enter, so the reason set shrinks monotonically until a
fixpoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.bmc.engine import BmcOptions
from repro.bmc.results import CEX, PROOF, BmcResult
from repro.bmc.session import SessionCache
from repro.pba.abstraction import PbaPhase, _make_engine, run_pba_phase
from repro.design.netlist import Design


@dataclass
class IterativeAbstractionResult:
    """Outcome of the iterative-abstraction loop."""

    rounds: list[PbaPhase] = field(default_factory=list)
    converged: bool = False
    final_latches: frozenset[str] = frozenset()
    final_memories: frozenset[str] = frozenset()
    final_read_ports: dict = field(default_factory=dict)
    #: Proof (or other verdict) on the final abstract model, if requested.
    proof_result: Optional[BmcResult] = None
    status: str = "bounded"
    wall_time_s: float = 0.0

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def iterative_abstraction(design: Design, property_name: str,
                          stability_depth: int = 10,
                          max_depth: int = 40,
                          max_rounds: int = 4,
                          proof_max_depth: Optional[int] = 80,
                          options: Optional[BmcOptions] = None,
                          session_cache: Optional[SessionCache] = None,
                          ) -> IterativeAbstractionResult:
    """Repeat the PBA phase on shrinking models until a fixpoint.

    When ``proof_max_depth`` is not None, a BMC-3 proof run is attempted
    on the final abstract model; a PROOF verdict transfers to the
    concrete design (the abstraction only adds behaviours).

    ``session_cache`` enables encoding reuse *across* calls (and between
    a converged round and its repeat): rounds with shrinking kept sets
    necessarily encode fresh sessions — the abstraction changes the CNF
    — but identical (design, options) requests hit the cache.
    """
    t0 = time.monotonic()
    base = options or BmcOptions()
    out = IterativeAbstractionResult()
    kept_latches: Optional[frozenset[str]] = base.kept_latches
    kept_memories = base.kept_memories
    kept_ports = base.kept_read_ports
    for __ in range(max_rounds):
        round_opts = replace(base, kept_latches=kept_latches,
                             kept_memories=kept_memories,
                             kept_read_ports=kept_ports,
                             validate_cex=False)
        phase = run_pba_phase(design, property_name, stability_depth,
                              max_depth, round_opts,
                              session_cache=session_cache)
        out.rounds.append(phase)
        if phase.cex_result is not None:
            # On the concrete model this is a real CEX; on an abstract
            # round it is inconclusive — either way the loop stops.
            concrete = kept_latches is None and kept_memories is None
            out.status = CEX if concrete else "abstract-cex"
            out.proof_result = phase.cex_result
            out.wall_time_s = time.monotonic() - t0
            return out
        if phase.core_unlabeled:
            # An unlabelled core clause means the round's reason list is
            # not exhaustive — tightening the model on it could free a
            # latch the proof actually used.  Keep the current model.
            break
        new_latches = phase.latch_reasons
        if kept_latches is not None and new_latches == kept_latches:
            out.converged = True
            break
        kept_latches = new_latches
        kept_memories = phase.kept_memories
        kept_ports = phase.kept_read_ports
    out.final_latches = kept_latches if kept_latches is not None else frozenset()
    out.final_memories = (kept_memories if kept_memories is not None
                          else frozenset(design.memories))
    out.final_read_ports = dict(kept_ports or {})
    if proof_max_depth is not None:
        proof_opts = replace(base, pba=False, find_proof=True,
                             max_depth=proof_max_depth,
                             kept_latches=out.final_latches,
                             kept_memories=out.final_memories,
                             kept_read_ports=out.final_read_ports,
                             validate_cex=False)
        result = _make_engine(design, property_name, proof_opts,
                              session_cache).run()
        out.proof_result = result
        if result.status == PROOF:
            out.status = PROOF
        elif result.status == CEX:
            out.status = "abstract-cex"
        else:
            out.status = result.status
    out.wall_time_s = time.monotonic() - t0
    return out
