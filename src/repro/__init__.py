"""repro — Efficient Memory Modeling for SAT-based BMC.

A complete reproduction of *"Verification of Embedded Memory Systems
using Efficient Memory Modeling"* (Ganai, Gupta, Ashar — DATE 2005):
a word-level design IR with embedded multi-port memories, a CDCL SAT
solver with resolution-proof logging, a BMC engine with induction proofs
(BMC-1/2/3), EMM constraint generation for multi-port multi-memory
systems with precise arbitrary-initial-state modeling, proof-based
abstraction, the explicit-memory baseline, and the paper's case studies.

Quick taste::

    from repro.design import Design
    from repro.bmc import verify, bmc3

    d = Design("demo")
    cnt = d.latch("cnt", 4, init=0)
    cnt.next = cnt.expr + 1
    mem = d.memory("m", addr_width=4, data_width=8, init=0)
    mem.write(0).connect(addr=cnt.expr, data=d.input("x", 8), en=1)
    rd = mem.read(0).connect(addr=d.input("a", 4), en=1)
    d.invariant("p", rd.ule(255))
    print(verify(d, "p", bmc3(max_depth=10)).describe())
"""

__version__ = "1.0.0"

from repro.bmc import BmcOptions, BmcResult, bmc1, bmc2, bmc3, verify
from repro.design import Design, expand_memories

__all__ = ["Design", "expand_memories", "BmcOptions", "BmcResult",
           "bmc1", "bmc2", "bmc3", "verify", "__version__"]
