"""CNF preprocessing: SatELite-style simplification with model repair.

BMC instances are machine-generated and heavily redundant — Tseitin
variables with single occurrences, subsumed link clauses, units from
constant initial states.  This module shrinks a CNF before solving:

* unit propagation to fixpoint,
* pure-literal elimination,
* (self-)subsumption — clause C subsumes D when C ⊆ D; self-subsuming
  resolution strengthens D by dropping a literal when C ⊆ D up to one
  flipped literal,
* bounded variable elimination (BVE) — resolve a variable away when the
  resolvent set is no larger than the clauses it replaces.

Everything is equisatisfiable, not equivalent: eliminated variables and
pure literals are recorded on a reconstruction stack so
:meth:`SimplifyResult.extend_model` can repair any model of the
simplified CNF into a model of the original.  The preprocessor is
deliberately standalone (plain ints and lists, no solver coupling) so it
can front any backend and stay easy to test exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

Clause = tuple[int, ...]


@dataclass
class PreprocessStats:
    """Work counters for one :func:`simplify` run."""

    units_propagated: int = 0
    pure_literals: int = 0
    subsumed: int = 0
    strengthened: int = 0
    vars_eliminated: int = 0
    resolvents_added: int = 0
    rounds: int = 0


@dataclass
class SimplifyResult:
    """Simplified CNF plus everything needed to undo the simplification."""

    num_vars: int
    clauses: list[Clause]
    #: UNSAT was proven outright during preprocessing.
    unsat: bool = False
    #: Literals fixed by propagation/pure-literal reasoning (external).
    fixed: dict[int, bool] = field(default_factory=dict)
    #: Reconstruction stack: (var, clauses it must satisfy) in
    #: elimination order; replayed in reverse by :meth:`extend_model`.
    _stack: list[tuple[int, list[Clause]]] = field(default_factory=list)
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    def extend_model(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified CNF to the original variables.

        ``model`` maps var -> bool for the surviving variables; the result
        adds the fixed and eliminated variables.  Raises ``ValueError``
        when the given assignment does not satisfy the simplified CNF.
        """
        full = dict(model)
        full.update(self.fixed)

        def lit_true(lit: int) -> Optional[bool]:
            val = full.get(abs(lit))
            if val is None:
                return None
            return val == (lit > 0)

        for clause in self.clauses:
            if not any(lit_true(lt) for lt in clause):
                raise ValueError("model does not satisfy the simplified CNF")
        for var, clauses in reversed(self._stack):
            # The variable was eliminated by resolution: one polarity
            # always works.  Try False, flip if some clause needs True.
            full.setdefault(var, False)
            for clause in clauses:
                if not any(lit_true(lt) for lt in clause):
                    full[var] = not full[var]
                    break
            for clause in clauses:
                if not any(lit_true(lt) for lt in clause):
                    raise ValueError(
                        f"reconstruction failed for variable {var}")
        return full


def _signature(clause: Clause) -> int:
    """64-bit membership fingerprint for fast subsumption rejection."""
    sig = 0
    for lit in clause:
        sig |= 1 << (abs(lit) * 2 + (lit < 0)) % 64
    return sig


class Preprocessor:
    """Mutable working set of clauses with occurrence lists."""

    def __init__(self, num_vars: int,
                 clauses: Iterable[Sequence[int]] = ()) -> None:
        self.num_vars = num_vars
        self._clauses: dict[int, Clause] = {}
        self._occur: dict[int, set[int]] = {}
        self._next_id = 0
        self._fixed: dict[int, bool] = {}
        self._stack: list[tuple[int, list[Clause]]] = []
        self._frozen: set[int] = set()
        self._unsat = False
        self.stats = PreprocessStats()
        for c in clauses:
            self.add_clause(c)

    # -- construction -----------------------------------------------------

    def add_clause(self, lits: Sequence[int]) -> None:
        out: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            if not lit or abs(lit) > self.num_vars:
                raise ValueError(f"bad literal {lit}")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self._store(tuple(sorted(out, key=abs)))

    def freeze(self, var: int) -> None:
        """Protect a variable from elimination (interface variables)."""
        self._frozen.add(abs(var))

    # -- the pipeline ------------------------------------------------------

    def simplify(self, rounds: int = 3,
                 elimination_growth: int = 0) -> SimplifyResult:
        """Run the full pipeline; ``rounds`` bounds the outer fixpoint.

        ``elimination_growth`` allows BVE to add up to that many clauses
        over the ones removed (0 = classic NiVER never-grow rule).
        """
        for _ in range(rounds):
            if self._unsat:
                break
            self.stats.rounds += 1
            changed = self._propagate_units()
            changed |= self._pure_literals()
            changed |= self._subsumption()
            changed |= self._eliminate_variables(elimination_growth)
            if not changed:
                break
        return self._result()

    # -- individual techniques --------------------------------------------

    def _propagate_units(self) -> bool:
        changed = False
        while not self._unsat:
            unit = next((c for c in self._clauses.values() if len(c) == 1), None)
            if unit is None:
                break
            self._assign(unit[0])
            self.stats.units_propagated += 1
            changed = True
        return changed

    def _pure_literals(self) -> bool:
        changed = False
        while not self._unsat:
            pure: Optional[int] = None
            for var in list(self._occur_vars()):
                if var in self._frozen or var in self._fixed:
                    continue
                pos = self._occur.get(var, set())
                neg = self._occur.get(-var, set())
                if pos and not neg:
                    pure = var
                    break
                if neg and not pos:
                    pure = -var
                    break
            if pure is None:
                break
            # Record for reconstruction, then drop the satisfied clauses.
            # (The polarity choice is forced, so fixing it is sound.)
            satisfied = [self._clauses[cid]
                         for cid in self._occur.get(pure, set())]
            self._stack.append((abs(pure), satisfied))
            self._fixed[abs(pure)] = pure > 0
            for cid in list(self._occur.get(pure, set())):
                self._remove(cid)
            self.stats.pure_literals += 1
            changed = True
        return changed

    def _subsumption(self) -> bool:
        changed = False
        sigs = {cid: _signature(c) for cid, c in self._clauses.items()}
        by_size = sorted(self._clauses, key=lambda cid: len(self._clauses.get(cid, ())))
        for cid in by_size:
            clause = self._clauses.get(cid)
            if clause is None:
                continue
            sig = sigs[cid]
            # Candidates: clauses sharing the least-occurring literal.
            best_lit = min(clause, key=lambda lt: len(self._occur.get(lt, set())))
            for other_id in list(self._occur.get(best_lit, set())):
                if other_id == cid:
                    continue
                other = self._clauses.get(other_id)
                if other is None or len(other) < len(clause):
                    continue
                if sig & ~sigs.get(other_id, 0):
                    continue
                if set(clause) <= set(other):
                    self._remove(other_id)
                    self.stats.subsumed += 1
                    changed = True
            # Self-subsuming resolution: for each literal l in clause, if
            # (clause \ {l}) ∪ {-l} ⊆ other, drop -l from other.
            for lit in clause:
                flipped = tuple(sorted(
                    [-lit] + [lt for lt in clause if lt != lit], key=abs))
                fsig = _signature(flipped)
                for other_id in list(self._occur.get(-lit, set())):
                    if other_id == cid:
                        continue
                    other = self._clauses.get(other_id)
                    if other is None or len(other) < len(flipped):
                        continue
                    if fsig & ~sigs.get(other_id, 0):
                        continue
                    if set(flipped) <= set(other):
                        stronger = tuple(lt for lt in other if lt != -lit)
                        self._remove(other_id)
                        new_id = self._store(stronger)
                        if new_id is not None:
                            sigs[new_id] = _signature(stronger)
                        self.stats.strengthened += 1
                        changed = True
        return changed

    def _eliminate_variables(self, growth: int) -> bool:
        changed = False
        for var in range(1, self.num_vars + 1):
            if self._unsat:
                break
            if var in self._frozen or var in self._fixed:
                continue
            pos = [self._clauses[c] for c in self._occur.get(var, set())]
            neg = [self._clauses[c] for c in self._occur.get(-var, set())]
            if not pos and not neg:
                continue
            if len(pos) * len(neg) > len(pos) + len(neg) + growth + 8:
                continue  # cheap cutoff before building resolvents
            resolvents: list[Clause] = []
            for p in pos:
                for n in neg:
                    r = self._resolve(p, n, var)
                    if r is not None:
                        resolvents.append(r)
            if len(resolvents) > len(pos) + len(neg) + growth:
                continue
            # Commit: remember removed clauses for model reconstruction.
            removed = pos + neg
            self._stack.append((var, removed))
            for cid in list(self._occur.get(var, set()) | self._occur.get(-var, set())):
                self._remove(cid)
            for r in resolvents:
                self._store(r)
                self.stats.resolvents_added += 1
            self.stats.vars_eliminated += 1
            changed = True
        return changed

    # -- plumbing -----------------------------------------------------------

    @staticmethod
    def _resolve(p: Clause, n: Clause, var: int) -> Optional[Clause]:
        merged: set[int] = set(lt for lt in p if lt != var)
        for lt in n:
            if lt == -var:
                continue
            if -lt in merged:
                return None  # tautological resolvent
            merged.add(lt)
        return tuple(sorted(merged, key=abs))

    def _occur_vars(self) -> set[int]:
        return {abs(lt) for lt, occ in self._occur.items() if occ}

    def _store(self, clause: Clause) -> Optional[int]:
        if self._unsat:
            return None
        if not clause:
            self._unsat = True
            return None
        # Apply already-fixed assignments eagerly.
        out: list[int] = []
        for lit in clause:
            val = self._fixed.get(abs(lit))
            if val is None:
                out.append(lit)
            elif val == (lit > 0):
                return None  # satisfied
        if not out:
            self._unsat = True
            return None
        cid = self._next_id
        self._next_id += 1
        stored = tuple(out)
        self._clauses[cid] = stored
        for lit in stored:
            self._occur.setdefault(lit, set()).add(cid)
        return cid

    def _remove(self, cid: int) -> None:
        clause = self._clauses.pop(cid, None)
        if clause is None:
            return
        for lit in clause:
            occ = self._occur.get(lit)
            if occ is not None:
                occ.discard(cid)

    def _assign(self, lit: int) -> None:
        var = abs(lit)
        prev = self._fixed.get(var)
        if prev is not None:
            if prev != (lit > 0):
                self._unsat = True
            return
        self._fixed[var] = lit > 0
        for cid in list(self._occur.get(lit, set())):
            self._remove(cid)
        for cid in list(self._occur.get(-lit, set())):
            clause = self._clauses[cid]
            self._remove(cid)
            self._store(tuple(lt for lt in clause if lt != -lit))

    def _result(self) -> SimplifyResult:
        return SimplifyResult(
            num_vars=self.num_vars,
            clauses=sorted(self._clauses.values()),
            unsat=self._unsat,
            fixed=dict(self._fixed),
            _stack=list(self._stack),
            stats=self.stats,
        )


def simplify(num_vars: int, clauses: Iterable[Sequence[int]],
             rounds: int = 3, frozen: Iterable[int] = (),
             elimination_growth: int = 0) -> SimplifyResult:
    """One-call convenience wrapper around :class:`Preprocessor`."""
    pre = Preprocessor(num_vars, clauses)
    for var in frozen:
        pre.freeze(var)
    return pre.simplify(rounds=rounds, elimination_growth=elimination_growth)
