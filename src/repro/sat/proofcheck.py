"""Independent checking of the solver's resolution-style proof traces.

The paper's PBA step trusts ``SAT_Get_Refutation`` — the unsat core
retraced from the solver's resolution proof (reference [20], Zhang &
Malik, *Validating SAT Solvers Using an Independent Resolution-Based
Checker*, DATE 2003).  This module provides that validation leg:

* :func:`check_learned_clause` / :func:`check_all_learned` — verify each
  learned clause is implied by its recorded antecedents via *reverse
  unit propagation* (RUP): assert the clause's negation, unit-propagate
  over the antecedents only, and require a conflict.  A 1UIP resolution
  chain is always RUP-checkable from its antecedent set, so a failure
  here means the proof log (not the clause) is wrong.
* :func:`check_core` — independently confirm that the reported unsat
  core (plus the failed assumptions, if any) is itself unsatisfiable,
  by re-solving it from scratch in a fresh solver.

Both checks are *per-solve* diagnostics; production runs skip them, the
test-suite and the ``--check-proofs`` CLI flag use them to keep the PBA
machinery honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sat.solver import Solver


@dataclass
class ProofCheckReport:
    """Outcome of a full trace check."""

    checked: int = 0
    failed: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed

    def __str__(self) -> str:
        if self.ok:
            return f"proof trace OK ({self.checked} learned clauses verified)"
        return (f"proof trace BROKEN: {len(self.failed)} of {self.checked} "
                f"derivations failed RUP (first: clause {self.failed[0]})")


def _propagate_to_fixpoint(clauses: list[tuple[int, ...]],
                           assignment: dict[int, bool]) -> bool:
    """Naive counter-free unit propagation; True when a conflict appears.

    Quadratic in the worst case, which is fine: antecedent sets are tiny
    compared to the full CNF and this code must stay obviously correct —
    it is the *checker*.
    """
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            satisfied = False
            count = 0
            for lit in clause:
                var = abs(lit)
                val = assignment.get(var)
                if val is None:
                    unassigned = lit
                    count += 1
                elif val == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if count == 0:
                return True  # every literal false: conflict
            if count == 1:
                assert unassigned is not None
                assignment[abs(unassigned)] = unassigned > 0
                changed = True
    return False


def check_learned_clause(solver: Solver, cid: int) -> bool:
    """RUP-check one learned clause against its recorded antecedents."""
    antecedents = solver.derivation(cid)
    if antecedents is None:
        raise ValueError(f"clause {cid} is not a learned clause")
    clause = solver.proof_clause_literals(cid)
    side = [solver.proof_clause_literals(a) for a in antecedents]
    # Assert the negation of the learned clause.
    assignment: dict[int, bool] = {}
    for lit in clause:
        var = abs(lit)
        want = lit < 0
        if assignment.get(var, want) != want:
            return True  # clause is a tautology: trivially implied
        assignment[var] = want
    return _propagate_to_fixpoint(side, assignment)


def check_all_learned(solver: Solver,
                      sample: Optional[Iterable[int]] = None
                      ) -> ProofCheckReport:
    """RUP-check every learned clause (or the given sample of cids)."""
    if not solver.proof_logging:
        raise RuntimeError("solver was created with proof logging disabled")
    report = ProofCheckReport()
    cids = sorted(sample) if sample is not None else solver.learned_clause_ids()
    for cid in cids:
        report.checked += 1
        if not check_learned_clause(solver, cid):
            report.failed.append(cid)
    return report


def check_core(solver: Solver,
               assumptions: Sequence[int] = ()) -> bool:
    """Re-derive UNSAT of the reported core in a fresh solver.

    For assumption-based refutations pass the *same assumptions* given to
    the failing :meth:`Solver.solve` call; the check conjoins the core
    clauses with the failed subset of them.  Returns True when the core
    (so constrained) is confirmed unsatisfiable.
    """
    core = solver.core_clause_ids()
    failed = set(solver.failed_assumptions())
    if failed and not set(assumptions) >= failed:
        raise ValueError(
            "failed assumptions are not a subset of the assumptions given "
            "to check_core; pass the original assumption list")
    fresh = Solver(proof=False)
    max_var = 0
    clauses = [solver.proof_clause_literals(cid) for cid in sorted(core)]
    for lits in clauses:
        for lit in lits:
            max_var = max(max_var, abs(lit))
    for lit in failed:
        max_var = max(max_var, abs(lit))
    while fresh.num_vars < max_var:
        fresh.new_var()
    for lits in clauses:
        fresh.add_clause(lits)
    for lit in failed:
        fresh.add_clause([lit])
    return not fresh.solve().sat


def certify_unsat(solver: Solver,
                  assumptions: Sequence[int] = ()) -> ProofCheckReport:
    """Full certification: core re-derivation plus learned-clause RUP.

    Combines :func:`check_core` (end-to-end: the reported core really is
    unsatisfiable) with :func:`check_all_learned` (step-by-step: every
    logged derivation is locally sound).  Raises ``RuntimeError`` when no
    UNSAT answer is pending.
    """
    report = check_all_learned(solver)
    if not check_core(solver, assumptions):
        report.failed.append(-1)  # sentinel: the core itself failed
    return report
