"""CDCL SAT solver with resolution-proof logging.

The solver follows the classic MiniSat architecture.  Internally a literal
is encoded as ``var << 1 | sign`` (sign 1 = negated); the public API uses
signed DIMACS-style integers.  Every clause receives an integer id; learned
clauses record the tuple of clause ids resolved while deriving them
(including the unit chains behind level-0 literal eliminations), which lets
:meth:`Solver.core_clause_ids` expand a final conflict into a set of
original clauses sufficient for unsatisfiability — the paper's
``SAT_Get_Refutation`` step (Figure 1, line 10) that feeds proof-based
abstraction.

Two propagation back-ends share the search loop:

* **fast** (default) — MiniSat-2.2/Glucose-class machinery: a dedicated
  binary-implication watch list that propagates 2-literal clauses (the
  EMM-dominant shape) without touching clause objects, ``(cid, blocker)``
  pairs in the long-clause watch lists so satisfied clauses are skipped
  on the blocker alone, LBD (glue) scoring with a tiered clause-database
  reduction (glue <= 2 pinned), root-level shrinking of learned clauses
  against permanent level-0 units, and assumption-trail reuse — a solve
  whose assumption list shares a prefix with the previous solve keeps
  the propagated prefix assigned instead of cancelling to level 0.
* **baseline** (``fast=False``) — the historical single-watch-scheme
  implementation, kept bit-for-bit as the differential oracle
  (``BmcOptions.solver_baseline`` / CLI ``--solver-baseline``).

Both back-ends produce identical verdicts, models satisfying the CNF,
sound failed-assumption sets and proof-checkable cores; search order
(and therefore the exact learned clauses and cores) may differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

from repro.utils.luby import luby


class _VarOrder:
    """Indexed max-heap over variable activities (MiniSat's order heap).

    Position tracking keeps each variable in the heap at most once, so
    backtracking re-inserts cheaply and decisions never wade through
    stale duplicates.
    """

    __slots__ = ("activity", "heap", "pos")

    def __init__(self, activity: list[float]) -> None:
        self.activity = activity
        self.heap: list[int] = []
        self.pos: list[int] = [-1]

    def grow(self) -> None:
        self.pos.append(-1)

    def insert(self, var: int) -> None:
        if self.pos[var] != -1:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def bumped(self, var: int) -> None:
        p = self.pos[var]
        if p != -1:
            self._sift_up(p)

    def pop_max(self) -> int:
        heap = self.heap
        top = heap[0]
        self.pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self.pos[last] = 0
            self._sift_down(0)
        return top

    def __len__(self) -> int:
        return len(self.heap)

    def _sift_up(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        v = heap[i]
        a = act[v]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if act[pv] >= a:
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        n = len(heap)
        v = heap[i]
        a = act[v]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            right = left + 1
            child = right if right < n and act[heap[right]] > act[heap[left]] else left
            cv = heap[child]
            if a >= act[cv]:
                break
            heap[i] = cv
            pos[cv] = i
            i = child
        heap[i] = v
        pos[v] = i

UNASSIGNED = -1

_TRUE = 1
_FALSE = 0


def _to_internal(lit: int) -> int:
    """Signed DIMACS literal -> internal ``var << 1 | sign`` encoding."""
    if lit > 0:
        return lit << 1
    return (-lit) << 1 | 1


def _to_external(ilit: int) -> int:
    """Internal literal -> signed DIMACS literal."""
    var = ilit >> 1
    return -var if ilit & 1 else var


@dataclass
class SolverStats:
    """Counters accumulated over the lifetime of a solver."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    solves: int = 0
    #: Decision levels retained by assumption-trail reuse (fast mode):
    #: summed over solves, each counting the prefix of assumption levels
    #: kept assigned instead of being cancelled and re-propagated.
    trail_saved_levels: int = 0
    #: Learned clauses shrunk / literals removed by root-level
    #: simplification against permanent level-0 units (fast mode).
    shrunk_clauses: int = 0
    shrunk_lits: int = 0
    #: Wall-clock phase breakdown, populated only while
    #: :attr:`Solver.profile` is True (see ``repro.perf``).
    time_propagate_s: float = 0.0
    time_analyze_s: float = 0.0
    time_reduce_s: float = 0.0
    time_simplify_s: float = 0.0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class SolveResult:
    """Outcome of one :meth:`Solver.solve` call."""

    sat: bool
    #: Subset of the given assumptions sufficient for the conflict when
    #: ``sat`` is False; empty for plain (assumption-free) UNSAT.
    failed_assumptions: tuple[int, ...] = ()
    stats: dict = field(default_factory=dict)
    #: True when the solve aborted on a resource limit; ``sat`` is then
    #: meaningless and callers must treat the result as UNKNOWN.
    unknown: bool = False
    #: Which limit aborted the solve when ``unknown``: ``"conflicts"``
    #: (``max_conflicts`` exhausted) or ``"deadline"`` (wall clock).
    limit: Optional[str] = None

    def __bool__(self) -> bool:  # allows ``if solver.solve(...):``
        if self.unknown:
            raise RuntimeError("solve aborted on conflict budget (unknown result)")
        return self.sat


class Solver:
    """Incremental CDCL solver with optional proof logging.

    Parameters
    ----------
    proof:
        When True, every learned clause stores the ids of the clauses used
        in its derivation so unsat cores can be extracted.  BMC with PBA
        requires this; plain falsification runs may disable it to save
        memory.
    fast:
        Select the modern propagation back-end (binary watchers, blocker
        literals, LBD-tiered reduction, assumption-trail reuse — see the
        module docstring).  ``False`` runs the historical baseline, kept
        as the differential oracle.
    """

    #: Tier bounds for the fast reduce: learned clauses with glue (LBD)
    #: <= LBD_CORE are never deleted; glue <= LBD_TIER2 clauses survive a
    #: reduction round when they were used in an analysis since the last
    #: one; the rest ("local" tier) compete on activity.
    LBD_CORE = 2
    LBD_TIER2 = 6

    def __init__(self, proof: bool = True, fast: bool = True) -> None:
        self.proof_logging = proof
        self._fast = fast
        #: When True, the search loop records phase wall times into
        #: :class:`SolverStats` (``time_*_s`` fields).  Off by default —
        #: flipped by the engine under ``BmcOptions.profile``.
        self.profile = False
        # Variable state (index 0 unused so var numbers match list index).
        self._assigns: list[int] = [UNASSIGNED]
        self._levels: list[int] = [0]
        self._reasons: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._saved_phase: list[int] = [_FALSE]
        # Watches indexed by internal literal.  Baseline entries are bare
        # clause ids; fast entries are ``(cid, blocker)`` pairs.
        self._watches: list[list] = [[], []]
        # Fast mode: 2-literal clauses live here as ``(cid, other_lit)``
        # and are propagated without touching the clause object.
        self._bin_watches: list[list[tuple[int, int]]] = [[], []]
        # Clause database: list of literal-lists (None when deleted).
        self._clauses: list[Optional[list[int]]] = []
        self._learned_ids: list[int] = []
        self._clause_act: dict[int, float] = {}
        #: Learned cid -> glue (LBD) at learn time, lowered dynamically
        #: when the clause is used in an analysis (fast mode only).
        self._clause_lbd: dict[int, int] = {}
        #: Learned cids used in an analysis since the last _reduce_db.
        self._clause_used: set[int] = set()
        self._labels: dict[int, Hashable] = {}
        self._n_original = 0
        # Proof bookkeeping: learned cid -> tuple of antecedent cids.
        self._derivations: dict[int, tuple[int, ...]] = {}
        self._simplify_deps: dict[int, tuple[int, ...]] = {}
        self._l0_memo: dict[int, tuple[int, ...]] = {}
        # Literals of learned clauses deleted by _reduce_db (proof mode).
        self._proof_lits: dict[int, tuple[int, ...]] = {}
        # Trail.
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        #: Parallel to _trail_lim: the assumption literal decided (or
        #: found already true) at each level, 0 for free search
        #: decisions.  This is what assumption-trail reuse matches the
        #: next solve's assumption list against.
        self._assump_levels: list[int] = []
        #: Level-0 trail length the last _simplify_learned ran against.
        self._simplified_fixed = 0
        self._qhead = 0
        # Heuristics.
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order = _VarOrder(self._activity)
        self._max_learnts = 4000.0
        self._learnt_growth = 1.1
        # Terminal state.
        self._broken = False  # UNSAT without assumptions: solver is dead
        self._unsat_core_cids: Optional[frozenset[int]] = None
        self._last_failed: tuple[int, ...] = ()
        self.stats = SolverStats()
        # Scratch used by analyze.
        self._seen: list[bool] = [False]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def fast(self) -> bool:
        """Whether the modern (non-baseline) back-end is active."""
        return self._fast

    def new_var(self) -> int:
        """Allocate and return a fresh variable (positive integer)."""
        self._assigns.append(UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(-1)
        self._activity.append(0.0)
        self._saved_phase.append(_FALSE)
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        self._seen.append(False)
        var = len(self._assigns) - 1
        self._order.grow()
        self._order.insert(var)
        return var

    @property
    def num_vars(self) -> int:
        return len(self._assigns) - 1

    @property
    def num_clauses(self) -> int:
        """Number of original (non-learned) clauses added so far."""
        return self._n_original

    @property
    def is_broken(self) -> bool:
        """True once the CNF is unsatisfiable even without assumptions."""
        return self._broken

    def add_clause(self, lits: Iterable[int], label: Hashable = None) -> int:
        """Add an original clause; returns its clause id.

        ``label`` is an arbitrary hashable provenance tag reported back by
        :meth:`core_labels` when the clause participates in an unsat core.
        A clause may carry *several* labels — pass a ``frozenset`` of tags
        (or join more later with :meth:`add_label`); :meth:`core_labels`
        flattens label sets into their members, so a clause serving two
        consumers attributes to both.  Returns -1 when the clause is
        absorbed (tautology or already satisfied at level 0).  Adding the
        empty clause (or one that closes a level-0 conflict) renders the
        solver permanently unsatisfiable.
        """
        if self._broken:
            return -1
        ilits = [_to_internal(lt) for lt in lits]
        for lt in ilits:
            if not 1 <= (lt >> 1) <= self.num_vars:
                raise ValueError(f"literal {_to_external(lt)} references unknown variable")
        if self._trail_lim:
            self._cancel_until(0)
        # Simplify against level-0 assignments and duplicates.  The ids of
        # the unit chains that falsified removed literals become part of
        # this clause's "derivation" so cores stay sufficient.
        out: list[int] = []
        seen: set[int] = set()
        simplify_deps: list[int] = []
        for lt in ilits:
            v = self._lit_value(lt)
            if v == _TRUE or (lt ^ 1) in seen:
                return -1  # clause already satisfied / tautology
            if lt in seen:
                continue
            if v == _FALSE:
                if self.proof_logging:
                    simplify_deps.extend(self._explain_level0(lt >> 1))
                continue
            seen.add(lt)
            out.append(lt)
        cid = len(self._clauses)
        self._clauses.append(out if out else list(ilits))
        self._labels[cid] = label
        self._n_original += 1
        if not out:
            # All literals false at level 0.
            core = {cid}
            core.update(simplify_deps)
            self._mark_broken(self._expand_to_originals(core))
            return cid
        if simplify_deps:
            # The stored (simplified) clause is the original one resolved
            # against the unit chains that falsified the removed literals;
            # remember those ids so cores that use this clause stay
            # self-contained.
            self._simplify_deps[cid] = tuple(set(simplify_deps))
        if len(out) == 1:
            if not self._enqueue(out[0], cid):
                raise AssertionError("unit enqueue cannot conflict after simplification")
            confl = self._propagate()
            if confl != -1:
                core = self._conflict_core_at_level0(confl)
                self._mark_broken(core)
            return cid
        self._attach(cid)
        return cid

    #: A solve under a deadline polls the wall clock once per this many
    #: conflicts — frequent enough to stop a hard check within a fraction
    #: of a second, rare enough that ``time.monotonic()`` stays invisible
    #: in the profile.
    DEADLINE_CONFLICT_STEP = 16

    #: ...and once per this many decisions, so a propagation/decision-
    #: heavy (SAT-leaning) solve that rarely conflicts still honours the
    #: deadline instead of blowing far past ``timeout_s``.
    DEADLINE_DECISION_STEP = 64

    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None,
              deadline: Optional[float] = None) -> SolveResult:
        """Solve under the given assumption literals.

        Returns a :class:`SolveResult`; when unsatisfiable, the core of
        original clauses used is available through
        :meth:`core_clause_ids` / :meth:`core_labels` until the next call.
        ``max_conflicts`` bounds the search: up to N conflicts are
        *analyzed* (their learned clauses are kept for later calls —
        ``max_conflicts=1`` still learns from its one conflict), then the
        next conflict aborts with ``unknown=True`` and ``limit =
        "conflicts"``.  ``deadline`` (a ``time.monotonic()`` instant)
        bounds wall time: the loop polls the clock on stepped conflict
        *and* decision counts and aborts with ``limit = "deadline"`` once
        passed, so a single hard check cannot blow through a caller's
        wall budget.  A conflict at decision level 0 still returns the
        definitive UNSAT answer regardless of either limit.

        In fast mode, a solve whose assumption list shares a prefix with
        the previous solve's keeps the matching decision levels (and
        their propagations) assigned instead of cancelling to level 0 —
        sound because :meth:`add_clause` cancels to level 0, so a kept
        prefix is always at propagation fixpoint for the full clause set.
        """
        self.stats.solves += 1
        if self._broken:
            return self._result(False)
        if deadline is not None and time.monotonic() >= deadline:
            return SolveResult(sat=False, unknown=True, limit="deadline",
                               stats=self.stats.snapshot())
        budget_left = max_conflicts
        self._last_failed = ()
        self._unsat_core_cids = None
        iassumps = [_to_internal(lt) for lt in assumptions]
        for lt in iassumps:
            if not 1 <= (lt >> 1) <= self.num_vars:
                raise ValueError(f"assumption {_to_external(lt)} references unknown variable")
        if self._fast:
            # Assumption-trail reuse: keep the longest decision-level
            # prefix whose assumption literals match this call's.
            al = self._assump_levels
            keep = 0
            limit = min(len(al), len(iassumps))
            while keep < limit and al[keep] == iassumps[keep]:
                keep += 1
            self._cancel_until(keep)
            self.stats.trail_saved_levels += keep
        else:
            self._cancel_until(0)
        prof = self.profile
        st = self.stats
        if prof:
            t0 = time.perf_counter()
        confl = self._propagate()
        if prof:
            st.time_propagate_s += time.perf_counter() - t0
        if confl != -1:
            if self._decision_level() > 0:
                # A retained prefix can only hold a pending conflict if
                # clauses arrived since the last solve; add_clause cancels
                # to level 0 so this is defensive — re-run from scratch.
                self._cancel_until(0)
                confl = self._propagate()
            if confl != -1:
                self._mark_broken(self._conflict_core_at_level0(confl))
                return self._result(False)
        if self._fast and self._decision_level() == 0:
            if prof:
                t0 = time.perf_counter()
            self._simplify_learned()
            if prof:
                st.time_simplify_s += time.perf_counter() - t0

        restart_n = 0
        conflicts_budget = luby(restart_n) * 100
        conflicts_here = 0
        decisions_here = 0
        while True:
            if prof:
                t0 = time.perf_counter()
            confl = self._propagate()
            if prof:
                st.time_propagate_s += time.perf_counter() - t0
            if confl != -1:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._mark_broken(self._conflict_core_at_level0(confl))
                    return self._result(False)
                if budget_left is not None:
                    if budget_left <= 0:
                        # Budget exhausted by previously analyzed
                        # conflicts: abort before analyzing this one.
                        self._cancel_until(0)
                        return SolveResult(sat=False, unknown=True,
                                           limit="conflicts",
                                           stats=self.stats.snapshot())
                    budget_left -= 1
                if (deadline is not None
                        and conflicts_here % self.DEADLINE_CONFLICT_STEP == 0
                        and time.monotonic() >= deadline):
                    self._cancel_until(0)
                    return SolveResult(sat=False, unknown=True,
                                       limit="deadline",
                                       stats=self.stats.snapshot())
                if prof:
                    t0 = time.perf_counter()
                learnt, bt_level, used, lbd = self._analyze(confl)
                self._cancel_until(bt_level)
                self._record_learnt(learnt, used, lbd)
                if prof:
                    st.time_analyze_s += time.perf_counter() - t0
                self._decay_activities()
                continue
            # No conflict: restart / reduce / decide.
            if conflicts_here >= conflicts_budget:
                restart_n += 1
                conflicts_budget = luby(restart_n) * 100
                conflicts_here = 0
                self.stats.restarts += 1
                self._cancel_until(0)
                if self._fast:
                    if prof:
                        t0 = time.perf_counter()
                    self._simplify_learned()
                    if prof:
                        st.time_simplify_s += time.perf_counter() - t0
                continue
            if len(self._learned_ids) > self._max_learnts + len(self._trail):
                if prof:
                    t0 = time.perf_counter()
                self._reduce_db()
                if prof:
                    st.time_reduce_s += time.perf_counter() - t0
            # Assumption decisions come first, in order.
            lvl = self._decision_level()
            if lvl < len(iassumps):
                p = iassumps[lvl]
                v = self._lit_value(p)
                if v == _TRUE:
                    # Already satisfied: open an empty decision level so
                    # the index into `iassumps` keeps advancing.
                    self._trail_lim.append(len(self._trail))
                    self._assump_levels.append(p)
                    continue
                if v == _FALSE:
                    self._analyze_final(p)
                    return self._result(False)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._assump_levels.append(p)
                self._enqueue(p, -1)
                continue
            p = self._pick_branch()
            if p == -1:
                return self._result(True)
            self.stats.decisions += 1
            decisions_here += 1
            if (deadline is not None
                    and decisions_here % self.DEADLINE_DECISION_STEP == 0
                    and time.monotonic() >= deadline):
                self._cancel_until(0)
                return SolveResult(sat=False, unknown=True,
                                   limit="deadline",
                                   stats=self.stats.snapshot())
            self._trail_lim.append(len(self._trail))
            self._assump_levels.append(0)
            self._enqueue(p, -1)

    def model_value(self, lit: int) -> bool:
        """Truth value of ``lit`` in the model of the last SAT answer.

        Variables the search never assigned (possible for variables created
        but not constrained) read as False.
        """
        return self._lit_value(_to_internal(lit)) == _TRUE

    def model(self) -> dict[int, bool]:
        """Full model as ``{var: bool}`` for all assigned variables."""
        out = {}
        for var in range(1, self.num_vars + 1):
            a = self._assigns[var]
            if a != UNASSIGNED:
                out[var] = a == _TRUE
        return out

    def core_clause_ids(self) -> frozenset[int]:
        """Ids of *original* clauses in the last UNSAT answer's core.

        Requires ``proof=True``; raises if no UNSAT answer is pending.
        """
        if not self.proof_logging:
            raise RuntimeError("solver was created with proof logging disabled")
        if self._unsat_core_cids is None:
            raise RuntimeError("no unsat core available (last solve was SAT?)")
        return self._unsat_core_cids

    def core_labels(self) -> set[Hashable]:
        """Provenance labels of the core clauses, flattened.

        A clause labelled with a ``frozenset`` (multi-label — see
        :meth:`add_label`) contributes every member; unlabelled
        (``None``) clauses contribute nothing here and are counted by
        :meth:`core_unlabeled_count` instead, so a consumer that needs
        the label set to be *exhaustive* can tell a fully-attributed
        core from one with anonymous clauses.
        """
        labels = set()
        for cid in self.core_clause_ids():
            lab = self._labels.get(cid)
            if lab is None:
                continue
            if isinstance(lab, frozenset):
                labels.update(lab)
            else:
                labels.add(lab)
        return labels

    def core_unlabeled_count(self) -> int:
        """Number of clauses in the last UNSAT core carrying no label.

        ``core_labels`` silently skips ``None``-labelled clauses, so a
        core made entirely of unlabelled clauses is indistinguishable
        from an empty label set; callers that treat the labels as an
        exhaustive provenance record (proof-based abstraction) check
        this count instead of assuming it is zero.
        """
        return sum(1 for cid in self.core_clause_ids()
                   if self._labels.get(cid) is None)

    def core_has_unlabeled(self) -> bool:
        """True when the last UNSAT core contains unlabelled clauses."""
        return self.core_unlabeled_count() > 0

    def add_label(self, cid: int, label: Hashable) -> None:
        """Join ``label`` onto clause ``cid``'s label set.

        The multi-label half of clause sharing: a cache that answers a
        new consumer's request with an already-emitted clause joins the
        new consumer's provenance tag onto it, so a later unsat core
        attributes the clause to *every* consumer it served (see
        :meth:`core_labels`).  ``label`` may itself be a ``frozenset``
        of tags (unioned member-wise).  No-ops: ``cid < 0`` (the clause
        was absorbed — it can never appear in a core), ``label is
        None``, and labels already present.
        """
        if cid < 0 or label is None:
            return
        new = label if isinstance(label, frozenset) else frozenset((label,))
        cur = self._labels.get(cid)
        if cur is None:
            cur_set: frozenset = frozenset()
        elif isinstance(cur, frozenset):
            cur_set = cur
        else:
            cur_set = frozenset((cur,))
        joined = cur_set | new
        if joined != cur_set or cur is None:
            self._labels[cid] = joined

    def clause_label(self, cid: int) -> Hashable:
        """Raw stored label of ``cid``: a single tag, a ``frozenset`` of
        tags (multi-labelled clause), or None."""
        return self._labels.get(cid)

    def failed_assumptions(self) -> tuple[int, ...]:
        """Assumptions involved in the last UNSAT answer (external lits)."""
        return self._last_failed

    # -- proof-trace introspection (for repro.sat.proofcheck) ----------

    def is_learned(self, cid: int) -> bool:
        """True when ``cid`` was derived by conflict analysis."""
        return cid in self._derivations

    def derivation(self, cid: int) -> Optional[tuple[int, ...]]:
        """Antecedent clause ids of a learned clause (None for originals).

        The antecedents are the clauses the 1UIP resolution walked through,
        plus the level-0 unit chains behind eliminated literals; together
        they imply the learned clause by unit propagation.  Root-level
        shrinking extends a clause's antecedents with the unit chains of
        the literals it removed, so the (stronger) stored clause remains
        derivable from its recorded antecedents.
        """
        return self._derivations.get(cid)

    def learned_clause_ids(self) -> list[int]:
        """All learned clause ids in derivation order."""
        return sorted(self._derivations)

    def proof_clause_literals(self, cid: int) -> tuple[int, ...]:
        """External literals of any clause in the proof trace.

        Works for live clauses and for learned clauses deleted by clause-
        database reduction (their literals are retained in proof mode).
        Original clauses return their *stored* form — already simplified
        against the level-0 assignments present when they were added (the
        removed literals' unit chains appear as derivation dependencies).
        """
        lits = self._clauses[cid]
        if lits is None:
            stash = self._proof_lits.get(cid)
            if stash is None:
                raise KeyError(f"clause {cid} deleted and not retained "
                               "(was proof logging enabled?)")
            lits = stash
        return tuple(_to_external(lt) for lt in lits)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def _result(self, sat: bool) -> SolveResult:
        return SolveResult(sat=sat, failed_assumptions=self._last_failed,
                           stats=self.stats.snapshot())

    def _lit_value(self, ilit: int) -> int:
        a = self._assigns[ilit >> 1]
        if a == UNASSIGNED:
            return UNASSIGNED
        return a ^ (ilit & 1)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _attach(self, cid: int) -> None:
        # watches[L] holds the clauses currently watching literal L; they
        # are revisited when L becomes false.  Fast mode: 2-literal
        # clauses go to the binary implication lists, longer clauses
        # carry a blocker literal in the watch entry.
        lits = self._clauses[cid]
        assert lits is not None and len(lits) >= 2
        if self._fast:
            if len(lits) == 2:
                self._bin_watches[lits[0]].append((cid, lits[1]))
                self._bin_watches[lits[1]].append((cid, lits[0]))
            else:
                self._watches[lits[0]].append((cid, lits[1]))
                self._watches[lits[1]].append((cid, lits[0]))
        else:
            self._watches[lits[0]].append(cid)
            self._watches[lits[1]].append(cid)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        v = self._lit_value(ilit)
        if v != UNASSIGNED:
            return v == _TRUE
        var = ilit >> 1
        self._assigns[var] = (ilit & 1) ^ 1
        self._levels[var] = self._decision_level()
        self._reasons[var] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause id or -1."""
        if self._fast:
            return self._propagate_fast()
        return self._propagate_base()

    def _propagate_fast(self) -> int:
        """Fast unit propagation: binary lists first, blockers on long."""
        trail = self._trail
        clauses = self._clauses
        assigns = self._assigns
        watches = self._watches
        bins = self._bin_watches
        levels = self._levels
        reasons = self._reasons
        qhead = self._qhead
        nprops = 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            nprops += 1
            false_lit = p ^ 1
            lvl = len(self._trail_lim)
            # Binary implications: no clause-object access at all.
            for cid, other in bins[false_lit]:
                a = assigns[other >> 1]
                if a == UNASSIGNED:
                    var = other >> 1
                    assigns[var] = (other & 1) ^ 1
                    levels[var] = lvl
                    reasons[var] = cid
                    trail.append(other)
                elif (a ^ (other & 1)) == _FALSE:
                    self._qhead = len(trail)
                    self.stats.propagations += nprops
                    return cid
            wl = watches[false_lit]
            i = 0
            j = 0
            n = len(wl)
            while i < n:
                cid, blocker = wl[i]
                i += 1
                ab = assigns[blocker >> 1]
                if ab != UNASSIGNED and (ab ^ (blocker & 1)) == _TRUE:
                    # Satisfied via the blocker: keep the watch untouched.
                    wl[j] = (cid, blocker)
                    j += 1
                    continue
                lits = clauses[cid]
                if lits is None:
                    continue  # deleted clause; watcher dropped
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                a0 = assigns[first >> 1]
                if a0 != UNASSIGNED and (a0 ^ (first & 1)) == _TRUE:
                    wl[j] = (cid, first)
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    ak = assigns[lk >> 1]
                    if ak == UNASSIGNED or (ak ^ (lk & 1)) == _TRUE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[lits[1]].append((cid, first))
                        moved = True
                        break
                if moved:
                    continue
                wl[j] = (cid, first)
                j += 1
                if a0 == UNASSIGNED:
                    var = first >> 1
                    assigns[var] = (first & 1) ^ 1
                    levels[var] = lvl
                    reasons[var] = cid
                    trail.append(first)
                else:
                    # Conflict: keep remaining watchers, stop.
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += nprops
                    return cid
            del wl[j:]
        self._qhead = qhead
        self.stats.propagations += nprops
        return -1

    def _propagate_base(self) -> int:
        """Baseline unit propagation (the historical single-scheme path)."""
        trail = self._trail
        clauses = self._clauses
        assigns = self._assigns
        watches = self._watches
        levels = self._levels
        reasons = self._reasons
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = p ^ 1
            wl = watches[false_lit]
            i = 0
            j = 0
            n = len(wl)
            lvl = len(self._trail_lim)
            while i < n:
                cid = wl[i]
                i += 1
                lits = clauses[cid]
                if lits is None:
                    continue  # deleted clause; watcher dropped
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                a0 = assigns[first >> 1]
                if a0 != UNASSIGNED and (a0 ^ (first & 1)) == _TRUE:
                    wl[j] = cid
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    ak = assigns[lk >> 1]
                    if ak == UNASSIGNED or (ak ^ (lk & 1)) == _TRUE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[lits[1]].append(cid)
                        moved = True
                        break
                if moved:
                    continue
                wl[j] = cid
                j += 1
                if a0 == UNASSIGNED:
                    var = first >> 1
                    assigns[var] = (first & 1) ^ 1
                    levels[var] = lvl
                    reasons[var] = cid
                    trail.append(first)
                else:
                    # Conflict: keep remaining watchers, stop.
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = len(trail)
                    return cid
            del wl[j:]
        return -1

    def _analyze(self, confl: int) -> tuple[list[int], int, list[int], int]:
        """First-UIP conflict analysis.

        Returns (learned clause literals, backtrack level, antecedent
        cids, glue).  The antecedents include the level-0 unit chains
        behind eliminated literals so that the recorded derivation is
        self-contained.  Glue (LBD — the number of distinct decision
        levels in the learned clause) is computed here, while every
        literal is still assigned; 0 in baseline mode.
        """
        seen = self._seen
        learnt: list[int] = [0]  # slot 0 reserved for the asserting literal
        used: list[int] = [confl]
        path_count = 0
        p = -1
        index = len(self._trail)
        level = self._decision_level()
        cleanup: list[int] = []
        reason_cid = confl
        proof = self.proof_logging
        while True:
            lits = self._clauses[reason_cid]
            assert lits is not None
            if reason_cid in self._clause_act:
                self._bump_clause(reason_cid)
            start = 0 if p == -1 else 1
            for q in lits[start:]:
                v = q >> 1
                if not seen[v]:
                    if self._levels[v] > 0:
                        seen[v] = True
                        cleanup.append(v)
                        self._bump_var(v)
                        if self._levels[v] >= level:
                            path_count += 1
                        else:
                            learnt.append(q)
                    elif proof:
                        used.extend(self._explain_level0(v))
            while True:
                index -= 1
                p = self._trail[index]
                if seen[p >> 1]:
                    break
            path_count -= 1
            seen[p >> 1] = False
            if path_count == 0:
                break
            reason_cid = self._reasons[p >> 1]
            assert reason_cid != -1
            used.append(reason_cid)
            rl = self._clauses[reason_cid]
            assert rl is not None
            if rl[0] != p:
                idx = rl.index(p)
                rl[0], rl[idx] = rl[idx], rl[0]
        learnt[0] = p ^ 1
        # Recursive minimization (self-subsumption through reasons).
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if self._redundant(q, seen, used, cleanup):
                continue
            minimized.append(q)
        learnt = minimized
        for v in cleanup:
            seen[v] = False
        lbd = 0
        if self._fast and len(learnt) > 1:
            levels = self._levels
            lbd = len({levels[q >> 1] for q in learnt})
        if len(learnt) == 1:
            bt = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._levels[learnt[i] >> 1] > self._levels[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt = self._levels[learnt[1] >> 1]
        return learnt, bt, used, lbd

    def _redundant(self, ilit: int, seen: list[bool], used: list[int],
                   cleanup: list[int]) -> bool:
        """True if ``ilit`` is implied by other marked literals."""
        if self._reasons[ilit >> 1] == -1:
            return False
        stack = [ilit]
        local_used: list[int] = []
        newly_seen: list[int] = []
        proof = self.proof_logging
        while stack:
            lt = stack.pop()
            r = self._reasons[lt >> 1]
            if r == -1:
                for v in newly_seen:
                    seen[v] = False
                return False
            lits = self._clauses[r]
            assert lits is not None
            local_used.append(r)
            for q in lits:
                v = q >> 1
                if v == lt >> 1:
                    continue
                if seen[v]:
                    continue
                if self._levels[v] == 0:
                    if proof:
                        local_used.extend(self._explain_level0(v))
                    continue
                if self._reasons[v] == -1:
                    for w in newly_seen:
                        seen[w] = False
                    return False
                seen[v] = True
                newly_seen.append(v)
                stack.append(q)
        used.extend(local_used)
        cleanup.extend(newly_seen)
        return True

    def _record_learnt(self, learnt: list[int], used: list[int],
                       lbd: int = 0) -> None:
        cid = len(self._clauses)
        self._clauses.append(list(learnt))
        self.stats.learned += 1
        if self.proof_logging:
            self._derivations[cid] = tuple(set(used))
        if len(learnt) == 1:
            if not self._enqueue(learnt[0], cid):
                raise AssertionError("asserting unit conflicts after backtrack")
        else:
            self._learned_ids.append(cid)
            self._clause_act[cid] = self._cla_inc
            if self._fast:
                self._clause_lbd[cid] = lbd
            self._attach(cid)
            self._enqueue(learnt[0], cid)

    def _explain_level0(self, var: int) -> tuple[int, ...]:
        """All clause ids whose units explain the level-0 value of ``var``.

        Memoized; level-0 assignments are permanent so the closure never
        changes once computed.
        """
        memo = self._l0_memo
        got = memo.get(var)
        if got is not None:
            return got
        result: set[int] = set()
        stack = [var]
        visited: set[int] = set()
        while stack:
            v = stack.pop()
            if v in visited:
                continue
            visited.add(v)
            cached = memo.get(v)
            if cached is not None:
                result.update(cached)
                continue
            r = self._reasons[v]
            if r == -1:
                continue
            result.add(r)
            lits = self._clauses[r]
            if lits:
                for q in lits:
                    if q >> 1 != v:
                        stack.append(q >> 1)
        out = tuple(result)
        memo[var] = out
        return out

    def _conflict_core_at_level0(self, confl_cid: int) -> frozenset[int]:
        """Expand a level-0 conflict into original clause ids."""
        if not self.proof_logging:
            return frozenset()
        cids: set[int] = {confl_cid}
        lits = self._clauses[confl_cid]
        if lits:
            for q in lits:
                cids.update(self._explain_level0(q >> 1))
        return self._expand_to_originals(cids)

    def _analyze_final(self, p: int) -> None:
        """Assumption ``p`` is falsified: build failed set and core."""
        failed_internal = {p}
        cids: set[int] = set()
        seen_vars: set[int] = {p >> 1}
        stack = [p >> 1]
        while stack:
            v = stack.pop()
            r = self._reasons[v]
            if r == -1:
                if self._levels[v] > 0:
                    # A decision: under assumption-first search this is an
                    # assumption literal (the value actually decided).
                    a = self._assigns[v]
                    lit = v << 1 | (0 if a == _TRUE else 1)
                    failed_internal.add(lit)
                continue
            cids.add(r)
            lits = self._clauses[r]
            assert lits is not None
            for q in lits:
                w = q >> 1
                if w not in seen_vars:
                    seen_vars.add(w)
                    stack.append(w)
        self._last_failed = tuple(sorted(_to_external(lt) for lt in failed_internal))
        if self.proof_logging:
            self._unsat_core_cids = self._expand_to_originals(cids)

    def _expand_to_originals(self, cids: set[int]) -> frozenset[int]:
        out: set[int] = set()
        stack = list(cids)
        visited: set[int] = set()
        simplify_deps = self._simplify_deps
        while stack:
            cid = stack.pop()
            if cid in visited or cid < 0:
                continue
            visited.add(cid)
            deriv = self._derivations.get(cid)
            if deriv is None:
                out.add(cid)  # original clause
                extra = simplify_deps.get(cid)
                if extra:
                    stack.extend(extra)
            else:
                stack.extend(deriv)
        return frozenset(out)

    def _mark_broken(self, core: frozenset[int]) -> None:
        self._broken = True
        if self.proof_logging:
            self._unsat_core_cids = core

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        assigns = self._assigns
        saved = self._saved_phase
        reasons = self._reasons
        insert = self._order.insert
        for i in range(len(self._trail) - 1, bound - 1, -1):
            ilit = self._trail[i]
            var = ilit >> 1
            saved[var] = assigns[var]
            assigns[var] = UNASSIGNED
            reasons[var] = -1
            insert(var)
        del self._trail[bound:]
        del self._trail_lim[level:]
        del self._assump_levels[level:]
        self._qhead = len(self._trail)

    def _simplify_learned(self) -> None:
        """Shrink learned clauses against permanent level-0 assignments.

        Runs only at decision level 0 with propagation at fixpoint (solve
        entry and restarts, fast mode).  Learned clauses satisfied at the
        root are deleted (unless they are the reason of a level-0 literal
        — their unit chains stay valid); false-at-root literals are
        removed, with the removed literals' level-0 unit chains appended
        to the clause's derivation so RUP proof checking and core
        expansion remain sound against the stronger stored clause.
        """
        fixed = len(self._trail)
        if fixed == self._simplified_fixed:
            return
        self._simplified_fixed = fixed
        assigns = self._assigns
        proof = self.proof_logging
        locked = {self._reasons[lt >> 1] for lt in self._trail}
        keep: list[int] = []
        for cid in self._learned_ids:
            lits = self._clauses[cid]
            if lits is None:
                continue
            if len(lits) == 2 or cid in locked:
                keep.append(cid)
                continue
            sat = False
            nfalse = 0
            for lt in lits:
                a = assigns[lt >> 1]
                if a == UNASSIGNED:
                    continue
                if (a ^ (lt & 1)) == _TRUE:
                    sat = True
                    break
                nfalse += 1
            if sat:
                if proof:
                    self._proof_lits[cid] = tuple(lits)
                self._clauses[cid] = None  # watcher entries dropped lazily
                self._clause_act.pop(cid, None)
                self._clause_lbd.pop(cid, None)
                self.stats.deleted += 1
                continue
            if nfalse:
                # Watched positions (0, 1) cannot be root-false in an
                # unsatisfied clause after level-0 propagation; guard
                # anyway and leave such a clause untouched.
                if (assigns[lits[0] >> 1] != UNASSIGNED
                        or assigns[lits[1] >> 1] != UNASSIGNED):
                    keep.append(cid)
                    continue
                deps: list[int] = []
                new: list[int] = []
                for lt in lits:
                    a = assigns[lt >> 1]
                    if a != UNASSIGNED and (a ^ (lt & 1)) == _FALSE:
                        if proof:
                            deps.extend(self._explain_level0(lt >> 1))
                        continue
                    new.append(lt)
                lits[:] = new
                if proof and deps:
                    self._derivations[cid] = tuple(
                        set(self._derivations[cid]) | set(deps))
                self.stats.shrunk_clauses += 1
                self.stats.shrunk_lits += nfalse
            keep.append(cid)
        self._learned_ids = keep

    # -- heuristics ----------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, len(self._activity)):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        self._order.bumped(var)

    def _bump_clause(self, cid: int) -> None:
        act = self._clause_act.get(cid)
        if act is None:
            return
        act += self._cla_inc
        self._clause_act[cid] = act
        if act > 1e20:
            for c in self._clause_act:
                self._clause_act[c] *= 1e-20
            self._cla_inc *= 1e-20
        if self._fast:
            # Glucose-style dynamic glue: a clause used in analysis has
            # all literals assigned, so its current LBD is well defined —
            # keep the minimum seen.  Also marks the clause "used" for
            # the tier-2 protection window in _reduce_db.
            self._clause_used.add(cid)
            old = self._clause_lbd.get(cid)
            if old is not None and old > self.LBD_CORE:
                lits = self._clauses[cid]
                levels = self._levels
                nl = len({levels[q >> 1] for q in lits})
                if nl < old:
                    self._clause_lbd[cid] = nl

    def _decay_activities(self) -> None:
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay

    def _pick_branch(self) -> int:
        order = self._order
        assigns = self._assigns
        while len(order):
            var = order.pop_max()
            if assigns[var] == UNASSIGNED:
                return var << 1 | (1 if self._saved_phase[var] == _FALSE else 0)
        return -1

    def _reduce_db(self) -> None:
        """Trim the learned-clause database.

        Baseline: remove the lower-activity half of non-reason learned
        clauses.  Fast: tiered — "core" clauses (glue <= LBD_CORE) and
        binaries are pinned forever, "tier2" clauses (glue <= LBD_TIER2)
        survive the round when used in an analysis since the last
        reduction, and the remaining "local" tier is halved worst-first
        (highest glue, then lowest activity).
        """
        self._max_learnts *= self._learnt_growth
        locked = {self._reasons[lt >> 1] for lt in self._trail}
        if not self._fast:
            ids = sorted(self._learned_ids, key=lambda c: self._clause_act.get(c, 0.0))
            keep: list[int] = []
            to_delete = len(ids) // 2
            deleted = 0
            for cid in ids:
                lits = self._clauses[cid]
                if lits is None:
                    continue
                if deleted < to_delete and cid not in locked and len(lits) > 2:
                    if self.proof_logging:
                        # Later derivations may cite this clause; keep its
                        # literals for the proof checker.
                        self._proof_lits[cid] = tuple(lits)
                    self._clauses[cid] = None  # watcher entries dropped lazily
                    self._clause_act.pop(cid, None)
                    deleted += 1
                    self.stats.deleted += 1
                else:
                    keep.append(cid)
            self._learned_ids = keep
            return
        lbd = self._clause_lbd
        used = self._clause_used
        act = self._clause_act
        worst = 1 << 30
        keep = []
        cands: list[int] = []
        for cid in self._learned_ids:
            lits = self._clauses[cid]
            if lits is None:
                continue
            glue = lbd.get(cid, worst)
            if len(lits) <= 2 or cid in locked or glue <= self.LBD_CORE:
                keep.append(cid)
                continue
            if glue <= self.LBD_TIER2 and cid in used:
                keep.append(cid)
                continue
            cands.append(cid)
        cands.sort(key=lambda c: (-lbd.get(c, worst), act.get(c, 0.0)))
        ndel = len(cands) // 2
        proof = self.proof_logging
        for cid in cands[:ndel]:
            lits = self._clauses[cid]
            if proof:
                self._proof_lits[cid] = tuple(lits)
            self._clauses[cid] = None  # watcher entries dropped lazily
            act.pop(cid, None)
            lbd.pop(cid, None)
            self.stats.deleted += 1
        keep.extend(cands[ndel:])
        used.clear()
        self._learned_ids = keep
