"""DIMACS CNF reading/writing for interoperability and debugging."""

from __future__ import annotations

from typing import Iterable, Sequence, TextIO


def parse_dimacs(text: str) -> tuple[int, list[list[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Tolerates missing/inconsistent ``p cnf`` headers (the variable count is
    widened to the maximum literal seen) and comment lines anywhere.
    """
    num_vars = 0
    clauses: list[list[int]] = []
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "cnf":
                num_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                num_vars = max(num_vars, abs(lit))
                current.append(lit)
    if current:
        clauses.append(current)
    return num_vars, clauses


def write_dimacs(out: TextIO, num_vars: int,
                 clauses: Iterable[Sequence[int]],
                 comments: Iterable[str] = ()) -> None:
    """Write clauses in DIMACS CNF format to a text stream."""
    clause_list = [list(c) for c in clauses]
    for comment in comments:
        out.write(f"c {comment}\n")
    out.write(f"p cnf {num_vars} {len(clause_list)}\n")
    for clause in clause_list:
        out.write(" ".join(str(lt) for lt in clause))
        out.write(" 0\n")
