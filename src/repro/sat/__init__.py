"""SAT backend for the EMM verification platform (substrate S1).

A self-contained CDCL solver in the MiniSat lineage:

* two-literal watching, first-UIP clause learning with recursive
  minimization, VSIDS decisions, phase saving, Luby restarts and
  activity-based learned-clause deletion;
* incremental use — clauses may be added between ``solve`` calls and each
  call takes a list of *assumption* literals, which is how the BMC engine
  multiplexes the three checks of the paper's Figure 3 over one solver;
* resolution-derivation bookkeeping for every learned clause, so an
  unsatisfiable result can be traced back to the set of *original* clauses
  that proved it (``Solver.core_clause_ids`` / ``Solver.core_labels``).
  This is the paper's ``SAT_Get_Refutation`` (Figure 1, line 10) and the
  input to proof-based abstraction.

Literals in the public API are non-zero signed integers, DIMACS style:
``+v`` is the positive literal of variable ``v``, ``-v`` its negation.
"""

from repro.sat.solver import Solver, SolveResult
from repro.sat.dimacs import parse_dimacs, write_dimacs
from repro.sat.preprocess import Preprocessor, SimplifyResult, simplify
from repro.sat.proofcheck import (ProofCheckReport, certify_unsat,
                                  check_all_learned, check_core)

__all__ = ["Solver", "SolveResult", "parse_dimacs", "write_dimacs",
           "Preprocessor", "SimplifyResult", "simplify",
           "ProofCheckReport", "certify_unsat", "check_all_learned",
           "check_core"]
