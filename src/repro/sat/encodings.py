"""Reusable CNF encodings: at-most-one, cardinality, XOR, one-hot.

The EMM exclusivity chain of equation (4) is, at heart, an at-most-one
constraint over the matching read-write pair signals — built there as an
AND-chain because the paper's hybrid representation wants gates.  This
module provides the classic clause-level alternatives (pairwise,
sequential counter, commander) so the ablation benchmarks can compare
encodings, plus the XOR/one-hot helpers the test generators use.

All functions emit clauses through a caller-supplied ``add_clause`` and
allocate auxiliaries through ``new_var`` — they work against the
:class:`repro.sat.solver.Solver`, the :class:`Preprocessor`, or a plain
list collector in tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

AddClause = Callable[..., object]
NewVar = Callable[[], int]


def at_most_one_pairwise(lits: Sequence[int], add_clause: AddClause) -> int:
    """O(n²) pairwise AMO; returns the number of clauses added."""
    n = 0
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            add_clause([-lits[i], -lits[j]])
            n += 1
    return n


def at_most_one_sequential(lits: Sequence[int], add_clause: AddClause,
                           new_var: NewVar) -> int:
    """Sinz sequential AMO: 3(n-1) clauses, n-1 auxiliary variables."""
    if len(lits) <= 1:
        return 0
    n = 0
    prev = None  # s_i: "some literal among lits[0..i] is true"
    for i, lit in enumerate(lits[:-1]):
        s = new_var()
        add_clause([-lit, s])
        n += 1
        if prev is not None:
            add_clause([-prev, s])
            add_clause([-prev, -lit])
            n += 2
        prev = s
    add_clause([-prev, -lits[-1]])
    return n + 1


def at_most_one_commander(lits: Sequence[int], add_clause: AddClause,
                          new_var: NewVar, group: int = 3) -> int:
    """Commander AMO: recursive grouping with commander variables."""
    if group < 2:
        raise ValueError("group size must be at least 2")
    if len(lits) <= group:
        return at_most_one_pairwise(lits, add_clause)
    n = 0
    commanders: list[int] = []
    for base in range(0, len(lits), group):
        chunk = list(lits[base:base + group])
        c = new_var()
        commanders.append(c)
        # c is true when some chunk literal is true; chunk is AMO.
        for lit in chunk:
            add_clause([-lit, c])
            n += 1
        n += at_most_one_pairwise(chunk, add_clause)
    return n + at_most_one_commander(commanders, add_clause, new_var, group)


def at_most_k_sequential(lits: Sequence[int], k: int,
                         add_clause: AddClause, new_var: NewVar) -> int:
    """Sinz sequential counter for sum(lits) <= k."""
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        for lit in lits:
            add_clause([-lit])
        return len(lits)
    if len(lits) <= k:
        return 0
    n = 0
    # registers[i][j]: after lits[0..i], at least j+1 literals are true.
    prev: list[int] = []
    for i, lit in enumerate(lits):
        cur = [new_var() for _ in range(min(i + 1, k))]
        # cur[0] <- lit or prev[0]
        add_clause([-lit, cur[0]])
        n += 1
        if prev:
            add_clause([-prev[0], cur[0]])
            n += 1
        for j in range(1, len(cur)):
            # cur[j] <- (lit and prev[j-1]) or prev[j]
            add_clause([-lit, -prev[j - 1], cur[j]])
            n += 1
            if j < len(prev):
                add_clause([-prev[j], cur[j]])
                n += 1
        # Overflow: lit and prev[k-1] would make k+1 true literals.
        if len(prev) == k:
            add_clause([-lit, -prev[k - 1]])
            n += 1
        prev = cur
    return n


def at_least_one(lits: Sequence[int], add_clause: AddClause) -> int:
    add_clause(list(lits))
    return 1


def exactly_one(lits: Sequence[int], add_clause: AddClause,
                new_var: NewVar, encoding: str = "sequential") -> int:
    """ALO plus the selected AMO encoding."""
    n = at_least_one(lits, add_clause)
    if encoding == "pairwise":
        return n + at_most_one_pairwise(lits, add_clause)
    if encoding == "sequential":
        return n + at_most_one_sequential(lits, add_clause, new_var)
    if encoding == "commander":
        return n + at_most_one_commander(lits, add_clause, new_var)
    raise ValueError(f"unknown AMO encoding {encoding!r}")


def xor_clauses(lits: Sequence[int], parity: bool,
                add_clause: AddClause, new_var: NewVar,
                cut: int = 4) -> int:
    """CNF for ``lits[0] ^ ... ^ lits[-1] == parity``.

    Long XOR chains are cut into ``cut``-ary pieces with fresh linking
    variables; each piece expands into its 2^(w-1) direct clauses.
    """
    chain = list(lits)
    n = 0
    while len(chain) > cut:
        piece, chain = chain[:cut - 1], chain[cut - 1:]
        link = new_var()
        n += _xor_direct(piece + [link], False, add_clause)
        chain.append(link)
    return n + _xor_direct(chain, parity, add_clause)


def _xor_direct(lits: Sequence[int], parity: bool,
                add_clause: AddClause) -> int:
    if not lits:
        if parity:
            add_clause([])  # 0 == 1: unsatisfiable
            return 1
        return 0
    n = 0
    for mask in range(1 << len(lits)):
        flips = bin(mask).count("1")
        # Forbid assignments with the wrong parity: the clause negates
        # the assignment where literal i is true iff bit i of mask is 0.
        if (flips % 2 == 0) == parity:
            add_clause([-lt if (mask >> i) & 1 else lt
                        for i, lt in enumerate(lits)])
            n += 1
    return n
