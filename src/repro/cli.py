"""Command-line interface: run any case study with any engine.

Examples::

    repro-emm list
    repro-emm verify quicksort --property P2 --engine bmc3 --max-depth 45
    repro-emm verify quicksort --property P2 --engine explicit --n 3
    repro-emm verify fifo --property data_integrity --max-depth 12
    repro-emm verify cpu --property halts --no-proof --shrink --show-trace
    repro-emm pba quicksort --property P2 --stability-depth 5 --minimize memory
    repro-emm info image_filter
    repro-emm export quicksort --output qs.v
    repro-emm parse qs.v --verify --max-depth 10
    repro-emm roundtrip fifo --max-depth 10
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
from typing import Callable

from repro.bmc.engine import BmcOptions, verify, verify_many
from repro.bmc.shrink import shrink_trace
from repro.casestudies import (CpuParams, FifoParams, ImageFilterParams,
                               MultiportSocParams, QuicksortParams,
                               StackMachineParams, build_cpu, build_fifo,
                               build_image_filter, build_multiport_soc,
                               build_quicksort, build_stack_machine,
                               memcpy_program)
from repro.design.equiv import check_equivalence
from repro.design.explicit import expand_memories
from repro.design.netlist import Design
from repro.design.verilog import write_verilog
from repro.design.verilog_parser import VerilogError, parse_verilog
from repro.pba.abstraction import verify_with_pba


def _quicksort(args) -> Design:
    return build_quicksort(QuicksortParams(
        n=args.n, addr_width=args.addr_width, data_width=args.data_width,
        stack_addr_width=max(args.addr_width, (args.n * 2).bit_length())))


def _image_filter(args) -> Design:
    return build_image_filter(ImageFilterParams(
        addr_width=args.addr_width, data_width=args.data_width))


def _multiport(args) -> Design:
    return build_multiport_soc(MultiportSocParams(
        addr_width=args.addr_width, data_width=args.data_width))


def _fifo(args) -> Design:
    return build_fifo(FifoParams(addr_width=args.addr_width,
                                 data_width=args.data_width))


def _stack(args) -> Design:
    return build_stack_machine(StackMachineParams(
        addr_width=args.addr_width, data_width=args.data_width))


def _cpu(args) -> Design:
    params = CpuParams(pc_width=5, addr_width=args.addr_width,
                       data_width=args.data_width)
    program = memcpy_program(min(args.n, 2), src=0,
                             dst=1 << (args.addr_width - 1), params=params)
    return build_cpu(program, params)


CASE_STUDIES: dict[str, Callable] = {
    "quicksort": _quicksort,
    "image_filter": _image_filter,
    "multiport_soc": _multiport,
    "fifo": _fifo,
    "stack_machine": _stack,
    "cpu": _cpu,
}


def _add_design_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("design", choices=sorted(CASE_STUDIES))
    p.add_argument("--n", type=int, default=3, help="quicksort array size")
    p.add_argument("--addr-width", type=int, default=None)
    p.add_argument("--data-width", type=int, default=None)


_DEFAULT_WIDTHS = {
    "quicksort": (3, 4),
    "image_filter": (4, 8),
    "multiport_soc": (5, 8),
    "fifo": (3, 8),
    "stack_machine": (3, 8),
    "cpu": (3, 4),
}


def _build(args) -> Design:
    defaults = _DEFAULT_WIDTHS[args.design]
    if args.addr_width is None:
        args.addr_width = defaults[0]
    if args.data_width is None:
        args.data_width = defaults[1]
    return CASE_STUDIES[args.design](args)


def cmd_list(_args) -> int:
    for name in sorted(CASE_STUDIES):
        print(name)
    return 0


def cmd_info(args) -> int:
    design = _build(args)
    stats = design.stats()
    print(f"design: {design.name}")
    for key, value in stats.items():
        print(f"  {key}: {value}")
    for mem in design.memories.values():
        print(f"  memory {mem.name}: AW={mem.addr_width} DW={mem.data_width} "
              f"R={mem.num_read_ports} W={mem.num_write_ports} "
              f"init={'arbitrary' if mem.init is None else mem.init}")
    for prop in design.properties.values():
        print(f"  property {prop.name} ({prop.kind})")
    return 0


def _verify_design(args) -> Design:
    """The design ``verify`` actually runs on (module-level: picklable
    as a service design factory via ``functools.partial``)."""
    design = _build(args)
    if args.engine == "explicit":
        design = expand_memories(design)
    return design


def _verify_options(args) -> BmcOptions:
    quotas = dict(mem_quota_mb=args.mem_quota_mb,
                  clause_var_quota=args.clause_quota,
                  wall_quota_s=args.wall_quota)
    if args.engine == "explicit":
        return BmcOptions(use_emm=False, find_proof=not args.no_proof,
                          max_depth=args.max_depth,
                          strash=not args.no_strash,
                          timeout_s=args.timeout,
                          solver_baseline=args.solver_baseline,
                          profile=args.profile, **quotas)
    return BmcOptions(use_emm=True,
                      find_proof=(args.engine != "bmc2") and not args.no_proof,
                      max_depth=args.max_depth,
                      exclusivity=not args.no_exclusivity,
                      init_consistency=not args.no_init_consistency,
                      emm_addr_dedup=not args.no_addr_dedup,
                      strash=not args.no_strash,
                      emm_chain_share=not args.no_chain_share,
                      emm_hybrid_strash=not args.no_hybrid_strash,
                      emm_cross_mem_share=not args.no_cross_mem_share,
                      timeout_s=args.timeout,
                      solver_baseline=args.solver_baseline,
                      profile=args.profile, **quotas)


def _print_profile(profile: dict) -> None:
    """Render a run's wall-clock phase breakdown (``--profile``)."""
    for phase, rec in sorted(profile.get("phases", {}).items(),
                             key=lambda kv: -kv[1]["s"]):
        print(f"  profile {phase:<18s} {rec['s']:8.3f}s (n={rec['n']})")
    for phase, secs in sorted(profile.get("solver", {}).items(),
                              key=lambda kv: -kv[1]):
        print(f"  profile solver.{phase:<11s} {secs:8.3f}s")


def cmd_verify(args) -> int:
    design = _verify_design(args)
    options = _verify_options(args)
    props = [args.property] if args.property else sorted(design.properties)
    records = None
    if len(props) == 1:
        # Single property: the historical direct path (same engine, same
        # encoding; nothing to share).
        results = {props[0]: verify(design, props[0], options)}
    elif args.jobs > 1:
        from repro.service import RetryPolicy, VerificationService

        factory = functools.partial(_verify_design, args)
        with VerificationService(
                factory, options, jobs=args.jobs,
                retry=RetryPolicy(max_retries=args.retries),
                job_timeout_s=args.job_timeout) as svc:
            results, records = svc.collect(props)
    else:
        # Sequential verify-all: one shared encoding session for every
        # property instead of a fresh engine per property.
        results = verify_many(design, props, options)
    status = 0
    json_out = []
    for name in props:
        result = results[name]
        if args.json:
            entry = result.to_dict()
            if records is not None:
                # Service mode: per-job lifecycle — attempts consumed,
                # failure attribution, and (for degraded jobs) how deep
                # the check got before its budget ran out.
                entry["jobs"] = [
                    {"window": list(sr.window) if sr.window else None,
                     "status": sr.status,
                     "attempts": sr.attempts,
                     "failure": sr.failure,
                     "depth": None if sr.result is None else sr.result.depth}
                    for sr in records if sr.property_name == name]
            json_out.append(entry)
        else:
            print(result.describe())
            if args.profile and result.stats.profile:
                _print_profile(result.stats.profile)
        trace = result.trace
        if trace is not None and args.shrink and result.trace_validated:
            shrunk = shrink_trace(design, name, trace)
            if not args.json:
                print(f"shrunk: {shrunk.applied}/{shrunk.attempted} "
                      f"simplifications held, failure at cycle "
                      f"{shrunk.failure_cycle}")
            trace = shrunk.trace
        if args.show_trace and trace is not None and not args.json:
            print(trace.format_table())
        if result.status not in ("proof", "cex"):
            status = 1
    if args.json:
        print(json.dumps(json_out, indent=2))
    return status


def cmd_pba(args) -> int:
    design = _build(args)
    outcome = verify_with_pba(design, args.property,
                              stability_depth=args.stability_depth,
                              abstraction_max_depth=args.max_depth,
                              proof_max_depth=args.max_depth * 2,
                              minimize=args.minimize)
    phase = outcome.phase
    print(f"stable: {phase.stable} at depth {phase.stable_depth}")
    print(f"latch reasons ({len(phase.latch_reasons)}): "
          f"{sorted(phase.latch_reasons)}")
    print(f"kept latch bits: {phase.kept_latch_bits} / {phase.orig_latch_bits}")
    print(f"kept memories: {sorted(phase.kept_memories)}")
    print(f"abstracted memories: {sorted(phase.abstracted_memories)}")
    if outcome.minimization is not None:
        m = outcome.minimization
        print(f"minimization: dropped memories {sorted(m.dropped_memories)}, "
              f"dropped latches {sorted(m.dropped_latches)} "
              f"({m.checks} bounded checks)")
    if outcome.proof_result is not None:
        print(outcome.proof_result.describe())
    print(f"overall: {outcome.status}")
    return 0 if outcome.status in ("proof", "cex") else 1


def cmd_export(args) -> int:
    design = _build(args)
    if args.output == "-":
        write_verilog(sys.stdout, design)
    else:
        with open(args.output, "w") as out:
            write_verilog(out, design)
        print(f"wrote {design.name!r} to {args.output}")
    return 0


def cmd_parse(args) -> int:
    with open(args.file) as f:
        text = f.read()
    try:
        design = parse_verilog(text)
    except VerilogError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    print(f"parsed module {design.name!r}: "
          f"{len(design.inputs)} inputs, {len(design.latches)} latches, "
          f"{len(design.memories)} memories, "
          f"{len(design.properties)} properties")
    if not args.verify:
        return 0
    status = 0
    options = BmcOptions(find_proof=not args.no_proof,
                         max_depth=args.max_depth)
    for name in sorted(design.properties):
        result = verify(design, name, options)
        print(result.describe())
        if result.status not in ("proof", "cex"):
            status = 1
    return status


def cmd_roundtrip(args) -> int:
    """Export a case study to Verilog, re-parse, check equivalence."""
    import io

    design = _build(args)
    buf = io.StringIO()
    write_verilog(buf, design)
    parsed = parse_verilog(buf.getvalue())
    outputs = [(latch.expr, parsed.latches[name].expr)
               for name, latch in design.latches.items()]
    result = check_equivalence(design, parsed, outputs,
                               max_depth=args.max_depth,
                               share_arbitrary_init=True)
    print(f"roundtrip equivalence of {design.name!r} over "
          f"{len(outputs)} latch words: {result.status} "
          f"(depth {result.depth})")
    return 0 if result.status == "bounded" else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-emm",
        description="EMM for SAT-based BMC (DATE'05 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list case-study designs")

    p_info = sub.add_parser("info", help="show a design's statistics")
    _add_design_args(p_info)

    p_verify = sub.add_parser("verify", help="verify properties with BMC")
    _add_design_args(p_verify)
    p_verify.add_argument("--property", default=None,
                          help="property name (default: all)")
    p_verify.add_argument("--engine", default="bmc3",
                          choices=["bmc2", "bmc3", "explicit"])
    p_verify.add_argument("--max-depth", type=int, default=40)
    p_verify.add_argument("--timeout", type=float, default=None)
    p_verify.add_argument("--no-proof", action="store_true",
                          help="skip induction termination checks")
    p_verify.add_argument("--no-exclusivity", action="store_true",
                          help="ablation: naive forwarding encoding")
    p_verify.add_argument("--no-addr-dedup", action="store_true",
                          help="disable the EMM address-comparator cache "
                               "(paper's fresh-comparator encoding)")
    p_verify.add_argument("--no-strash", action="store_true",
                          help="disable AIG/CNF structural hashing "
                               "(unstrashed baseline encoding)")
    p_verify.add_argument("--no-chain-share", action="store_true",
                          help="disable cross-frame chain-suffix sharing "
                               "and incremental equation-(6) pruning "
                               "(latest-first / all-pairs baseline)")
    p_verify.add_argument("--no-cross-mem-share", action="store_true",
                          help="scope the address-comparator cache per "
                               "memory instead of sharing it across "
                               "memories through the session registry "
                               "(multi-label PBA provenance)")
    p_verify.add_argument("--no-hybrid-strash", action="store_true",
                          help="re-emit the hybrid EMM encoding as raw "
                               "CNF per frame instead of routing its "
                               "chain through the strashed AIG "
                               "(the paper's closed-form baseline)")
    p_verify.add_argument("--no-init-consistency", action="store_true",
                          help="ablation: drop equation (6) constraints")
    p_verify.add_argument("--show-trace", action="store_true")
    p_verify.add_argument("--shrink", action="store_true",
                          help="minimize counterexample traces")
    p_verify.add_argument("--solver-baseline", action="store_true",
                          help="run the historical baseline CDCL loop "
                               "instead of the fast solver back-end "
                               "(blocker literals, binary watchers, LBD "
                               "tiers, assumption-trail reuse) — the "
                               "differential oracle for A/B timing")
    p_verify.add_argument("--profile", action="store_true",
                          help="measure wall-clock phases (encode vs "
                               "solve, and the solver's propagate/"
                               "analyze/reduce/simplify split)")
    p_verify.add_argument("--jobs", type=int, default=1,
                          help="worker processes for multi-property "
                               "verification (1 = in-process on one "
                               "shared encoding session)")
    p_verify.add_argument("--retries", type=int, default=2,
                          help="retry budget per job for crashed/hung/"
                               "errored workers (--jobs > 1)")
    p_verify.add_argument("--job-timeout", type=float, default=None,
                          help="per-job hang deadline in seconds: a "
                               "worker running longer is killed and the "
                               "job retried (--jobs > 1)")
    p_verify.add_argument("--mem-quota-mb", type=float, default=None,
                          help="per-job RSS quota: over budget, the run "
                               "degrades to the deepest fully-checked "
                               "depth instead of dying")
    p_verify.add_argument("--clause-quota", type=int, default=None,
                          help="per-job encoding watermark (solver "
                               "clauses + variables); degrades like "
                               "--mem-quota-mb")
    p_verify.add_argument("--wall-quota", type=float, default=None,
                          help="per-job wall budget in seconds; unlike "
                               "--timeout the result is a sound partial "
                               "answer at depth granularity (degraded, "
                               "not timeout)")
    p_verify.add_argument("--json", action="store_true",
                          help="machine-readable results (one JSON array)")

    p_pba = sub.add_parser("pba", help="run the EMM+PBA flow")
    _add_design_args(p_pba)
    p_pba.add_argument("--property", required=True)
    p_pba.add_argument("--stability-depth", type=int, default=10)
    p_pba.add_argument("--max-depth", type=int, default=40)
    p_pba.add_argument("--minimize", default="off",
                       choices=["off", "memory", "latch", "both"],
                       help="deletion-based reason minimization")

    p_export = sub.add_parser("export", help="write a design as Verilog")
    _add_design_args(p_export)
    p_export.add_argument("--output", "-o", default="-",
                          help="output file (default: stdout)")

    p_parse = sub.add_parser("parse", help="parse a Verilog file")
    p_parse.add_argument("file")
    p_parse.add_argument("--verify", action="store_true",
                         help="verify the parsed properties")
    p_parse.add_argument("--max-depth", type=int, default=20)
    p_parse.add_argument("--no-proof", action="store_true")

    p_round = sub.add_parser(
        "roundtrip", help="export->parse->equivalence-check a case study")
    _add_design_args(p_round)
    p_round.add_argument("--max-depth", type=int, default=10)

    args = parser.parse_args(argv)
    handlers = {"list": cmd_list, "info": cmd_info,
                "verify": cmd_verify, "pba": cmd_pba,
                "export": cmd_export, "parse": cmd_parse,
                "roundtrip": cmd_roundtrip}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
