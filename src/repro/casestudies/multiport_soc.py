"""Industry Design II analog: one memory, 1 write / 3 read ports.

The paper's second industrial case study: a design with 2400 latches and
one embedded memory (AW=12, DW=32) with one write and three read ports,
zero-initialised, carrying 8 reachability properties.  Its punchline:

* abstracting the memory away completely produces *spurious witnesses at
  depth 7* for all properties;
* with EMM no witness exists up to depth 200, but no proof is found
  either;
* the write enable is observed to stay inactive, leading to the invariant
  ``G(WE = 0 or WD = 0)``, proved by backward induction at depth 2;
* the invariant implies the read data is always 0, so the memory is
  replaced by that constraint, PBA shrinks the model, and all 8
  properties are proved unreachable by forward induction.

The analog reproduces every structural ingredient: a saturating event
counter that can never overflow gates the error mode; the error mode
drives both the write enable (one cycle later) and the write-data mux
(forced to zero unless the error mode was already on), making the paper's
invariant hold 1-step-inductively; a 3-stage flag pipeline over the OR of
the three read ports puts the spurious witnesses at the paper's depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design


@dataclass(frozen=True)
class MultiportSocParams:
    """Paper scale is addr_width=12, data_width=32."""

    addr_width: int = 5
    data_width: int = 8
    counter_width: int = 4
    #: Number of reachability properties (paper: 8; mode values 0..n-1).
    num_properties: int = 8


def build_multiport_soc(params: MultiportSocParams = MultiportSocParams()) -> Design:
    p = params
    aw, dw, cw = p.addr_width, p.data_width, p.counter_width
    d = Design("multiport_soc")

    addr_a = d.input("addr_a", aw)
    addr_b = d.input("addr_b", aw)
    addr_c = d.input("addr_c", aw)
    data_in = d.input("data_in", dw)
    wr_req = d.input("wr_req", 1)
    tick = d.input("tick", 1)
    mode_in = d.input("mode_in", 3)

    # Saturating event counter: wraps one short of overflow, so the
    # "overflow" trigger for the error mode can never fire.
    cnt = d.latch("cnt", cw, init=0)
    cnt_max = (1 << cw) - 1
    cnt.next = tick.ite(
        cnt.expr.ult(cnt_max - 1).ite(cnt.expr + 1, d.const(0, cw)),
        cnt.expr)
    err = d.latch("err", 1, init=0)
    err.next = err.expr | cnt.expr.eq(cnt_max)

    # Write path: enable and data are registered off the error mode.  WE
    # can only be 1 if err was on a cycle earlier, in which case WD was
    # forced to 0 in that same cycle — the paper's G(WE=0 or WD=0).
    we_reg = d.latch("we_reg", 1, init=0)
    we_reg.next = err.expr & wr_req
    wd_reg = d.latch("wd_reg", dw, init=0)
    wd_reg.next = err.expr.ite(d.const(0, dw), data_in)
    waddr_reg = d.latch("waddr_reg", aw, init=0)
    waddr_reg.next = addr_a

    table = d.memory("table", addr_width=aw, data_width=dw,
                     read_ports=3, write_ports=1, init=0)
    rd0 = table.read(0).connect(addr=addr_a, en=1)
    rd1 = table.read(1).connect(addr=addr_b, en=1)
    rd2 = table.read(2).connect(addr=addr_c, en=1)
    table.write(0).connect(addr=waddr_reg.expr, data=wd_reg.expr,
                           en=we_reg.expr)

    # Detection pipeline: three registered stages over "any read nonzero",
    # placing the (spurious, under naive abstraction) witnesses at depth 7.
    hit = rd0.ne(0) | rd1.ne(0) | rd2.ne(0)
    s1 = d.latch("s1", 1, init=0)
    s2 = d.latch("s2", 1, init=0)
    s3 = d.latch("s3", 1, init=0)
    s1.next = hit
    s2.next = s1.expr
    s3.next = s2.expr
    mode = d.latch("mode", 3, init=0)
    mode.next = mode_in
    mode_hold = d.latch("mode_hold", 3, init=0)
    mode_hold.next = mode.expr
    armed = d.latch("armed", 1, init=0)
    armed.next = d.const(1, 1)
    stage4 = d.latch("stage4", 1, init=0)
    stage4.next = s3.expr & armed.expr

    # -- the 8 reachability properties (all unreachable) -------------------
    for m in range(p.num_properties):
        d.reach(f"alarm_mode_{m}", stage4.expr & mode_hold.expr.eq(m))

    # -- the paper's invariant ----------------------------------------------
    d.invariant("we_or_wd_zero",
                we_reg.expr.eq(0) | wd_reg.expr.eq(0))
    return d
