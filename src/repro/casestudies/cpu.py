"""A microcoded accumulator CPU — the "software programs" case study.

The paper verifies software (quicksort) compiled onto an embedded-memory
substrate.  This module provides a second instance: a small accumulator
machine with a program ROM and a data memory, both embedded memories:

* ``imem`` — instruction ROM, ``init_words`` holds the program (reads
  through a dedicated port addressed by ``pc``; never written);
* ``dmem`` — data memory, 1 read / 1 write port, arbitrary initial
  contents unless a program seeds them.

Programs are written in a tiny assembly (:func:`assemble`) and verified
end-to-end: :func:`memcpy_program` copies a block and then *re-walks it
comparing* — the self-check leaves 1 in ``acc`` — so the correctness
property ``G(halted -> acc = 1)`` holds for **every** initial memory
image, exercising the Section 4.2 arbitrary-initial-state machinery on
real software.  :func:`sum_program` accumulates seeded constants, whose
final value BMC checks exactly.

Instruction set (op nibble + operand):

====== ===================== =========================================
op     syntax                semantics
====== ===================== =========================================
0      ``NOP``
1      ``LDI imm``           acc <- imm
2      ``LDA a``             acc <- dmem[a]
3      ``STA a``             dmem[a] <- acc
4      ``ADD a``             acc <- acc + dmem[a]
5      ``SUB a``             acc <- acc - dmem[a]
6      ``JMP t``             pc <- t
7      ``JNZ t``             if acc != 0: pc <- t
8      ``TAX``               x <- acc
9      ``LAX``               acc <- dmem[x]
10     ``SAX``               dmem[x] <- acc
11     ``INX``               x <- x + 1
12     ``TXA``               acc <- x
13     ``HALT``              halted <- 1 (pc freezes)
====== ===================== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from repro.design.netlist import Design

OPCODES = {
    "NOP": 0, "LDI": 1, "LDA": 2, "STA": 3, "ADD": 4, "SUB": 5,
    "JMP": 6, "JNZ": 7, "TAX": 8, "LAX": 9, "SAX": 10, "INX": 11,
    "TXA": 12, "HALT": 13,
}

#: Instructions whose operand field is meaningful.
_WITH_OPERAND = {"LDI", "LDA", "STA", "ADD", "SUB", "JMP", "JNZ"}

Instruction = Union[str, tuple[str, int]]


@dataclass(frozen=True)
class CpuParams:
    """Geometry knobs.  Data width doubles as the immediate width."""

    pc_width: int = 5       # program ROM address width
    addr_width: int = 4     # data memory address width
    data_width: int = 8

    @property
    def inst_width(self) -> int:
        return 4 + max(self.addr_width, self.pc_width, self.data_width)

    @property
    def operand_width(self) -> int:
        return self.inst_width - 4


def assemble(program: Sequence[Instruction],
             params: CpuParams = CpuParams()) -> dict[int, int]:
    """Assemble to ``{pc: instruction_word}`` for ``imem.init_words``."""
    out: dict[int, int] = {}
    if len(program) > (1 << params.pc_width):
        raise ValueError(f"program of {len(program)} words does not fit "
                         f"pc_width {params.pc_width}")
    for pc, inst in enumerate(program):
        if isinstance(inst, str):
            name, operand = inst, 0
        else:
            name, operand = inst
        op = OPCODES.get(name)
        if op is None:
            raise ValueError(f"unknown mnemonic {name!r} at {pc}")
        if name in _WITH_OPERAND:
            if not 0 <= operand < (1 << params.operand_width):
                raise ValueError(f"operand {operand} of {name} at {pc} "
                                 "out of range")
        elif operand:
            raise ValueError(f"{name} takes no operand (at {pc})")
        out[pc] = (op << params.operand_width) | operand
    return out


def build_cpu(program: Sequence[Instruction],
              params: CpuParams = CpuParams(),
              dmem_init: Optional[int] = None,
              dmem_words: Optional[Mapping[int, int]] = None,
              name: str = "cpu") -> Design:
    """Build the CPU design with ``program`` in ROM.

    ``dmem_init`` / ``dmem_words`` configure the data memory's initial
    contents (default: fully arbitrary — the hard case).  Properties
    attached:

    * ``halts`` (reach) — the program reaches its HALT;
    * ``halted_acc_one`` (invariant) — when halted, acc == 1 (the
      self-check convention of :func:`memcpy_program`);
    * ``pc_in_bounds`` (invariant) — pc never leaves the program.
    """
    p = params
    d = Design(name)
    code = assemble(program, p)

    pc = d.latch("pc", p.pc_width, init=0)
    acc = d.latch("acc", p.data_width, init=0)
    x = d.latch("x", p.addr_width, init=0)
    halted = d.latch("halted", 1, init=0)

    imem = d.memory("imem", addr_width=p.pc_width, data_width=p.inst_width,
                    init=OPCODES["HALT"] << p.operand_width,
                    init_words=code)
    imem.write(0).connect(addr=d.const(0, p.pc_width),
                          data=d.const(0, p.inst_width), en=0)
    inst = imem.read(0).connect(addr=pc.expr, en=1)
    op = inst[p.operand_width:p.inst_width]
    operand = inst[0:p.operand_width]
    op_is = {name: op.eq(code_) for name, code_ in OPCODES.items()}

    dmem = d.memory("dmem", addr_width=p.addr_width, data_width=p.data_width,
                    init=dmem_init, init_words=dmem_words)
    addr_op = operand[0:p.addr_width]
    use_x = op_is["LAX"] | op_is["SAX"]
    daddr = use_x.ite(x.expr, addr_op)
    read_needed = (op_is["LDA"] | op_is["ADD"] | op_is["SUB"] | op_is["LAX"])
    rdata = dmem.read(0).connect(addr=daddr, en=read_needed & ~halted.expr)
    write_needed = (op_is["STA"] | op_is["SAX"]) & ~halted.expr
    dmem.write(0).connect(addr=daddr, data=acc.expr, en=write_needed)

    imm = operand[0:p.data_width] if p.operand_width > p.data_width \
        else operand.zext(p.data_width)
    x_as_data = x.expr.zext(p.data_width) if p.addr_width < p.data_width \
        else x.expr[0:p.data_width]

    acc_next = acc.expr
    acc_next = op_is["LDI"].ite(imm, acc_next)
    acc_next = (op_is["LDA"] | op_is["LAX"]).ite(rdata, acc_next)
    acc_next = op_is["ADD"].ite(acc.expr + rdata, acc_next)
    acc_next = op_is["SUB"].ite(acc.expr - rdata, acc_next)
    acc_next = op_is["TXA"].ite(x_as_data, acc_next)
    acc.next = halted.expr.ite(acc.expr, acc_next)

    x_next = x.expr
    x_next = op_is["TAX"].ite(acc.expr[0:p.addr_width], x_next)
    x_next = op_is["INX"].ite(x.expr + 1, x_next)
    x.next = halted.expr.ite(x.expr, x_next)

    target = operand[0:p.pc_width]
    taken = op_is["JMP"] | (op_is["JNZ"] & acc.expr.ne(0))
    pc_next = taken.ite(target, pc.expr + 1)
    pc.next = (halted.expr | op_is["HALT"]).ite(pc.expr, pc_next)

    halted.next = halted.expr | op_is["HALT"]

    d.reach("halts", halted.expr)
    d.invariant("halted_acc_one",
                halted.expr.implies(acc.expr.eq(1)))
    d.invariant("pc_in_bounds", pc.expr.ult(max(len(program), 1)))
    return d


def memcpy_program(n: int, src: int, dst: int,
                   params: CpuParams = CpuParams()) -> list[Instruction]:
    """Copy ``n`` words then re-walk both blocks comparing (self-check).

    Ends halted with ``acc == 1`` when the copy verified, which it always
    does on a correct machine — for **any** initial memory contents.
    Block layout requirement: ``[src, src+n)`` and ``[dst, dst+n)`` must
    not overlap.
    """
    if n < 1:
        raise ValueError("need at least one word")
    if src < dst < src + n or dst < src < dst + n:
        raise ValueError("memcpy blocks overlap")
    prog: list[Instruction] = []
    # Layout: 2n copy words, 3n check words, then LDI 1/HALT (success)
    # at 5n, and LDI 0/HALT (failure) at 5n+2.
    fail_target = 5 * n + 2
    for i in range(n):  # unrolled copy: LDA src+i / STA dst+i
        prog.append(("LDA", src + i))
        prog.append(("STA", dst + i))
    for i in range(n):  # self-check: difference of each pair must be 0
        prog.append(("LDA", src + i))
        prog.append(("SUB", dst + i))
        prog.append(("JNZ", fail_target))
    prog.append(("LDI", 1))   # all pairs equal
    prog.append("HALT")
    prog.append(("LDI", 0))   # fail_target: mismatch found
    prog.append("HALT")
    return prog


def sum_program(values: Sequence[int], out_addr: int,
                params: CpuParams = CpuParams()) -> tuple[list[Instruction],
                                                          dict[int, int], int]:
    """Sum seeded constants into ``out_addr``.

    Returns ``(program, dmem_words, expected)`` — the data image to pass
    as ``dmem_words`` and the expected final accumulator value.
    """
    if not values:
        raise ValueError("need at least one value")
    data = {i: v & ((1 << params.data_width) - 1)
            for i, v in enumerate(values)}
    prog: list[Instruction] = [("LDA", 0)]
    for i in range(1, len(values)):
        prog.append(("ADD", i))
    prog.append(("STA", out_addr))
    prog.append("HALT")
    expected = sum(data.values()) & ((1 << params.data_width) - 1)
    return prog, data, expected


def indexed_fill_program(n: int, base: int, value: int) -> list[Instruction]:
    """Fill ``n`` words at ``base`` with ``value`` via the X register."""
    if n < 1:
        raise ValueError("need at least one word")
    prog: list[Instruction] = [
        ("LDI", base),
        "TAX",
        ("LDI", value),
    ]
    for _ in range(n):
        prog.append("SAX")
        prog.append("INX")
    prog.append(("LDI", 1))
    prog.append("HALT")
    return prog
