"""Industry Design I analog: a low-pass image filter with two memories.

The paper's first industrial case study is "a low-pass image filter with
756 latches, 28 inputs and ~15K gates, two memory modules (AW=10, DW=8,
one read + one write port each, zero-initialised) and 216 reachability
properties", of which 206 have witnesses (max depth 51) and 10 are proved
unreachable by induction.

This analog keeps the exact memory structure — a *line buffer* the pixel
stream is written into, and an *output buffer* the filtered pixels are
written into — and generates a parametric family of reachability
properties over the filtered value:

* ``reach_out_eq_v`` for v ≤ 191 has a witness: the 3-tap average
  ``(x[k-1] + x[k] + x[k+1]) >> 2`` attains every value up to
  ``765 >> 2 = 191``;
* for v ≥ 192 the target is unreachable and provable by backward
  induction — the paper's 206/10 split in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design

INGEST = 0
FILTER = 1
DONE = 2


@dataclass(frozen=True)
class ImageFilterParams:
    """Paper scale is addr_width=10 (1024-pixel lines), data_width=8."""

    addr_width: int = 4
    data_width: int = 8
    #: Property family: values sampled for reach_out_eq_<v> properties.
    reachable_values: tuple[int, ...] = (0, 5, 17, 64, 100, 150, 191)
    unreachable_values: tuple[int, ...] = (192, 200, 255)

    @property
    def line_width(self) -> int:
        return 1 << self.addr_width

    @property
    def max_filtered(self) -> int:
        """Largest value the 3-tap filter can produce."""
        return (3 * ((1 << self.data_width) - 1)) >> 2


def build_image_filter(params: ImageFilterParams = ImageFilterParams()) -> Design:
    p = params
    aw, dw = p.addr_width, p.data_width
    width = p.line_width
    d = Design("image_filter")

    pix_in = d.input("pix_in", dw)
    probe_addr = d.input("probe_addr", aw)

    pc = d.latch("pc", 2, init=INGEST)
    win = d.latch("win", aw, init=0)        # ingest write pointer
    k = d.latch("k", aw, init=1)            # filter output position
    tap = d.latch("tap", 2, init=0)         # which neighbour is being read
    acc = d.latch("acc", dw + 2, init=0)    # running 3-tap sum
    out_val = d.latch("out_val", dw, init=0)
    out_valid = d.latch("out_valid", 1, init=0)

    linebuf = d.memory("linebuf", addr_width=aw, data_width=dw, init=0)
    outbuf = d.memory("outbuf", addr_width=aw, data_width=dw, init=0)

    st_ingest = pc.expr.eq(INGEST)
    st_filter = pc.expr.eq(FILTER)
    st_done = pc.expr.eq(DONE)

    # Line buffer: written during ingest, read during filtering.
    tap_addr = tap.expr.eq(0).ite(k.expr - 1,
                                  tap.expr.eq(1).ite(k.expr, k.expr + 1))
    line_rd = linebuf.read(0).connect(addr=tap_addr, en=st_filter)
    linebuf.write(0).connect(addr=win.expr, data=pix_in, en=st_ingest)

    # Output buffer: written when a 3-tap window completes; probe-readable.
    sum_now = acc.expr + line_rd.zext(dw + 2)
    filtered = sum_now[2:dw + 2]
    window_done = st_filter & tap.expr.eq(2)
    outbuf.write(0).connect(addr=k.expr, data=filtered, en=window_done)
    probe_rd = outbuf.read(0).connect(addr=probe_addr, en=st_done)

    last_ingest = win.expr.eq(width - 1)
    last_k = k.expr.eq(width - 2)
    pc.next = st_ingest.ite(
        last_ingest.ite(d.const(FILTER, 2), d.const(INGEST, 2)),
        st_filter.ite(
            (window_done & last_k).ite(d.const(DONE, 2), d.const(FILTER, 2)),
            pc.expr))
    win.next = st_ingest.ite(win.expr + 1, win.expr)
    tap.next = st_filter.ite(
        tap.expr.eq(2).ite(d.const(0, 2), tap.expr + 1), tap.expr)
    k.next = window_done.ite(k.expr + 1, k.expr)
    acc.next = st_filter.ite(
        tap.expr.eq(2).ite(d.const(0, dw + 2), sum_now), acc.expr)
    out_val.next = window_done.ite(filtered, out_val.expr)
    out_valid.next = window_done.ite(d.const(1, 1), out_valid.expr)

    # -- property family ------------------------------------------------------
    for v in params.reachable_values:
        d.reach(f"reach_out_eq_{v}", out_valid.expr & out_val.expr.eq(v & ((1 << dw) - 1)))
    for v in params.unreachable_values:
        d.reach(f"unreach_out_eq_{v}", out_valid.expr & out_val.expr.eq(v & ((1 << dw) - 1)))
    d.reach("reach_done", st_done)
    d.reach("reach_probe_nonzero", st_done & probe_rd.ne(0))
    return d
