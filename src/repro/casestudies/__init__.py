"""The paper's evaluation workloads, rebuilt as parametric designs (S9).

* :mod:`repro.casestudies.quicksort` — the quicksort-in-HDL case study
  (Table 1 / Table 2): array + recursion-stack memories, properties P1
  (sortedness of the first two elements) and P2 (stack discipline).
* :mod:`repro.casestudies.image_filter` — Industry Design I analog: a
  low-pass image filter with two embedded memories and a generated family
  of reachability properties.
* :mod:`repro.casestudies.multiport_soc` — Industry Design II analog: a
  1-write/3-read-port memory whose write enable can never fire, with
  unreachable properties and the invariant ``G(WE=0 or WD=0)``.
* :mod:`repro.casestudies.cpu` — a microcoded accumulator CPU with a
  program ROM and a data memory; self-checking programs (memcpy, sum,
  indexed fill) give a second "software program" workload whose
  correctness proofs need the arbitrary-initial-state machinery.
* :mod:`repro.casestudies.fifo` / :mod:`repro.casestudies.stack_machine`
  — small teaching designs used by the quickstart and the test suite.
"""

from repro.casestudies.quicksort import QuicksortParams, build_quicksort
from repro.casestudies.image_filter import ImageFilterParams, build_image_filter
from repro.casestudies.multiport_soc import MultiportSocParams, build_multiport_soc
from repro.casestudies.fifo import FifoParams, build_fifo
from repro.casestudies.stack_machine import StackMachineParams, build_stack_machine
from repro.casestudies.cache import CacheParams, build_cache
from repro.casestudies.cpu import (CpuParams, assemble, build_cpu,
                                   indexed_fill_program, memcpy_program,
                                   sum_program)

__all__ = [
    "QuicksortParams", "build_quicksort",
    "ImageFilterParams", "build_image_filter",
    "MultiportSocParams", "build_multiport_soc",
    "FifoParams", "build_fifo",
    "StackMachineParams", "build_stack_machine",
    "CacheParams", "build_cache",
    "CpuParams", "assemble", "build_cpu", "memcpy_program", "sum_program",
    "indexed_fill_program",
]
