"""A direct-mapped cache controller — an extra EMM workload.

Not from the paper's evaluation, but exactly the kind of embedded-memory
system its introduction motivates (SoC data-path blocks): two embedded
memories (tag array and data array) indexed by the same set bits, a
valid-bit register file, and hit/miss logic.

Properties:

* ``hit_implies_tag_match`` — when the controller signals a hit, the tag
  array entry matches the request tag (provable by induction: the tag
  and valid bit are only ever written together);
* ``read_after_fill`` — reading a line right after filling it returns
  the fill data (1-step forwarding, provable);
* ``reach_hit`` / ``reach_miss`` — both outcomes are exercisable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design


@dataclass(frozen=True)
class CacheParams:
    index_width: int = 2   # log2(number of sets)
    tag_width: int = 3
    data_width: int = 8


def build_cache(params: CacheParams = CacheParams()) -> Design:
    p = params
    iw, tw, dw = p.index_width, p.tag_width, p.data_width
    d = Design("cache")

    req = d.input("req", 1)             # lookup request
    fill = d.input("fill", 1)           # fill request (miss handling)
    addr_tag = d.input("addr_tag", tw)
    addr_idx = d.input("addr_idx", iw)
    fill_data = d.input("fill_data", dw)

    # Valid bits live in a register file (they need per-cycle reset
    # semantics, not memory semantics).
    valid = d.latch("valid", 1 << iw, init=0)

    tags = d.memory("tags", addr_width=iw, data_width=tw, init=0)
    data = d.memory("data", addr_width=iw, data_width=dw, init=0)

    do_fill = fill & ~req
    tags.write(0).connect(addr=addr_idx, data=addr_tag, en=do_fill)
    data.write(0).connect(addr=addr_idx, data=fill_data, en=do_fill)
    tag_rd = tags.read(0).connect(addr=addr_idx, en=req)
    data_rd = data.read(0).connect(addr=addr_idx, en=req)

    # valid[idx] <- 1 on fill (read-modify-write of the bit vector).
    one_hot = d.const(1, 1 << iw)
    shifted = one_hot
    # Build (1 << addr_idx) as a mux chain over the index value.
    for i in range(1, 1 << iw):
        shifted = addr_idx.eq(i).ite(d.const(1 << i, 1 << iw), shifted)
    valid.next = do_fill.ite(valid.expr | shifted, valid.expr)

    valid_bit = d.const(0, 1)
    for i in range(1 << iw):
        valid_bit = addr_idx.eq(i).ite(valid.expr[i], valid_bit)

    hit = req & valid_bit & tag_rd.eq(addr_tag)
    hit_reg = d.latch("hit_reg", 1, init=0)
    hit_reg.next = hit
    out_reg = d.latch("out_reg", dw, init=0)
    out_reg.next = hit.ite(data_rd, out_reg.expr)

    # Shadow registers for read_after_fill.
    prev_fill = d.latch("prev_fill", 1, init=0)
    prev_fill.next = do_fill
    prev_idx = d.latch("prev_idx", iw, init=0)
    prev_idx.next = do_fill.ite(addr_idx, prev_idx.expr)
    prev_data = d.latch("prev_data", dw, init=0)
    prev_data.next = do_fill.ite(fill_data, prev_data.expr)
    prev_tag = d.latch("prev_tag", tw, init=0)
    prev_tag.next = do_fill.ite(addr_tag, prev_tag.expr)

    read_back_now = (prev_fill.expr & req & addr_idx.eq(prev_idx.expr)
                     & addr_tag.eq(prev_tag.expr))
    d.invariant("read_after_fill",
                read_back_now.implies(data_rd.eq(prev_data.expr)))
    d.invariant("hit_implies_tag_match", hit.implies(tag_rd.eq(addr_tag)))
    d.reach("reach_hit", hit)
    d.reach("reach_miss", req & ~hit)
    return d
