"""A push/pop stack machine over an embedded stack memory.

Its headline property, ``push_pop_roundtrip``, states that a pop issued
immediately after a push returns the pushed value — precisely the 1-step
data-forwarding semantics EMM encodes, so BMC-3 proves it by backward
induction at a small depth.  A useful differential workload against the
explicit baseline, and a second teaching example next to the FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design

OP_NOP = 0
OP_PUSH = 1
OP_POP = 2


@dataclass(frozen=True)
class StackMachineParams:
    addr_width: int = 3
    data_width: int = 8


def build_stack_machine(params: StackMachineParams = StackMachineParams()) -> Design:
    p = params
    aw, dw = p.addr_width, p.data_width
    cap = (1 << aw) - 1
    d = Design("stack_machine")

    op = d.input("op", 2)
    data_in = d.input("data_in", dw)

    sp = d.latch("sp", aw, init=0)
    do_push = op.eq(OP_PUSH) & sp.expr.ult(cap)
    do_pop = op.eq(OP_POP) & sp.expr.ne(0)

    mem = d.memory("stk", addr_width=aw, data_width=dw, init=0)
    mem.write(0).connect(addr=sp.expr, data=data_in, en=do_push)
    top_rd = mem.read(0).connect(addr=sp.expr - 1, en=do_pop)

    sp.next = do_push.ite(sp.expr + 1,
                          do_pop.ite(sp.expr - 1, sp.expr))

    # Shadow registers for the roundtrip property.
    last_was_push = d.latch("last_was_push", 1, init=0)
    last_data = d.latch("last_data", dw, init=0)
    last_was_push.next = do_push
    last_data.next = do_push.ite(data_in, last_data.expr)

    roundtrip_now = last_was_push.expr & do_pop
    d.invariant("push_pop_roundtrip",
                roundtrip_now.implies(top_rd.eq(last_data.expr)))
    d.invariant("sp_in_range", sp.expr.ule(cap))
    d.reach("can_reach_depth3", sp.expr.eq(3))
    return d
