"""A memory-backed circular FIFO — the quickstart design.

Small but exercises the full EMM stack: one embedded memory, pointer
arithmetic, provable control invariants, a reachability witness, and a
bounded data-integrity check that is pure forwarding semantics (a pop
must return the value pushed into that slot).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design


@dataclass(frozen=True)
class FifoParams:
    addr_width: int = 3
    data_width: int = 8


def build_fifo(params: FifoParams = FifoParams()) -> Design:
    p = params
    aw, dw = p.addr_width, p.data_width
    depth = 1 << aw
    d = Design("fifo")

    push_req = d.input("push", 1)
    pop_req = d.input("pop", 1)
    data_in = d.input("data_in", dw)
    sample = d.input("sample", 1)  # tag the current push for the checker

    head = d.latch("head", aw, init=0)   # next write slot
    tail = d.latch("tail", aw, init=0)   # next read slot
    count = d.latch("count", aw + 1, init=0)

    full = count.expr.eq(depth)
    empty = count.expr.eq(0)
    do_push = push_req & ~full
    do_pop = pop_req & ~empty

    mem = d.memory("buf", addr_width=aw, data_width=dw, init=0)
    mem.write(0).connect(addr=head.expr, data=data_in, en=do_push)
    rd = mem.read(0).connect(addr=tail.expr, en=do_pop)

    head.next = do_push.ite(head.expr + 1, head.expr)
    tail.next = do_pop.ite(tail.expr + 1, tail.expr)
    count.next = (count.expr + do_push.zext(aw + 1)) - do_pop.zext(aw + 1)

    # Scoreboard: remember one tagged pushed value and its slot; when that
    # slot is popped, the FIFO must deliver exactly the remembered value.
    tag_valid = d.latch("tag_valid", 1, init=0)
    tag_slot = d.latch("tag_slot", aw, init=0)
    tag_data = d.latch("tag_data", dw, init=0)
    tag_now = do_push & sample & ~tag_valid.expr
    tag_popped = tag_valid.expr & do_pop & tail.expr.eq(tag_slot.expr)
    tag_valid.next = tag_now.ite(d.const(1, 1),
                                 tag_popped.ite(d.const(0, 1), tag_valid.expr))
    tag_slot.next = tag_now.ite(head.expr, tag_slot.expr)
    tag_data.next = tag_now.ite(data_in, tag_data.expr)

    d.invariant("count_bounded", count.expr.ule(depth))
    d.invariant("empty_full_exclusive", ~(empty & full))
    d.invariant("data_integrity", tag_popped.implies(rd.eq(tag_data.expr)))
    d.reach("can_fill", full)
    return d
