"""The quicksort case study (paper Section 5, Tables 1 and 2).

An iterative quicksort (Lomuto partition) over an embedded array memory,
with recursion realised through an explicit stack memory — the same two
memories as the paper's Verilog implementation (array AW=10/DW=32, stack
AW=10/DW=24; both widths are parameters here).  The array starts with
*arbitrary* values, exercising the Section 4.2 machinery.

Design decisions that mirror the paper's observed behaviour:

* **Registered memory interfaces.**  Each memory port is driven by
  dedicated interface registers (``arr_raddr``, ``arr_we`` …).  The
  control latches of the array are therefore exactly those registers, so
  proof-based abstraction can discard the whole array module for a
  property that never needs array data — the Table 2 result.
* **Data-independent control flow.**  The FSM always walks the same state
  sequence per partition step; comparisons with the pivot only steer
  *which data* is written, never *which state* comes next.  Hence the
  program counter (and the stack discipline) provably do not depend on
  array contents.
* **Stack frames carry their own depth.**  A pushed frame records the
  stack pointer at push time; property P2 checks on every dispatch that
  the popped frame's depth field equals the post-pop stack pointer — the
  stack-discipline analog of the paper's "return to the right partition
  or to the parent" property, and like it, it depends only on the stack.

Properties:

* ``P1`` — when the checker has run (HALT state), the first element of
  the sorted array is not greater than the second.
* ``P2`` — on every dispatch, the popped frame's depth equals the stack
  pointer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.design.netlist import Design, Expr

# FSM states.
INIT = 0
POP = 1
DISPATCH = 2
PIVOT_WAIT = 3
READ_J = 4
READ_I = 5
WRITE_J = 6
PAUSE = 7
FINAL_READ_I = 8
FINAL_READ_HI = 9
PUSH_RIGHT = 10
PUSH_LEFT = 11
CHECK_REQ = 12
CHECK_WAIT0 = 13
CHECK_WAIT1 = 14
HALT = 15

STATE_NAMES = {
    INIT: "INIT", POP: "POP", DISPATCH: "DISPATCH", PIVOT_WAIT: "PIVOT_WAIT",
    READ_J: "READ_J", READ_I: "READ_I", WRITE_J: "WRITE_J", PAUSE: "PAUSE",
    FINAL_READ_I: "FINAL_READ_I", FINAL_READ_HI: "FINAL_READ_HI",
    PUSH_RIGHT: "PUSH_RIGHT", PUSH_LEFT: "PUSH_LEFT", CHECK_REQ: "CHECK_REQ",
    CHECK_WAIT0: "CHECK_WAIT0", CHECK_WAIT1: "CHECK_WAIT1", HALT: "HALT",
}


@dataclass(frozen=True)
class QuicksortParams:
    """Size knobs; the paper's configuration is AW=10, DW=32, stack DW=24."""

    n: int = 3               # number of array elements actually sorted
    addr_width: int = 4      # array address width (AW)
    data_width: int = 8      # array data width (DW)
    stack_addr_width: int = 4

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least 2 elements")
        if self.n + 1 >= (1 << self.addr_width):
            raise ValueError("addr_width too small for n (need headroom for i+1)")
        if 2 * self.n >= (1 << self.stack_addr_width):
            raise ValueError("stack_addr_width too small for n")

    @property
    def frame_width(self) -> int:
        """Stack frame: lo | hi | depth."""
        return 2 * self.addr_width + self.stack_addr_width


def build_quicksort(params: QuicksortParams = QuicksortParams()) -> Design:
    """Build the quicksort design; properties ``P1`` and ``P2`` attached."""
    p = params
    aw, dw, saw = p.addr_width, p.data_width, p.stack_addr_width
    fw = p.frame_width
    d = Design(f"quicksort_n{p.n}")

    pc = d.latch("pc", 4, init=INIT)
    lo = d.latch("lo", aw, init=0)
    hi = d.latch("hi", aw, init=0)
    i_reg = d.latch("i", aw, init=0)
    j_reg = d.latch("j", aw, init=0)
    pivot = d.latch("pivot", dw, init=0)
    tmp_j = d.latch("tmp_j", dw, init=0)   # holds arr[j] during a step
    tmp_i = d.latch("tmp_i", dw, init=0)   # holds arr[i] / checker element
    sp = d.latch("sp", saw, init=0)
    flag_valid = d.latch("flag_valid", 1, init=0)
    pair_ok = d.latch("pair_ok", 1, init=0)

    # Dedicated interface registers: the memories' control latches.
    arr_raddr = d.latch("arr_raddr", aw, init=0)
    arr_re = d.latch("arr_re", 1, init=0)
    arr_waddr = d.latch("arr_waddr", aw, init=0)
    arr_wdata = d.latch("arr_wdata", dw, init=0)
    arr_we = d.latch("arr_we", 1, init=0)
    stk_raddr = d.latch("stk_raddr", saw, init=0)
    stk_re = d.latch("stk_re", 1, init=0)
    stk_waddr = d.latch("stk_waddr", saw, init=0)
    stk_wdata = d.latch("stk_wdata", fw, init=0)
    stk_we = d.latch("stk_we", 1, init=0)

    arr = d.memory("arr", addr_width=aw, data_width=dw, init=None)
    stk = d.memory("stack", addr_width=saw, data_width=fw, init=None)
    arr_rd = arr.read(0).connect(addr=arr_raddr.expr, en=arr_re.expr)
    arr.write(0).connect(addr=arr_waddr.expr, data=arr_wdata.expr, en=arr_we.expr)
    stk_rd = stk.read(0).connect(addr=stk_raddr.expr, en=stk_re.expr)
    stk.write(0).connect(addr=stk_waddr.expr, data=stk_wdata.expr, en=stk_we.expr)

    # Frame packing helpers.
    def frame(lo_e: Expr, hi_e: Expr, depth_e: Expr) -> Expr:
        return lo_e.concat(hi_e).concat(depth_e)

    f_lo = stk_rd[0:aw]
    f_hi = stk_rd[aw:2 * aw]
    f_depth = stk_rd[2 * aw:fw]

    st = {s: pc.expr.eq(s) for s in STATE_NAMES}
    swap = tmp_j.expr.ult(pivot.expr)
    last_iter = j_reg.expr.eq(hi.expr - 1)
    i_next_loop = swap.ite(i_reg.expr + 1, i_reg.expr)

    # -- program counter ---------------------------------------------------
    nxt = d.const(HALT, 4)

    def when(cond: Expr, value, els) -> Expr:
        return cond.ite(d.coerce(value, 4), els)

    nxt = when(st[INIT], POP, nxt)
    nxt = when(st[POP], sp.expr.eq(0).ite(d.const(CHECK_REQ, 4), d.const(DISPATCH, 4)), nxt)
    nxt = when(st[DISPATCH], f_lo.uge(f_hi).ite(d.const(POP, 4), d.const(PIVOT_WAIT, 4)), nxt)
    nxt = when(st[PIVOT_WAIT], READ_J, nxt)
    nxt = when(st[READ_J], READ_I, nxt)
    nxt = when(st[READ_I], WRITE_J, nxt)
    nxt = when(st[WRITE_J], last_iter.ite(d.const(PAUSE, 4), d.const(READ_J, 4)), nxt)
    nxt = when(st[PAUSE], FINAL_READ_I, nxt)
    nxt = when(st[FINAL_READ_I], FINAL_READ_HI, nxt)
    nxt = when(st[FINAL_READ_HI], PUSH_RIGHT, nxt)
    nxt = when(st[PUSH_RIGHT], PUSH_LEFT, nxt)
    nxt = when(st[PUSH_LEFT], POP, nxt)
    nxt = when(st[CHECK_REQ], CHECK_WAIT0, nxt)
    nxt = when(st[CHECK_WAIT0], CHECK_WAIT1, nxt)
    nxt = when(st[CHECK_WAIT1], HALT, nxt)
    pc.next = nxt

    # -- ranges and indices --------------------------------------------------
    lo.next = st[DISPATCH].ite(f_lo, lo.expr)
    hi.next = st[DISPATCH].ite(f_hi, hi.expr)
    i_reg.next = st[DISPATCH].ite(f_lo, st[WRITE_J].ite(i_next_loop, i_reg.expr))
    j_reg.next = st[DISPATCH].ite(f_lo, st[WRITE_J].ite(j_reg.expr + 1, j_reg.expr))
    pivot.next = st[PIVOT_WAIT].ite(arr_rd, pivot.expr)
    tmp_j.next = st[READ_J].ite(
        arr_rd, st[FINAL_READ_HI].ite(arr_rd, tmp_j.expr))
    tmp_i.next = st[READ_I].ite(
        arr_rd, st[FINAL_READ_I].ite(arr_rd, st[CHECK_WAIT0].ite(arr_rd, tmp_i.expr)))

    # -- stack pointer --------------------------------------------------------
    sp_dec = sp.expr - 1
    sp_inc = sp.expr + 1
    sp.next = st[INIT].ite(
        1,
        st[POP].ite(sp.expr.eq(0).ite(sp.expr, sp_dec),
                    (st[PUSH_RIGHT] | st[PUSH_LEFT]).ite(sp_inc, sp.expr)))

    # -- checker flags ----------------------------------------------------------
    flag_valid.next = st[CHECK_WAIT1].ite(1, flag_valid.expr & ~st[INIT])
    pair_ok.next = st[CHECK_WAIT1].ite(tmp_i.expr.ule(arr_rd), pair_ok.expr)

    # -- array interface registers ----------------------------------------------
    # Read requests made in a state are served in the next state.
    arr_re.next = (st[DISPATCH] & f_lo.ult(f_hi)) | st[PIVOT_WAIT] \
        | st[READ_J] | (st[WRITE_J] & ~last_iter) | st[PAUSE] \
        | st[FINAL_READ_I] | st[CHECK_REQ] | st[CHECK_WAIT0]
    raddr = arr_raddr.expr
    raddr = st[DISPATCH].ite(f_hi, raddr)                 # pivot = arr[hi]
    raddr = st[PIVOT_WAIT].ite(j_reg.expr, raddr)         # arr[j] (j = lo)
    raddr = st[READ_J].ite(i_reg.expr, raddr)              # arr[i]
    raddr = st[WRITE_J].ite(j_reg.expr + 1, raddr)         # next arr[j]
    raddr = st[PAUSE].ite(i_reg.expr, raddr)               # final arr[i]
    raddr = st[FINAL_READ_I].ite(hi.expr, raddr)           # final arr[hi]
    raddr = st[CHECK_REQ].ite(d.const(0, aw), raddr)       # checker arr[0]
    raddr = st[CHECK_WAIT0].ite(d.const(1, aw), raddr)     # checker arr[1]
    arr_raddr.next = raddr

    arr_we.next = st[READ_I] | st[WRITE_J] | st[FINAL_READ_HI]
    waddr = arr_waddr.expr
    waddr = st[READ_I].ite(i_reg.expr, waddr)              # arr[i] <= ...
    waddr = st[WRITE_J].ite(j_reg.expr, waddr)             # arr[j] <= ...
    waddr = st[FINAL_READ_HI].ite(i_reg.expr, waddr)       # arr[i] <= arr[hi]
    arr_waddr.next = waddr
    wdata = arr_wdata.expr
    wdata = st[READ_I].ite(swap.ite(tmp_j.expr, arr_rd), wdata)
    wdata = st[WRITE_J].ite(swap.ite(tmp_i.expr, tmp_j.expr), wdata)
    wdata = st[FINAL_READ_HI].ite(arr_rd, wdata)
    arr_wdata.next = wdata
    # The FINAL_READ_HI write pairs with a deferred write of the old arr[i]
    # into arr[hi] one state later, executed via PUSH_RIGHT's cycle:
    # handled below by extending we/addr/data with PUSH_RIGHT.
    arr_we.next = arr_we.next | st[PUSH_RIGHT]
    arr_waddr.next = st[PUSH_RIGHT].ite(hi.expr, arr_waddr.next)
    arr_wdata.next = st[PUSH_RIGHT].ite(tmp_i.expr, arr_wdata.next)

    # -- stack interface registers -----------------------------------------------
    stk_re.next = st[POP] & sp.expr.ne(0)
    stk_raddr.next = st[POP].ite(sp_dec, stk_raddr.expr)
    stk_we.next = st[INIT] | st[FINAL_READ_HI] | st[PUSH_RIGHT]
    # Pushes are requested one state early (registered interface): the
    # right frame is set up in FINAL_READ_HI while sp is still the pre-push
    # value; the left frame is set up in PUSH_RIGHT, when sp has not yet
    # absorbed the in-flight right push, hence the +1 on address and depth.
    right_frame = frame(i_reg.expr + 1, hi.expr, sp.expr)
    left_hi = i_reg.expr.eq(lo.expr).ite(lo.expr, i_reg.expr - 1)
    left_frame = frame(lo.expr, left_hi, sp.expr + 1)
    init_frame = frame(d.const(0, aw), d.const(p.n - 1, aw), d.const(0, saw))
    swaddr = stk_waddr.expr
    swaddr = st[INIT].ite(d.const(0, saw), swaddr)
    swaddr = st[FINAL_READ_HI].ite(sp.expr, swaddr)       # push right at sp
    swaddr = st[PUSH_RIGHT].ite(sp.expr + 1, swaddr)      # push left at sp+1
    stk_waddr.next = swaddr
    swdata = stk_wdata.expr
    swdata = st[INIT].ite(init_frame, swdata)
    swdata = st[FINAL_READ_HI].ite(right_frame, swdata)
    swdata = st[PUSH_RIGHT].ite(left_frame, swdata)
    stk_wdata.next = swdata

    # -- properties ------------------------------------------------------------
    d.invariant("P1", flag_valid.expr.implies(pair_ok.expr))
    d.invariant("P2", (st[DISPATCH] & stk_re.expr).implies(f_depth.eq(sp.expr)))
    return d
