"""Time-frame expansion of a design onto the AIG/CNF substrate.

Every frame gets fresh AIG input words for latches, primary inputs and
memory read-data (RD) ports.  Latch words of frame k+1 are tied to the
frame-k next-state cones through *link clauses* labeled
``("link", latch, k+1)`` — dropping those clauses for a latch is exactly
the paper's latch-based abstraction (the latch becomes a pseudo-primary
input).  RD words stay free here; either the EMM constraints
(:mod:`repro.emm`) or nothing at all (abstracted memory) bind them.
"""

from __future__ import annotations

from typing import Optional

from repro.aig import ops
from repro.aig.tseitin import CnfEmitter
from repro.design.netlist import Design, Expr

Word = list[int]


class PortSignals:
    """SAT-level view of one memory port at one frame."""

    __slots__ = ("addr", "en", "data")

    def __init__(self, addr: list[int], en: int, data: list[int]) -> None:
        self.addr = addr  # SAT literals of the address bits
        self.en = en      # SAT literal of the enable
        self.data = data  # SAT literals of WD (write) or RD (read)


class Unroller:
    """Unrolls a validated design frame by frame into a CNF emitter."""

    def __init__(self, design: Design, emitter: CnfEmitter,
                 kept_latches: Optional[frozenset[str]] = None) -> None:
        design.validate()
        self.design = design
        self.emitter = emitter
        self.aig = emitter.aig
        self.kept_latches = (frozenset(design.latches)
                             if kept_latches is None else frozenset(kept_latches))
        self.frames = 0
        self._latch_words: list[dict[str, Word]] = []
        self._input_words: list[dict[str, Word]] = []
        self._rd_words: list[dict[tuple[str, int], Word]] = []
        self._cache: list[dict[int, Word]] = []
        #: Memoized SAT-level port views: ("r"|"w", mem, port, frame) ->
        #: PortSignals.  Guarantees *stable literal identity* — repeated
        #: requests for the same port at the same frame return the same
        #: literal tuples, which the EMM address-comparator cache keys on.
        self._port_sigs: dict[tuple[str, str, int, int], PortSignals] = {}

    # -- frame construction ----------------------------------------------

    def add_frame(self) -> int:
        """Create frame ``k`` state variables and its link clauses."""
        k = self.frames
        self.frames += 1
        aig = self.aig
        self._latch_words.append({
            name: [aig.new_input(f"{name}.{b}@{k}") for b in range(lt.width)]
            for name, lt in self.design.latches.items()
        })
        self._input_words.append({
            name: [aig.new_input(f"{name}.{b}@{k}") for b in range(i.width)]
            for name, i in self.design.inputs.items()
        })
        self._rd_words.append({
            (m.name, p.index): [aig.new_input(f"{m.name}.rd{p.index}.{b}@{k}")
                                for b in range(m.data_width)]
            for m in self.design.memories.values() for p in m.read_ports
        })
        self._cache.append({})
        if k > 0:
            self._link_frame(k)
        return k

    def _link_frame(self, k: int) -> None:
        """Tie frame-k latch words to the frame-(k-1) next-state cones."""
        emitter = self.emitter
        # Sorted so variable/clause numbering is independent of the string
        # hash seed — solver behaviour (and hence PBA cores) must reproduce
        # run to run.
        for name in sorted(self.kept_latches):
            latch = self.design.latches[name]
            emitter.set_label(("gate", k - 1))
            next_word = self.word(latch.next, k - 1)
            cur_word = self._latch_words[k][name]
            for b in range(latch.width):
                nxt_lit = emitter.sat_lit(next_word[b])
                emitter.set_label(("link", name, k))
                cur_lit = emitter.sat_lit(cur_word[b])
                emitter.add_clause([-cur_lit, nxt_lit])
                emitter.add_clause([cur_lit, -nxt_lit])

    # -- expression lowering ------------------------------------------------

    def word(self, expr: Expr, frame: int) -> Word:
        """Lower an expression at a frame to an AIG word (cached)."""
        cache = self._cache[frame]
        got = cache.get(expr._id)
        if got is not None:
            return got
        stack = [expr]
        while stack:
            e = stack[-1]
            if e._id in cache:
                stack.pop()
                continue
            missing = [a for a in e.args if a._id not in cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            cache[e._id] = self._lower(e, frame, cache)
        return cache[expr._id]

    def lit(self, expr: Expr, frame: int) -> int:
        """Lower a 1-bit expression to a single AIG literal."""
        if expr.width != 1:
            raise ValueError("lit() requires a 1-bit expression")
        return self.word(expr, frame)[0]

    def _lower(self, e: Expr, frame: int, cache: dict[int, Word]) -> Word:
        aig = self.aig
        kind = e.kind
        if kind == "const":
            return ops.const_word(e.payload, e.width)
        if kind == "input":
            return self._input_words[frame][e.payload]
        if kind == "latch":
            return self._latch_words[frame][e.payload]
        if kind == "memread":
            return self._rd_words[frame][e.payload]
        a = cache[e.args[0]._id] if e.args else []
        if kind == "not":
            return ops.not_word(a)
        if kind == "slice":
            lo, hi = e.payload
            return a[lo:hi]
        if kind == "zext":
            return ops.resize_word(a, e.width)
        if kind == "mux":
            return ops.mux_word(aig, a[0], cache[e.args[1]._id], cache[e.args[2]._id])
        if kind == "concat":
            return ops.concat_words(a, cache[e.args[1]._id])
        b = cache[e.args[1]._id]
        if kind == "and":
            return ops.and_word(aig, a, b)
        if kind == "or":
            return ops.or_word(aig, a, b)
        if kind == "xor":
            return ops.xor_word(aig, a, b)
        if kind == "add":
            return ops.add_word(aig, a, b)
        if kind == "sub":
            return ops.sub_word(aig, a, b)
        if kind == "eq":
            return [ops.eq_word(aig, a, b)]
        if kind == "ult":
            return [ops.lt_unsigned(aig, a, b)]
        raise ValueError(f"unknown expression kind {kind!r}")

    # -- state access -------------------------------------------------------

    def latch_word(self, name: str, frame: int) -> Word:
        return self._latch_words[frame][name]

    def input_word(self, name: str, frame: int) -> Word:
        return self._input_words[frame][name]

    def rd_word(self, mem_name: str, port: int, frame: int) -> Word:
        return self._rd_words[frame][(mem_name, port)]

    # -- memory interface signals for EMM ------------------------------------

    def read_port_signals(self, mem_name: str, port: int, frame: int) -> PortSignals:
        """SAT literals of (Addr, RE, RD) for a read port at a frame.

        The Addr/RE cones are Main-module logic and are emitted under the
        frame's gate label; the RD bits are the frame's free variables.
        Memoized per (port, frame): repeated calls return the *same*
        PortSignals, so address-literal tuples are stable cache keys for
        the EMM comparator layer.
        """
        key = ("r", mem_name, port, frame)
        got = self._port_sigs.get(key)
        if got is not None:
            return got
        mem = self.design.memories[mem_name]
        p = mem.read_ports[port]
        em = self.emitter
        em.set_label(("gate", frame))
        addr = em.sat_word(self.word(p.addr, frame))
        en = em.sat_lit(self.lit(p.en, frame))
        data = em.sat_word(self._rd_words[frame][(mem_name, port)])
        sig = PortSignals(addr, en, data)
        self._port_sigs[key] = sig
        return sig

    def write_port_signals(self, mem_name: str, port: int, frame: int) -> PortSignals:
        """SAT literals of (Addr, WE, WD) for a write port at a frame.

        Memoized per (port, frame), like :meth:`read_port_signals`.
        """
        key = ("w", mem_name, port, frame)
        got = self._port_sigs.get(key)
        if got is not None:
            return got
        mem = self.design.memories[mem_name]
        p = mem.write_ports[port]
        em = self.emitter
        em.set_label(("gate", frame))
        addr = em.sat_word(self.word(p.addr, frame))
        en = em.sat_lit(self.lit(p.en, frame))
        data = em.sat_word(self.word(p.data, frame))
        sig = PortSignals(addr, en, data)
        self._port_sigs[key] = sig
        return sig

    # -- AIG-level port views (pure gate-based EMM encoding) ---------------

    def read_port_aig(self, mem_name: str, port: int, frame: int) -> PortSignals:
        """AIG literals of (Addr, RE, RD) — not yet emitted to CNF."""
        mem = self.design.memories[mem_name]
        p = mem.read_ports[port]
        return PortSignals(self.word(p.addr, frame),
                           self.lit(p.en, frame),
                           self._rd_words[frame][(mem_name, port)])

    def write_port_aig(self, mem_name: str, port: int, frame: int) -> PortSignals:
        """AIG literals of (Addr, WE, WD) — not yet emitted to CNF."""
        mem = self.design.memories[mem_name]
        p = mem.write_ports[port]
        return PortSignals(self.word(p.addr, frame),
                           self.lit(p.en, frame),
                           self.word(p.data, frame))
