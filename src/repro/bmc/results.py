"""Result and statistics containers for BMC runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import Trace

#: Run outcomes.  For ``invariant`` properties: PROOF means the property
#: holds in all reachable states; CEX is a counterexample trace.  For
#: ``reach`` properties the same statuses read as: PROOF = target
#: unreachable, CEX = witness trace found.
PROOF = "proof"
CEX = "cex"
BOUNDED = "bounded"
TIMEOUT = "timeout"
#: A per-job resource quota (memory, clause+var watermark, or wall
#: budget) tripped: the run aborted *cleanly at depth granularity* and
#: reports the deepest fully-checked depth — "no counterexample up to
#: ``depth``, budget exhausted".  ``depth == -1`` (or ``window lo - 1``)
#: means the quota tripped before any depth completed.  Unlike TIMEOUT
#: (a mid-check abort at the depth being *attempted*), a DEGRADED
#: result's depth is a sound bound that window merging can fold in.
DEGRADED = "degraded"


@dataclass
class BmcRunStats:
    """Measured effort of a BMC run (substitute for the paper's sec/MB)."""

    wall_time_s: float = 0.0
    time_per_depth: list[float] = field(default_factory=list)
    sat_vars: int = 0
    sat_clauses: int = 0
    solver: dict = field(default_factory=dict)
    emm_clauses: int = 0
    emm_gates: int = 0
    emm_vars: int = 0
    #: EMM address comparisons answered from the per-memory comparator
    #: cache / folded to constants (summed over memories; see
    #: :mod:`repro.emm.addrcmp`).
    emm_addr_eq_cache_hits: int = 0
    emm_addr_eq_folded: int = 0
    #: Comparator hits answered by a cache entry another memory encoded
    #: (session-scoped registry, ``BmcOptions.emm_cross_mem_share``);
    #: a subset of the cache-hit counters above.
    cross_mem_cmp_hits: int = 0
    #: Unlabelled clauses seen across this run's PBA unsat cores; when
    #: nonzero the latch/memory reason lists are not exhaustive and the
    #: PBA minimizer refuses to shrink on them.
    core_unlabeled: int = 0
    #: Cross-frame chain-suffix sharing (``BmcOptions.emm_chain_share``):
    #: gate-EMM mux-chain stages answered entirely by the strash layer,
    #: equation-(6) pairs pruned on a folded-FALSE comparator, and
    #: fall-through reads merged into an existing record on fold-TRUE
    #: (summed over memories).  All zero with ``emm_chain_share=False``.
    emm_chain_suffix_hits: int = 0
    emm_init_pairs_pruned: int = 0
    emm_init_records_merged: int = 0
    #: Structural-hashing savings *attributed to EMM constraint
    #: construction* (summed over memories): AND cones and gate triples
    #: answered from the hash tables while an EMM encoder built its
    #: chain, and requests folded away by constant/idempotence rules.
    #: Fed by both the gate encoding and the AIG-routed hybrid back-end
    #: (``BmcOptions.emm_hybrid_strash``); a subset of the run-wide
    #: ``strash_hits`` / ``strash_folds`` below.
    emm_strash_hits: int = 0
    emm_strash_folds: int = 0
    #: Structural-hashing savings of the whole run: AND requests answered
    #: from the AIG hash table plus gate triples reused by the Tseitin
    #: emitter's CNF-level cache, and AND requests folded to constants
    #: (:mod:`repro.aig.aig`).  Zero when ``BmcOptions.strash`` is off.
    strash_hits: int = 0
    strash_folds: int = 0
    #: AND nodes in the final AIG (after strashing, when enabled).
    aig_nodes: int = 0
    #: Mux/xor shapes the Tseitin emitter lowered to the native
    #: 1-var/4-clause ITE form instead of three AND triples
    #: (:class:`repro.aig.tseitin.CnfEmitter`).
    ite_lowered: int = 0
    peak_rss_mb: float = 0.0
    #: Wall-clock phase breakdown, populated only under
    #: ``BmcOptions.profile`` (CLI ``--profile``): scheduler-level
    #: ``encode`` vs ``solve`` phases as ``{"s": seconds, "n": calls}``,
    #: plus the solver's internal propagate/analyze/reduce/simplify
    #: times under ``solver_*`` keys.  Empty when profiling is off.
    profile: dict = field(default_factory=dict)
    #: Which abort limit fired on a TIMEOUT outcome: ``"wall"``
    #: (``BmcOptions.timeout_s``, enforced as an in-check deadline) or
    #: ``"conflicts"`` (``max_conflicts_per_check``); None when no limit
    #: tripped.
    limit_tripped: Optional[str] = None
    #: Which per-job quota produced a DEGRADED outcome: ``"mem"``
    #: (``BmcOptions.mem_quota_mb``, RSS poll), ``"clauses"``
    #: (``clause_var_quota``, the encoding watermark inside
    #: ``EncodingSession.extend_to``) or ``"wall"``
    #: (``wall_quota_s``, the per-depth-window wall budget); None when
    #: no quota tripped.
    quota_tripped: Optional[str] = None

    def summary(self) -> str:
        return (f"{self.wall_time_s:.2f}s, {self.sat_vars} vars, "
                f"{self.sat_clauses} clauses, {self.peak_rss_mb:.0f} MB peak")

    def to_dict(self) -> dict:
        return dict(self.__dict__, solver=dict(self.solver),
                    time_per_depth=list(self.time_per_depth),
                    profile=dict(self.profile))


@dataclass
class BmcResult:
    """Outcome of verifying one property with one engine configuration."""

    status: str  # PROOF | CEX | BOUNDED | TIMEOUT
    property_name: str
    property_kind: str  # 'invariant' | 'reach'
    depth: int
    method: Optional[str] = None  # 'forward' | 'backward' for proofs
    trace: Optional[Trace] = None
    trace_validated: Optional[bool] = None
    #: Accumulated latch reasons LR_i per depth (PBA runs only).
    latch_reasons: list[frozenset[str]] = field(default_factory=list)
    #: Memory modules whose EMM constraints appeared in unsat cores, per depth.
    memory_reasons: list[frozenset[str]] = field(default_factory=list)
    stats: BmcRunStats = field(default_factory=BmcRunStats)

    @property
    def proved(self) -> bool:
        return self.status == PROOF

    @property
    def falsified(self) -> bool:
        return self.status == CEX

    def to_dict(self) -> dict:
        """JSON-ready form — what service workers and ``--json`` emit.

        Frozensets become sorted lists so the output is deterministic and
        round-trippable; the trace uses :meth:`repro.sim.trace.Trace.to_dict`.
        """
        return {
            "status": self.status,
            "property_name": self.property_name,
            "property_kind": self.property_kind,
            "depth": self.depth,
            "method": self.method,
            "trace": None if self.trace is None else self.trace.to_dict(),
            "trace_validated": self.trace_validated,
            "latch_reasons": [sorted(r) for r in self.latch_reasons],
            "memory_reasons": [sorted(r) for r in self.memory_reasons],
            "stats": self.stats.to_dict(),
        }

    def describe(self) -> str:
        """Human wording adjusted for the property kind."""
        kind = self.property_kind
        if self.status == PROOF:
            what = "unreachable" if kind == "reach" else "proved"
            return (f"{self.property_name}: {what} by {self.method} induction "
                    f"at depth {self.depth} ({self.stats.summary()})")
        if self.status == CEX:
            what = "witness" if kind == "reach" else "counterexample"
            return (f"{self.property_name}: {what} of length {self.depth + 1} "
                    f"({self.stats.summary()})")
        if self.status == TIMEOUT:
            return f"{self.property_name}: timeout at depth {self.depth}"
        if self.status == DEGRADED:
            checked = ("nothing checked" if self.depth < 0
                       else f"no {'witness' if kind == 'reach' else 'counterexample'} "
                            f"up to depth {self.depth}")
            why = (f"{self.stats.quota_tripped} quota exhausted"
                   if self.stats.quota_tripped else "window coverage incomplete")
            return (f"{self.property_name}: degraded "
                    f"({why}, {checked}; {self.stats.summary()})")
        return (f"{self.property_name}: no conclusion within bound "
                f"{self.depth} ({self.stats.summary()})")
