"""The BMC engine: Figures 1, 2 and 3 of the paper as one configurable loop.

The engine owns a single incremental SAT solver.  Initial-state clauses
and loop-free-path clauses carry activation literals (``a_init``,
``a_lfp``) so the three checks of BMC-3 become assumption sets over the
same growing CNF:

* forward termination   — assume ``[a_init, a_lfp]``                (line 6)
* backward termination  — assume ``[a_lfp, P_0..P_{i-1}, !P_i]``    (line 7)
* falsification         — assume ``[a_init, !P_i]``                 (line 9)

Proof-based abstraction (lines 11-12) reads the provenance labels of the
unsat core of each falsification check and accumulates latch reasons.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass
from typing import Optional

from repro.aig.aig import Aig
from repro.aig.tseitin import CnfEmitter
from repro.bmc.counterexample import extract_trace
from repro.bmc.induction import LoopFreeConstraints
from repro.bmc.results import BOUNDED, CEX, PROOF, TIMEOUT, BmcResult, BmcRunStats
from repro.bmc.unroller import Unroller
from repro.design.netlist import Design
from repro.emm.forwarding import EmmMemory
from repro.sat.solver import Solver


@dataclass(frozen=True)
class BmcOptions:
    """Engine configuration; the presets below match the paper's figures."""

    max_depth: int = 60
    #: Run the forward/backward induction termination checks (BMC-1/BMC-3).
    find_proof: bool = True
    #: Collect unsat-core latch reasons per depth (enables proof logging).
    pba: bool = False
    #: Constrain memory reads via EMM.  Must be True when the design has
    #: memories; explicit baselines expand memories away first.
    use_emm: bool = True
    #: EMM exclusive valid-read signals (Section 3 item 3); False = ablation.
    exclusivity: bool = True
    #: EMM constraint representation: the paper's "hybrid" CNF+gate
    #: encoding, or the "gates" purely circuit-based one it compares
    #: against in Section 3's closing paragraph.
    emm_encoding: str = "hybrid"
    #: Equation (6) arbitrary-initial-state consistency; False = ablation.
    init_consistency: bool = True
    #: Deduplicate EMM address comparators (per-memory cache + constant
    #: folding, :mod:`repro.emm.addrcmp`); False reproduces the paper's
    #: fresh-comparator-per-pair encoding for A/B comparisons.
    emm_addr_dedup: bool = True
    #: Structural hashing of the AIG/CNF substrate: hash-consed
    #: :meth:`repro.aig.aig.Aig.and_gate` nodes with constant folding,
    #: plus the Tseitin emitter's CNF-level gate-triple cache
    #: (:class:`repro.aig.tseitin.CnfEmitter`).  False builds every cone
    #: fresh — the unstrashed baseline for A/B size comparisons.
    strash: bool = True
    #: Cross-frame chain-suffix sharing and incremental equation (6):
    #: the gate EMM encoding builds its priority chain oldest-write-first
    #: as a mux chain (recurring address cones make frame k's chain a
    #: strash prefix of frame k+1's), and both encodings prune eq-(6)
    #: pairs whose comparator folds FALSE and merge fall-through records
    #: whose comparator folds TRUE.  False is the PR-2 latest-first /
    #: all-pairs baseline for A/B comparisons.
    emm_chain_share: bool = True
    #: AIG-routed hybrid chain back-end: the hybrid EMM encoder builds
    #: its equation-(4)/(5) forwarding chain and read-data muxes on the
    #: structurally hashed AIG over aliased comparator/port literals
    #: (shared chain builders with the gate encoding), so recurring
    #: address cones plateau instead of re-emitting raw CNF per frame.
    #: False is the paper's hand-written CNF emission — the closed-form
    #: baseline for the accounting tests and the C5 bench.  No effect on
    #: ``emm_encoding="gates"`` (always AIG) or ``exclusivity=False``
    #: (no chain to route).
    emm_hybrid_strash: bool = True
    #: Latch-based abstraction: latches to keep (None = all).
    kept_latches: Optional[frozenset[str]] = None
    #: Memory abstraction: memories to keep EMM constraints for (None = all).
    kept_memories: Optional[frozenset[str]] = None
    #: Port-level abstraction (Section 4.3): read ports to keep per kept
    #: memory, e.g. ``{"table": frozenset({0, 2})}``; unlisted memories
    #: keep all their ports.  Dropped ports' RD words stay free.
    kept_read_ports: Optional[dict] = None
    #: Groups of arbitrary-init memories declared to hold the *same*
    #: unknown initial contents — equation (6) consistency is enforced
    #: across each group, not just within one memory.  Used by miters
    #: (:func:`repro.design.equiv.check_equivalence`); all memories in a
    #: group must share address and data widths.
    shared_init_memories: tuple[frozenset[str], ...] = ()
    #: Replay counterexamples on the simulator when the model is concrete.
    validate_cex: bool = True
    #: Abort knobs.
    timeout_s: Optional[float] = None
    max_conflicts_per_check: Optional[int] = None


def bmc1(**kw) -> BmcOptions:
    """Figure 1: SAT-based BMC with proofs and PBA (no EMM constraints)."""
    kw.setdefault("use_emm", False)
    kw.setdefault("find_proof", True)
    kw.setdefault("pba", True)
    return BmcOptions(**kw)


def bmc2(**kw) -> BmcOptions:
    """Figure 2: BMC with EMM, falsification only."""
    kw.setdefault("use_emm", True)
    kw.setdefault("find_proof", False)
    kw.setdefault("pba", False)
    return BmcOptions(**kw)


def bmc3(**kw) -> BmcOptions:
    """Figure 3: BMC with EMM, induction proofs and PBA."""
    kw.setdefault("use_emm", True)
    kw.setdefault("find_proof", True)
    kw.setdefault("pba", True)
    return BmcOptions(**kw)


class BmcEngine:
    """Verifies one property of one design under one configuration."""

    def __init__(self, design: Design, property_name: str,
                 options: Optional[BmcOptions] = None) -> None:
        design.validate()
        self.design = design
        self.options = options or BmcOptions()
        self.prop = design.properties[property_name]
        if design.memories and not self.options.use_emm:
            raise ValueError(
                "design has memories but use_emm=False; expand them first "
                "(repro.design.expand_memories) for the explicit baseline")
        need_proof_log = self.options.pba
        self.solver = Solver(proof=need_proof_log)
        self.aig = Aig(strash=self.options.strash)
        self.emitter = CnfEmitter(self.aig, self.solver,
                                  strash=self.options.strash)
        self.unroller = Unroller(design, self.emitter, self.options.kept_latches)
        self.a_init = self.solver.new_var()
        self.a_lfp = self.solver.new_var()
        self.a_meminit = self.solver.new_var()
        kept_mems = (frozenset(design.memories)
                     if self.options.kept_memories is None
                     else frozenset(self.options.kept_memories))
        self.kept_memories = kept_mems
        port_map = self.options.kept_read_ports or {}
        registries = self._shared_init_registries(kept_mems)
        if self.options.emm_encoding == "hybrid":
            emm_class = EmmMemory
        elif self.options.emm_encoding == "gates":
            from repro.emm.gates import GateEmmMemory
            emm_class = GateEmmMemory
        else:
            raise ValueError(
                f"unknown emm_encoding {self.options.emm_encoding!r} "
                "(expected 'hybrid' or 'gates')")
        self.emms = {
            name: emm_class(self.solver, self.unroller, name,
                            exclusivity=self.options.exclusivity,
                            init_consistency=self.options.init_consistency,
                            symbolic_init=self.options.find_proof,
                            a_meminit=self.a_meminit,
                            kept_read_ports=port_map.get(name),
                            init_registry=registries.get(name),
                            addr_dedup=self.options.emm_addr_dedup,
                            chain_share=self.options.emm_chain_share,
                            hybrid_strash=self.options.emm_hybrid_strash)
            for name in sorted(kept_mems)
        }
        self.lfp = (LoopFreeConstraints(self.unroller, self.a_lfp)
                    if self.options.find_proof else None)
        # P_i literals (the property holding at frame i).
        self._p_lits: list[int] = []
        self._lr: list[frozenset[str]] = []
        self._mr: list[frozenset[str]] = []

    def _shared_init_registries(self, kept_mems: frozenset[str]) -> dict:
        """One shared fall-through read registry per shared-init group."""
        from repro.emm.forwarding import InitReadRegistry

        registries: dict[str, InitReadRegistry] = {}
        for group in self.options.shared_init_memories:
            widths = set()
            shared = InitReadRegistry()
            for name in sorted(group):
                mem = self.design.memories.get(name)
                if mem is None:
                    raise ValueError(f"shared-init memory {name!r} not in design")
                widths.add((mem.addr_width, mem.data_width))
                if name in registries:
                    raise ValueError(f"memory {name!r} is in two shared-init groups")
                if name in kept_mems:
                    registries[name] = shared
            if len(widths) > 1:
                raise ValueError(
                    f"shared-init group {sorted(group)} mixes geometries {widths}")
        return registries

    # -- main loop ---------------------------------------------------------

    def run(self, stop_check=None) -> BmcResult:
        """Run the BMC loop up to ``max_depth``; returns a :class:`BmcResult`.

        ``stop_check(engine, depth)`` may end the loop early (status
        BOUNDED) — the PBA driver uses it to stop once the latch-reason
        set has been stable for the stability depth.
        """
        opts = self.options
        stats = BmcRunStats()
        t_start = time.monotonic()
        budget = opts.max_conflicts_per_check
        for i in range(opts.max_depth + 1):
            t_depth = time.monotonic()
            self._extend(i)
            if opts.find_proof:
                r = self.solver.solve(
                    [self.a_init, self.a_meminit, self.a_lfp], budget)
                if r.unknown:
                    return self._finish(TIMEOUT, i, stats, t_start, t_depth)
                if not r.sat:
                    return self._finish(PROOF, i, stats, t_start, t_depth,
                                        method="forward")
                # Backward induction: arbitrary start state, so neither
                # a_init nor a_meminit is assumed — the memory fall-through
                # stays symbolic (Section 4.2).
                assumps = [self.a_lfp] + self._p_lits[:i] + [-self._p_lits[i]]
                r = self.solver.solve(assumps, budget)
                if r.unknown:
                    return self._finish(TIMEOUT, i, stats, t_start, t_depth)
                if not r.sat:
                    return self._finish(PROOF, i, stats, t_start, t_depth,
                                        method="backward")
            r = self.solver.solve([self.a_init, self.a_meminit,
                                   -self._p_lits[i]], budget)
            if r.unknown:
                return self._finish(TIMEOUT, i, stats, t_start, t_depth)
            if r.sat:
                return self._finish(CEX, i, stats, t_start, t_depth)
            if opts.pba:
                self._collect_reasons(i)
            # The depth's time is recorded exactly once: here for depths
            # the loop completes, inside _finish for early-return paths
            # (which pass t_depth); paths below pass None so the final
            # depth is never double-counted.
            stats.time_per_depth.append(time.monotonic() - t_depth)
            if stop_check is not None and stop_check(self, i):
                return self._finish(BOUNDED, i, stats, t_start, None)
            if opts.timeout_s is not None and time.monotonic() - t_start > opts.timeout_s:
                return self._finish(TIMEOUT, i, stats, t_start, None)
        return self._finish(BOUNDED, opts.max_depth, stats, t_start, None)

    # -- helpers -------------------------------------------------------------

    def _extend(self, i: int) -> None:
        """Unroll frame i and add init / EMM / LFP constraints and P_i."""
        un = self.unroller
        un.add_frame()
        if i == 0:
            self._add_init_clauses()
        for emm in self.emms.values():
            emm.add_frame(i)
        if self.lfp is not None:
            self.lfp.add_frame(i)
        self.emitter.set_label(("gate", i))
        good = self.unroller.lit(self.prop.expr, i)
        p_lit = self.emitter.sat_lit(good)
        if self.prop.kind == "reach":
            p_lit = -p_lit  # P = "target not yet reached"
        self._p_lits.append(p_lit)

    def _add_init_clauses(self) -> None:
        emitter = self.emitter
        for name in sorted(self.unroller.kept_latches):
            latch = self.design.latches[name]
            if latch.init is None:
                continue  # arbitrary initial value: leave free
            word = self.unroller.latch_word(name, 0)
            emitter.set_label(("init", name))
            for b in range(latch.width):
                lit = emitter.sat_lit(word[b])
                bit = (latch.init >> b) & 1
                emitter.add_clause([-self.a_init, lit if bit else -lit])

    def _collect_reasons(self, i: int) -> None:
        labels = self.solver.core_labels()
        latches = frozenset(lab[1] for lab in labels
                            if isinstance(lab, tuple) and lab[0] in ("init", "link"))
        mems = frozenset(lab[1] for lab in labels
                         if isinstance(lab, tuple) and lab[0] == "emm")
        prev_l = self._lr[-1] if self._lr else frozenset()
        prev_m = self._mr[-1] if self._mr else frozenset()
        self._lr.append(prev_l | latches)
        self._mr.append(prev_m | mems)

    def _finish(self, status: str, depth: int, stats: BmcRunStats,
                t_start: float, t_depth: Optional[float],
                method: Optional[str] = None) -> BmcResult:
        """Build the result.  ``t_depth`` is the final depth's start time
        when its duration has not been appended yet, or None when the run
        loop already recorded it (keeps ``len(time_per_depth) == depth+1``).
        """
        if t_depth is not None:
            stats.time_per_depth.append(time.monotonic() - t_depth)
        stats.wall_time_s = time.monotonic() - t_start
        stats.sat_vars = self.solver.num_vars
        stats.sat_clauses = self.solver.num_clauses
        stats.solver = self.solver.stats.snapshot()
        stats.emm_clauses = sum(e.counters.total_clauses for e in self.emms.values())
        stats.emm_gates = sum(e.counters.total_gates for e in self.emms.values())
        stats.emm_vars = sum(e.counters.vars_added for e in self.emms.values())
        stats.emm_addr_eq_cache_hits = sum(e.counters.addr_eq_cache_hits
                                           for e in self.emms.values())
        stats.emm_addr_eq_folded = sum(e.counters.addr_eq_folded
                                       for e in self.emms.values())
        stats.emm_chain_suffix_hits = sum(e.counters.chain_suffix_hits
                                          for e in self.emms.values())
        stats.emm_init_pairs_pruned = sum(e.counters.init_pairs_pruned
                                          for e in self.emms.values())
        stats.emm_init_records_merged = sum(e.counters.init_records_merged
                                            for e in self.emms.values())
        stats.emm_strash_hits = sum(e.counters.strash_hits
                                    for e in self.emms.values())
        stats.emm_strash_folds = sum(e.counters.strash_folds
                                     for e in self.emms.values())
        stats.strash_hits = self.aig.strash_hits + self.emitter.strash_hits
        stats.strash_folds = self.aig.strash_folds
        stats.aig_nodes = self.aig.num_ands
        stats.peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        trace = None
        validated = None
        if status == CEX:
            trace, validated = extract_trace(self, depth,
                                             validate=self.options.validate_cex)
        return BmcResult(
            status=status,
            property_name=self.prop.name,
            property_kind=self.prop.kind,
            depth=depth,
            method=method,
            trace=trace,
            trace_validated=validated,
            latch_reasons=list(self._lr),
            memory_reasons=list(self._mr),
            stats=stats,
        )

    # -- introspection used by the PBA driver and counterexample extraction --

    @property
    def latch_reasons(self) -> list[frozenset[str]]:
        return self._lr

    @property
    def memory_reasons(self) -> list[frozenset[str]]:
        return self._mr

    def is_concrete(self) -> bool:
        """True when no latch or memory has been abstracted away."""
        return (self.unroller.kept_latches == frozenset(self.design.latches)
                and self.kept_memories == frozenset(self.design.memories))


def verify(design: Design, property_name: str,
           options: Optional[BmcOptions] = None) -> BmcResult:
    """One-call convenience wrapper: build an engine and run it."""
    return BmcEngine(design, property_name, options).run()
