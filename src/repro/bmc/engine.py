"""The BMC check scheduler: Figures 1, 2 and 3 of the paper as one loop.

The encoding lives in :class:`repro.bmc.session.EncodingSession` — one
incremental solver whose initial-state and loop-free-path clauses carry
activation literals (``a_init``, ``a_lfp``, ``a_meminit``).  The engine
is the *scheduler* on top: it walks depths and runs the three checks of
BMC-3 as assumption sets over the session's growing CNF:

* forward termination   — assume ``[a_init, LFP_i]``                (line 6)
* backward termination  — assume ``[LFP_i, P_0..P_{i-1}, !P_i]``    (line 7)
* falsification         — assume ``[a_init, !P_i]``                 (line 9)

``LFP_i`` is the list of *per-frame* loop-free-path guards for frames
``<= i`` (:meth:`EncodingSession.lfp_assumptions`) — never a global
literal, which on a shared session would force loop-freedom over frames
a sibling property encoded beyond i.

Because checks are pure assumption sets, several engines (one per
property) may share one session — N properties pay for one unrolled
CNF.  A fresh engine on a fresh session reproduces the historical
monolithic behaviour bit-for-bit.

Proof-based abstraction (lines 11-12) reads the provenance labels of the
unsat core of each falsification check and accumulates latch reasons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.bmc.counterexample import extract_trace
from repro.bmc.results import (BOUNDED, CEX, DEGRADED, PROOF, TIMEOUT,
                               BmcResult, BmcRunStats)
from repro.bmc.session import EncodingSession, QuotaExceededError
from repro.design.netlist import Design
from repro.perf import (PhaseTimers, current_rss_mb, peak_rss_mb,
                        solver_phase_times)


@dataclass(frozen=True)
class BmcOptions:
    """Engine configuration; the presets below match the paper's figures."""

    max_depth: int = 60
    #: Run the forward/backward induction termination checks (BMC-1/BMC-3).
    find_proof: bool = True
    #: Collect unsat-core latch reasons per depth (enables proof logging).
    pba: bool = False
    #: Constrain memory reads via EMM.  Must be True when the design has
    #: memories; explicit baselines expand memories away first.
    use_emm: bool = True
    #: EMM exclusive valid-read signals (Section 3 item 3); False = ablation.
    exclusivity: bool = True
    #: EMM constraint representation: the paper's "hybrid" CNF+gate
    #: encoding, or the "gates" purely circuit-based one it compares
    #: against in Section 3's closing paragraph.
    emm_encoding: str = "hybrid"
    #: Equation (6) arbitrary-initial-state consistency; False = ablation.
    init_consistency: bool = True
    #: Deduplicate EMM address comparators (per-memory cache + constant
    #: folding, :mod:`repro.emm.addrcmp`); False reproduces the paper's
    #: fresh-comparator-per-pair encoding for A/B comparisons.
    emm_addr_dedup: bool = True
    #: Structural hashing of the AIG/CNF substrate: hash-consed
    #: :meth:`repro.aig.aig.Aig.and_gate` nodes with constant folding,
    #: plus the Tseitin emitter's CNF-level gate-triple cache
    #: (:class:`repro.aig.tseitin.CnfEmitter`).  False builds every cone
    #: fresh — the unstrashed baseline for A/B size comparisons.
    strash: bool = True
    #: Cross-frame chain-suffix sharing and incremental equation (6):
    #: the gate EMM encoding builds its priority chain oldest-write-first
    #: as a mux chain (recurring address cones make frame k's chain a
    #: strash prefix of frame k+1's), and both encodings prune eq-(6)
    #: pairs whose comparator folds FALSE and merge fall-through records
    #: whose comparator folds TRUE.  False is the PR-2 latest-first /
    #: all-pairs baseline for A/B comparisons.
    emm_chain_share: bool = True
    #: AIG-routed hybrid chain back-end: the hybrid EMM encoder builds
    #: its equation-(4)/(5) forwarding chain and read-data muxes on the
    #: structurally hashed AIG over aliased comparator/port literals
    #: (shared chain builders with the gate encoding), so recurring
    #: address cones plateau instead of re-emitting raw CNF per frame.
    #: False is the paper's hand-written CNF emission — the closed-form
    #: baseline for the accounting tests and the C5 bench.  No effect on
    #: ``emm_encoding="gates"`` (always AIG) or ``exclusivity=False``
    #: (no chain to route).
    emm_hybrid_strash: bool = True
    #: Share the comparator cache *across* memories through a
    #: session-scoped registry (:class:`repro.emm.addrcmp.
    #: SharedComparatorTables`): two memories whose address cones lower
    #: to the same SAT-literal tuples — the miter/equivalence case —
    #: share one comparator, with the clauses multi-labelled so PBA
    #: cores attribute them to every memory served.  Requires
    #: ``emm_addr_dedup`` (no per-memory cache, nothing to widen); off
    #: restores the historical per-memory scope.
    emm_cross_mem_share: bool = True
    #: Latch-based abstraction: latches to keep (None = all).
    kept_latches: Optional[frozenset[str]] = None
    #: Memory abstraction: memories to keep EMM constraints for (None = all).
    kept_memories: Optional[frozenset[str]] = None
    #: Port-level abstraction (Section 4.3): read ports to keep per kept
    #: memory, e.g. ``{"table": frozenset({0, 2})}``; unlisted memories
    #: keep all their ports.  Dropped ports' RD words stay free.
    kept_read_ports: Optional[dict] = None
    #: Groups of arbitrary-init memories declared to hold the *same*
    #: unknown initial contents — equation (6) consistency is enforced
    #: across each group, not just within one memory.  Used by miters
    #: (:func:`repro.design.equiv.check_equivalence`); all memories in a
    #: group must share address and data widths.
    shared_init_memories: tuple[frozenset[str], ...] = ()
    #: Replay counterexamples on the simulator when the model is concrete.
    validate_cex: bool = True
    #: Abort knobs.  ``timeout_s`` is enforced *inside* checks: the
    #: remaining wall time becomes a per-``solve()`` deadline the CDCL
    #: loop polls on stepped conflict counts, so one hard check cannot
    #: blow through the budget; ``BmcRunStats.limit_tripped`` records
    #: which limit actually fired.
    timeout_s: Optional[float] = None
    max_conflicts_per_check: Optional[int] = None
    #: Per-job quotas with graceful degradation.  Unlike the abort knobs
    #: above (which surface as TIMEOUT at the depth being attempted), a
    #: tripped quota ends the run *cleanly at depth granularity* with a
    #: DEGRADED result whose depth is the deepest fully-checked depth —
    #: a sound "no CEX up to depth d, budget exhausted" partial answer
    #: that window merging folds in.  ``mem_quota_mb`` polls the
    #: process's current RSS between depths; ``clause_var_quota`` is a
    #: watermark on the session's clauses+variables enforced between
    #: frames inside ``EncodingSession.extend_to``; ``wall_quota_s`` is
    #: a wall budget for this run's depth window, also capping each
    #: solve's deadline so one hard check cannot blow far past it.  All
    #: three are run knobs (excluded from :meth:`encoding_key`).
    mem_quota_mb: Optional[float] = None
    clause_var_quota: Optional[int] = None
    wall_quota_s: Optional[float] = None
    #: Run the session's solver with its historical baseline CDCL loop
    #: instead of the fast back-end (blocker literals, dedicated binary
    #: watch lists, LBD clause tiers, root-level clause shrinking,
    #: assumption-trail reuse).  The baseline is the differential oracle
    #: for the fast machinery — verdicts, models, failed-assumption sets
    #: and core labels must agree (``tests/test_solver_fast.py``).
    solver_baseline: bool = False
    #: Collect wall-clock phase breakdowns into
    #: :attr:`repro.bmc.results.BmcRunStats.profile`: scheduler-level
    #: encode vs solve, plus the solver's internal
    #: propagate/analyze/reduce/simplify split.  A *run* knob (CLI
    #: ``--profile``): it changes what is measured, never what is
    #: encoded, so it is excluded from :meth:`encoding_key`.
    profile: bool = False

    def encoding_key(self) -> tuple:
        """Hashable key of every field that shapes the *encoding*.

        Two options values with equal keys produce literal-for-literal
        identical sessions, so a cached session may serve either; the
        per-run knobs (``max_depth``, ``timeout_s``,
        ``max_conflicts_per_check``, ``validate_cex``, ``profile`` and
        the ``mem_quota_mb``/``clause_var_quota``/``wall_quota_s``
        quotas) are excluded.  ``solver_baseline`` is *included*: it selects the
        solver back-end the session is built on, and fast and baseline
        sessions must never be cache-aliased.
        """
        ports = self.kept_read_ports
        ports_key = (None if ports is None else
                     tuple(sorted((name, tuple(sorted(idx)))
                                  for name, idx in ports.items())))
        groups_key = tuple(sorted(tuple(sorted(g))
                                  for g in self.shared_init_memories))
        return (self.find_proof, self.pba, self.use_emm, self.exclusivity,
                self.emm_encoding, self.init_consistency,
                self.emm_addr_dedup, self.strash, self.emm_chain_share,
                self.emm_hybrid_strash, self.emm_cross_mem_share,
                self.kept_latches,
                self.kept_memories, ports_key, groups_key,
                self.solver_baseline)


def bmc1(**kw) -> BmcOptions:
    """Figure 1: SAT-based BMC with proofs and PBA (no EMM constraints)."""
    kw.setdefault("use_emm", False)
    kw.setdefault("find_proof", True)
    kw.setdefault("pba", True)
    return BmcOptions(**kw)


def bmc2(**kw) -> BmcOptions:
    """Figure 2: BMC with EMM, falsification only."""
    kw.setdefault("use_emm", True)
    kw.setdefault("find_proof", False)
    kw.setdefault("pba", False)
    return BmcOptions(**kw)


def bmc3(**kw) -> BmcOptions:
    """Figure 3: BMC with EMM, induction proofs and PBA."""
    kw.setdefault("use_emm", True)
    kw.setdefault("find_proof", True)
    kw.setdefault("pba", True)
    return BmcOptions(**kw)


class _RunState:
    """Mutable per-run bookkeeping shared by :meth:`BmcEngine.run` and the
    depth-major :func:`verify_many` scheduler (one instance per engine)."""

    __slots__ = ("stats", "t_start", "deadline", "budget", "timers",
                 "forward_memo", "quota_deadline")

    def __init__(self, stats: BmcRunStats, t_start: float,
                 deadline: Optional[float], budget: Optional[int],
                 timers: Optional[PhaseTimers],
                 forward_memo: Optional[dict],
                 quota_deadline: Optional[float] = None) -> None:
        self.stats = stats
        self.t_start = t_start
        self.deadline = deadline
        self.budget = budget
        self.timers = timers
        self.forward_memo = forward_memo
        # Wall-quota deadline (BmcOptions.wall_quota_s): like `deadline`
        # it caps each solve, but tripping it degrades at the previous
        # depth instead of timing out at the attempted one.
        self.quota_deadline = quota_deadline

    def solve_deadline(self) -> Optional[float]:
        if self.deadline is None:
            return self.quota_deadline
        if self.quota_deadline is None:
            return self.deadline
        return min(self.deadline, self.quota_deadline)

    def quota_deadline_binding(self) -> bool:
        """True when the wall *quota* is the deadline a solve just hit."""
        return (self.quota_deadline is not None
                and (self.deadline is None
                     or self.quota_deadline <= self.deadline))


class BmcEngine:
    """Schedules the checks for one property against an encoding session.

    Without an explicit ``session`` the engine builds a private one —
    the historical one-engine-per-property behaviour.  With a shared
    session, the engine runs its checks over the session's CNF; any
    number of engines (one per property) may interleave on one session
    as long as their options agree on
    :meth:`BmcOptions.encoding_key`.
    """

    def __init__(self, design: Design, property_name: str,
                 options: Optional[BmcOptions] = None,
                 session: Optional[EncodingSession] = None) -> None:
        if session is None:
            session = EncodingSession(design, options)
        else:
            opts = options or session.options
            if opts.encoding_key() != session.options.encoding_key():
                raise ValueError(
                    "engine options disagree with the shared session's "
                    "encoding (see BmcOptions.encoding_key)")
            if design is not session.design:
                raise ValueError(
                    "shared session belongs to a different Design object; "
                    "schedule against session.design")
        self.session = session
        self.design = session.design
        self.options = options or session.options
        self.prop = self.design.properties[property_name]
        # Per-run PBA reason accumulators (engine-local; the session is
        # shared, the reasons are this property's).
        self._lr: list[frozenset[str]] = []
        self._mr: list[frozenset[str]] = []
        # Unlabelled clauses seen in this run's PBA cores: when nonzero
        # the reason lists are not exhaustive and the minimizer refuses
        # to treat them as such (satellite of the multi-label work).
        self._core_unlabeled = 0

    # -- session views (the extraction/PBA layers address the engine) ------

    @property
    def solver(self):
        return self.session.solver

    @property
    def aig(self):
        return self.session.aig

    @property
    def emitter(self):
        return self.session.emitter

    @property
    def unroller(self):
        return self.session.unroller

    @property
    def emms(self):
        return self.session.emms

    @property
    def kept_memories(self) -> frozenset[str]:
        return self.session.kept_memories

    @property
    def a_init(self) -> int:
        return self.session.a_init

    @property
    def a_lfp(self) -> int:
        return self.session.a_lfp

    @property
    def a_meminit(self) -> int:
        return self.session.a_meminit

    # -- main loop ---------------------------------------------------------

    def run(self, stop_check=None,
            window: Optional[tuple[int, int]] = None) -> BmcResult:
        """Run the BMC loop up to ``max_depth``; returns a :class:`BmcResult`.

        ``stop_check(engine, depth)`` may end the loop early (status
        BOUNDED) — the PBA driver uses it to stop once the latch-reason
        set has been stable for the stability depth.

        ``window=(lo, hi)`` restricts which depths are *checked* (the
        service layer shards depth ranges across workers); frames below
        ``lo`` are still encoded — soundness of a check at depth i never
        depends on earlier checks, only on the encoding.
        """
        opts = self.options
        lo, hi = (0, opts.max_depth) if window is None else window
        if not 0 <= lo <= hi:
            raise ValueError(f"bad depth window ({lo}, {hi})")
        rs = self._begin_run()
        for i in range(lo, hi + 1):
            tripped = self._quota_trip(rs)
            if tripped is not None:
                return self._finish_degraded(rs, i - 1, tripped)
            result = self._step_depth(rs, i)
            if result is not None:
                return result
            if stop_check is not None and stop_check(self, i):
                return self._finish(BOUNDED, i, rs, None)
            if rs.deadline is not None and time.monotonic() > rs.deadline:
                rs.stats.limit_tripped = "wall"
                return self._finish(TIMEOUT, i, rs, None)
        return self._finish(BOUNDED, hi, rs, None)

    # -- run scaffolding (shared with the verify_many scheduler) -------------

    def _begin_run(self, forward_memo: Optional[dict] = None) -> _RunState:
        """Start a run: stats, deadline, conflict budget, profiling.

        ``forward_memo`` (depth -> SolveResult) lets the depth-major
        :func:`verify_many` scheduler share forward-termination checks
        across engines on one session — the check assumes only
        ``[a_init, a_meminit] + LFP_i`` and is property-independent.
        """
        opts = self.options
        t_start = time.monotonic()
        deadline = (t_start + opts.timeout_s
                    if opts.timeout_s is not None else None)
        quota_deadline = (t_start + opts.wall_quota_s
                          if opts.wall_quota_s is not None else None)
        timers = PhaseTimers() if opts.profile else None
        if opts.profile:
            self.solver.profile = True
        return _RunState(BmcRunStats(), t_start, deadline,
                         opts.max_conflicts_per_check, timers, forward_memo,
                         quota_deadline)

    def _quota_trip(self, rs: _RunState) -> Optional[str]:
        """Which quota (if any) bars starting another depth's checks."""
        opts = self.options
        if (rs.quota_deadline is not None
                and time.monotonic() > rs.quota_deadline):
            return "wall"
        if (opts.mem_quota_mb is not None
                and current_rss_mb() > opts.mem_quota_mb):
            return "mem"
        if (opts.clause_var_quota is not None
                and self.session.clause_var_total() > opts.clause_var_quota):
            return "clauses"
        return None

    def _solve(self, rs: _RunState, assumps: list[int]):
        solver = self.session.solver
        deadline = rs.solve_deadline()
        if rs.timers is None:
            r = solver.solve(assumps, rs.budget, deadline)
        else:
            with rs.timers.measure("solve"):
                r = solver.solve(assumps, rs.budget, deadline)
        if r.unknown:
            rs.stats.limit_tripped = ("wall" if r.limit == "deadline"
                                      else "conflicts")
        return r

    def _step_depth(self, rs: _RunState, i: int) -> Optional[BmcResult]:
        """Run one depth's checks.  Returns the final result if the run
        concluded at this depth, else None (depth time recorded)."""
        opts = self.options
        session = self.session
        t_depth = time.monotonic()
        try:
            if rs.timers is None:
                session.extend_to(i, opts.clause_var_quota)
                p = session.p_lits(self.prop.name, i)
            else:
                with rs.timers.measure("encode"):
                    session.extend_to(i, opts.clause_var_quota)
                    p = session.p_lits(self.prop.name, i)
        except QuotaExceededError as exc:
            return self._finish_degraded(rs, i - 1, exc.kind)
        if opts.find_proof:
            lfp = session.lfp_assumptions(i)
            memo = rs.forward_memo
            r = None if memo is None else memo.get(i)
            if r is None:
                r = self._solve(rs,
                                [session.a_init, session.a_meminit] + lfp)
                if memo is not None and not r.unknown:
                    # Only definitive verdicts are shared; an unknown
                    # (limit-tripped) result stays private to this run.
                    memo[i] = r
            if r.unknown:
                return self._abort(rs, i, t_depth)
            if not r.sat:
                return self._finish(PROOF, i, rs, t_depth, method="forward")
            # Backward induction: arbitrary start state, so neither
            # a_init nor a_meminit is assumed — the memory fall-through
            # stays symbolic (Section 4.2).
            r = self._solve(rs, lfp + p[:i] + [-p[i]])
            if r.unknown:
                return self._abort(rs, i, t_depth)
            if not r.sat:
                return self._finish(PROOF, i, rs, t_depth, method="backward")
        r = self._solve(rs, [session.a_init, session.a_meminit, -p[i]])
        if r.unknown:
            return self._abort(rs, i, t_depth)
        if r.sat:
            return self._finish(CEX, i, rs, t_depth)
        if opts.pba:
            self._collect_reasons(i)
        # The depth's time is recorded exactly once: here for depths the
        # run continues past, inside _finish for early-return paths
        # (which pass t_depth); continuation-level finishes pass None so
        # the final depth is never double-counted.
        rs.stats.time_per_depth.append(time.monotonic() - t_depth)
        return None

    # -- helpers -------------------------------------------------------------

    def _abort(self, rs: _RunState, i: int,
               t_depth: Optional[float]) -> BmcResult:
        """Finish after an unknown solve: TIMEOUT at the attempted depth,
        or — when the *wall quota* was the deadline that fired — a clean
        DEGRADED result at the last fully-checked depth."""
        if rs.stats.limit_tripped == "wall" and rs.quota_deadline_binding():
            rs.stats.limit_tripped = None
            return self._finish_degraded(rs, i - 1, "wall")
        return self._finish(TIMEOUT, i, rs, t_depth)

    def _finish_degraded(self, rs: _RunState, depth: int,
                         kind: str) -> BmcResult:
        """Quota trip: sound partial answer at the deepest checked depth.

        ``depth`` may be ``lo - 1`` (``-1`` for unwindowed runs) when the
        quota tripped before any depth completed — "nothing checked"."""
        rs.stats.quota_tripped = kind
        return self._finish(DEGRADED, depth, rs, None)

    def _collect_reasons(self, i: int) -> None:
        labels = self.solver.core_labels()
        self._core_unlabeled += self.solver.core_unlabeled_count()
        latches = frozenset(lab[1] for lab in labels
                            if isinstance(lab, tuple) and lab[0] in ("init", "link"))
        mems = frozenset(lab[1] for lab in labels
                         if isinstance(lab, tuple) and lab[0] == "emm")
        prev_l = self._lr[-1] if self._lr else frozenset()
        prev_m = self._mr[-1] if self._mr else frozenset()
        self._lr.append(prev_l | latches)
        self._mr.append(prev_m | mems)

    def _finish(self, status: str, depth: int, rs: _RunState,
                t_depth: Optional[float],
                method: Optional[str] = None) -> BmcResult:
        """Build the result.  ``t_depth`` is the final depth's start time
        when its duration has not been appended yet, or None when the run
        loop already recorded it (keeps ``len(time_per_depth) == depth+1``).

        Size/effort counters are *session-wide*: on a shared session they
        reflect the one CNF all properties amortize, which is exactly
        what the C6 bench compares against per-property fresh engines.
        """
        session = self.session
        stats = rs.stats
        if t_depth is not None:
            stats.time_per_depth.append(time.monotonic() - t_depth)
        stats.wall_time_s = time.monotonic() - rs.t_start
        stats.sat_vars = self.solver.num_vars
        stats.sat_clauses = self.solver.num_clauses
        stats.solver = self.solver.stats.snapshot()
        emms = session.emms.values()
        stats.emm_clauses = sum(e.counters.total_clauses for e in emms)
        stats.emm_gates = sum(e.counters.total_gates for e in emms)
        stats.emm_vars = sum(e.counters.vars_added for e in emms)
        stats.emm_addr_eq_cache_hits = sum(e.counters.addr_eq_cache_hits
                                           for e in emms)
        stats.emm_addr_eq_folded = sum(e.counters.addr_eq_folded
                                       for e in emms)
        stats.cross_mem_cmp_hits = sum(e.counters.cross_mem_cmp_hits
                                       for e in emms)
        stats.core_unlabeled = self._core_unlabeled
        stats.emm_chain_suffix_hits = sum(e.counters.chain_suffix_hits
                                          for e in emms)
        stats.emm_init_pairs_pruned = sum(e.counters.init_pairs_pruned
                                          for e in emms)
        stats.emm_init_records_merged = sum(e.counters.init_records_merged
                                            for e in emms)
        stats.emm_strash_hits = sum(e.counters.strash_hits for e in emms)
        stats.emm_strash_folds = sum(e.counters.strash_folds for e in emms)
        stats.strash_hits = session.aig.strash_hits + session.emitter.strash_hits
        stats.strash_folds = session.aig.strash_folds
        stats.aig_nodes = session.aig.num_ands
        stats.ite_lowered = session.emitter.ites_emitted
        stats.peak_rss_mb = peak_rss_mb()
        if rs.timers is not None:
            # Solver-internal times are session-wide cumulative, like the
            # other solver counters; the scheduler phases are this run's.
            stats.profile = {
                "phases": rs.timers.snapshot(),
                "solver": solver_phase_times(stats.solver),
            }
        trace = None
        validated = None
        if status == CEX:
            trace, validated = extract_trace(self, depth,
                                             validate=self.options.validate_cex)
        return BmcResult(
            status=status,
            property_name=self.prop.name,
            property_kind=self.prop.kind,
            depth=depth,
            method=method,
            trace=trace,
            trace_validated=validated,
            latch_reasons=list(self._lr),
            memory_reasons=list(self._mr),
            stats=stats,
        )

    # -- introspection used by the PBA driver and counterexample extraction --

    @property
    def latch_reasons(self) -> list[frozenset[str]]:
        return self._lr

    @property
    def memory_reasons(self) -> list[frozenset[str]]:
        return self._mr

    def is_concrete(self) -> bool:
        """True when no latch or memory has been abstracted away."""
        return self.session.is_concrete()


def verify(design: Design, property_name: str,
           options: Optional[BmcOptions] = None) -> BmcResult:
    """One-call convenience wrapper: build an engine and run it."""
    return BmcEngine(design, property_name, options).run()


def verify_many(design: Design, property_names=None,
                options: Optional[BmcOptions] = None,
                session: Optional[EncodingSession] = None,
                ) -> dict[str, BmcResult]:
    """Verify several properties over **one** shared encoding session.

    The scheduler is *depth-major*: at each depth the frame is encoded
    once and every still-live property's ``P_i`` cone is emitted before
    any check runs, then each live engine steps its forward/backward/
    falsification checks for that depth.  That ordering buys two solver-
    level wins on top of the shared CNF:

    * **Forward-check memoization** — the forward termination check
      assumes only ``[a_init, a_meminit] + LFP_i`` and is property-
      independent, so its definitive result at each depth is solved once
      and shared by every engine (``_begin_run``'s ``forward_memo``).
      The memo is local to this call: single-engine :meth:`BmcEngine.run`
      stays bit-identical to its historical behaviour.
    * **Assumption-trail reuse** — because no clauses are added between
      sibling checks at one depth, the fast solver back-end keeps the
      propagated ``[a_init, a_meminit]`` assumption prefix (the whole
      initial-state cone) assigned across consecutive falsification
      checks instead of re-propagating it per property
      (``SolverStats.trail_saved_levels``).

    Verdicts are identical to per-property :func:`verify` runs — checks
    are assumption sets, invisible to each other, and each engine still
    runs its own checks in the forward -> backward -> falsification
    order.  ``property_names`` defaults to all properties, sorted.
    """
    if session is None:
        session = EncodingSession(design, options)
    names = (sorted(design.properties) if property_names is None
             else list(property_names))
    engines = {name: BmcEngine(session.design, name, options,
                               session=session)
               for name in names}
    if not engines:
        return {}
    opts = options or session.options
    forward_memo: dict = {}
    states = {name: engines[name]._begin_run(forward_memo)
              for name in names}
    results: dict[str, BmcResult] = {}
    live = list(names)
    for i in range(0, opts.max_depth + 1):
        if not live:
            break
        try:
            session.extend_to(i, opts.clause_var_quota)
            for name in live:
                # Emit every live property's cone up front: later checks
                # at this depth then add no clauses, so the solver's
                # saved assumption trail survives from check to check.
                session.p_lits(name, i)
        except QuotaExceededError as exc:
            # The shared encoding hit its watermark: every live property
            # degrades together at the last fully-encoded depth.
            for name in list(live):
                results[name] = engines[name]._finish_degraded(
                    states[name], i - 1, exc.kind)
                live.remove(name)
            break
        for name in list(live):
            engine = engines[name]
            rs = states[name]
            tripped = engine._quota_trip(rs)
            if tripped is not None:
                result = engine._finish_degraded(rs, i - 1, tripped)
            else:
                result = engine._step_depth(rs, i)
            if result is None and rs.deadline is not None \
                    and time.monotonic() > rs.deadline:
                rs.stats.limit_tripped = "wall"
                result = engine._finish(TIMEOUT, i, rs, None)
            if result is not None:
                results[name] = result
                live.remove(name)
    for name in live:
        results[name] = engines[name]._finish(BOUNDED, opts.max_depth,
                                              states[name], None)
    return {name: results[name] for name in names}
