"""SAT-based Bounded Model Checking engine (substrate S5).

Implements the three algorithms of the paper:

* **BMC-1** (Figure 1) — plain BMC with forward/backward induction
  termination checks and optional proof-based abstraction, for designs
  without memories (or with explicitly expanded memories);
* **BMC-2** (Figure 2) — BMC with EMM constraints, falsification only;
* **BMC-3** (Figure 3) — BMC with EMM constraints, induction proofs and
  proof-based abstraction.

All three are served by :class:`repro.bmc.engine.BmcEngine` through
:class:`repro.bmc.engine.BmcOptions` (``use_emm``, ``find_proof``,
``pba``); the preset constructors :func:`bmc1`, :func:`bmc2` and
:func:`bmc3` mirror the paper's figures exactly.
"""

from repro.bmc.engine import (BmcEngine, BmcOptions, bmc1, bmc2, bmc3,
                              verify, verify_many)
from repro.bmc.results import DEGRADED, BmcResult, BmcRunStats
from repro.bmc.session import (EncodingSession, QuotaExceededError,
                               SessionCache)
from repro.bmc.shrink import ShrinkResult, TraceShrinker, shrink_trace
from repro.bmc.diameter import forward_recurrence_diameter

__all__ = ["BmcEngine", "BmcOptions", "BmcResult", "BmcRunStats",
           "DEGRADED", "EncodingSession", "QuotaExceededError",
           "SessionCache",
           "bmc1", "bmc2", "bmc3", "verify", "verify_many",
           "ShrinkResult", "TraceShrinker", "shrink_trace",
           "forward_recurrence_diameter"]
