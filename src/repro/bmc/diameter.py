"""Recurrence-diameter computation via loop-free-path SAT checks.

The forward termination check of BMC-1/BMC-3 (Figure 1 line 5 /
Figure 3 line 6) proves a property once ``I ∧ LFP_i`` is unsatisfiable:
no loop-free path of length ``i`` leaves the initial states, so every
reachable state was already covered by the bounded checks.  The smallest
such ``i`` is the system's *recurrence diameter from init* [19] — an
upper bound on the reachability radius the BDD engine computes exactly.

This module computes that bound standalone (no property needed), with
EMM constraints for designs with embedded memories — giving, e.g., the
"forward proof diameter D" column of the paper's Table 1 without running
a property at all.
"""

from __future__ import annotations

from typing import Optional

from repro.aig.aig import Aig
from repro.aig.tseitin import CnfEmitter
from repro.bmc.engine import BmcOptions
from repro.bmc.induction import LoopFreeConstraints
from repro.bmc.unroller import Unroller
from repro.design.netlist import Design
from repro.emm.forwarding import EmmMemory
from repro.sat.solver import Solver


def forward_recurrence_diameter(design: Design, max_depth: int = 100,
                                options: Optional[BmcOptions] = None
                                ) -> Optional[int]:
    """Smallest i such that no loop-free path of length i starts in I.

    Returns None when the bound is not reached within ``max_depth``.
    Loop-freedom is judged over the latch state (the paper's LFP), with
    memory reads constrained by EMM including the arbitrary-initial-state
    machinery — matching exactly what the engine's forward termination
    check sees.
    """
    design.validate()
    opts = options or BmcOptions()
    solver = Solver(proof=False)
    emitter = CnfEmitter(Aig(strash=opts.strash), solver, strash=opts.strash)
    unroller = Unroller(design, emitter, opts.kept_latches)
    a_init = solver.new_var()
    a_meminit = solver.new_var()
    a_lfp = solver.new_var()
    kept_mems = (frozenset(design.memories) if opts.kept_memories is None
                 else frozenset(opts.kept_memories))
    port_map = opts.kept_read_ports or {}
    emms = [
        EmmMemory(solver, unroller, name,
                  exclusivity=opts.exclusivity,
                  init_consistency=opts.init_consistency,
                  symbolic_init=True, a_meminit=a_meminit,
                  kept_read_ports=port_map.get(name),
                  addr_dedup=opts.emm_addr_dedup,
                  chain_share=opts.emm_chain_share,
                  hybrid_strash=opts.emm_hybrid_strash)
        for name in sorted(kept_mems)
    ]
    lfp = LoopFreeConstraints(unroller, a_lfp)
    for i in range(max_depth + 1):
        unroller.add_frame()
        if i == 0:
            _add_init_clauses(design, unroller, emitter, a_init)
        for emm in emms:
            emm.add_frame(i)
        lfp.add_frame(i)
        result = solver.solve([a_init, a_meminit, a_lfp],
                              opts.max_conflicts_per_check)
        if result.unknown:
            return None
        if not result.sat:
            return i
    return None


def _add_init_clauses(design: Design, unroller: Unroller,
                      emitter: CnfEmitter, a_init: int) -> None:
    for name in sorted(unroller.kept_latches):
        latch = design.latches[name]
        if latch.init is None:
            continue
        word = unroller.latch_word(name, 0)
        emitter.set_label(("init", name))
        for b in range(latch.width):
            lit = emitter.sat_lit(word[b])
            bit = (latch.init >> b) & 1
            emitter.add_clause([-a_init, lit if bit else -lit])
