"""The encoding layer of the BMC stack: one CNF, many checks.

An :class:`EncodingSession` owns everything that *encodes* a design —
the incremental SAT solver, the AIG and its Tseitin emitter, the
unroller, the EMM instances and the activation literals — but performs
no checks itself.  Frames are added by the idempotent
:meth:`EncodingSession.extend_to`; per-property ``P_i`` literals come
from :meth:`EncodingSession.p_lit` on demand.  The split buys two
things the old monolithic engine threw away:

* **many properties, one CNF** — N properties of the same design under
  the same options share a single unrolled encoding (frames, EMM
  constraints, loop-free-path clauses) instead of re-encoding it N
  times; each check is just an assumption set over the shared solver;
* **many requests, one session** — a session is reusable across runs
  (the solver keeps its clauses *and* its learned clauses), so repeated
  verification requests for the same design pay only the solve.
  :class:`SessionCache` keys live sessions on
  ``(design.fingerprint(), options encoding key)``.

The check scheduler on top is :class:`repro.bmc.engine.BmcEngine`,
which preserves the original single-property semantics bit-for-bit: a
fresh engine on a fresh session allocates solver variables in exactly
the order the monolith did (frame k's state, init clauses at frame 0,
EMM constraints, LFP clauses, then the property literal).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.aig.aig import Aig
from repro.aig.tseitin import CnfEmitter
from repro.bmc.induction import LoopFreeConstraints
from repro.bmc.unroller import Unroller
from repro.design.netlist import Design
from repro.emm.addrcmp import SharedComparatorTables
from repro.emm.forwarding import EmmMemory
from repro.sat.solver import Solver

if TYPE_CHECKING:  # pragma: no cover
    from repro.bmc.engine import BmcOptions


class QuotaExceededError(Exception):
    """A per-job resource quota tripped during encoding.

    Raised by :meth:`EncodingSession.extend_to` when the session's
    clause+variable total crosses the caller's watermark.  The session
    stays sound — frames already encoded are complete and never rolled
    back — so the scheduler catches this and degrades the run at depth
    granularity (:data:`repro.bmc.results.DEGRADED`) instead of dying.
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        super().__init__(detail or kind)
        #: Which quota tripped: ``"mem"`` | ``"clauses"`` | ``"wall"``.
        self.kind = kind


class EncodingSession:
    """Owns the solver/AIG/unroller/EMM state of one design encoding.

    The session encodes; it never solves.  Checks are run by schedulers
    (:class:`repro.bmc.engine.BmcEngine`) as assumption sets over
    :attr:`solver`, guarded by the session's activation literals:

    * :attr:`a_init` — initial-state clauses for latches,
    * :attr:`a_meminit` — declared initial memory contents (eq. (6) pins),
    * :attr:`a_lfp` — master loop-free-path activation; checks assume
      the per-frame guards from :meth:`lfp_assumptions` instead, so a
      depth-``i`` check is blind to frames a sibling encoded beyond it.
    """

    def __init__(self, design: Design,
                 options: Optional["BmcOptions"] = None) -> None:
        from repro.bmc.engine import BmcOptions

        design.validate()
        self.design = design
        self.options = options or BmcOptions()
        options = self.options
        if design.memories and not options.use_emm:
            raise ValueError(
                "design has memories but use_emm=False; expand them first "
                "(repro.design.expand_memories) for the explicit baseline")
        self.solver = Solver(proof=options.pba,
                             fast=not options.solver_baseline)
        self.aig = Aig(strash=options.strash)
        # PBA sessions keep the plain AND-triple lowering: the ITE form
        # is function-equivalent but collapses each mux's two inner AND
        # provenance points into one 4-clause emission, which yields
        # legally-smaller UNSAT cores that can starve the reason-based
        # abstraction of latches the proof run still needs (quicksort
        # P2 regression).  `pba` is part of encoding_key, so fast and
        # ITE-lowered sessions are never cache-aliased with these.
        self.emitter = CnfEmitter(self.aig, self.solver,
                                  strash=options.strash,
                                  ite=not options.pba)
        self.unroller = Unroller(design, self.emitter, options.kept_latches)
        self.a_init = self.solver.new_var()
        self.a_lfp = self.solver.new_var()
        self.a_meminit = self.solver.new_var()
        kept_mems = (frozenset(design.memories)
                     if options.kept_memories is None
                     else frozenset(options.kept_memories))
        self.kept_memories = kept_mems
        port_map = options.kept_read_ports or {}
        registries = self._shared_init_registries(kept_mems)
        #: Session-scoped cross-memory comparator registry: one table per
        #: booking class, shared by every memory's comparators so
        #: structurally identical address comparisons encode once across
        #: memories (hits multi-label the clauses — see
        #: :mod:`repro.emm.addrcmp`).  Needs the per-memory cache on.
        self.cmp_registry = (SharedComparatorTables()
                             if options.emm_cross_mem_share
                             and options.emm_addr_dedup else None)
        if options.emm_encoding == "hybrid":
            emm_class = EmmMemory
        elif options.emm_encoding == "gates":
            from repro.emm.gates import GateEmmMemory
            emm_class = GateEmmMemory
        else:
            raise ValueError(
                f"unknown emm_encoding {options.emm_encoding!r} "
                "(expected 'hybrid' or 'gates')")
        self.emms = {
            name: emm_class(self.solver, self.unroller, name,
                            exclusivity=options.exclusivity,
                            init_consistency=options.init_consistency,
                            symbolic_init=options.find_proof,
                            a_meminit=self.a_meminit,
                            kept_read_ports=port_map.get(name),
                            init_registry=registries.get(name),
                            addr_dedup=options.emm_addr_dedup,
                            chain_share=options.emm_chain_share,
                            hybrid_strash=options.emm_hybrid_strash,
                            cmp_registry=self.cmp_registry)
            for name in sorted(kept_mems)
        }
        self.lfp = (LoopFreeConstraints(self.unroller, self.a_lfp)
                    if options.find_proof else None)
        #: Frames encoded so far (frame indices 0..frames_built-1).
        self.frames_built = 0
        #: Per-property P_i literal lists, grown lazily by :meth:`p_lit`.
        self._p_lits: dict[str, list[int]] = {}

    def _shared_init_registries(self, kept_mems: frozenset[str]) -> dict:
        """One shared fall-through read registry per shared-init group."""
        from repro.emm.forwarding import InitReadRegistry

        registries: dict[str, InitReadRegistry] = {}
        for group in self.options.shared_init_memories:
            widths = set()
            shared = InitReadRegistry()
            for name in sorted(group):
                mem = self.design.memories.get(name)
                if mem is None:
                    raise ValueError(f"shared-init memory {name!r} not in design")
                widths.add((mem.addr_width, mem.data_width))
                if name in registries:
                    raise ValueError(f"memory {name!r} is in two shared-init groups")
                if name in kept_mems:
                    registries[name] = shared
            if len(widths) > 1:
                raise ValueError(
                    f"shared-init group {sorted(group)} mixes geometries {widths}")
        return registries

    # -- frame construction ------------------------------------------------

    def extend_to(self, depth: int,
                  clause_var_quota: Optional[int] = None) -> None:
        """Encode frames up to ``depth`` inclusive; idempotent.

        Already-encoded frames are never touched, so interleaved callers
        (several schedulers sharing the session) each pay only for the
        deepest frontier.

        ``clause_var_quota`` is a per-call watermark on
        :meth:`clause_var_total`: once the encoding crosses it, a
        :class:`QuotaExceededError` is raised *between* frames — the
        frame in flight is always finished first, so the session remains
        a complete encoding of ``0..frames_built-1`` and every check at
        those depths stays sound.  It is a run knob of the calling
        scheduler, never part of the session's identity.
        """
        while self.frames_built <= depth:
            if (clause_var_quota is not None
                    and self.clause_var_total() > clause_var_quota):
                raise QuotaExceededError(
                    "clauses",
                    f"encoding watermark {self.clause_var_total()} > "
                    f"quota {clause_var_quota} before frame {self.frames_built}")
            k = self.frames_built
            self.unroller.add_frame()
            if k == 0:
                self._add_init_clauses()
            for emm in self.emms.values():
                emm.add_frame(k)
            if self.lfp is not None:
                self.lfp.add_frame(k)
            self.frames_built += 1

    def _add_init_clauses(self) -> None:
        emitter = self.emitter
        for name in sorted(self.unroller.kept_latches):
            latch = self.design.latches[name]
            if latch.init is None:
                continue  # arbitrary initial value: leave free
            word = self.unroller.latch_word(name, 0)
            emitter.set_label(("init", name))
            for b in range(latch.width):
                lit = emitter.sat_lit(word[b])
                bit = (latch.init >> b) & 1
                emitter.add_clause([-self.a_init, lit if bit else -lit])

    def lfp_assumptions(self, depth: int) -> list[int]:
        """Per-frame loop-free-path guards for a check at ``depth``.

        Only pairs among frames ``0..depth`` are activated — essential on
        shared sessions, where a sibling property may have encoded frames
        beyond ``depth`` whose distinctness must *not* constrain this
        check (see :mod:`repro.bmc.induction`).
        """
        if self.lfp is None:
            return []
        return self.lfp.assumptions(depth)

    # -- per-property literals ---------------------------------------------

    def p_lit(self, prop_name: str, i: int) -> int:
        """SAT literal of "property holds at frame i" (lazily emitted).

        ``reach`` properties are negated so P uniformly reads "no
        violation yet" — exactly the literal the scheduler assumes
        positively in backward-induction prefixes and negatively in
        falsification checks.
        """
        return self.p_lits(prop_name, i)[i]

    def p_lits(self, prop_name: str, upto: int) -> list[int]:
        """``[P_0 .. P_upto]`` for a property; frames must be encoded."""
        if upto >= self.frames_built:
            raise ValueError(
                f"frame {upto} not encoded yet (have {self.frames_built}); "
                "call extend_to first")
        prop = self.design.properties[prop_name]
        lits = self._p_lits.setdefault(prop_name, [])
        while len(lits) <= upto:
            i = len(lits)
            self.emitter.set_label(("gate", i))
            good = self.unroller.lit(prop.expr, i)
            p = self.emitter.sat_lit(good)
            if prop.kind == "reach":
                p = -p  # P = "target not yet reached"
            lits.append(p)
        return lits

    # -- introspection ------------------------------------------------------

    def is_concrete(self) -> bool:
        """True when no latch or memory has been abstracted away."""
        return (self.unroller.kept_latches == frozenset(self.design.latches)
                and self.kept_memories == frozenset(self.design.memories))

    def clause_var_total(self) -> int:
        """Solver clauses + variables — the size a shared run amortizes."""
        return self.solver.num_clauses + self.solver.num_vars


class SessionCache:
    """LRU cache of live sessions keyed on design content + options.

    The key is ``(design.fingerprint(), options.encoding_key())`` — two
    designs with identical semantic content (regardless of construction
    order) and identical encoding-relevant options share a session, so a
    repeated verification request pays only the incremental solve, not
    the encoding.  Schedulers never mutate a session destructively, so
    handing the same session to successive engines is sound; verdicts
    may only get *cheaper* (retained learned clauses), never different.
    """

    def __init__(self, max_sessions: int = 8) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self._sessions: OrderedDict[tuple, EncodingSession] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def key_for(self, design: Design, options: "BmcOptions") -> tuple:
        return (design.fingerprint(), options.encoding_key())

    def get_or_create(self, design: Design,
                      options: Optional["BmcOptions"] = None,
                      ) -> EncodingSession:
        from repro.bmc.engine import BmcOptions

        options = options or BmcOptions()
        key = self.key_for(design, options)
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            self.hits += 1
            return session
        session = EncodingSession(design, options)
        self._sessions[key] = session
        self.misses += 1
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
        return session

    def clear(self) -> None:
        self._sessions.clear()
