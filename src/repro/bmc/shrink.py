"""Counterexample minimization by oracle-checked greedy deltas.

BMC counterexamples carry whatever values the SAT solver happened to
pick: noisy input vectors, irrelevant arbitrary-init latch values, and
incidental initial memory contents.  This module shrinks a failing trace
while *preserving the failure*, replaying every candidate simplification
on a concrete oracle (:mod:`repro.sim.oracle`):

1. **Input zeroing** — set each input word (per cycle) to zero;
2. **Init-latch zeroing** — zero the arbitrary-init latch values;
3. **Memory-content pruning** — drop reconstructed initial memory words
   (unneeded locations revert to the default);
4. **Value shrinking** — replace surviving nonzero values by smaller
   ones (halving), pushing magnitudes toward zero.

Candidate simplifications of a pass are evaluated as **lanes of one
vector batch** (:class:`repro.sim.oracle.VectorOracle`): N candidates
cost one compiled array sweep instead of N interpreter replays.  All
individually-safe edits of a pass are then applied together when their
combination still fails, with a sequential fallback when edits interact
— so the result is the same locally-minimal trace shape the scalar
greedy loop produced: at the fixpoint no single remaining
simplification can be applied without losing the violation.
Deterministic and purely simulation-driven — no SAT calls — so it is
cheap even for long traces (and ~batch× cheaper than the scalar loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.design.netlist import Design
from repro.sim.oracle import Oracle, SimulatorOracle, Stimulus, default_oracle
from repro.sim.trace import Trace

#: One candidate simplification: a log line plus an in-place stimulus edit.
Edit = tuple[str, Callable[[Stimulus], None]]


@dataclass
class ShrinkResult:
    """A minimized counterexample plus bookkeeping."""

    trace: Trace
    #: Simplifications applied / candidate evaluations attempted.
    applied: int = 0
    attempted: int = 0
    #: Final failure cycle (may move earlier during shrinking).
    failure_cycle: int = 0
    log: list[str] = field(default_factory=list)


class TraceShrinker:
    """Shrinks one failing trace of one property.

    ``oracle`` defaults to the fastest available concrete oracle
    (vectorized when numpy is present); pass a
    :class:`repro.sim.oracle.SimulatorOracle` to force the scalar path.
    """

    def __init__(self, design: Design, property_name: str,
                 oracle: Optional[Oracle] = None) -> None:
        design.validate()
        self.design = design
        self.prop = design.properties[property_name]
        self.oracle = oracle if oracle is not None else default_oracle(design)

    # -- failure oracle -----------------------------------------------------

    def fails(self, inputs: list[dict], init_latches: dict,
              init_memories: dict) -> Optional[int]:
        """First cycle where the property is violated, or None."""
        return self._first_failure(Stimulus(
            inputs=[dict(v) for v in inputs],
            init_latches=dict(init_latches),
            init_memories={m: dict(c) for m, c in init_memories.items()}))

    def _first_failure(self, stimulus: Stimulus) -> Optional[int]:
        verdict = self.oracle.check(self.prop.name, stimulus)
        return verdict.cycle if verdict.failed else None

    def _first_failures(self, candidates: list[Stimulus]
                        ) -> list[Optional[int]]:
        """Batched failure oracle: one lane per candidate."""
        return [v.cycle if v.failed else None
                for v in self.oracle.check_batch(self.prop.name, candidates)]

    # -- the shrink loop ------------------------------------------------------

    def shrink(self, trace: Trace, rounds: int = 3) -> ShrinkResult:
        """Greedily minimize ``trace``; it must currently fail."""
        stim = Stimulus.from_trace(trace)
        first = self._first_failure(stim)
        if first is None:
            raise ValueError("trace does not violate the property; "
                             "nothing to shrink")
        result = ShrinkResult(trace=trace, failure_cycle=first)
        # Truncate to the failure point immediately: later cycles are noise.
        stim.inputs = stim.inputs[:first + 1]

        for _ in range(rounds):
            changed = False
            changed |= self._apply_edits(stim, self._zero_input_edits(stim),
                                         result)
            changed |= self._apply_edits(stim,
                                         self._zero_init_latch_edits(stim),
                                         result)
            changed |= self._apply_edits(stim,
                                         self._prune_memory_edits(stim),
                                         result)
            changed |= self._shrink_values(stim, result)
            if not changed:
                break

        final = self._first_failure(stim)
        assert final is not None, "shrinking lost the violation"
        stim.inputs = stim.inputs[:final + 1]
        # Rebuild the final trace on the scalar reference simulator so the
        # result has the canonical scalar shape regardless of the oracle.
        out = SimulatorOracle(self.design).replay(stim)
        result.trace = out
        result.failure_cycle = final
        return result

    # -- batched pass machinery ----------------------------------------------

    def _apply_edits(self, stim: Stimulus, edits: list[Edit],
                     result: ShrinkResult) -> bool:
        """Evaluate all edits as one batch; apply the surviving ones.

        Every edit is checked against the current base (one lane each).
        When several edits individually preserve the failure, their
        combination is checked once and applied wholesale if it still
        fails; otherwise the survivors are re-applied greedily in order
        (each re-checked against the evolving base), which matches the
        scalar loop's behaviour when edits interact.
        """
        if not edits:
            return False
        candidates = []
        for _desc, fn in edits:
            cand = stim.copy()
            fn(cand)
            candidates.append(cand)
        result.attempted += len(edits)
        failures = self._first_failures(candidates)
        good = [edit for edit, cycle in zip(edits, failures)
                if cycle is not None]
        if not good:
            return False
        if len(good) > 1:
            combined = stim.copy()
            for _desc, fn in good:
                fn(combined)
            result.attempted += 1
            if self._first_failure(combined) is not None:
                for desc, fn in good:
                    fn(stim)
                    result.applied += 1
                    result.log.append(desc)
                return True
        # Interacting edits: greedy fallback.  The first survivor is
        # known-good against the unchanged base; later ones re-check.
        changed = False
        for desc, fn in good:
            if changed:
                cand = stim.copy()
                fn(cand)
                result.attempted += 1
                if self._first_failure(cand) is None:
                    continue
            fn(stim)
            result.applied += 1
            result.log.append(desc)
            changed = True
        return changed

    # -- candidate generators -------------------------------------------------

    def _zero_input_edits(self, stim: Stimulus) -> list[Edit]:
        edits: list[Edit] = []
        for k, vec in enumerate(stim.inputs):
            for name in sorted(vec):
                if vec[name] == 0:
                    continue
                edits.append((f"input {name}@{k}: {vec[name]} -> 0",
                              _set_input(k, name, 0)))
        return edits

    def _zero_init_latch_edits(self, stim: Stimulus) -> list[Edit]:
        edits: list[Edit] = []
        for name in sorted(stim.init_latches):
            if stim.init_latches[name] == 0:
                continue
            edits.append((f"init latch {name}: "
                          f"{stim.init_latches[name]} -> 0",
                          _set_init_latch(name, 0)))
        return edits

    def _prune_memory_edits(self, stim: Stimulus) -> list[Edit]:
        edits: list[Edit] = []
        for mem_name in sorted(stim.init_memories):
            declared = self.design.memories[mem_name].init_words
            contents = stim.init_memories[mem_name]
            for addr in sorted(contents):
                if addr in declared:
                    continue  # declared ROM words are part of the design
                edits.append((f"{mem_name}[{addr}]: {contents[addr]} dropped",
                              _drop_word(mem_name, addr)))
        return edits

    def _halve_edits(self, stim: Stimulus) -> list[Edit]:
        edits: list[Edit] = []
        for k, vec in enumerate(stim.inputs):
            for name in sorted(vec):
                if vec[name] > 0:
                    edits.append((f"input {name}@{k}: {vec[name]} -> "
                                  f"{vec[name] // 2}",
                                  _set_input(k, name, vec[name] // 2)))
        for name in sorted(stim.init_latches):
            value = stim.init_latches[name]
            if value > 0:
                edits.append((f"init latch {name}: {value} -> {value // 2}",
                              _set_init_latch(name, value // 2)))
        for mem_name in sorted(stim.init_memories):
            declared = self.design.memories[mem_name].init_words
            contents = stim.init_memories[mem_name]
            for addr in sorted(contents):
                if addr in declared or contents[addr] <= 0:
                    continue
                edits.append((f"{mem_name}[{addr}]: {contents[addr]} -> "
                              f"{contents[addr] // 2}",
                              _set_word(mem_name, addr, contents[addr] // 2)))
        return edits

    def _shrink_values(self, stim: Stimulus, result: ShrinkResult) -> bool:
        """Repeated halving until no value can be pushed lower."""
        changed = False
        while self._apply_edits(stim, self._halve_edits(stim), result):
            changed = True
        return changed


# -- edit constructors (closures capturing the target, not the value) -------


def _set_input(cycle: int, name: str, value: int):
    def apply(s: Stimulus) -> None:
        s.inputs[cycle][name] = value
    return apply


def _set_init_latch(name: str, value: int):
    def apply(s: Stimulus) -> None:
        s.init_latches[name] = value
    return apply


def _drop_word(mem_name: str, addr: int):
    def apply(s: Stimulus) -> None:
        s.init_memories[mem_name].pop(addr, None)
    return apply


def _set_word(mem_name: str, addr: int, value: int):
    def apply(s: Stimulus) -> None:
        s.init_memories[mem_name][addr] = value
    return apply


def shrink_trace(design: Design, property_name: str, trace: Trace,
                 rounds: int = 3,
                 oracle: Optional[Oracle] = None) -> ShrinkResult:
    """One-call convenience wrapper around :class:`TraceShrinker`."""
    return TraceShrinker(design, property_name, oracle=oracle).shrink(
        trace, rounds)
