"""Counterexample minimization by simulator-checked greedy deltas.

BMC counterexamples carry whatever values the SAT solver happened to
pick: noisy input vectors, irrelevant arbitrary-init latch values, and
incidental initial memory contents.  This module shrinks a failing trace
while *preserving the failure*, replaying every candidate simplification
on the reference simulator:

1. **Input zeroing** — set each input word (per cycle) to zero;
2. **Init-latch zeroing** — zero the arbitrary-init latch values;
3. **Memory-content pruning** — drop reconstructed initial memory words
   (unneeded locations revert to the default);
4. **Value shrinking** — replace surviving nonzero values by smaller
   ones (halving), pushing magnitudes toward zero.

The result is a locally-minimal trace: no single remaining simplification
can be applied without losing the violation.  Deterministic and purely
simulator-driven — no SAT calls — so it is cheap even for long traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.design.netlist import Design
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


@dataclass
class ShrinkResult:
    """A minimized counterexample plus bookkeeping."""

    trace: Trace
    #: Simplifications applied / attempted.
    applied: int = 0
    attempted: int = 0
    #: Final failure cycle (may move earlier during shrinking).
    failure_cycle: int = 0
    log: list[str] = field(default_factory=list)


class TraceShrinker:
    """Shrinks one failing trace of one property."""

    def __init__(self, design: Design, property_name: str) -> None:
        design.validate()
        self.design = design
        self.prop = design.properties[property_name]

    # -- failure oracle -----------------------------------------------------

    def fails(self, inputs: list[dict], init_latches: dict,
              init_memories: dict) -> Optional[int]:
        """First cycle where the property is violated, or None."""
        sim = Simulator(self.design, init_latches=init_latches,
                        init_memories=init_memories)
        expected_bad = 0 if self.prop.kind == "invariant" else 1
        for k, vec in enumerate(inputs):
            sim.begin_cycle(vec)
            if sim.eval(self.prop.expr) == expected_bad:
                return k
            sim.commit_cycle()
        return None

    # -- the shrink loop ------------------------------------------------------

    def shrink(self, trace: Trace, rounds: int = 3) -> ShrinkResult:
        """Greedily minimize ``trace``; it must currently fail."""
        inputs = [dict(c) for c in trace.inputs_sequence()]
        init_latches = dict(trace.init_latches)
        init_memories = {m: dict(c) for m, c in trace.init_memories.items()}
        first = self.fails(inputs, init_latches, init_memories)
        if first is None:
            raise ValueError("trace does not violate the property; "
                             "nothing to shrink")
        result = ShrinkResult(trace=trace, failure_cycle=first)
        # Truncate to the failure point immediately: later cycles are noise.
        inputs = inputs[:first + 1]

        for _ in range(rounds):
            changed = False
            changed |= self._zero_inputs(inputs, init_latches, init_memories,
                                         result)
            changed |= self._zero_init_latches(inputs, init_latches,
                                               init_memories, result)
            changed |= self._prune_memories(inputs, init_latches,
                                            init_memories, result)
            changed |= self._shrink_values(inputs, init_latches,
                                           init_memories, result)
            if not changed:
                break

        final = self.fails(inputs, init_latches, init_memories)
        assert final is not None, "shrinking lost the violation"
        out = Trace(design_name=trace.design_name)
        out.init_latches = init_latches
        out.init_memories = init_memories
        sim = Simulator(self.design, init_latches=init_latches,
                        init_memories=init_memories)
        out.cycles = sim.run(inputs[:final + 1]).cycles
        result.trace = out
        result.failure_cycle = final
        return result

    # -- individual passes ---------------------------------------------------

    def _try(self, inputs, init_latches, init_memories, result) -> bool:
        result.attempted += 1
        ok = self.fails(inputs, init_latches, init_memories) is not None
        if ok:
            result.applied += 1
        return ok

    def _zero_inputs(self, inputs, init_latches, init_memories,
                     result) -> bool:
        changed = False
        for k, vec in enumerate(inputs):
            for name in sorted(vec):
                if vec[name] == 0:
                    continue
                saved = vec[name]
                vec[name] = 0
                if self._try(inputs, init_latches, init_memories, result):
                    changed = True
                    result.log.append(f"input {name}@{k}: {saved} -> 0")
                else:
                    vec[name] = saved
        return changed

    def _zero_init_latches(self, inputs, init_latches, init_memories,
                           result) -> bool:
        changed = False
        for name in sorted(init_latches):
            if init_latches[name] == 0:
                continue
            saved = init_latches[name]
            init_latches[name] = 0
            if self._try(inputs, init_latches, init_memories, result):
                changed = True
                result.log.append(f"init latch {name}: {saved} -> 0")
            else:
                init_latches[name] = saved
        return changed

    def _prune_memories(self, inputs, init_latches, init_memories,
                        result) -> bool:
        changed = False
        for mem_name in sorted(init_memories):
            declared = self.design.memories[mem_name].init_words
            contents = init_memories[mem_name]
            for addr in sorted(contents):
                if addr in declared:
                    continue  # declared ROM words are part of the design
                saved = contents.pop(addr)
                if self._try(inputs, init_latches, init_memories, result):
                    changed = True
                    result.log.append(f"{mem_name}[{addr}]: {saved} dropped")
                else:
                    contents[addr] = saved
        return changed

    def _shrink_values(self, inputs, init_latches, init_memories,
                       result) -> bool:
        changed = False
        for k, vec in enumerate(inputs):
            for name in sorted(vec):
                changed |= self._halve(vec, name, f"input {name}@{k}",
                                       inputs, init_latches, init_memories,
                                       result)
        for name in sorted(init_latches):
            changed |= self._halve(init_latches, name, f"init latch {name}",
                                   inputs, init_latches, init_memories,
                                   result)
        for mem_name in sorted(init_memories):
            contents = init_memories[mem_name]
            declared = self.design.memories[mem_name].init_words
            for addr in sorted(contents):
                if addr in declared:
                    continue
                changed |= self._halve(contents, addr,
                                       f"{mem_name}[{addr}]", inputs,
                                       init_latches, init_memories, result)
        return changed

    def _halve(self, container, key, what, inputs, init_latches,
               init_memories, result) -> bool:
        changed = False
        while container[key] > 0:
            saved = container[key]
            container[key] = saved // 2
            if self._try(inputs, init_latches, init_memories, result):
                changed = True
                result.log.append(f"{what}: {saved} -> {saved // 2}")
            else:
                container[key] = saved
                break
        return changed


def shrink_trace(design: Design, property_name: str, trace: Trace,
                 rounds: int = 3) -> ShrinkResult:
    """One-call convenience wrapper around :class:`TraceShrinker`."""
    return TraceShrinker(design, property_name).shrink(trace, rounds)
