"""Loop-free-path (LFP) constraints for SAT-based induction proofs.

Following Sheeran/Singh/Stalmarck (the paper's reference [19]) and the
checks on lines 5-7 of Figure 1 / 6-8 of Figure 3:

* *forward termination*:  ``I ∧ LFP_i`` UNSAT — no loop-free path of
  length i leaves the initial states, so earlier bounded checks covered
  the whole reachable space;
* *backward termination*: ``LFP_i ∧ CP_i ∧ ¬P_i`` UNSAT — no loop-free
  path keeps P for i steps and then fails it (the k-induction step).

``LFP_i`` is the pairwise state-difference constraint over the *kept*
latch words.  Each pair (j, k) is encoded directly in CNF in the same
hybrid style the paper uses for EMM address comparisons: per-bit
difference indicators ``d_b`` with ``d_b -> (s_j[b] != s_k[b])`` and one
activation-guarded clause ``(!g_k + d_0 + ... + d_{B-1})`` requiring
some bit to differ.

Activation is **per frame**: all pairs ending at frame ``k`` share one
guard literal ``g_k``, and a check at depth ``i`` assumes only
``g_1..g_i`` (:meth:`LoopFreeConstraints.assumptions`).  This matters on
shared encoding sessions — a sibling property may have encoded frames
far beyond ``i``, and a single global activation literal would force
loop-freedom over *those* frames too, turning a depth-``i`` forward
check into "no loop-free path of the deepest encoded length exists":
spuriously UNSAT at the design's diameter.  The master ``a_lfp``
literal implies every ``g_k`` and is kept for whole-encoding callers
(recurrence-diameter computation) where all frames are in scope.
"""

from __future__ import annotations

from repro.bmc.unroller import Unroller


class LoopFreeConstraints:
    """Incrementally adds pairwise state-inequality clauses per frame."""

    def __init__(self, unroller: Unroller, a_lfp_var: int) -> None:
        self.unroller = unroller
        self.a_lfp = a_lfp_var
        self.pairs_added = 0
        self.clauses_added = 0
        #: Per frame: SAT literals of the kept latch state bits.
        self._state_lits: list[list[int]] = []
        #: ``frame_lits[k-1]`` guards the pairs ending at frame k (k >= 1).
        self.frame_lits: list[int] = []

    def assumptions(self, depth: int) -> list[int]:
        """Guards activating all pairwise constraints among frames 0..depth."""
        return self.frame_lits[:depth]

    def add_frame(self, k: int) -> None:
        """Add ``state_j != state_k`` for all j < k."""
        un = self.unroller
        emitter = un.emitter
        solver = emitter.solver
        names = sorted(un.kept_latches)
        emitter.set_label(("lfp-state", k))
        state_k = [emitter.sat_lit(bit)
                   for name in names for bit in un.latch_word(name, k)]
        self._state_lits.append(state_k)
        if k == 0:
            return
        g = solver.new_var()
        self.frame_lits.append(g)
        solver.add_clause([-self.a_lfp, g], ("lfp-frame", k))
        self.clauses_added += 1
        for j in range(k):
            state_j = self._state_lits[j]
            label = ("lfp", j, k)
            diff_bits = []
            for a, b in zip(state_j, state_k):
                d = solver.new_var()
                solver.add_clause([-d, a, b], label)
                solver.add_clause([-d, -a, -b], label)
                diff_bits.append(d)
                self.clauses_added += 2
            solver.add_clause([-g] + diff_bits, label)
            self.clauses_added += 1
            self.pairs_added += 1
