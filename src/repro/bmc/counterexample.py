"""Counterexample / witness extraction and validation.

Pulls a concrete trace out of the SAT model: input vectors per frame,
initial values for arbitrary-init latches, and — the interesting part —
the *initial memory contents* implied by the EMM model: every read that
fell through to the initial state (no earlier write to that address)
pins down one location of the arbitrary initial memory.

When the verification model is concrete (nothing abstracted) the trace is
replayed on the reference simulator and the property violation is checked
— an end-to-end validation that the EMM constraints really preserved the
memory semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.oracle import SimulatorOracle, Stimulus
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.bmc.engine import BmcEngine


def _word_value(engine: "BmcEngine", aig_word: list[int]) -> int:
    """Integer value of an AIG word in the SAT model (unemitted bits = 0)."""
    solver = engine.solver
    emitter = engine.emitter
    value = 0
    for i, lit in enumerate(aig_word):
        idx = lit >> 1
        if idx == 0:
            bit = lit & 1  # literal 0 = FALSE, literal 1 = TRUE
        else:
            var = emitter.var_for(lit)
            if var is None:
                bit = 0  # cone never emitted: unconstrained, pick 0
            else:
                bit = int(solver.model_value(var)) ^ (lit & 1)
        if bit:
            value |= 1 << i
    return value


def _lit_value(engine: "BmcEngine", aig_lit: int) -> int:
    return _word_value(engine, [aig_lit])


def extract_trace(engine: "BmcEngine", depth: int,
                  validate: bool = True) -> tuple[Trace, bool | None]:
    """Build a trace of length depth+1 from the last SAT model.

    Returns ``(trace, validated)`` where ``validated`` is True/False after
    simulator replay, or None when the model was abstracted (replay would
    not be meaningful).
    """
    design = engine.design
    un = engine.unroller
    inputs_seq = []
    latches_seq = []
    for k in range(depth + 1):
        inputs_seq.append({
            name: _word_value(engine, un.input_word(name, k))
            for name in design.inputs
        })
        latches_seq.append({
            name: _word_value(engine, un.latch_word(name, k))
            for name in design.latches
        })

    init_latches = {
        name: latches_seq[0][name]
        for name, latch in design.latches.items() if latch.init is None
    }
    init_memories = _reconstruct_initial_memories(engine, depth)

    trace = Trace(design_name=design.name)
    trace.init_latches = dict(init_latches)
    trace.init_memories = {m: dict(c) for m, c in init_memories.items()}

    concrete = engine.is_concrete()
    if concrete and validate:
        # Replay through the scalar reference oracle — the same Oracle
        # API the shrinker, the fuzz farm and the differential matrix
        # consume, so validation semantics stay in one place.
        oracle = SimulatorOracle(design)
        replay = oracle.replay(Stimulus(
            inputs=inputs_seq, init_latches=dict(init_latches),
            init_memories={m: dict(c) for m, c in init_memories.items()}))
        trace.cycles = replay.cycles
        prop = engine.prop
        final = trace.cycles[depth]["props"][prop.name]
        validated = final == oracle.expected_bad(prop.name)
        return trace, validated

    # Abstract model: report the SAT model's view without replay.
    for k in range(depth + 1):
        trace.cycles.append({
            "inputs": inputs_seq[k],
            "latches": latches_seq[k],
            "props": {},
            "watch": {},
        })
    return trace, None


def _reconstruct_initial_memories(engine: "BmcEngine", depth: int
                                  ) -> dict[str, dict[int, int]]:
    """Initial contents of arbitrary-init memories implied by the model.

    For each read that the model satisfied through the initial-state
    fall-through (no earlier write to its address), record the read value
    at that address.  Addresses never read-before-write are immaterial.
    """
    design = engine.design
    un = engine.unroller
    out: dict[str, dict[int, int]] = {}
    for mem_name in sorted(engine.kept_memories):
        mem = design.memories[mem_name]
        if mem.init is not None:
            continue
        # Seed declared per-address contents; only the genuinely
        # arbitrary locations are mined from the SAT model.
        contents: dict[int, int] = dict(mem.init_words)
        written: set[int] = set()
        for k in range(depth + 1):
            # Reads at frame k observe writes from frames < k.
            for port in mem.read_ports:
                en = _lit_value(engine, un.lit(port.en, k))
                if not en:
                    continue
                addr = _word_value(engine, un.word(port.addr, k))
                if addr in written or addr in contents:
                    continue
                rd = _word_value(engine, un.rd_word(mem_name, port.index, k))
                contents[addr] = rd
            for port in mem.write_ports:
                en = _lit_value(engine, un.lit(port.en, k))
                if en:
                    written.add(_word_value(engine, un.word(port.addr, k)))
        out[mem_name] = contents
    return out
