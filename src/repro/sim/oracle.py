"""Unified concrete-semantics Oracle API.

Every soundness claim in this reproduction rests on differential
comparison against a concrete oracle: counterexample validation, trace
shrinking, the differential matrix, equivalence diagnosis, and the fuzz
farm all replay stimuli and ask "does the property (still) fail?".
Before this module each caller had its own plumbing — raw
``Simulator(...)`` construction, hand-rolled per-cycle property scans,
ad-hoc ``expand_memories`` wiring.  The :class:`Oracle` interface gives
them one shape:

* ``replay(stimulus) -> Trace`` — run the concrete semantics;
* ``check(prop, trace_or_stimulus) -> Verdict`` — first property
  violation (invariant) / witness (reach), replaying if needed;
* ``replay_batch`` / ``check_batch`` — many stimuli at once.  The
  scalar oracle loops; :class:`VectorOracle` evaluates every stimulus
  as one lane of a :class:`repro.sim.vector.VectorSimulator` batch, so
  N candidate checks cost one compiled array sweep instead of N
  interpreter runs.

Three implementations cover the concrete semantics the repo trusts:
the scalar reference interpreter (:class:`SimulatorOracle`), the
NumPy batch simulator (:class:`VectorOracle`, batch-of-1 degenerates
cleanly), and the paper's explicit-expansion baseline
(:class:`ExplicitOracle`, memories expanded into word latches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.design.explicit import expand_memories, word_latch_name
from repro.design.netlist import Design
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace
from repro.sim.vector import VectorSimulator, have_numpy


@dataclass
class Stimulus:
    """Everything a deterministic replay needs: inputs + initial state.

    The canonical exchange format between the BMC trace extractor, the
    shrinker, the fuzz farm and the oracles — a :class:`Trace` minus the
    recorded signal values.
    """

    inputs: list[dict] = field(default_factory=list)
    init_latches: dict = field(default_factory=dict)
    init_memories: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.inputs)

    @classmethod
    def from_trace(cls, trace: Trace) -> "Stimulus":
        return cls(inputs=trace.inputs_sequence(),
                   init_latches=dict(trace.init_latches),
                   init_memories={m: dict(c)
                                  for m, c in trace.init_memories.items()})

    def copy(self) -> "Stimulus":
        return Stimulus(inputs=[dict(v) for v in self.inputs],
                        init_latches=dict(self.init_latches),
                        init_memories={m: dict(c)
                                       for m, c in self.init_memories.items()})

    def to_dict(self) -> dict:
        """JSON-ready form (memory addresses become string keys)."""
        return {
            "inputs": [dict(v) for v in self.inputs],
            "init_latches": dict(sorted(self.init_latches.items())),
            "init_memories": {m: {str(a): v for a, v in sorted(c.items())}
                              for m, c in sorted(self.init_memories.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Stimulus":
        return cls(
            inputs=[{n: int(v) for n, v in vec.items()}
                    for vec in data.get("inputs", [])],
            init_latches={n: int(v)
                          for n, v in data.get("init_latches", {}).items()},
            init_memories={m: {int(a): int(v) for a, v in c.items()}
                           for m, c in data.get("init_memories", {}).items()},
        )


@dataclass(frozen=True)
class Verdict:
    """Outcome of checking one property against one concrete run."""

    prop: str
    kind: str
    #: Property violated (invariant) / witnessed (reach) somewhere.
    failed: bool
    #: First cycle where that happened, or None.
    cycle: Optional[int] = None

    def __bool__(self) -> bool:
        return self.failed


Subject = Union[Trace, Stimulus]


class Oracle:
    """Base class: shared scan/check logic over a design's properties.

    Subclasses implement :meth:`replay` (and may override the batch
    entry points with genuinely batched evaluation).
    """

    def __init__(self, design: Design) -> None:
        design.validate()
        self.design = design

    # -- protocol ----------------------------------------------------------

    def replay(self, stimulus: Stimulus) -> Trace:
        raise NotImplementedError

    def replay_batch(self, stimuli: Sequence[Stimulus]) -> list[Trace]:
        return [self.replay(s) for s in stimuli]

    def check(self, prop: str, subject: Subject) -> Verdict:
        """Verdict for ``prop`` on a trace (scanned) or stimulus (replayed)."""
        trace = subject if isinstance(subject, Trace) else self.replay(subject)
        return self.scan(prop, trace)

    def check_batch(self, prop: str,
                    stimuli: Sequence[Stimulus]) -> list[Verdict]:
        return [self.scan(prop, t) for t in self.replay_batch(stimuli)]

    # -- shared helpers ----------------------------------------------------

    def expected_bad(self, prop: str) -> int:
        """The property value that constitutes a failure/witness."""
        return 0 if self.design.properties[prop].kind == "invariant" else 1

    def scan(self, prop: str, trace: Trace) -> Verdict:
        """Scan an already-recorded trace for the first failure cycle."""
        kind = self.design.properties[prop].kind
        bad = self.expected_bad(prop)
        for k, cyc in enumerate(trace.cycles):
            if cyc["props"][prop] == bad:
                return Verdict(prop, kind, True, k)
        return Verdict(prop, kind, False, None)


class SimulatorOracle(Oracle):
    """The scalar reference interpreter as an oracle."""

    def replay(self, stimulus: Stimulus) -> Trace:
        sim = Simulator(self.design, init_latches=stimulus.init_latches,
                        init_memories=stimulus.init_memories)
        trace = sim.run(stimulus.inputs)
        trace.init_latches = dict(stimulus.init_latches)
        trace.init_memories = {m: dict(c)
                               for m, c in stimulus.init_memories.items()}
        return trace


class VectorOracle(Oracle):
    """Batched oracle: one :class:`VectorSimulator` lane per stimulus.

    ``replay`` runs a batch of 1; ``replay_batch``/``check_batch`` group
    stimuli by trace length (lanes of one batch must run the same number
    of cycles), chunk at ``max_batch`` lanes, and extract bit-exact
    scalar traces per lane.
    """

    def __init__(self, design: Design, max_batch: int = 1024) -> None:
        if not have_numpy():
            raise RuntimeError("VectorOracle requires numpy; "
                               "use SimulatorOracle instead")
        super().__init__(design)
        self.max_batch = max(1, max_batch)

    def replay(self, stimulus: Stimulus) -> Trace:
        return self.replay_batch([stimulus])[0]

    def replay_batch(self, stimuli: Sequence[Stimulus]) -> list[Trace]:
        out: list[Optional[Trace]] = [None] * len(stimuli)
        by_len: dict[int, list[int]] = {}
        for i, s in enumerate(stimuli):
            by_len.setdefault(len(s.inputs), []).append(i)
        for indices in by_len.values():
            for lo in range(0, len(indices), self.max_batch):
                chunk = indices[lo:lo + self.max_batch]
                for i, trace in zip(chunk, self._replay_chunk(
                        [stimuli[i] for i in chunk])):
                    out[i] = trace
        return out  # type: ignore[return-value]

    def check_batch(self, prop: str,
                    stimuli: Sequence[Stimulus]) -> list[Verdict]:
        """Batched verdicts without per-lane trace extraction.

        The shrinker's and the fuzz farm's hot path: only the property
        columns are inspected (``BatchTrace.first_cycle_where``), so the
        cost per lane is a few array reads instead of materializing a
        full scalar trace.
        """
        kind = self.design.properties[prop].kind
        bad = self.expected_bad(prop)
        out: list[Optional[Verdict]] = [None] * len(stimuli)
        by_len: dict[int, list[int]] = {}
        for i, s in enumerate(stimuli):
            by_len.setdefault(len(s.inputs), []).append(i)
        for indices in by_len.values():
            for lo in range(0, len(indices), self.max_batch):
                chunk = indices[lo:lo + self.max_batch]
                bt = self._run_chunk([stimuli[i] for i in chunk])
                firsts = bt.first_cycle_where(prop, bad)
                for i, cycle in zip(chunk, firsts):
                    out[i] = Verdict(prop, kind, cycle is not None, cycle)
        return out  # type: ignore[return-value]

    def _replay_chunk(self, stimuli: Sequence[Stimulus]) -> list[Trace]:
        traces = self._run_chunk(stimuli).lanes()
        for s, t in zip(stimuli, traces):
            # The trace's initial state is the *stimulus's* view (the
            # scalar oracle's convention), not the merged dense fill.
            t.init_latches = dict(s.init_latches)
            t.init_memories = {m: dict(c)
                               for m, c in s.init_memories.items()}
        return traces

    def _run_chunk(self, stimuli: Sequence[Stimulus]):
        import numpy as np

        design = self.design
        batch = len(stimuli)
        init_latches = {}
        for name, latch in design.latches.items():
            if any(name in s.init_latches for s in stimuli):
                default = latch.init if latch.init is not None else 0
                init_latches[name] = np.array(
                    [s.init_latches.get(name, default) for s in stimuli],
                    dtype=np.uint64)
        init_memories = {}
        for mem_name, mem in design.memories.items():
            addrs = sorted({a for s in stimuli
                            for a in s.init_memories.get(mem_name, {})})
            if not addrs:
                continue
            words = {}
            for addr in addrs:
                fallback = mem.init_words.get(
                    addr, mem.init if mem.init is not None else 0)
                words[addr] = np.array(
                    [s.init_memories.get(mem_name, {}).get(addr, fallback)
                     for s in stimuli], dtype=np.uint64)
            init_memories[mem_name] = words
        ncycles = len(stimuli[0].inputs)
        inputs_seq = []
        for k in range(ncycles):
            inputs_seq.append({
                name: np.array([s.inputs[k].get(name, 0) for s in stimuli],
                               dtype=np.uint64)
                for name in design.inputs
            })
        sim = VectorSimulator(design, batch, init_latches=init_latches,
                              init_memories=init_memories)
        return sim.run(inputs_seq)


class ExplicitOracle(Oracle):
    """The paper's explicit-expansion baseline as an oracle.

    Replays on ``expand_memories(design)``: initial memory contents
    become word-latch initial values, so the same :class:`Stimulus`
    drives both the EMM-level and the explicit-level semantics.  Traces
    carry the *expanded* design's latches (including the ``mem::wN``
    word latches) but the original property names, so verdicts are
    directly comparable.
    """

    def __init__(self, design: Design, max_batch: int = 1024) -> None:
        super().__init__(design)
        self.expanded = expand_memories(design)
        inner_cls = VectorOracle if have_numpy() else SimulatorOracle
        kwargs = {"max_batch": max_batch} if inner_cls is VectorOracle else {}
        self._inner = inner_cls(self.expanded, **kwargs)

    def _translate(self, stimulus: Stimulus) -> Stimulus:
        init_latches = dict(stimulus.init_latches)
        for mem_name, words in stimulus.init_memories.items():
            for addr, value in words.items():
                init_latches[word_latch_name(mem_name, addr)] = value
        return Stimulus(inputs=[dict(v) for v in stimulus.inputs],
                        init_latches=init_latches, init_memories={})

    def replay(self, stimulus: Stimulus) -> Trace:
        return self._inner.replay(self._translate(stimulus))

    def replay_batch(self, stimuli: Sequence[Stimulus]) -> list[Trace]:
        return self._inner.replay_batch([self._translate(s) for s in stimuli])


def default_oracle(design: Design, max_batch: int = 1024) -> Oracle:
    """The fastest available concrete oracle for this environment."""
    if have_numpy():
        return VectorOracle(design, max_batch=max_batch)
    return SimulatorOracle(design)
