"""Mass differential-fuzzing farm over the whole verification stack.

One round of the farm draws a random netlist, a *batch* of random
stimulus vectors, and cross-checks every concrete and symbolic
interpretation the repo has against each other:

* **vector vs scalar simulation** — a sample of batch lanes is replayed
  on the scalar reference interpreter and compared bit for bit;
* **vector vs explicit expansion** — property verdicts of sampled lanes
  are cross-checked against the ``expand_memories`` oracle;
* **BMC encodings vs the explicit model** — every ``{hybrid, gates} ×
  option-combo`` configuration is run through the existing
  :class:`repro.service.VerificationService` and must reproduce the
  explicit-model verdict/depth with a validated trace;
* **simulation witnesses lower-bound BMC** — any random lane that hits
  a property at cycle *c* forces the symbolic engines to report a
  counterexample at depth ≤ *c* (BMC finds the *earliest* violation).

Any divergence is captured as a :class:`Divergence` with an
auto-shrunk reproducer (stimulus minimized while the two sides still
disagree) and can be persisted to JSON for the CI artifact upload and
replayed later with ``python -m repro.sim.fuzzfarm --replay FILE``.

The farm is seed-budgeted: give it a number of rounds, a trial target,
and/or a wall-clock budget; every round is deterministic in
``config.seed`` so CI failures reproduce locally.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Optional

from repro.bmc import BmcOptions
from repro.design import Design, expand_memories
from repro.service import RetryPolicy, VerificationService
from repro.sim.oracle import (ExplicitOracle, Oracle, SimulatorOracle,
                              Stimulus, default_oracle)
from repro.sim.trace import Trace
from repro.sim.vector import have_numpy

#: The sharing-option axes the farm toggles (mirrors the default
#: differential matrix in ``tests/test_differential_matrix.py``).  The
#: raw hybrid CNF back-end (``emm_hybrid_strash=False``) is retired
#: from the default axes — the AIG-routed back-end has been the
#: production path since PR 5 — and survives only as the paper-exact
#: ablation combo below.
OPTION_AXES = ("strash", "emm_addr_dedup", "emm_chain_share")

#: Default option combos: everything on and everything off — the two
#: poles every per-axis regression lies between — plus the paper-exact
#: raw hybrid CNF ablation, the one default-run coverage the retired
#: ``emm_hybrid_strash`` axis keeps.  Pass more combos for the nightly
#: full matrix.
DEFAULT_COMBOS = (dict.fromkeys(OPTION_AXES, True),
                  dict.fromkeys(OPTION_AXES, False),
                  dict(dict.fromkeys(OPTION_AXES, True),
                       emm_hybrid_strash=False))


# -- random workloads (module level so service workers can pickle them) ----


def build_fuzz_netlist(seed: int) -> Design:
    """Random single-memory workload with recurring address cones.

    Shapes chosen so every optimisation path fires somewhere across the
    seeds: multi-read/write ports (disjoint write parities, keeping the
    no-race assumption), known and arbitrary initial memory, an
    arbitrary-init noise latch, and addresses drawn from constants, a
    shared input and a walking latch.  Properties cover both kinds: a
    reach target on the raw read data, a reach target through a
    history-accumulating latch, and a latch-range invariant.
    """
    rng = random.Random(seed)
    aw = rng.choice([2, 3])
    dw = rng.choice([2, 3, 4])
    w_ports = rng.choice([1, 2])
    r_ports = rng.choice([2, 3])
    init = rng.choice([0, None, 3])
    d = Design(f"fuzz{seed}")
    t = d.latch("t", aw, init=0)
    t.next = t.expr + 1
    noise = d.latch("noise", dw, init=None)
    noise.next = noise.expr
    init_words = {rng.randrange(1 << aw): rng.randrange(1 << dw)} \
        if rng.random() < 0.5 else None
    mem = d.memory("m", aw, dw, read_ports=r_ports, write_ports=w_ports,
                   init=init, init_words=init_words)
    shared = d.input("sa", aw)
    addr_pool = [lambda: d.const(rng.randrange(1 << aw), aw),
                 lambda: shared,
                 lambda: t.expr]
    for w in range(w_ports):
        en = d.input(f"we{w}", 1)
        if w_ports > 1:
            addr = d.input(f"wa{w}", aw)
            en = en & addr[0].eq(w & 1)
        else:
            addr = rng.choice(addr_pool)()
        mem.write(w).connect(addr=addr, data=d.input(f"wd{w}", dw), en=en)
    for r in range(r_ports):
        mem.read(r).connect(addr=rng.choice(addr_pool)(), en=1)
    target = rng.randrange(1 << dw)
    d.reach("hit", mem.read(0).data.eq(target))
    seen = d.latch("seen", 1, init=0)
    seen.next = seen.expr | mem.read(r_ports - 1).data.eq(
        rng.randrange(1 << dw))
    d.reach("seen_hit", seen.expr.eq(1))
    d.invariant("t_in_range",
                t.expr.ult((1 << aw) - 1) | t.expr.eq((1 << aw) - 1))
    return d


def _build_explicit(seed: int) -> Design:
    return expand_memories(build_fuzz_netlist(seed))


def random_stimulus(design: Design, rng: random.Random,
                    cycles: int) -> Stimulus:
    """Random inputs plus random arbitrary-init latch/memory contents."""
    inputs = [{name: rng.randrange(1 << inp.width)
               for name, inp in design.inputs.items()}
              for _ in range(cycles)]
    init_latches = {name: rng.randrange(1 << latch.width)
                    for name, latch in design.latches.items()
                    if latch.init is None}
    init_memories = {}
    for name, mem in design.memories.items():
        if mem.init is not None:
            continue
        words = {rng.randrange(mem.num_words): rng.randrange(
            1 << mem.data_width) for _ in range(rng.randrange(4))}
        init_memories[name] = {a: v for a, v in words.items()
                               if a not in mem.init_words}
    return Stimulus(inputs=inputs, init_latches=init_latches,
                    init_memories=init_memories)


# -- configuration / report -------------------------------------------------


@dataclass
class FarmConfig:
    """Knobs of one farm run.

    Termination: ``rounds`` wins when set; else the farm loops until
    ``min_trials`` is reached, never exceeding ``budget_s`` wall-clock
    seconds (when set) once the trial floor is met; with nothing set it
    runs a single round.
    """

    #: Stimulus vectors per netlist — the vector simulator's lane count.
    batch: int = 256
    #: Cycles per stimulus vector.
    depth: int = 5
    #: Master seed; every round derives its netlist seed from it.
    seed: int = 0
    rounds: Optional[int] = None
    min_trials: int = 0
    budget_s: Optional[float] = None
    #: Lanes replayed on the scalar interpreter per batch (bit-exactness
    #: sample) and lanes cross-checked against the explicit expansion.
    scalar_lanes: int = 4
    explicit_lanes: int = 2
    #: Symbolic side of the differential: encodings × option combos
    #: through the VerificationService, against the explicit model.
    run_bmc: bool = True
    encodings: tuple = ("hybrid", "gates")
    option_combos: tuple = DEFAULT_COMBOS
    bmc_depth: int = 4
    #: Worker processes for the service runs (1 = inline).
    jobs: int = 1
    #: Retry budget per service job: a crashed/hung/errored worker is
    #: retried instead of killing the farm round (nightly robustness).
    retries: int = 2
    #: Per-job hang deadline for pooled service runs (None: no watchdog).
    job_timeout_s: Optional[float] = None
    #: Minimize reproducer stimuli before reporting.
    shrink: bool = True
    #: Directory for divergence reproducer JSON files.
    out_dir: Optional[str] = None
    #: Record a per-round SAT-vs-simulation wall-clock split
    #: (``FarmReport.round_profile``; also written to ``out_dir`` as a
    #: ``profile.json`` artifact).
    profile: bool = False


@dataclass
class Divergence:
    """One observed disagreement plus everything needed to replay it."""

    kind: str
    seed: int
    detail: str
    prop: Optional[str] = None
    encoding: Optional[str] = None
    options: Optional[dict] = None
    stimulus: Optional[dict] = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "seed": self.seed, "detail": self.detail,
                "prop": self.prop, "encoding": self.encoding,
                "options": self.options, "stimulus": self.stimulus}


@dataclass
class FarmReport:
    """Aggregated counters of a farm run."""

    rounds: int = 0
    #: Total netlist×option×stimulus trials (simulation lanes + BMC
    #: property checks).
    trials: int = 0
    sim_trials: int = 0
    bmc_trials: int = 0
    elapsed_s: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)
    #: Files written for the divergences (when ``out_dir`` is set).
    artifacts: list[str] = field(default_factory=list)
    #: One ``{"seed", "sim_s", "bmc_s"}`` dict per round when
    #: ``FarmConfig.profile`` is on: the round's wall time split between
    #: the simulation differential and the SAT (BMC matrix) side.
    round_profile: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        line = (f"fuzzfarm: {self.rounds} rounds, {self.trials} trials "
                f"({self.sim_trials} sim / {self.bmc_trials} bmc), "
                f"{len(self.divergences)} divergences, "
                f"{self.elapsed_s:.1f}s")
        if self.round_profile:
            sim = sum(r["sim_s"] for r in self.round_profile)
            bmc = sum(r["bmc_s"] for r in self.round_profile)
            line += f" [wall: sim {sim:.1f}s / sat {bmc:.1f}s]"
        return line


# -- generic divergence shrinking ------------------------------------------


def shrink_stimulus(stimulus: Stimulus,
                    diverges: Callable[[Stimulus], bool],
                    rounds: int = 3) -> Stimulus:
    """Greedy minimization of a stimulus under an arbitrary predicate.

    The analogue of :class:`repro.bmc.shrink.TraceShrinker` for
    *divergence* reproducers, where the thing to preserve is "the two
    interpretations disagree" rather than a property violation.  Scalar
    and simple on purpose: divergences are rare, so this path is cold.
    """
    cur = stimulus.copy()
    while len(cur.inputs) > 1:
        cand = cur.copy()
        cand.inputs = cand.inputs[:-1]
        if not diverges(cand):
            break
        cur = cand
    for _ in range(rounds):
        changed = False
        for k in range(len(cur.inputs)):
            for name in sorted(cur.inputs[k]):
                while cur.inputs[k][name] > 0:
                    cand = cur.copy()
                    nxt = 0 if cand.inputs[k][name] == 1 \
                        else cand.inputs[k][name] // 2
                    cand.inputs[k][name] = nxt
                    if not diverges(cand):
                        break
                    cur = cand
                    changed = True
        for name in sorted(cur.init_latches):
            while cur.init_latches[name] > 0:
                cand = cur.copy()
                cand.init_latches[name] //= 2
                if not diverges(cand):
                    break
                cur = cand
                changed = True
        for mem in sorted(cur.init_memories):
            for addr in sorted(cur.init_memories[mem]):
                cand = cur.copy()
                del cand.init_memories[mem][addr]
                if diverges(cand):
                    cur = cand
                    changed = True
        if not changed:
            break
    return cur


def traces_equal(a: Trace, b: Trace) -> bool:
    return a.cycles == b.cycles


# -- the farm ---------------------------------------------------------------


def _round_seed(master_seed: int, round_index: int) -> int:
    return master_seed * 1_000_003 + round_index


def _should_stop(config: FarmConfig, report: FarmReport,
                 round_index: int, elapsed: float) -> bool:
    if config.rounds is not None:
        return round_index >= config.rounds
    if config.budget_s is not None and round_index > 0 \
            and elapsed >= config.budget_s:
        return True  # wall-clock cap (also caps a min_trials run)
    if config.min_trials:
        return report.trials >= config.min_trials
    if config.budget_s is not None:
        return False  # pure budget run: keep going until the cap
    return round_index >= 1  # nothing configured: one round


def run_farm(config: FarmConfig) -> FarmReport:
    """Run the farm to its seed budget; returns the aggregated report."""
    report = FarmReport()
    t0 = time.monotonic()
    round_index = 0
    while not _should_stop(config, report, round_index,
                           time.monotonic() - t0):
        _run_round(config, _round_seed(config.seed, round_index), report)
        round_index += 1
    report.rounds = round_index
    report.elapsed_s = time.monotonic() - t0
    if config.out_dir and report.divergences:
        report.artifacts = persist_divergences(report.divergences,
                                               config.out_dir)
    if config.out_dir and config.profile:
        report.artifacts.append(persist_profile(report, config.out_dir))
    return report


def _run_round(config: FarmConfig, seed: int, report: FarmReport) -> None:
    t_round = time.monotonic()
    t_sim = 0.0
    design = build_fuzz_netlist(seed)
    rng = random.Random(seed ^ 0x5EED)
    stimuli = [random_stimulus(design, rng, config.depth)
               for _ in range(config.batch)]
    scalar = SimulatorOracle(design)
    fast: Oracle = default_oracle(design) if have_numpy() else scalar
    traces = fast.replay_batch(stimuli)
    report.sim_trials += len(stimuli)
    report.trials += len(stimuli)

    # Vector vs scalar bit-exactness on a lane sample.
    for lane in _sample_lanes(len(stimuli), config.scalar_lanes, rng):
        ref = scalar.replay(stimuli[lane])
        if not traces_equal(ref, traces[lane]):
            report.divergences.append(_sim_divergence(
                "scalar-vs-vector", seed, design, stimuli[lane], config,
                lambda s: not traces_equal(scalar.replay(s),
                                           fast.replay(s))))

    # Vector vs the explicit-expansion oracle on property verdicts.
    explicit = ExplicitOracle(design)
    for lane in _sample_lanes(len(stimuli), config.explicit_lanes, rng):
        for prop in sorted(design.properties):
            got = fast.scan(prop, traces[lane])
            want = explicit.check(prop, stimuli[lane])
            report.trials += 1
            if (got.failed, got.cycle) != (want.failed, want.cycle):
                report.divergences.append(_sim_divergence(
                    "explicit-vs-vector", seed, design, stimuli[lane],
                    config,
                    _explicit_differs(design, prop), prop=prop,
                    detail=f"vector={got} explicit={want}"))

    t_sim = time.monotonic() - t_round
    if config.run_bmc:
        _run_bmc_matrix(config, seed, design, traces, report)
    if config.profile:
        report.round_profile.append({
            "seed": seed,
            "sim_s": round(t_sim, 6),
            "bmc_s": round(time.monotonic() - t_round - t_sim, 6),
        })


def _sample_lanes(batch: int, count: int, rng: random.Random) -> list[int]:
    if count >= batch:
        return list(range(batch))
    return sorted(rng.sample(range(batch), count)) if count > 0 else []


def _explicit_differs(design: Design, prop: str):
    def differs(s: Stimulus) -> bool:
        got = default_oracle(design).check(prop, s)
        want = ExplicitOracle(design).check(prop, s)
        return (got.failed, got.cycle) != (want.failed, want.cycle)
    return differs


def _sim_divergence(kind: str, seed: int, design: Design, stimulus: Stimulus,
                    config: FarmConfig, diverges, prop: Optional[str] = None,
                    detail: str = "") -> Divergence:
    shrunk = stimulus
    if config.shrink:
        try:
            shrunk = shrink_stimulus(stimulus, diverges)
        except Exception as exc:  # keep the unshrunk reproducer
            detail = f"{detail} (shrink failed: {exc})".strip()
    return Divergence(kind=kind, seed=seed, prop=prop,
                      detail=detail or kind, stimulus=shrunk.to_dict())


def _run_bmc_matrix(config: FarmConfig, seed: int, design: Design,
                    traces: list[Trace], report: FarmReport) -> None:
    """Every (encoding × combo) must match the explicit model — and no
    symbolic engine may miss a violation a random lane already found."""
    fast = default_oracle(design) if have_numpy() else \
        SimulatorOracle(design)
    depth = config.bmc_depth
    sim_first: dict[str, Optional[int]] = {}
    for prop in design.properties:
        cycles = [v.cycle for t in traces
                  for v in [fast.scan(prop, t)] if v.failed]
        within = [c for c in cycles if c is not None and c <= depth]
        sim_first[prop] = min(within) if within else None

    base = dict(find_proof=False, max_depth=depth)
    retry = RetryPolicy(max_retries=config.retries)
    with VerificationService(partial(_build_explicit, seed),
                             BmcOptions(use_emm=False, **base),
                             jobs=config.jobs, retry=retry,
                             job_timeout_s=config.job_timeout_s) as svc:
        oracle_results = svc.run()
    for encoding in config.encodings:
        for combo in config.option_combos:
            opts = BmcOptions(emm_encoding=encoding, **combo, **base)
            with VerificationService(partial(build_fuzz_netlist, seed),
                                     opts, jobs=config.jobs, retry=retry,
                                     job_timeout_s=config.job_timeout_s) as svc:
                results = svc.run()
            for prop, r in sorted(results.items()):
                report.bmc_trials += 1
                report.trials += 1
                want = oracle_results[prop]
                ctx = dict(seed=seed, prop=prop, encoding=encoding,
                           options=dict(combo))
                if (r.status, r.depth) != (want.status, want.depth):
                    report.divergences.append(Divergence(
                        kind="bmc-verdict", detail=(
                            f"{encoding}/{combo}: got {r.status}@{r.depth}, "
                            f"explicit model says {want.status}@{want.depth}"),
                        **{k: ctx[k] for k in ("seed", "prop", "encoding",
                                               "options")}))
                    continue
                if r.status == "cex" and r.trace_validated is not True:
                    stim = Stimulus.from_trace(r.trace) if r.trace else None
                    report.divergences.append(Divergence(
                        kind="bmc-trace-invalid",
                        detail=f"{encoding}/{combo}: counterexample trace "
                               f"failed simulator validation",
                        stimulus=stim.to_dict() if stim else None,
                        **{k: ctx[k] for k in ("seed", "prop", "encoding",
                                               "options")}))
                    continue
                bound = sim_first[prop]
                if bound is not None and (r.status != "cex"
                                          or (r.depth or 0) > bound):
                    report.divergences.append(Divergence(
                        kind="bmc-missed-witness",
                        detail=(f"{encoding}/{combo}: a random lane "
                                f"violates at cycle {bound} but BMC "
                                f"reported {r.status}@{r.depth}"),
                        **{k: ctx[k] for k in ("seed", "prop", "encoding",
                                               "options")}))


# -- reproducer persistence / replay ---------------------------------------


def persist_divergences(divergences: list[Divergence],
                        out_dir: str) -> list[str]:
    """Write one JSON reproducer file per divergence; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, div in enumerate(divergences):
        path = out / f"divergence_{i:03d}_{div.kind}_seed{div.seed}.json"
        path.write_text(json.dumps(div.to_dict(), indent=2, sort_keys=True))
        paths.append(str(path))
    return paths


def persist_profile(report: FarmReport, out_dir: str) -> str:
    """Write the per-round SAT-vs-sim wall breakdown as a JSON artifact."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "profile.json"
    rounds = report.round_profile
    path.write_text(json.dumps({
        "rounds": rounds,
        "totals": {
            "sim_s": round(sum(r["sim_s"] for r in rounds), 6),
            "bmc_s": round(sum(r["bmc_s"] for r in rounds), 6),
            "elapsed_s": round(report.elapsed_s, 6),
        },
    }, indent=2, sort_keys=True))
    return str(path)


def replay_reproducer(path: str) -> bool:
    """Re-run one persisted divergence; True when it still diverges."""
    data = json.loads(Path(path).read_text())
    seed = int(data["seed"])
    design = build_fuzz_netlist(seed)
    kind = data["kind"]
    if kind in ("scalar-vs-vector", "explicit-vs-vector"):
        stim = Stimulus.from_dict(data["stimulus"])
        if kind == "scalar-vs-vector":
            return not traces_equal(SimulatorOracle(design).replay(stim),
                                    default_oracle(design).replay(stim))
        return _explicit_differs(design, data["prop"])(stim)
    # BMC kinds: re-run the single (encoding, combo, prop) cell.
    base = dict(find_proof=False, max_depth=4)
    from repro.bmc import verify
    want = verify(_build_explicit(seed), data["prop"],
                  BmcOptions(use_emm=False, **base))
    got = verify(design, data["prop"],
                 BmcOptions(emm_encoding=data["encoding"],
                            **(data.get("options") or {}), **base))
    if kind == "bmc-trace-invalid":
        return got.status == "cex" and got.trace_validated is not True
    return (got.status, got.depth) != (want.status, want.depth)


# -- CLI --------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.sim.fuzzfarm",
        description="Differential fuzzing farm: vector sim vs scalar sim "
                    "vs the BMC encodings.")
    ap.add_argument("--batch", type=int, default=256,
                    help="stimulus vectors per netlist (vector lanes)")
    ap.add_argument("--depth", type=int, default=5,
                    help="cycles per stimulus vector")
    ap.add_argument("--seed", type=int, default=0, help="master seed")
    ap.add_argument("--rounds", type=int, default=None,
                    help="netlist rounds (overrides trials/budget)")
    ap.add_argument("--min-trials", type=int, default=0,
                    help="run until this many trials completed")
    ap.add_argument("--seconds", type=float, default=None,
                    help="wall-clock seed budget")
    ap.add_argument("--bmc-depth", type=int, default=4)
    ap.add_argument("--no-bmc", action="store_true",
                    help="simulation-only differential (no SAT runs)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="service worker processes for the BMC matrix")
    ap.add_argument("--retries", type=int, default=2,
                    help="per-job retry budget for crashed/hung workers")
    ap.add_argument("--job-timeout", type=float, default=None,
                    help="per-job hang deadline in seconds (pooled runs)")
    ap.add_argument("--scalar-lanes", type=int, default=4)
    ap.add_argument("--profile", action="store_true",
                    help="report each round's wall time split between "
                         "the simulation differential and the SAT side")
    ap.add_argument("--out", default=None,
                    help="directory for divergence reproducer JSON files")
    ap.add_argument("--replay", default=None, metavar="FILE",
                    help="re-run one persisted reproducer instead")
    args = ap.parse_args(argv)

    if args.replay:
        still = replay_reproducer(args.replay)
        print(f"{args.replay}: "
              f"{'still diverges' if still else 'no longer diverges'}")
        return 1 if still else 0

    config = FarmConfig(batch=args.batch, depth=args.depth, seed=args.seed,
                        rounds=args.rounds, min_trials=args.min_trials,
                        budget_s=args.seconds, run_bmc=not args.no_bmc,
                        bmc_depth=args.bmc_depth, jobs=args.jobs,
                        retries=args.retries, job_timeout_s=args.job_timeout,
                        scalar_lanes=args.scalar_lanes, out_dir=args.out,
                        profile=args.profile)
    report = run_farm(config)
    print(report.summary())
    for rp in report.round_profile:
        print(f"  round seed={rp['seed']}: sim {rp['sim_s']:.2f}s, "
              f"sat {rp['bmc_s']:.2f}s")
    for div in report.divergences:
        print(f"  DIVERGENCE [{div.kind}] seed={div.seed} "
              f"prop={div.prop}: {div.detail}")
    for path in report.artifacts:
        print(f"  artifact: {path}")
    return 1 if report.divergences else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
