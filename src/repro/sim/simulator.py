"""Reference interpreter for word-level designs with embedded memories."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.design.netlist import Design, Expr
from repro.sim.trace import Trace


def _mask(width: int) -> int:
    return (1 << width) - 1


class Simulator:
    """Cycle-accurate simulation of a design.

    Memory contents are sparse dictionaries; unwritten locations read the
    memory's uniform initial value, or the caller-provided contents for
    arbitrary-initial-state memories.  Latches with ``init=None`` likewise
    take caller-provided (default 0) initial values.

    Read-port semantics match the EMM discipline: when the read enable is
    inactive the returned value is 0 — well-formed designs must not
    consume RD while RE is low (under EMM that value is unconstrained).
    """

    def __init__(self, design: Design,
                 init_latches: Optional[Mapping[str, int]] = None,
                 init_memories: Optional[Mapping[str, Mapping[int, int]]] = None) -> None:
        design.validate()
        self.design = design
        self.latches: dict[str, int] = {}
        init_latches = dict(init_latches or {})
        for latch in design.latches.values():
            if latch.name in init_latches:
                value = init_latches[latch.name]
            elif latch.init is not None:
                value = latch.init
            else:
                value = 0
            self.latches[latch.name] = value & _mask(latch.width)
        self.memories: dict[str, dict[int, int]] = {}
        self._mem_default: dict[str, int] = {}
        init_memories = init_memories or {}
        for mem in design.memories.values():
            # Declared per-address contents first; caller overrides win.
            contents = dict(mem.init_words)
            contents.update(init_memories.get(mem.name, {}))
            self.memories[mem.name] = {
                a & _mask(mem.addr_width): v & _mask(mem.data_width)
                for a, v in contents.items()
            }
            self._mem_default[mem.name] = (mem.init or 0) & _mask(mem.data_width)
        self._port_order = design.port_evaluation_order()
        self.cycle = 0
        # Per-cycle evaluation state.
        self._inputs: dict[str, int] = {}
        self._values: dict[int, int] = {}
        self._rd_values: dict[tuple[str, int], int] = {}

    # -- single-cycle evaluation -----------------------------------------

    def begin_cycle(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        """Present this cycle's inputs and resolve read ports."""
        self._inputs = {}
        inputs = inputs or {}
        for inp in self.design.inputs.values():
            self._inputs[inp.name] = int(inputs.get(inp.name, 0)) & _mask(inp.width)
        self._values = {}
        self._rd_values = {}
        for mem_name, idx in self._port_order:
            mem = self.design.memories[mem_name]
            port = mem.read_ports[idx]
            en = self.eval(port.en)
            if en:
                addr = self.eval(port.addr)
                value = self.memories[mem_name].get(addr, self._mem_default[mem_name])
            else:
                value = 0
            self._rd_values[(mem_name, idx)] = value

    def eval(self, expr: Expr) -> int:
        """Evaluate an expression in the current cycle."""
        values = self._values
        got = values.get(expr._id)
        if got is not None:
            return got
        stack = [expr]
        while stack:
            e = stack[-1]
            if e._id in values:
                stack.pop()
                continue
            missing = [a for a in e.args if a._id not in values]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            values[e._id] = self._eval_node(e)
        return values[expr._id]

    def _eval_node(self, e: Expr) -> int:
        values = self._values
        kind = e.kind
        if kind == "const":
            return e.payload
        if kind == "input":
            return self._inputs[e.payload]
        if kind == "latch":
            return self.latches[e.payload]
        if kind == "memread":
            return self._rd_values[e.payload]
        a = values[e.args[0]._id] if e.args else 0
        if kind == "not":
            return ~a & _mask(e.width)
        if kind == "slice":
            lo, hi = e.payload
            return (a >> lo) & _mask(hi - lo)
        if kind == "zext":
            return a
        if kind == "mux":
            return values[e.args[1]._id] if a else values[e.args[2]._id]
        if kind == "concat":
            high = values[e.args[1]._id]
            return a | (high << e.args[0].width)
        b = values[e.args[1]._id]
        if kind == "and":
            return a & b
        if kind == "or":
            return a | b
        if kind == "xor":
            return a ^ b
        if kind == "add":
            return (a + b) & _mask(e.width)
        if kind == "sub":
            return (a - b) & _mask(e.width)
        if kind == "eq":
            return int(a == b)
        if kind == "ult":
            return int(a < b)
        raise ValueError(f"unknown expression kind {kind!r}")

    def commit_cycle(self) -> None:
        """Latch next-state values and apply memory writes."""
        next_latches = {
            name: self.eval(latch.next) & _mask(latch.width)
            for name, latch in self.design.latches.items()
        }
        writes: list[tuple[str, int, int]] = []
        for mem in self.design.memories.values():
            for port in mem.write_ports:  # port order: later ports override
                if self.eval(port.en):
                    addr = self.eval(port.addr)
                    data = self.eval(port.data)
                    writes.append((mem.name, addr, data))
        self.latches = next_latches
        for mem_name, addr, data in writes:
            self.memories[mem_name][addr] = data
        self.cycle += 1

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> None:
        """Convenience: begin + commit one cycle."""
        self.begin_cycle(inputs)
        self.commit_cycle()

    # -- batched runs -------------------------------------------------------

    def run(self, input_sequence: Sequence[Mapping[str, int]],
            watch: Optional[Mapping[str, Expr]] = None) -> Trace:
        """Run a sequence of cycles, recording a :class:`Trace`.

        Properties are evaluated in each cycle *before* the state update,
        matching the BMC frame semantics.
        """
        trace = Trace(design_name=self.design.name)
        watch = dict(watch or {})
        for inputs in input_sequence:
            self.begin_cycle(inputs)
            record = {
                "inputs": dict(self._inputs),
                "latches": dict(self.latches),
                "props": {name: self.eval(p.expr)
                          for name, p in self.design.properties.items()},
                "watch": {name: self.eval(e) for name, e in watch.items()},
            }
            trace.cycles.append(record)
            self.commit_cycle()
        return trace

    def check_property_at(self, prop_name: str,
                          input_sequence: Sequence[Mapping[str, int]]) -> list[int]:
        """Property values over a run (1 = expr holds that cycle)."""
        prop = self.design.properties[prop_name]
        out = []
        for inputs in input_sequence:
            self.begin_cycle(inputs)
            out.append(self.eval(prop.expr))
            self.commit_cycle()
        return out
